//! Workspace automation. The one command that exists today:
//!
//! ```text
//! cargo xtask lint                 # run the custom static-analysis pass
//! cargo xtask lint --list-allowed  # audit report of every suppression marker
//! cargo xtask lint --json PATH     # also write a machine-readable report
//! ```
//!
//! The pass walks the `src/` trees of the crates listed in
//! `xtask/lint.toml` and enforces the workspace's robustness rules
//! (see [`lint`] for the rule table). Exit status is nonzero when any
//! violation is found, so CI can gate on it.

mod config;
mod lexer;
mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use config::LintConfig;
use lint::{Diagnostic, Marker};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut list_allowed = false;
            let mut json_path: Option<PathBuf> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--list-allowed" => list_allowed = true,
                    "--json" => {
                        let Some(p) = rest.next() else {
                            eprintln!("error: --json requires a PATH argument");
                            return usage();
                        };
                        json_path = Some(PathBuf::from(p));
                    }
                    bad => {
                        eprintln!("error: unknown argument `{bad}`");
                        return usage();
                    }
                }
            }
            run_lint(list_allowed, json_path)
        }
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--list-allowed] [--json PATH]");
    ExitCode::from(2)
}

/// The workspace root: xtask always sits directly under it.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(list_allowed: bool, json_path: Option<PathBuf>) -> ExitCode {
    let root = workspace_root();
    let cfg_path = root.join("xtask/lint.toml");
    let cfg_text = match std::fs::read_to_string(&cfg_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cfg_path.display());
            return ExitCode::FAILURE;
        }
    };
    let cfg = match LintConfig::parse(&cfg_text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut markers: Vec<Marker> = Vec::new();
    let mut files_scanned = 0usize;

    for crate_root in &cfg.crate_roots {
        let src_dir = root.join(crate_root).join("src");
        let mut files = Vec::new();
        if let Err(e) = collect_rs_files(&src_dir, &mut files) {
            eprintln!("error: cannot walk {}: {e}", src_dir.display());
            return ExitCode::FAILURE;
        }
        files.sort();
        for file in files {
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let src = match std::fs::read_to_string(&file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {rel}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            files_scanned += 1;
            let rules = lint::RuleSet {
                hot: cfg.hot_modules.iter().any(|h| h == &rel),
                lock_order: &cfg.lock_order,
            };
            let mut report = lint::lint_file(&rel, &src, &rules);
            if file.file_name().is_some_and(|n| n == "lib.rs")
                && file
                    .parent()
                    .is_some_and(|p| p == root.join(crate_root).join("src"))
            {
                if let Some(d) = lint::lint_crate_root(&rel, &src) {
                    report.diagnostics.push(d);
                }
            }
            diagnostics.append(&mut report.diagnostics);
            markers.append(&mut report.markers);
        }
    }

    if let Some(path) = &json_path {
        let doc = json_report(files_scanned, &diagnostics, &markers);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if list_allowed {
        print_allowed_report(&markers);
        return ExitCode::SUCCESS;
    }

    for d in &diagnostics {
        eprintln!("{d}\n");
    }
    let unused: Vec<&Marker> = markers.iter().filter(|m| m.uses == 0).collect();
    for m in &unused {
        eprintln!(
            "warning: unused `{}` marker at {}:{} — nothing on its lines needs auditing",
            m.kind.as_str(),
            m.path,
            m.line
        );
    }
    eprintln!(
        "lint: {} file(s), {} violation(s), {} audit marker(s) ({} unused)",
        files_scanned,
        diagnostics.len(),
        markers.len(),
        unused.len()
    );
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--list-allowed` audit report: every suppression marker, where it
/// is, how many findings it absorbs, and the recorded justification.
fn print_allowed_report(markers: &[Marker]) {
    println!("# Audit of lint suppression markers");
    println!("#");
    println!("# kind          uses  location                                  reason");
    for m in markers {
        println!(
            "{:<13} {:>5}  {:<40}  {}",
            m.kind.as_str(),
            m.uses,
            format!("{}:{}", m.path, m.line),
            if m.reason.is_empty() {
                "(no reason given)"
            } else {
                &m.reason
            }
        );
    }
    let total_uses: usize = markers.iter().map(|m| m.uses).sum();
    println!(
        "# {} marker(s) covering {} audited site(s)",
        markers.len(),
        total_uses
    );
}

/// Renders the `fgh-lint/1` machine-readable report: every violation and
/// every marker with its use count, so lint state is diffable across PRs.
fn json_report(files_scanned: usize, diagnostics: &[Diagnostic], markers: &[Marker]) -> String {
    let mut out = String::from("{\n  \"format\": \"fgh-lint/1\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"violations\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            d.rule,
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diagnostics.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"markers\": [");
    for (i, m) in markers.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"path\": \"{}\", \"line\": {}, \"uses\": {}, \
             \"reason\": \"{}\"}}",
            m.kind.as_str(),
            json_escape(&m.path),
            m.line,
            m.uses,
            json_escape(&m.reason)
        ));
    }
    out.push_str(if markers.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    let unused = markers.iter().filter(|m| m.uses == 0).count();
    out.push_str(&format!(
        "  \"summary\": {{\"violations\": {}, \"markers\": {}, \"unused_markers\": {}}}\n}}\n",
        diagnostics.len(),
        markers.len(),
        unused
    ));
    out
}

/// Minimal JSON string escaping for the report's text fields.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
