//! `xtask/lint.toml` loading.
//!
//! The build environment has no registry access, so instead of a `toml`
//! dependency this parses the small subset the config actually uses:
//! `[section]` headers and `key = ["a", "b", ...]` string-array entries
//! (arrays may span lines), with `#` comments.

use std::collections::BTreeMap;

use crate::lint::LockClass;

/// Parsed lint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Crate directories (relative to the workspace root) whose `src/`
    /// trees the pass walks.
    pub crate_roots: Vec<String>,
    /// Files (relative to the workspace root) where raw slice indexing
    /// requires a `checked-index` audit marker (rule FGH003).
    pub hot_modules: Vec<String>,
    /// Declared lock hierarchy (rule FGH006), earliest-acquired first:
    /// `[locks] order = [...]` plus per-class receiver patterns under
    /// `[locks.classes]`. A class with no patterns entry matches its own
    /// name only.
    pub lock_order: Vec<LockClass>,
}

/// A config-file problem, reported with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl LintConfig {
    /// Parses the config from TOML text.
    pub fn parse(text: &str) -> Result<LintConfig, ConfigError> {
        let mut sections = parse_sections(text)?;
        let mut cfg = LintConfig::default();
        if let Some(arr) = sections.remove("crates.roots") {
            cfg.crate_roots = arr;
        }
        if let Some(arr) = sections.remove("indexing.hot_modules") {
            cfg.hot_modules = arr;
        }
        let order = sections.remove("locks.order").unwrap_or_default();
        let mut class_patterns: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let class_keys: Vec<String> = sections
            .keys()
            .filter(|k| k.starts_with("locks.classes."))
            .cloned()
            .collect();
        for key in class_keys {
            let name = key["locks.classes.".len()..].to_string();
            if !order.contains(&name) {
                return Err(ConfigError {
                    line: 0,
                    message: format!(
                        "[locks.classes] entry `{name}` is not listed in [locks] order"
                    ),
                });
            }
            if let Some(pats) = sections.remove(&key) {
                class_patterns.insert(name, pats);
            }
        }
        cfg.lock_order = order
            .into_iter()
            .map(|name| {
                let patterns = class_patterns
                    .remove(&name)
                    .unwrap_or_else(|| vec![name.clone()]);
                LockClass { name, patterns }
            })
            .collect();
        if let Some(key) = sections.keys().next() {
            return Err(ConfigError {
                line: 0,
                message: format!("unknown config key `{key}`"),
            });
        }
        if cfg.crate_roots.is_empty() {
            return Err(ConfigError {
                line: 0,
                message: "config must list at least one crate under [crates] roots".into(),
            });
        }
        Ok(cfg)
    }
}

/// Parses `[section]` + `key = [ "…" ]` pairs into `section.key` entries.
fn parse_sections(text: &str) -> Result<BTreeMap<String, Vec<String>>, ConfigError> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((i, raw)) = lines.next() {
        let lineno = i as u32 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        let Some((key, mut value)) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        else {
            return Err(ConfigError {
                line: lineno,
                message: format!("expected `key = [...]`, got `{line}`"),
            });
        };
        // Arrays may span lines: accumulate until brackets balance.
        while !brackets_balanced(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unterminated array for key `{key}`"),
                });
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        let full_key = if section.is_empty() {
            key.clone()
        } else {
            format!("{section}.{key}")
        };
        out.insert(full_key, parse_string_array(&value, lineno)?);
    }
    Ok(out)
}

/// Drops a `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_string_array(value: &str, line: u32) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError {
            line,
            message: format!("expected a `[...]` string array, got `{value}`"),
        })?;
    let mut items = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue; // trailing comma
        }
        let s = piece
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| ConfigError {
                line,
                message: format!("array elements must be quoted strings, got `{piece}`"),
            })?;
        items.push(s.to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_multiline_arrays() {
        let cfg = LintConfig::parse(
            r#"
# comment
[crates]
roots = [
    "crates/a",  # inline comment
    "crates/b",
]

[indexing]
hot_modules = ["crates/a/src/hot.rs"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.crate_roots, vec!["crates/a", "crates/b"]);
        assert_eq!(cfg.hot_modules, vec!["crates/a/src/hot.rs"]);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_syntax() {
        assert!(LintConfig::parse("[crates]\nroots = [\"a\"]\nbogus = [\"x\"]").is_err());
        assert!(LintConfig::parse("[crates]\nroots [\"a\"]").is_err());
        assert!(LintConfig::parse("[crates]\nroots = [unquoted]").is_err());
        assert!(LintConfig::parse("").is_err(), "empty roots rejected");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = LintConfig::parse("[crates]\nroots = [\"a#b\"]").unwrap();
        assert_eq!(cfg.crate_roots, vec!["a#b"]);
    }

    #[test]
    fn parses_lock_hierarchy_with_patterns_and_defaults() {
        let cfg = LintConfig::parse(
            r#"
[crates]
roots = ["crates/a"]

[locks]
order = ["ArenaPool", "JobQueue"]

[locks.classes]
ArenaPool = ["arenas", "pool"]
"#,
        )
        .unwrap();
        assert_eq!(cfg.lock_order.len(), 2);
        assert_eq!(cfg.lock_order[0].name, "ArenaPool");
        assert_eq!(cfg.lock_order[0].patterns, vec!["arenas", "pool"]);
        // No patterns entry → the class matches its own name only.
        assert_eq!(cfg.lock_order[1].name, "JobQueue");
        assert_eq!(cfg.lock_order[1].patterns, vec!["JobQueue"]);
    }

    #[test]
    fn rejects_class_not_listed_in_order() {
        let err = LintConfig::parse(
            "[crates]\nroots = [\"a\"]\n[locks]\norder = [\"A\"]\n[locks.classes]\nB = [\"b\"]\n",
        )
        .unwrap_err();
        assert!(err.message.contains("`B`"), "{err}");
    }
}
