//! A small hand-rolled Rust lexer.
//!
//! The lint pass needs token-level structure — comments separated from
//! code, string/char literals that can't produce false `as`/`[` matches,
//! and line/column positions for diagnostics. It does **not** need a full
//! grammar, so this is a scanner producing a flat token stream. The
//! subtle cases it must get right (all covered by tests):
//!
//! * nested block comments (`/* /* */ */`),
//! * raw strings with arbitrary `#` fences (`r#"…"#`, `br##"…"##`),
//! * lifetimes vs char literals (`'a` vs `'a'` vs `'\n'`),
//! * raw identifiers (`r#type`).

/// What a token is. Punctuation is one token per character — the rules
/// match multi-character operators by looking at adjacent tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the rules tell them apart by text).
    Ident,
    /// Numeric literal (integer or float, any base).
    Num,
    /// String literal, including raw and byte strings.
    Str,
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Single punctuation character.
    Punct(char),
    /// `// …` comment (doc comments included), without the newline.
    LineComment,
    /// `/* … */` comment, nesting collapsed.
    BlockComment,
}

/// One token: kind, byte span into the source, and 1-based position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` for comments (tokens the code-structure rules skip).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. The scanner never fails: unterminated literals are
/// closed at end of input so the linter still reports on broken files
/// (rustc will reject them anyway).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let kind = match c {
                c if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                '/' if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    TokenKind::LineComment
                }
                '/' if self.peek_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    let mut depth = 1u32;
                    while depth > 0 {
                        match (self.peek(), self.peek_at(1)) {
                            (Some('/'), Some('*')) => {
                                depth += 1;
                                self.bump();
                                self.bump();
                            }
                            (Some('*'), Some('/')) => {
                                depth -= 1;
                                self.bump();
                                self.bump();
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break,
                        }
                    }
                    TokenKind::BlockComment
                }
                '"' => {
                    self.eat_string();
                    TokenKind::Str
                }
                'r' | 'b' if self.raw_or_byte_literal(&mut out, line, col, start) => continue,
                '\'' => self.eat_quote(),
                c if c.is_alphabetic() || c == '_' => {
                    self.eat_ident();
                    TokenKind::Ident
                }
                c if c.is_ascii_digit() => {
                    self.eat_number();
                    TokenKind::Num
                }
                c => {
                    self.bump();
                    TokenKind::Punct(c)
                }
            };
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
            });
        }
        out
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'…'`.
    /// Returns `true` when it consumed a literal (and pushed the token);
    /// `false` leaves the `r`/`b` for ordinary identifier lexing.
    fn raw_or_byte_literal(
        &mut self,
        out: &mut Vec<Token>,
        line: u32,
        col: u32,
        start: usize,
    ) -> bool {
        let rest = &self.src[self.pos..];
        let prefix_len = if rest.starts_with("br") || rest.starts_with("rb") {
            2
        } else {
            1
        };
        let after: &str = &rest[prefix_len..];
        let kind = if after.starts_with('"') || after.starts_with('#') {
            // Possibly raw string (r/br) or raw identifier (r#foo). A raw
            // string needs `"` after the fence; a raw ident has an ident
            // char after one `#`.
            let fences = after.bytes().take_while(|&b| b == b'#').count();
            match after[fences..].chars().next() {
                Some('"') => {
                    for _ in 0..prefix_len + fences + 1 {
                        self.bump();
                    }
                    let close: String = format!("\"{}", "#".repeat(fences));
                    while self.pos < self.bytes.len() && !self.src[self.pos..].starts_with(&close) {
                        self.bump();
                    }
                    for _ in 0..close.len() {
                        if self.peek().is_none() {
                            break;
                        }
                        self.bump();
                    }
                    Some(TokenKind::Str)
                }
                Some(c)
                    if fences == 1 && rest.starts_with('r') && (c.is_alphabetic() || c == '_') =>
                {
                    // Raw identifier r#foo.
                    self.bump(); // r
                    self.bump(); // #
                    self.eat_ident();
                    Some(TokenKind::Ident)
                }
                _ => None,
            }
        } else if rest.starts_with("b\"") {
            self.bump();
            self.eat_string();
            Some(TokenKind::Str)
        } else if rest.starts_with("b'") {
            self.bump();
            self.bump();
            self.eat_char_body();
            Some(TokenKind::Char)
        } else {
            None
        };
        match kind {
            Some(kind) => {
                out.push(Token {
                    kind,
                    start,
                    end: self.pos,
                    line,
                    col,
                });
                true
            }
            None => false,
        }
    }

    /// After a `'`: lifetime (`'a`, `'static`) or char literal (`'a'`,
    /// `'\n'`). A lifetime is a `'` followed by an identifier **not**
    /// closed by another `'`.
    fn eat_quote(&mut self) -> TokenKind {
        self.bump(); // the opening '
        match self.peek() {
            Some(c) if (c.is_alphanumeric() || c == '_') && c != '\\' => {
                // Scan the ident; if a `'` follows immediately it was a
                // one-char char literal like 'a'.
                let ident_start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let ident_len = self.pos - ident_start;
                if self.peek() == Some('\'') && ident_len == 1 {
                    self.bump();
                    TokenKind::Char
                } else {
                    TokenKind::Lifetime
                }
            }
            _ => {
                self.eat_char_body();
                TokenKind::Char
            }
        }
    }

    /// Consumes a char literal body (after the opening `'`) up to and
    /// including the closing `'`, honoring escapes.
    fn eat_char_body(&mut self) {
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '\'' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes a `"`-delimited string (cursor on the opening quote).
    fn eat_string(&mut self) {
        self.bump();
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump();
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn eat_ident(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn eat_number(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' {
                // `1.5` continues the number; `1..n` is a range.
                match self.peek_at(1) {
                    Some(d) if d.is_ascii_digit() => self.bump(),
                    _ => break,
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += c.len_utf8();
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src).iter().map(|t| t.text(src).to_string()).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct('='),
                TokenKind::Num,
                TokenKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_keep_text_and_positions() {
        let src = "a // trailing\n/* block\n still */ b";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[1].text(src), "// trailing");
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        let b = toks[3];
        assert_eq!((b.line, b.text(src)), (3, "b"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ x";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].text(src), "x");
    }

    #[test]
    fn strings_hide_code_like_content() {
        // The `as u8` inside the string must not become tokens.
        let src = r#"let s = "x as u8 [0]";"#;
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct('='),
                TokenKind::Str,
                TokenKind::Punct(';'),
            ]
        );
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"r#"say "hi" as u8"# + rb"bytes""###;
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert!(toks[0].text(src).ends_with("\"#"));
        assert_eq!(toks[2].kind, TokenKind::Str);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct('&'), TokenKind::Lifetime, TokenKind::Ident]
        );
        assert_eq!(kinds("'x'"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\n'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("b'z'"), vec![TokenKind::Char]);
    }

    #[test]
    fn raw_identifier() {
        let toks = lex("r#type");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Ident);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        assert_eq!(texts("0..n"), vec!["0", ".", ".", "n"]);
        assert_eq!(texts("1.5e3"), vec!["1.5e3"]);
        assert_eq!(texts("0xFF_u32"), vec!["0xFF_u32"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_strings_hide_lock_calls() {
        // FGH006 keys off `.lock()` Ident tokens: one inside a raw
        // string (e.g. a doc example embedded in a test fixture) must
        // not produce them.
        let src = r####"let s = r#"let g = m.lock().unwrap();"#;"####;
        let toks = lex(src);
        assert_eq!(
            toks.iter().map(|t| t.kind).collect::<Vec<_>>(),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct('='),
                TokenKind::Str,
                TokenKind::Punct(';'),
            ]
        );
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "lock"));
    }

    #[test]
    fn nested_block_comments_hide_atomics_and_keep_lines() {
        // FGH005 must not fire on commented-out code, and the token
        // after a multi-line nested comment must land on the right line
        // (marker coverage is line-based).
        let src = "/* dead:\n /* a.store(true, Ordering::SeqCst); */\n*/\nx";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!((toks[1].text(src), toks[1].line), ("x", 4));
    }

    #[test]
    fn multiline_raw_string_keeps_following_line_numbers() {
        // A `r#"…"#` literal spanning lines must advance the line
        // counter, or every marker after it would mis-cover.
        let src = "let q = r#\"line one\nline two \"quoted\"\nline three\"#;\nunsafe_marker";
        let toks = lex(src);
        assert_eq!(toks[3].kind, TokenKind::Str);
        let last = toks.last().copied().expect("tokens");
        assert_eq!((last.text(src), last.line), ("unsafe_marker", 4));
    }

    #[test]
    fn cfg_gated_blocks_tokenize_around_markers() {
        // A `// lint:` marker split from its code by a cfg attribute:
        // the lexer must keep the comment token distinct and position
        // the attribute's `#` directly after it, which is what the
        // marker attribute-skip in lint.rs relies on.
        let src = "// lint: atomic — relaxed: latched flag\n#[cfg(feature = \"p\")]\nf.store(true, Ordering::Relaxed);";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::Punct('#'));
        assert_eq!(toks[1].line, 2);
        let store = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text(src) == "store")
            .expect("store token");
        assert_eq!(store.line, 3);
    }
}
