//! The lint rules, marker handling, and rustc-style diagnostics.
//!
//! | Rule   | What it rejects                                                 |
//! |--------|-----------------------------------------------------------------|
//! | FGH001 | Lossy `as` casts (narrowing target) without an audit marker     |
//! | FGH002 | `debug_assert!(false, …)` — must be a typed internal error      |
//! | FGH003 | Raw slice indexing `x[…]` in configured hot modules, unaudited  |
//! | FGH004 | Crate roots missing the `deny(clippy::unwrap_used, …)` gate     |
//! | FGH005 | Atomic `Ordering::…` uses without a `// lint: atomic` marker    |
//! | FGH006 | `.lock()` against the declared hierarchy; `.lock().unwrap()`    |
//! | FGH007 | `panic!`/`unwrap`/`expect`/raw indexing inside `impl Drop`      |
//! | FGH008 | `unsafe` blocks without a `// lint: unsafe — <invariant>`       |
//!
//! Audit markers are line comments of the form
//! `// lint: <kind> — <reason>` with kinds `checked-cast`,
//! `checked-index`, `atomic`, `lock`, and `unsafe`, placed on the
//! offending line or the line directly above. A `checked-index`,
//! `atomic`, or `unsafe` marker directly above an `fn` item covers the
//! whole (brace-matched) function body — hot loops index dozens of times
//! per function, and atomics cluster the same way. A marker directly
//! above a `#[cfg(…)]`-gated block covers the first line past the
//! attributes, so gating does not detach markers from their code.
//! `lock` markers are line-scope only: each exemption from the lock
//! hierarchy or the `.lock().unwrap()` ban must be argued at its site.
//!
//! FGH005 additionally requires that a marker covering a
//! `Ordering::Relaxed` use say the word "relaxed" in its reason — the
//! author must name why reordering is safe, not just that an ordering
//! was chosen.
//!
//! Test code (`#[cfg(test)]` items and `#[test]` functions) is exempt
//! from every rule but FGH004: a panic in a test *is* the failure
//! report, and tests may lock eagerly.

use crate::lexer::{lex, Token, TokenKind};

/// Cast targets that can lose value or precision from the wider types the
/// workspace works in. The 64-bit targets (`usize`, `u64`, `i64`, `f64`)
/// are accepted without a marker: the documented policy is that indices
/// are `u32` and widen freely on a 64-bit host.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32", "isize"];

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `in [x, y]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "if", "else", "match", "break", "continue", "move", "while", "loop", "as",
    "const", "static", "let", "mut", "ref", "dyn", "impl", "where", "type", "fn",
];

/// The `std::sync::atomic::Ordering` variants FGH005 audits. `Less`,
/// `Equal`, `Greater` are absent, so `std::cmp::Ordering` paths never
/// match.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One level of the declared lock hierarchy (rule FGH006), in
/// acquisition order: a lock may only be taken while holding
/// strictly-earlier-ranked locks.
#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    /// Identifiers that classify a `.lock()` site as this class: matched
    /// against the receiver path (`self.arenas.lock()` → `arenas`,
    /// `self`) and, failing that, the enclosing `impl` type name.
    pub patterns: Vec<String>,
}

/// Per-file rule configuration.
#[derive(Debug, Clone, Copy)]
pub struct RuleSet<'a> {
    /// Enables FGH003 (raw indexing) for this file.
    pub hot: bool,
    /// The declared lock hierarchy, earliest-acquired first (FGH006).
    pub lock_order: &'a [LockClass],
}

/// One finding, formatted like a rustc diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// Caret width in the source line.
    pub len: usize,
    pub message: String,
    pub help: &'static str,
    /// The offending source line, for the snippet.
    pub snippet: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        let gutter = self.line.to_string().len();
        writeln!(
            f,
            "{:>gutter$}--> {}:{}:{}",
            "",
            self.path,
            self.line,
            self.col,
            gutter = gutter + 1
        )?;
        writeln!(f, "{:>gutter$} |", "", gutter = gutter)?;
        writeln!(f, "{} | {}", self.line, self.snippet)?;
        writeln!(
            f,
            "{:>gutter$} | {:>col$}{}",
            "",
            "",
            "^".repeat(self.len.max(1)),
            gutter = gutter,
            col = self.col as usize - 1
        )?;
        write!(f, "{:>gutter$} = help: {}", "", self.help, gutter = gutter)
    }
}

/// An audit marker found in a file.
#[derive(Debug, Clone)]
pub struct Marker {
    pub path: String,
    pub line: u32,
    pub kind: MarkerKind,
    pub reason: String,
    /// Lines this marker covers (the marker line, the next line, and for
    /// fn-scope `checked-index` markers the whole function body).
    pub covers: (u32, u32),
    /// How many findings this marker suppressed.
    pub uses: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    CheckedCast,
    CheckedIndex,
    Atomic,
    Lock,
    Unsafe,
}

impl MarkerKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MarkerKind::CheckedCast => "checked-cast",
            MarkerKind::CheckedIndex => "checked-index",
            MarkerKind::Atomic => "atomic",
            MarkerKind::Lock => "lock",
            MarkerKind::Unsafe => "unsafe",
        }
    }

    /// Kinds whose marker, placed directly above an `fn` item, covers
    /// the whole function body. `lock` is deliberately absent.
    fn fn_scope(self) -> bool {
        matches!(
            self,
            MarkerKind::CheckedIndex | MarkerKind::Atomic | MarkerKind::Unsafe
        )
    }
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub markers: Vec<Marker>,
}

/// Lints one file's source. `path` is the repo-relative path used in
/// diagnostics; `rules` selects hot-module indexing checks and carries
/// the declared lock hierarchy.
pub fn lint_file(path: &str, src: &str, rules: &RuleSet) -> FileReport {
    let tokens = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut report = FileReport::default();

    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let test_spans = test_item_spans(&tokens, &sig, src);
    let in_test = |tok: &Token| {
        test_spans
            .iter()
            .any(|&(s, e)| tok.start >= s && tok.start < e)
    };

    report.markers = collect_markers(path, src, &tokens, &sig);

    let diag = |tok: &Token, end: &Token, rule, message, help| Diagnostic {
        rule,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        len: end.end.saturating_sub(tok.start),
        message,
        help,
        snippet: lines.get(tok.line as usize - 1).unwrap_or(&"").to_string(),
    };

    // FGH001 — lossy `as` casts, and FGH002 — debug_assert!(false, …).
    for (si, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident || in_test(tok) {
            continue;
        }
        match tok.text(src) {
            "as" => {
                let Some(&ti) = sig.get(si + 1) else { continue };
                let target = &tokens[ti];
                if target.kind == TokenKind::Ident
                    && NARROW_TARGETS.contains(&target.text(src))
                    && suppress(&mut report.markers, MarkerKind::CheckedCast, tok.line).is_none()
                {
                    report.diagnostics.push(diag(
                        tok,
                        target,
                        "FGH001",
                        format!(
                            "lossy numeric cast `as {}` without an audit marker",
                            target.text(src)
                        ),
                        "prove the value fits and annotate with \
                         `// lint: checked-cast — <why it fits>`, or use `try_from`",
                    ));
                }
            }
            "debug_assert" => {
                let bang = sig.get(si + 1).map(|&j| &tokens[j]);
                let paren = sig.get(si + 2).map(|&j| &tokens[j]);
                let arg = sig.get(si + 3).map(|&j| &tokens[j]);
                if let (Some(b), Some(p), Some(a)) = (bang, paren, arg) {
                    if b.kind == TokenKind::Punct('!')
                        && p.kind == TokenKind::Punct('(')
                        && a.kind == TokenKind::Ident
                        && a.text(src) == "false"
                    {
                        report.diagnostics.push(diag(
                            tok,
                            a,
                            "FGH002",
                            "`debug_assert!(false, ...)`: unreachable-state reporting must be a \
                             typed internal error"
                                .to_string(),
                            "return a typed error (e.g. `PartitionError::internal(...)`) so \
                             release builds surface the defect instead of continuing silently",
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    // FGH003 — raw indexing in hot modules.
    if rules.hot {
        for (si, &i) in sig.iter().enumerate() {
            let tok = &tokens[i];
            if tok.kind != TokenKind::Punct('[') || si == 0 || in_test(tok) {
                continue;
            }
            let prev = &tokens[sig[si - 1]];
            let is_index_base = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(src)),
                TokenKind::Punct(']') | TokenKind::Punct(')') => true,
                _ => false,
            };
            if is_index_base
                && suppress(&mut report.markers, MarkerKind::CheckedIndex, tok.line).is_none()
            {
                report.diagnostics.push(diag(
                    tok,
                    tok,
                    "FGH003",
                    "raw slice indexing in a hot module without an audit marker".to_string(),
                    "prove the index is in bounds and annotate the line or enclosing fn with \
                     `// lint: checked-index — <why it is in bounds>`, or use `get`",
                ));
            }
        }
    }

    // FGH005 — atomic memory orderings must carry an `atomic` marker.
    for (si, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident || tok.text(src) != "Ordering" || in_test(tok) {
            continue;
        }
        let c1 = sig.get(si + 1).map(|&j| &tokens[j]);
        let c2 = sig.get(si + 2).map(|&j| &tokens[j]);
        let Some(variant) = sig.get(si + 3).map(|&j| &tokens[j]) else {
            continue;
        };
        if !matches!(c1.map(|t| t.kind), Some(TokenKind::Punct(':')))
            || !matches!(c2.map(|t| t.kind), Some(TokenKind::Punct(':')))
            || variant.kind != TokenKind::Ident
            || !ATOMIC_ORDERINGS.contains(&variant.text(src))
        {
            continue;
        }
        match suppress(&mut report.markers, MarkerKind::Atomic, tok.line) {
            None => report.diagnostics.push(diag(
                tok,
                variant,
                "FGH005",
                format!(
                    "atomic `Ordering::{}` without an audit marker",
                    variant.text(src)
                ),
                "state the required happens-before edge with \
                 `// lint: atomic — <what this ordering synchronizes>` on the line, the line \
                 above, or above the enclosing fn",
            )),
            Some(mi) => {
                if variant.text(src) == "Relaxed"
                    && !report.markers[mi].reason.to_lowercase().contains("relaxed")
                {
                    report.diagnostics.push(diag(
                        tok,
                        variant,
                        "FGH005",
                        "`Ordering::Relaxed` covered by a marker that does not say why \
                         reordering is safe"
                            .to_string(),
                        "Relaxed disables all cross-thread ordering: the marker's reason must \
                         mention `relaxed` and name why no happens-before edge is needed",
                    ));
                }
            }
        }
    }

    // FGH006 — lock-hierarchy order and the `.lock().unwrap()` ban.
    let impls = impl_spans(&tokens, &sig, src);
    check_locks(
        src,
        &tokens,
        &sig,
        rules.lock_order,
        &impls,
        &in_test,
        &diag,
        &mut report,
    );

    // FGH007 — no panic paths inside `impl Drop` bodies.
    for im in impls.iter().filter(|im| im.is_drop) {
        for (si, &i) in sig.iter().enumerate() {
            let tok = &tokens[i];
            if tok.start < im.start || tok.start >= im.end || in_test(tok) {
                continue;
            }
            let next = sig.get(si + 1).map(|&j| &tokens[j]);
            let next2 = sig.get(si + 2).map(|&j| &tokens[j]);
            let help = "Drop runs during unwinding — a second panic aborts the process; \
                        use `let _ = …`, `unwrap_or`-style fallbacks, or `get` instead";
            match tok.kind {
                TokenKind::Ident
                    if matches!(
                        tok.text(src),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                    ) && matches!(next.map(|t| t.kind), Some(TokenKind::Punct('!'))) =>
                {
                    report.diagnostics.push(diag(
                        tok,
                        tok,
                        "FGH007",
                        format!("`{}!` inside an `impl Drop` body", tok.text(src)),
                        help,
                    ));
                }
                TokenKind::Punct('.')
                    if matches!(
                        next.map(|t| (t.kind, t.text(src))),
                        Some((TokenKind::Ident, "unwrap" | "expect"))
                    ) && matches!(next2.map(|t| t.kind), Some(TokenKind::Punct('('))) =>
                {
                    // `next` is Some here by the match guard.
                    let name = next.map(|t| t.text(src)).unwrap_or("unwrap");
                    report.diagnostics.push(diag(
                        tok,
                        next2.unwrap_or(tok),
                        "FGH007",
                        format!("`.{name}()` inside an `impl Drop` body"),
                        help,
                    ));
                }
                TokenKind::Punct('[') if si > 0 => {
                    let prev = &tokens[sig[si - 1]];
                    let is_index_base = match prev.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(src)),
                        TokenKind::Punct(']') | TokenKind::Punct(')') => true,
                        _ => false,
                    };
                    if is_index_base {
                        report.diagnostics.push(diag(
                            tok,
                            tok,
                            "FGH007",
                            "raw slice indexing inside an `impl Drop` body".to_string(),
                            help,
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    // FGH008 — `unsafe` blocks must carry an `unsafe` marker with the
    // upheld invariant. `unsafe fn` / `unsafe impl` declare obligations
    // rather than discharge them, so only `unsafe {` is matched.
    for (si, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident || tok.text(src) != "unsafe" || in_test(tok) {
            continue;
        }
        let next = sig.get(si + 1).map(|&j| &tokens[j]);
        if !matches!(next.map(|t| t.kind), Some(TokenKind::Punct('{'))) {
            continue;
        }
        if suppress(&mut report.markers, MarkerKind::Unsafe, tok.line).is_none() {
            report.diagnostics.push(diag(
                tok,
                tok,
                "FGH008",
                "`unsafe` block without an audit marker".to_string(),
                "write down the invariant that makes this sound with \
                 `// lint: unsafe — <invariant>` on the line, the line above, or above the \
                 enclosing fn",
            ));
        }
    }

    report
}

/// A parsed `impl` item: its byte span, the (last path segment of the)
/// implemented-for type, and whether it is a `Drop` impl.
#[derive(Debug)]
struct ImplSpan {
    start: usize,
    end: usize,
    type_name: String,
    is_drop: bool,
}

/// Extracts every `impl` item's span and self-type name.
fn impl_spans(tokens: &[Token], sig: &[usize], src: &str) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    for si in 0..sig.len() {
        let t = &tokens[sig[si]];
        if t.kind == TokenKind::Ident && t.text(src) == "impl" {
            if let Some(span) = parse_impl(tokens, sig, src, si) {
                out.push(span);
            }
        }
    }
    out
}

/// Parses the header and body span of the `impl` at `sig[si]`. Handles
/// generics (`impl<'a, T> Trait for Type<'a, T>`), paths, and `where`
/// clauses; returns `None` for headers with no body (unreachable in
/// valid Rust, but the lexer never fails, so the parser must not).
fn parse_impl(tokens: &[Token], sig: &[usize], src: &str, si: usize) -> Option<ImplSpan> {
    let start = tokens[sig[si]].start;
    let mut angle = 0i32;
    let mut saw_for = false;
    let mut in_where = false;
    let mut first_ident = String::new();
    let mut type_name = String::new();
    let mut body_open = None;
    for (off, &j) in sig[si + 1..].iter().enumerate() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => {
                body_open = Some(si + 1 + off);
                break;
            }
            TokenKind::Punct(';') if angle <= 0 => return None,
            TokenKind::Ident if angle <= 0 && !in_where => match t.text(src) {
                "for" => saw_for = true,
                "where" => in_where = true,
                name => {
                    if first_ident.is_empty() {
                        first_ident = name.to_string();
                    }
                    // Last path segment before `{` wins: for
                    // `impl Trait for sync::Foo<T>` this lands on `Foo`.
                    type_name = name.to_string();
                }
            },
            _ => {}
        }
    }
    let open = body_open?;
    let mut depth = 0i32;
    for &j in &sig[open..] {
        match tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(ImplSpan {
                        start,
                        end: tokens[j].end,
                        type_name,
                        is_drop: saw_for && first_ident == "Drop",
                    });
                }
            }
            _ => {}
        }
    }
    None
}

/// The FGH006 sweep: walks the token stream with a brace-depth counter
/// and a stack of textually-held locks; flags a `.lock()` whose class
/// rank is not strictly greater than every held rank, and any
/// `.lock().unwrap()`/`.lock().expect()` chain. `lock` markers (line
/// scope) exempt a site — e.g. a guard provably dropped via `drop(g)`
/// that the textual model cannot see, or a documented poison-fatal site.
#[allow(clippy::too_many_arguments)]
fn check_locks(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    classes: &[LockClass],
    impls: &[ImplSpan],
    in_test: &dyn Fn(&Token) -> bool,
    diag: &dyn Fn(&Token, &Token, &'static str, String, &'static str) -> Diagnostic,
    report: &mut FileReport,
) {
    struct Held<'a> {
        rank: usize,
        depth: i32,
        line: u32,
        name: &'a str,
    }
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();
    for (si, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        match tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            TokenKind::Punct('.') => {
                // `.lock()` — exactly: dot, `lock`, `(`, `)`.
                let is_lock = matches!(
                    sig.get(si + 1)
                        .map(|&j| (tokens[j].kind, tokens[j].text(src))),
                    Some((TokenKind::Ident, "lock"))
                ) && matches!(
                    sig.get(si + 2).map(|&j| tokens[j].kind),
                    Some(TokenKind::Punct('('))
                ) && matches!(
                    sig.get(si + 3).map(|&j| tokens[j].kind),
                    Some(TokenKind::Punct(')'))
                );
                if !is_lock || in_test(tok) {
                    continue;
                }
                // Ban `.lock().unwrap()` outside documented sites.
                let chained = matches!(
                    sig.get(si + 4).map(|&j| tokens[j].kind),
                    Some(TokenKind::Punct('.'))
                )
                .then(|| sig.get(si + 5).map(|&j| &tokens[j]))
                .flatten()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(src));
                if matches!(chained, Some("unwrap" | "expect"))
                    && matches!(
                        sig.get(si + 6).map(|&j| tokens[j].kind),
                        Some(TokenKind::Punct('('))
                    )
                    && suppress(&mut report.markers, MarkerKind::Lock, tok.line).is_none()
                {
                    report.diagnostics.push(diag(
                        tok,
                        &tokens[sig[si + 3]],
                        "FGH006",
                        format!(
                            "`.lock().{}()` outside a documented poison-recovery site",
                            chained.unwrap_or("unwrap")
                        ),
                        "a poisoned lock is a crashed peer, not a local bug: recover with \
                         `unwrap_or_else(std::sync::PoisonError::into_inner)`, or annotate with \
                         `// lint: lock — <why poisoning is fatal here>`",
                    ));
                }
                // Hierarchy check for classified sites.
                let Some((rank, name)) = classify_lock(tokens, sig, src, si, impls, classes) else {
                    continue;
                };
                if let Some(h) = held.iter().find(|h| rank <= h.rank) {
                    if suppress(&mut report.markers, MarkerKind::Lock, tok.line).is_none() {
                        report.diagnostics.push(diag(
                            tok,
                            &tokens[sig[si + 3]],
                            "FGH006",
                            format!(
                                "`{name}` (rank {rank}) locked while `{}` (rank {}, line {}) is \
                                 held — violates the declared lock order",
                                h.name, h.rank, h.line
                            ),
                            "acquire locks in the `[locks] order` declared in xtask/lint.toml; \
                             if the earlier guard is already dropped here, annotate with \
                             `// lint: lock — <why the guard is not held>`",
                        ));
                    }
                }
                held.push(Held {
                    rank,
                    depth,
                    line: tok.line,
                    name,
                });
            }
            _ => {}
        }
    }
}

/// Maps the `.lock()` whose dot is at `sig[si]` to a lock class: first
/// by the receiver path's identifiers (`state.in_flight.lock()` →
/// `in_flight`), then by the enclosing `impl` type name.
fn classify_lock<'c>(
    tokens: &[Token],
    sig: &[usize],
    src: &str,
    si: usize,
    impls: &[ImplSpan],
    classes: &'c [LockClass],
) -> Option<(usize, &'c str)> {
    let mut idents: Vec<&str> = Vec::new();
    let mut j = si;
    while j >= 1 {
        let prev = &tokens[sig[j - 1]];
        if prev.kind != TokenKind::Ident {
            break;
        }
        idents.push(prev.text(src));
        if j >= 2 && tokens[sig[j - 2]].kind == TokenKind::Punct('.') {
            j -= 2;
        } else {
            break;
        }
    }
    for (rank, class) in classes.iter().enumerate() {
        if class.patterns.iter().any(|p| idents.contains(&p.as_str())) {
            return Some((rank, &class.name));
        }
    }
    let pos = tokens[sig[si]].start;
    let enclosing = impls.iter().find(|im| pos >= im.start && pos < im.end)?;
    for (rank, class) in classes.iter().enumerate() {
        if class.patterns.contains(&enclosing.type_name) {
            return Some((rank, &class.name));
        }
    }
    None
}

/// FGH004 — checks a crate root (`lib.rs`) for the panic-robustness gate:
/// an inner attribute that `deny`s both `clippy::unwrap_used` and
/// `clippy::expect_used`.
pub fn lint_crate_root(path: &str, src: &str) -> Option<Diagnostic> {
    let tokens = lex(src);
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (si, &i) in sig.iter().enumerate() {
        // Match `#![ ... ]` and inspect the idents inside.
        if tokens[i].kind != TokenKind::Punct('#') {
            continue;
        }
        let bang = sig.get(si + 1).map(|&j| &tokens[j]);
        let open = sig.get(si + 2).map(|&j| &tokens[j]);
        if !matches!(bang.map(|t| t.kind), Some(TokenKind::Punct('!')))
            || !matches!(open.map(|t| t.kind), Some(TokenKind::Punct('[')))
        {
            continue;
        }
        let mut depth = 0i32;
        let (mut has_deny, mut has_unwrap, mut has_expect) = (false, false, false);
        for &j in &sig[si + 2..] {
            match tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident => match tokens[j].text(src) {
                    "deny" => has_deny = true,
                    "unwrap_used" => has_unwrap = true,
                    "expect_used" => has_expect = true,
                    _ => {}
                },
                _ => {}
            }
        }
        if has_deny && has_unwrap && has_expect {
            return None;
        }
    }
    Some(Diagnostic {
        rule: "FGH004",
        path: path.to_string(),
        line: 1,
        col: 1,
        len: 1,
        message: "crate root is missing the panic-robustness gate".to_string(),
        help: "add `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]` \
               at the top of lib.rs",
        snippet: src.lines().next().unwrap_or("").to_string(),
    })
}

/// Finds a marker of `kind` covering `line`, records the use, and
/// returns its index (so FGH005 can inspect the reason). A marker
/// sitting on the violation's own line wins over one covering it from the
/// line above — otherwise, with trailing markers on consecutive lines, the
/// first marker would claim both violations and the second read as unused.
fn suppress(markers: &mut [Marker], kind: MarkerKind, line: u32) -> Option<usize> {
    let covering = |m: &Marker| m.kind == kind && line >= m.covers.0 && line <= m.covers.1;
    if let Some(idx) = markers.iter().position(|m| m.line == line && covering(m)) {
        markers[idx].uses += 1;
        return Some(idx);
    }
    if let Some(idx) = markers.iter().position(covering) {
        markers[idx].uses += 1;
        return Some(idx);
    }
    None
}

/// Extracts `// lint: …` markers and computes their coverage spans.
fn collect_markers(path: &str, src: &str, tokens: &[Token], sig: &[usize]) -> Vec<Marker> {
    let mut markers = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (kind, tail) = if let Some(t) = rest.strip_prefix("checked-cast") {
            (MarkerKind::CheckedCast, t)
        } else if let Some(t) = rest.strip_prefix("checked-index") {
            (MarkerKind::CheckedIndex, t)
        } else if let Some(t) = rest.strip_prefix("atomic") {
            (MarkerKind::Atomic, t)
        } else if let Some(t) = rest.strip_prefix("lock") {
            (MarkerKind::Lock, t)
        } else if let Some(t) = rest.strip_prefix("unsafe") {
            (MarkerKind::Unsafe, t)
        } else {
            continue;
        };
        let reason = tail
            .trim_start_matches(|c: char| c.is_whitespace() || c == '-' || c == '—' || c == ':')
            .trim()
            .to_string();
        // Default coverage: the marker's own line (trailing comment) and
        // the line below (marker on its own line). Attributes directly
        // under the marker extend coverage to the first gated code line,
        // so `#[cfg(…)]` does not detach a marker from its code.
        let mut covers = (tok.line, tok.line + 1);
        if let Some(past) = line_past_attrs(tokens, sig, i) {
            covers.1 = covers.1.max(past);
        }
        // Fn-scope: a checked-index/atomic/unsafe marker directly above
        // an `fn` item covers the whole brace-matched body.
        if kind.fn_scope() {
            if let Some(span) = fn_body_span(tokens, sig, src, i) {
                covers = span;
            }
        }
        markers.push(Marker {
            path: path.to_string(),
            line: tok.line,
            kind,
            reason,
            covers,
            uses: 0,
        });
    }
    markers
}

/// If the first significant tokens after `tokens[marker_idx]` introduce a
/// function (`pub`/`unsafe`/… then `fn`, with any `#[…]` attributes
/// skipped), returns the line span of the marker through the function's
/// closing brace.
fn fn_body_span(
    tokens: &[Token],
    sig: &[usize],
    src: &str,
    marker_idx: usize,
) -> Option<(u32, u32)> {
    let mut p = sig.partition_point(|&j| j <= marker_idx);
    // Attributes between the marker and the item (`#[inline]`,
    // `#[cfg(…)]`) do not break fn-scope coverage.
    while p < sig.len() && tokens[sig[p]].kind == TokenKind::Punct('#') {
        p = skip_attr(tokens, sig, p);
    }
    let after = &sig[p..];
    // Look for `fn` among the item's leading tokens (qualifiers and the
    // name come before the parameter list opens).
    let mut saw_fn = false;
    let mut k = 0usize;
    while k < after.len() && k < 8 {
        let t = &tokens[after[k]];
        if t.kind == TokenKind::Ident && t.text(src) == "fn" {
            saw_fn = true;
            break;
        }
        // Only qualifiers may precede `fn` in an item header.
        let is_qualifier = matches!(t.kind, TokenKind::Ident if matches!(t.text(src), "pub" | "unsafe" | "const" | "async" | "extern" | "crate"))
            || matches!(
                t.kind,
                TokenKind::Punct('(') | TokenKind::Punct(')') | TokenKind::Str
            );
        if !is_qualifier {
            return None;
        }
        k += 1;
    }
    if !saw_fn {
        return None;
    }
    // The first `{` after `fn` opens the body (generics, parameters, and
    // return types cannot contain a bare `{`); match braces to its close.
    // Bracket/paren depth is tracked too: the `;` of an array type in the
    // signature (`targets: [f64; 2]`) must not read as a body-less fn.
    let mut depth = 0i32;
    let mut nest = 0i32;
    let mut start_line = None;
    for &j in after.iter().skip(k) {
        match tokens[j].kind {
            TokenKind::Punct('{') => {
                if depth == 0 {
                    start_line = Some(tokens[j].line);
                }
                depth += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    let marker_line = tokens[marker_idx].line;
                    return start_line.map(|_| (marker_line, tokens[j].line));
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => nest += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => nest -= 1,
            // A top-level `;` before any `{` means a body-less fn (trait
            // method or extern declaration).
            TokenKind::Punct(';') if depth == 0 && nest == 0 => return None,
            _ => {}
        }
    }
    None
}

/// If the code directly under the marker at `tokens[marker_idx]` starts
/// with one or more attributes, returns the line of the first token past
/// them — the line the marker actually annotates once `cfg` gating is
/// peeled off.
fn line_past_attrs(tokens: &[Token], sig: &[usize], marker_idx: usize) -> Option<u32> {
    let mut p = sig.partition_point(|&j| j <= marker_idx);
    if p >= sig.len()
        || tokens[sig[p]].kind != TokenKind::Punct('#')
        || tokens[sig[p]].line > tokens[marker_idx].line + 1
    {
        return None;
    }
    while p < sig.len() && tokens[sig[p]].kind == TokenKind::Punct('#') {
        p = skip_attr(tokens, sig, p);
    }
    sig.get(p).map(|&j| tokens[j].line)
}

/// Byte spans of test-only items: the item following `#[cfg(test)]` or
/// `#[test]` (attributes stack, so intermediate attributes are skipped).
fn test_item_spans(tokens: &[Token], sig: &[usize], src: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut si = 0usize;
    while si < sig.len() {
        if is_test_attr(tokens, sig, src, si) {
            // Skip this and any following attributes, then span the item.
            let mut sj = si;
            while sj < sig.len() && tokens[sig[sj]].kind == TokenKind::Punct('#') {
                sj = skip_attr(tokens, sig, sj);
            }
            if let Some((start, end)) = item_span(tokens, sig, sj) {
                spans.push((start, end));
            }
        }
        si += 1;
    }
    spans
}

/// Is `sig[si]` the `#` of `#[cfg(test)]` or `#[test]`?
fn is_test_attr(tokens: &[Token], sig: &[usize], src: &str, si: usize) -> bool {
    if tokens[sig[si]].kind != TokenKind::Punct('#') {
        return false;
    }
    let idents: Vec<&str> = sig[si..]
        .iter()
        .take(8)
        .map(|&j| tokens[j].text(src))
        .collect();
    matches!(
        idents.as_slice(),
        ["#", "[", "test", "]", ..] | ["#", "[", "cfg", "(", "test", ")", "]", ..]
    )
}

/// Returns the sig index just past the attribute starting at `sig[si]`.
fn skip_attr(tokens: &[Token], sig: &[usize], si: usize) -> usize {
    let mut depth = 0i32;
    for (off, &j) in sig[si..].iter().enumerate() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return si + off + 1;
                }
            }
            _ => {}
        }
    }
    sig.len()
}

/// Byte span of the item starting at `sig[si]`: through the matching `}`
/// of its first open brace, or through a `;` for brace-less items.
fn item_span(tokens: &[Token], sig: &[usize], si: usize) -> Option<(usize, usize)> {
    let start = tokens[*sig.get(si)?].start;
    let mut depth = 0i32;
    for &j in &sig[si..] {
        match tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, tokens[j].end));
                }
            }
            TokenKind::Punct(';') if depth == 0 => return Some((start, tokens[j].end)),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(report: &FileReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    fn run(src: &str, hot: bool) -> FileReport {
        lint_file(
            "t.rs",
            src,
            &RuleSet {
                hot,
                lock_order: &[],
            },
        )
    }

    fn classes(specs: &[(&str, &[&str])]) -> Vec<LockClass> {
        specs
            .iter()
            .map(|(name, pats)| LockClass {
                name: name.to_string(),
                patterns: pats.iter().map(|p| p.to_string()).collect(),
            })
            .collect()
    }

    fn run_locks(src: &str, order: &[LockClass]) -> FileReport {
        lint_file(
            "t.rs",
            src,
            &RuleSet {
                hot: false,
                lock_order: order,
            },
        )
    }

    #[test]
    fn fgh001_flags_narrow_casts_only() {
        let src = "fn f(x: u64) -> u32 { let _ = x as usize; x as u32 }\n";
        let r = run(src, false);
        assert_eq!(rules(&r), vec!["FGH001"]);
        assert!(r.diagnostics[0].message.contains("as u32"));
    }

    #[test]
    fn fgh001_marker_same_line_and_above() {
        let src = "fn f(x: u64) -> u32 {\n    // lint: checked-cast — x is a vertex id\n    x as u32\n}\nfn g(x: u64) -> u8 {\n    x as u8 // lint: checked-cast — bounded by caller\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.markers.len(), 2);
        assert!(r.markers.iter().all(|m| m.uses == 1));
        assert_eq!(r.markers[0].reason, "x is a vertex id");
    }

    #[test]
    fn fgh001_ignores_strings_comments_and_tests() {
        let src = "fn f() { let _ = \"x as u8\"; } // y as u8\n#[cfg(test)]\nmod tests {\n    fn g(x: u64) -> u8 { x as u8 }\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn fgh002_flags_debug_assert_false() {
        let src = "fn f() { debug_assert!(false, \"unreachable\"); }\n";
        let r = run(src, false);
        assert_eq!(rules(&r), vec!["FGH002"]);
        // Ordinary debug_assert on a condition is fine.
        let ok = run("fn f(x: u32) { debug_assert!(x > 0); }\n", false);
        assert!(rules(&ok).is_empty());
    }

    #[test]
    fn fgh003_only_in_hot_modules() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
        assert!(rules(&run(src, false)).is_empty());
        assert_eq!(rules(&run(src, true)), vec!["FGH003"]);
    }

    #[test]
    fn fgh003_skips_non_index_brackets() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u8; 2] { let v = vec![1, 2]; [v[0], 3] }\n// lint: checked-index — v has 2 elements\n";
        // Only `v[0]` is an index expression; it is on the line above the
        // marker, which does NOT cover upwards — so exactly one finding.
        let r = run(src, true);
        assert_eq!(rules(&r), vec!["FGH003"]);
    }

    #[test]
    fn fgh003_fn_scope_marker_covers_body() {
        let src = "// lint: checked-index — all ids are < len by construction\npub fn hot(v: &[u32]) -> u32 {\n    let a = v[0];\n    let b = v[1];\n    a + b\n}\nfn other(v: &[u32]) -> u32 { v[2] }\n";
        let r = run(src, true);
        assert_eq!(rules(&r), vec!["FGH003"], "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 7);
        assert_eq!(r.markers[0].uses, 2);
    }

    #[test]
    fn fgh003_fn_scope_survives_array_types_in_signature() {
        // The `;` inside `[f64; 2]` is part of the signature, not a
        // body-less fn terminator: the marker must still cover the body.
        let src = "// lint: checked-index — t is 0/1 into a [u64; 2]\npub fn hot(t: [f64; 2], w: &[u64]) -> u64 {\n    w[t[0] as usize]\n}\n";
        let r = run(src, true);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert!(r.markers[0].uses > 0);
    }

    #[test]
    fn consecutive_trailing_markers_each_count() {
        // Each line's own trailing marker claims its violation; the first
        // must not absorb the second line's and leave it "unused".
        let src = "fn f(a: u64, b: u64) -> (u32, u32) {\n    let x = a as u32; // lint: checked-cast — a < 100\n    let y = b as u32; // lint: checked-cast — b < 100\n    (x, y)\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert!(r.markers.iter().all(|m| m.uses == 1), "{:?}", r.markers);
    }

    #[test]
    fn fgh004_detects_missing_gate() {
        let good = "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";
        assert!(lint_crate_root("lib.rs", good).is_none());
        let bad = "#![deny(clippy::unwrap_used)]\npub fn f() {}\n";
        assert!(lint_crate_root("lib.rs", bad).is_some());
        assert!(lint_crate_root("lib.rs", "pub fn f() {}\n").is_some());
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        let r = lint_file(
            "crates/x/src/f.rs",
            src,
            &RuleSet {
                hot: false,
                lock_order: &[],
            },
        );
        let text = r.diagnostics[0].to_string();
        assert!(text.contains("error[FGH001]"), "{text}");
        assert!(text.contains("--> crates/x/src/f.rs:1:25"), "{text}");
        assert!(text.contains("^^^^^^"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }

    #[test]
    fn unused_markers_are_tracked() {
        let src = "// lint: checked-cast — nothing here needs it\nfn f() {}\n";
        let r = run(src, false);
        assert_eq!(r.markers.len(), 1);
        assert_eq!(r.markers[0].uses, 0);
    }

    #[test]
    fn fgh005_requires_atomic_marker() {
        let src = "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }\n";
        let r = run(src, false);
        assert_eq!(rules(&r), vec!["FGH005"]);
        assert!(r.diagnostics[0].message.contains("Ordering::Release"));
        let ok = run(
            "fn f(a: &AtomicBool) {\n    // lint: atomic — store publishes init before the flag\n    a.store(true, Ordering::Release);\n}\n",
            false,
        );
        assert!(rules(&ok).is_empty(), "{:?}", ok.diagnostics);
        assert_eq!(ok.markers[0].uses, 1);
    }

    #[test]
    fn fgh005_relaxed_requires_named_reason() {
        // A marker that does not say "relaxed" is not enough for Relaxed.
        let bad = run(
            "fn f(a: &AtomicBool) {\n    // lint: atomic — sets the flag\n    a.store(true, Ordering::Relaxed);\n}\n",
            false,
        );
        assert_eq!(rules(&bad), vec!["FGH005"]);
        assert!(bad.diagnostics[0].message.contains("Relaxed"));
        // The marker still claims the site — no unused-marker double report.
        assert_eq!(bad.markers[0].uses, 1);
        let ok = run(
            "fn f(a: &AtomicBool) {\n    // lint: atomic — latched flag; relaxed: polled, no data guarded\n    a.store(true, Ordering::Relaxed);\n}\n",
            false,
        );
        assert!(rules(&ok).is_empty(), "{:?}", ok.diagnostics);
    }

    #[test]
    fn fgh005_ignores_cmp_ordering_and_tests() {
        let src = "fn f(a: u32, b: u32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Equal } }\n#[cfg(test)]\nmod tests {\n    fn g(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn fgh005_fn_scope_marker_covers_all_sites() {
        let src = "// lint: atomic — release store pairs with acquire load; relaxed reads are monotonic polls\nfn f(a: &AtomicU64) -> u64 {\n    a.store(1, Ordering::Release);\n    a.load(Ordering::Relaxed)\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.markers[0].uses, 2);
    }

    #[test]
    fn fgh006_misordered_double_lock_fails() {
        let order = classes(&[("Alpha", &["alpha"]), ("Beta", &["beta"])]);
        // Beta (rank 1) held, then Alpha (rank 0): hierarchy violation.
        let bad = "fn f(s: &S) {\n    let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);\n    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    drop((a, b));\n}\n";
        let r = run_locks(bad, &order);
        assert_eq!(rules(&r), vec!["FGH006"], "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].message.contains("`Alpha` (rank 0)"));
        assert!(r.diagnostics[0].message.contains("`Beta` (rank 1"));
        // The declared order is clean.
        let good = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);\n    drop((a, b));\n}\n";
        assert!(rules(&run_locks(good, &order)).is_empty());
    }

    #[test]
    fn fgh006_scope_exit_releases_guards() {
        let order = classes(&[("Alpha", &["alpha"]), ("Beta", &["beta"])]);
        // Beta's guard dies with its block, so Alpha after it is fine.
        let src = "fn f(s: &S) {\n    {\n        let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);\n        drop(b);\n    }\n    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    drop(a);\n}\n";
        assert!(rules(&run_locks(src, &order)).is_empty());
        // Same rank twice in one scope is a self-deadlock.
        let twice = "fn f(s: &S) {\n    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    let b = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    drop((a, b));\n}\n";
        assert_eq!(rules(&run_locks(twice, &order)), vec!["FGH006"]);
    }

    #[test]
    fn fgh006_lock_marker_exempts_a_site() {
        let order = classes(&[("Alpha", &["alpha"]), ("Beta", &["beta"])]);
        let src = "fn f(s: &S) {\n    let b = s.beta.lock().unwrap_or_else(PoisonError::into_inner);\n    drop(b);\n    // lint: lock — beta guard dropped on the line above\n    let a = s.alpha.lock().unwrap_or_else(PoisonError::into_inner);\n    drop(a);\n}\n";
        let r = run_locks(src, &order);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.markers[0].uses, 1);
    }

    #[test]
    fn fgh006_bans_lock_unwrap_outside_documented_sites() {
        let src = "fn f(s: &S) { let g = s.state.lock().unwrap(); drop(g); }\n";
        let r = run_locks(src, &[]);
        assert_eq!(rules(&r), vec!["FGH006"]);
        assert!(r.diagnostics[0].message.contains("unwrap"));
        let ok = "fn f(s: &S) {\n    // lint: lock — poisoning means the validator already aborted\n    let g = s.state.lock().expect(\"poisoned\");\n    drop(g);\n}\n";
        assert!(rules(&run_locks(ok, &[])).is_empty());
        // Tests may lock eagerly.
        let test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let g = M.lock().unwrap(); drop(g); }\n}\n";
        assert!(rules(&run_locks(test, &[])).is_empty());
    }

    #[test]
    fn fgh006_classifies_by_enclosing_impl() {
        let order = classes(&[("Queue", &["BoundedQueue"]), ("Cache", &["cache"])]);
        // `self.inner.lock()` inside `impl BoundedQueue` is the Queue
        // class; taking the cache while holding it is fine (rank 0 → 1),
        // the other way round is flagged.
        let src = "impl<T> BoundedQueue<T> {\n    fn f(&self) {\n        let c = self.cache.lock().unwrap_or_else(PoisonError::into_inner);\n        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);\n        drop((c, g));\n    }\n}\n";
        let r = run_locks(src, &order);
        assert_eq!(rules(&r), vec!["FGH006"], "{:?}", r.diagnostics);
        assert!(r.diagnostics[0].message.contains("`Queue` (rank 0)"));
    }

    #[test]
    fn fgh007_rejects_panic_paths_in_drop() {
        let src = "impl Drop for Guard {\n    fn drop(&mut self) {\n        self.file.take().unwrap();\n        panic!(\"bad\");\n    }\n}\n";
        let r = run(src, false);
        assert_eq!(rules(&r), vec!["FGH007", "FGH007"], "{:?}", r.diagnostics);
        // Raw indexing in Drop is also a panic path.
        let idx =
            "impl<'a, T> Drop for G<'a, T> {\n    fn drop(&mut self) { let _ = self.v[0]; }\n}\n";
        assert_eq!(rules(&run(idx, false)), vec!["FGH007"]);
    }

    #[test]
    fn fgh007_allows_clean_drop_and_other_impls() {
        // `unwrap_or` is not `unwrap`; panics outside Drop impls and in
        // test code are out of scope.
        let src = "impl Drop for Guard {\n    fn drop(&mut self) { let _ = self.tx.send(()); self.n.checked_sub(1).unwrap_or(0); }\n}\nimpl Guard {\n    fn f(&self) { self.file.take().unwrap(); }\n}\n#[cfg(test)]\nmod tests {\n    struct T;\n    impl Drop for T {\n        fn drop(&mut self) { panic!(\"test-only\"); }\n    }\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn fgh008_unsafe_block_needs_marker() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let r = run(src, false);
        assert_eq!(rules(&r), vec!["FGH008"]);
        let ok = "fn f(p: *const u8) -> u8 {\n    // lint: unsafe — p is non-null and valid for reads by contract\n    unsafe { *p }\n}\n";
        assert!(rules(&run(ok, false)).is_empty());
        // Fn-scope marker covers multiple blocks in one fn.
        let scoped = "// lint: unsafe — fd owned by self, valid until drop\nfn close(&mut self) {\n    unsafe { libc_close(self.fd) };\n    unsafe { libc_close(self.fd2) };\n}\n";
        let r = run(scoped, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.markers[0].uses, 2);
    }

    #[test]
    fn fgh008_skips_unsafe_fn_and_impl() {
        // Declaring obligations is not discharging them: only `unsafe {`
        // blocks need markers.
        let src = "unsafe fn raw(p: *const u8) -> *const u8 { p }\nunsafe impl Send for G {}\n";
        assert!(rules(&run(src, false)).is_empty());
    }

    #[test]
    fn marker_covers_across_cfg_gated_block() {
        // A marker above a `#[cfg(…)]` attribute covers the first gated
        // line — gating must not detach markers from their code.
        let src = "fn f(a: &AtomicU32) {\n    // lint: atomic — counter only; relaxed: no ordering needed\n    #[cfg(feature = \"fast\")]\n    a.store(1, Ordering::Relaxed);\n}\n";
        let r = run(src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.markers[0].uses, 1);
        // And fn-scope coverage survives attributes before the fn.
        let scoped = "// lint: checked-index — len checked by caller\n#[inline]\n#[cfg(not(miri))]\npub fn hot(v: &[u32]) -> u32 { v[0] }\n";
        let r = lint_file(
            "t.rs",
            scoped,
            &RuleSet {
                hot: true,
                lock_order: &[],
            },
        );
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }
}
