//! The lint rules, marker handling, and rustc-style diagnostics.
//!
//! | Rule   | What it rejects                                                 |
//! |--------|-----------------------------------------------------------------|
//! | FGH001 | Lossy `as` casts (narrowing target) without an audit marker     |
//! | FGH002 | `debug_assert!(false, …)` — must be a typed internal error      |
//! | FGH003 | Raw slice indexing `x[…]` in configured hot modules, unaudited  |
//! | FGH004 | Crate roots missing the `deny(clippy::unwrap_used, …)` gate     |
//!
//! Audit markers are line comments of the form
//! `// lint: checked-cast — <reason>` or
//! `// lint: checked-index — <reason>`, placed on the offending line or
//! the line directly above. A `checked-index` marker directly above an
//! `fn` item covers the whole (brace-matched) function body — hot loops
//! index dozens of times per function and per-line markers there would
//! drown the code.
//!
//! Test code (`#[cfg(test)]` items and `#[test]` functions) is exempt
//! from FGH001–FGH003: a panic in a test *is* the failure report.

use crate::lexer::{lex, Token, TokenKind};

/// Cast targets that can lose value or precision from the wider types the
/// workspace works in. The 64-bit targets (`usize`, `u64`, `i64`, `f64`)
/// are accepted without a marker: the documented policy is that indices
/// are `u32` and widen freely on a 64-bit host.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32", "isize"];

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `in [x, y]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "if", "else", "match", "break", "continue", "move", "while", "loop", "as",
    "const", "static", "let", "mut", "ref", "dyn", "impl", "where", "type", "fn",
];

/// One finding, formatted like a rustc diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    /// Caret width in the source line.
    pub len: usize,
    pub message: String,
    pub help: &'static str,
    /// The offending source line, for the snippet.
    pub snippet: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        let gutter = self.line.to_string().len();
        writeln!(
            f,
            "{:>gutter$}--> {}:{}:{}",
            "",
            self.path,
            self.line,
            self.col,
            gutter = gutter + 1
        )?;
        writeln!(f, "{:>gutter$} |", "", gutter = gutter)?;
        writeln!(f, "{} | {}", self.line, self.snippet)?;
        writeln!(
            f,
            "{:>gutter$} | {:>col$}{}",
            "",
            "",
            "^".repeat(self.len.max(1)),
            gutter = gutter,
            col = self.col as usize - 1
        )?;
        write!(f, "{:>gutter$} = help: {}", "", self.help, gutter = gutter)
    }
}

/// An audit marker found in a file.
#[derive(Debug, Clone)]
pub struct Marker {
    pub path: String,
    pub line: u32,
    pub kind: MarkerKind,
    pub reason: String,
    /// Lines this marker covers (the marker line, the next line, and for
    /// fn-scope `checked-index` markers the whole function body).
    pub covers: (u32, u32),
    /// How many findings this marker suppressed.
    pub uses: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    CheckedCast,
    CheckedIndex,
}

impl MarkerKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MarkerKind::CheckedCast => "checked-cast",
            MarkerKind::CheckedIndex => "checked-index",
        }
    }
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    pub markers: Vec<Marker>,
}

/// Lints one file's source. `path` is the repo-relative path used in
/// diagnostics; `hot` enables FGH003 for this file.
pub fn lint_file(path: &str, src: &str, hot: bool) -> FileReport {
    let tokens = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut report = FileReport::default();

    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let test_spans = test_item_spans(&tokens, &sig, src);
    let in_test = |tok: &Token| {
        test_spans
            .iter()
            .any(|&(s, e)| tok.start >= s && tok.start < e)
    };

    report.markers = collect_markers(path, src, &tokens, &sig);

    let diag = |tok: &Token, end: &Token, rule, message, help| Diagnostic {
        rule,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        len: end.end.saturating_sub(tok.start),
        message,
        help,
        snippet: lines.get(tok.line as usize - 1).unwrap_or(&"").to_string(),
    };

    // FGH001 — lossy `as` casts, and FGH002 — debug_assert!(false, …).
    for (si, &i) in sig.iter().enumerate() {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident || in_test(tok) {
            continue;
        }
        match tok.text(src) {
            "as" => {
                let Some(&ti) = sig.get(si + 1) else { continue };
                let target = &tokens[ti];
                if target.kind == TokenKind::Ident
                    && NARROW_TARGETS.contains(&target.text(src))
                    && !suppressed(&mut report.markers, MarkerKind::CheckedCast, tok.line)
                {
                    report.diagnostics.push(diag(
                        tok,
                        target,
                        "FGH001",
                        format!(
                            "lossy numeric cast `as {}` without an audit marker",
                            target.text(src)
                        ),
                        "prove the value fits and annotate with \
                         `// lint: checked-cast — <why it fits>`, or use `try_from`",
                    ));
                }
            }
            "debug_assert" => {
                let bang = sig.get(si + 1).map(|&j| &tokens[j]);
                let paren = sig.get(si + 2).map(|&j| &tokens[j]);
                let arg = sig.get(si + 3).map(|&j| &tokens[j]);
                if let (Some(b), Some(p), Some(a)) = (bang, paren, arg) {
                    if b.kind == TokenKind::Punct('!')
                        && p.kind == TokenKind::Punct('(')
                        && a.kind == TokenKind::Ident
                        && a.text(src) == "false"
                    {
                        report.diagnostics.push(diag(
                            tok,
                            a,
                            "FGH002",
                            "`debug_assert!(false, ...)`: unreachable-state reporting must be a \
                             typed internal error"
                                .to_string(),
                            "return a typed error (e.g. `PartitionError::internal(...)`) so \
                             release builds surface the defect instead of continuing silently",
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    // FGH003 — raw indexing in hot modules.
    if hot {
        for (si, &i) in sig.iter().enumerate() {
            let tok = &tokens[i];
            if tok.kind != TokenKind::Punct('[') || si == 0 || in_test(tok) {
                continue;
            }
            let prev = &tokens[sig[si - 1]];
            let is_index_base = match prev.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text(src)),
                TokenKind::Punct(']') | TokenKind::Punct(')') => true,
                _ => false,
            };
            if is_index_base && !suppressed(&mut report.markers, MarkerKind::CheckedIndex, tok.line)
            {
                report.diagnostics.push(diag(
                    tok,
                    tok,
                    "FGH003",
                    "raw slice indexing in a hot module without an audit marker".to_string(),
                    "prove the index is in bounds and annotate the line or enclosing fn with \
                     `// lint: checked-index — <why it is in bounds>`, or use `get`",
                ));
            }
        }
    }

    report
}

/// FGH004 — checks a crate root (`lib.rs`) for the panic-robustness gate:
/// an inner attribute that `deny`s both `clippy::unwrap_used` and
/// `clippy::expect_used`.
pub fn lint_crate_root(path: &str, src: &str) -> Option<Diagnostic> {
    let tokens = lex(src);
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (si, &i) in sig.iter().enumerate() {
        // Match `#![ ... ]` and inspect the idents inside.
        if tokens[i].kind != TokenKind::Punct('#') {
            continue;
        }
        let bang = sig.get(si + 1).map(|&j| &tokens[j]);
        let open = sig.get(si + 2).map(|&j| &tokens[j]);
        if !matches!(bang.map(|t| t.kind), Some(TokenKind::Punct('!')))
            || !matches!(open.map(|t| t.kind), Some(TokenKind::Punct('[')))
        {
            continue;
        }
        let mut depth = 0i32;
        let (mut has_deny, mut has_unwrap, mut has_expect) = (false, false, false);
        for &j in &sig[si + 2..] {
            match tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident => match tokens[j].text(src) {
                    "deny" => has_deny = true,
                    "unwrap_used" => has_unwrap = true,
                    "expect_used" => has_expect = true,
                    _ => {}
                },
                _ => {}
            }
        }
        if has_deny && has_unwrap && has_expect {
            return None;
        }
    }
    Some(Diagnostic {
        rule: "FGH004",
        path: path.to_string(),
        line: 1,
        col: 1,
        len: 1,
        message: "crate root is missing the panic-robustness gate".to_string(),
        help: "add `#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]` \
               at the top of lib.rs",
        snippet: src.lines().next().unwrap_or("").to_string(),
    })
}

/// Finds a marker of `kind` covering `line` and records the use. A marker
/// sitting on the violation's own line wins over one covering it from the
/// line above — otherwise, with trailing markers on consecutive lines, the
/// first marker would claim both violations and the second read as unused.
fn suppressed(markers: &mut [Marker], kind: MarkerKind, line: u32) -> bool {
    let covering = |m: &Marker| m.kind == kind && line >= m.covers.0 && line <= m.covers.1;
    if let Some(m) = markers.iter_mut().find(|m| m.line == line && covering(m)) {
        m.uses += 1;
        return true;
    }
    for m in markers.iter_mut() {
        if covering(m) {
            m.uses += 1;
            return true;
        }
    }
    false
}

/// Extracts `// lint: …` markers and computes their coverage spans.
fn collect_markers(path: &str, src: &str, tokens: &[Token], sig: &[usize]) -> Vec<Marker> {
    let mut markers = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text(src).trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let (kind, tail) = if let Some(t) = rest.strip_prefix("checked-cast") {
            (MarkerKind::CheckedCast, t)
        } else if let Some(t) = rest.strip_prefix("checked-index") {
            (MarkerKind::CheckedIndex, t)
        } else {
            continue;
        };
        let reason = tail
            .trim_start_matches(|c: char| c.is_whitespace() || c == '-' || c == '—' || c == ':')
            .trim()
            .to_string();
        // Default coverage: the marker's own line (trailing comment) and
        // the line below (marker on its own line).
        let mut covers = (tok.line, tok.line + 1);
        // Fn-scope: a checked-index marker directly above an `fn` item
        // covers the whole brace-matched body.
        if kind == MarkerKind::CheckedIndex {
            if let Some(span) = fn_body_span(tokens, sig, src, i) {
                covers = span;
            }
        }
        markers.push(Marker {
            path: path.to_string(),
            line: tok.line,
            kind,
            reason,
            covers,
            uses: 0,
        });
    }
    markers
}

/// If the first significant tokens after `tokens[marker_idx]` introduce a
/// function (`pub`/`unsafe`/… then `fn`), returns the line span of the
/// marker through the function's closing brace.
fn fn_body_span(
    tokens: &[Token],
    sig: &[usize],
    src: &str,
    marker_idx: usize,
) -> Option<(u32, u32)> {
    let after: Vec<usize> = sig.iter().copied().filter(|&j| j > marker_idx).collect();
    // Look for `fn` among the item's leading tokens (qualifiers and the
    // name come before the parameter list opens).
    let mut saw_fn = false;
    let mut k = 0usize;
    while k < after.len() && k < 8 {
        let t = &tokens[after[k]];
        if t.kind == TokenKind::Ident && t.text(src) == "fn" {
            saw_fn = true;
            break;
        }
        // Only qualifiers may precede `fn` in an item header.
        let is_qualifier = matches!(t.kind, TokenKind::Ident if matches!(t.text(src), "pub" | "unsafe" | "const" | "async" | "extern" | "crate"))
            || matches!(
                t.kind,
                TokenKind::Punct('(') | TokenKind::Punct(')') | TokenKind::Str
            );
        if !is_qualifier {
            return None;
        }
        k += 1;
    }
    if !saw_fn {
        return None;
    }
    // The first `{` after `fn` opens the body (generics, parameters, and
    // return types cannot contain a bare `{`); match braces to its close.
    // Bracket/paren depth is tracked too: the `;` of an array type in the
    // signature (`targets: [f64; 2]`) must not read as a body-less fn.
    let mut depth = 0i32;
    let mut nest = 0i32;
    let mut start_line = None;
    for &j in after.iter().skip(k) {
        match tokens[j].kind {
            TokenKind::Punct('{') => {
                if depth == 0 {
                    start_line = Some(tokens[j].line);
                }
                depth += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    let marker_line = tokens[marker_idx].line;
                    return start_line.map(|_| (marker_line, tokens[j].line));
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => nest += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => nest -= 1,
            // A top-level `;` before any `{` means a body-less fn (trait
            // method or extern declaration).
            TokenKind::Punct(';') if depth == 0 && nest == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Byte spans of test-only items: the item following `#[cfg(test)]` or
/// `#[test]` (attributes stack, so intermediate attributes are skipped).
fn test_item_spans(tokens: &[Token], sig: &[usize], src: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut si = 0usize;
    while si < sig.len() {
        if is_test_attr(tokens, sig, src, si) {
            // Skip this and any following attributes, then span the item.
            let mut sj = si;
            while sj < sig.len() && tokens[sig[sj]].kind == TokenKind::Punct('#') {
                sj = skip_attr(tokens, sig, sj);
            }
            if let Some((start, end)) = item_span(tokens, sig, sj) {
                spans.push((start, end));
            }
        }
        si += 1;
    }
    spans
}

/// Is `sig[si]` the `#` of `#[cfg(test)]` or `#[test]`?
fn is_test_attr(tokens: &[Token], sig: &[usize], src: &str, si: usize) -> bool {
    if tokens[sig[si]].kind != TokenKind::Punct('#') {
        return false;
    }
    let idents: Vec<&str> = sig[si..]
        .iter()
        .take(8)
        .map(|&j| tokens[j].text(src))
        .collect();
    matches!(
        idents.as_slice(),
        ["#", "[", "test", "]", ..] | ["#", "[", "cfg", "(", "test", ")", "]", ..]
    )
}

/// Returns the sig index just past the attribute starting at `sig[si]`.
fn skip_attr(tokens: &[Token], sig: &[usize], si: usize) -> usize {
    let mut depth = 0i32;
    for (off, &j) in sig[si..].iter().enumerate() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return si + off + 1;
                }
            }
            _ => {}
        }
    }
    sig.len()
}

/// Byte span of the item starting at `sig[si]`: through the matching `}`
/// of its first open brace, or through a `;` for brace-less items.
fn item_span(tokens: &[Token], sig: &[usize], si: usize) -> Option<(usize, usize)> {
    let start = tokens[*sig.get(si)?].start;
    let mut depth = 0i32;
    for &j in &sig[si..] {
        match tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, tokens[j].end));
                }
            }
            TokenKind::Punct(';') if depth == 0 => return Some((start, tokens[j].end)),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(report: &FileReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn fgh001_flags_narrow_casts_only() {
        let src = "fn f(x: u64) -> u32 { let _ = x as usize; x as u32 }\n";
        let r = lint_file("t.rs", src, false);
        assert_eq!(rules(&r), vec!["FGH001"]);
        assert!(r.diagnostics[0].message.contains("as u32"));
    }

    #[test]
    fn fgh001_marker_same_line_and_above() {
        let src = "fn f(x: u64) -> u32 {\n    // lint: checked-cast — x is a vertex id\n    x as u32\n}\nfn g(x: u64) -> u8 {\n    x as u8 // lint: checked-cast — bounded by caller\n}\n";
        let r = lint_file("t.rs", src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.markers.len(), 2);
        assert!(r.markers.iter().all(|m| m.uses == 1));
        assert_eq!(r.markers[0].reason, "x is a vertex id");
    }

    #[test]
    fn fgh001_ignores_strings_comments_and_tests() {
        let src = "fn f() { let _ = \"x as u8\"; } // y as u8\n#[cfg(test)]\nmod tests {\n    fn g(x: u64) -> u8 { x as u8 }\n}\n";
        let r = lint_file("t.rs", src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn fgh002_flags_debug_assert_false() {
        let src = "fn f() { debug_assert!(false, \"unreachable\"); }\n";
        let r = lint_file("t.rs", src, false);
        assert_eq!(rules(&r), vec!["FGH002"]);
        // Ordinary debug_assert on a condition is fine.
        let ok = lint_file("t.rs", "fn f(x: u32) { debug_assert!(x > 0); }\n", false);
        assert!(rules(&ok).is_empty());
    }

    #[test]
    fn fgh003_only_in_hot_modules() {
        let src = "fn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
        assert!(rules(&lint_file("t.rs", src, false)).is_empty());
        assert_eq!(rules(&lint_file("t.rs", src, true)), vec!["FGH003"]);
    }

    #[test]
    fn fgh003_skips_non_index_brackets() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> [u8; 2] { let v = vec![1, 2]; [v[0], 3] }\n// lint: checked-index — v has 2 elements\n";
        // Only `v[0]` is an index expression; it is on the line above the
        // marker, which does NOT cover upwards — so exactly one finding.
        let r = lint_file("t.rs", src, true);
        assert_eq!(rules(&r), vec!["FGH003"]);
    }

    #[test]
    fn fgh003_fn_scope_marker_covers_body() {
        let src = "// lint: checked-index — all ids are < len by construction\npub fn hot(v: &[u32]) -> u32 {\n    let a = v[0];\n    let b = v[1];\n    a + b\n}\nfn other(v: &[u32]) -> u32 { v[2] }\n";
        let r = lint_file("t.rs", src, true);
        assert_eq!(rules(&r), vec!["FGH003"], "{:?}", r.diagnostics);
        assert_eq!(r.diagnostics[0].line, 7);
        assert_eq!(r.markers[0].uses, 2);
    }

    #[test]
    fn fgh003_fn_scope_survives_array_types_in_signature() {
        // The `;` inside `[f64; 2]` is part of the signature, not a
        // body-less fn terminator: the marker must still cover the body.
        let src = "// lint: checked-index — t is 0/1 into a [u64; 2]\npub fn hot(t: [f64; 2], w: &[u64]) -> u64 {\n    w[t[0] as usize]\n}\n";
        let r = lint_file("t.rs", src, true);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert!(r.markers[0].uses > 0);
    }

    #[test]
    fn consecutive_trailing_markers_each_count() {
        // Each line's own trailing marker claims its violation; the first
        // must not absorb the second line's and leave it "unused".
        let src = "fn f(a: u64, b: u64) -> (u32, u32) {\n    let x = a as u32; // lint: checked-cast — a < 100\n    let y = b as u32; // lint: checked-cast — b < 100\n    (x, y)\n}\n";
        let r = lint_file("t.rs", src, false);
        assert!(rules(&r).is_empty(), "{:?}", r.diagnostics);
        assert!(r.markers.iter().all(|m| m.uses == 1), "{:?}", r.markers);
    }

    #[test]
    fn fgh004_detects_missing_gate() {
        let good = "#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]\npub fn f() {}\n";
        assert!(lint_crate_root("lib.rs", good).is_none());
        let bad = "#![deny(clippy::unwrap_used)]\npub fn f() {}\n";
        assert!(lint_crate_root("lib.rs", bad).is_some());
        assert!(lint_crate_root("lib.rs", "pub fn f() {}\n").is_some());
    }

    #[test]
    fn diagnostic_renders_rustc_style() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n";
        let r = lint_file("crates/x/src/f.rs", src, false);
        let text = r.diagnostics[0].to_string();
        assert!(text.contains("error[FGH001]"), "{text}");
        assert!(text.contains("--> crates/x/src/f.rs:1:25"), "{text}");
        assert!(text.contains("^^^^^^"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }

    #[test]
    fn unused_markers_are_tracked() {
        let src = "// lint: checked-cast — nothing here needs it\nfn f() {}\n";
        let r = lint_file("t.rs", src, false);
        assert_eq!(r.markers.len(), 1);
        assert_eq!(r.markers[0].uses, 0);
    }
}
