//! Property-based tests (proptest) on the library's core invariants, with
//! randomly generated matrices and partitions rather than partitioner
//! outputs — the identities must hold for *every* valid input.

use fine_grain_hypergraph::core::models::{ColumnNetModel, FineGrainModel, RowNetModel};
use fine_grain_hypergraph::core::CommStats;
use fine_grain_hypergraph::prelude::*;
use proptest::prelude::*;

/// Strategy: a random square matrix of order 2..=20 as unique positions.
fn square_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2u32..=20)
        .prop_flat_map(|n| {
            let max_nnz = (n * n) as usize;
            (
                Just(n),
                proptest::collection::btree_set((0..n, 0..n), 1..=max_nnz.min(80)),
            )
        })
        .prop_map(|(n, pos)| {
            let triplets: Vec<(u32, u32, f64)> = pos
                .into_iter()
                .enumerate()
                .map(|(e, (i, j))| (i, j, 1.0 + e as f64))
                .collect();
            CsrMatrix::from_coo(CooMatrix::from_triplets(n, n, triplets).expect("in bounds"))
        })
}

proptest! {
    /// CSR -> CSC -> CSR and CSR -> COO -> CSR round trips are lossless.
    #[test]
    fn format_roundtrips(a in square_matrix()) {
        prop_assert_eq!(&a.to_csc().to_csr(), &a);
        prop_assert_eq!(&CsrMatrix::from_coo(a.to_coo()), &a);
        prop_assert_eq!(&a.transpose().transpose(), &a);
    }

    /// Matrix Market write/read is lossless for any matrix.
    #[test]
    fn matrix_market_roundtrip(a in square_matrix()) {
        let mut buf = Vec::new();
        fine_grain_hypergraph::sparse::io::write_matrix_market_to(&a, &mut buf).unwrap();
        let b = CsrMatrix::from_coo(
            fine_grain_hypergraph::sparse::io::read_matrix_market_from(buf.as_slice()).unwrap(),
        );
        prop_assert_eq!(a, b);
    }

    /// Fine-grain model structure: |V| = Z + dummies, |N| = 2M, every
    /// vertex has degree exactly 2, total pins = 2|V|, total weight = Z.
    #[test]
    fn fine_grain_structure(a in square_matrix()) {
        let m = FineGrainModel::build(&a).unwrap();
        let hg = m.hypergraph();
        prop_assert_eq!(hg.num_vertices() as usize, a.nnz() + m.num_dummy_vertices());
        prop_assert_eq!(hg.num_nets(), 2 * a.nrows());
        prop_assert_eq!(hg.num_pins(), 2 * hg.num_vertices() as usize);
        prop_assert_eq!(hg.total_vertex_weight(), a.nnz() as u64);
        for v in 0..hg.num_vertices() {
            prop_assert_eq!(hg.vertex_degree(v), 2);
        }
        // Consistency condition: v_jj in pins of both nets, for every j.
        for j in 0..a.nrows() {
            let d = m.diag_vertex(j);
            prop_assert!(hg.pins(m.row_net(j)).contains(&d));
            prop_assert!(hg.pins(m.col_net(j)).contains(&d));
        }
    }

    /// THE PAPER'S CENTRAL THEOREM, property-tested: for ANY partition of
    /// the fine-grain hypergraph, the connectivity−1 cutsize equals the
    /// exact communication volume of the decoded decomposition.
    #[test]
    fn fine_grain_cutsize_equals_volume(
        a in square_matrix(),
        k in 2u32..=5,
        seed in 0u64..1000,
    ) {
        let m = FineGrainModel::build(&a).unwrap();
        let hg = m.hypergraph();
        // Random vertex partition.
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts: Vec<u32> = (0..hg.num_vertices())
            .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
            .collect();
        let p = Partition::new(k, parts).unwrap();
        let d = m.decode(&a, &p).unwrap();
        let stats = CommStats::compute(&a, &d).unwrap();
        prop_assert_eq!(cutsize_connectivity(hg, &p), stats.total_volume());
        // And the simulator moves exactly that many words.
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let x = vec![1.0; a.ncols() as usize];
        let (y, comm) = plan.multiply(&x).unwrap();
        prop_assert_eq!(comm.total_words(), stats.total_volume());
        prop_assert_eq!(y, a.spmv(&x).unwrap());
    }

    /// Same identity for the 1D column-net model (expand volume only).
    #[test]
    fn colnet_cutsize_equals_volume(
        a in square_matrix(),
        k in 2u32..=4,
        seed in 0u64..1000,
    ) {
        let m = ColumnNetModel::build(&a).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts: Vec<u32> = (0..a.nrows())
            .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
            .collect();
        let p = Partition::new(k, parts).unwrap();
        let d = m.decode(&a, &p).unwrap();
        let stats = CommStats::compute(&a, &d).unwrap();
        prop_assert_eq!(stats.fold_volume, 0);
        prop_assert_eq!(cutsize_connectivity(m.hypergraph(), &p), stats.total_volume());
    }

    /// And the row-net model (fold volume only).
    #[test]
    fn rownet_cutsize_equals_volume(
        a in square_matrix(),
        k in 2u32..=4,
        seed in 0u64..1000,
    ) {
        let m = RowNetModel::build(&a).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let parts: Vec<u32> = (0..a.nrows())
            .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
            .collect();
        let p = Partition::new(k, parts).unwrap();
        let d = m.decode(&a, &p).unwrap();
        let stats = CommStats::compute(&a, &d).unwrap();
        prop_assert_eq!(stats.expand_volume, 0);
        prop_assert_eq!(cutsize_connectivity(m.hypergraph(), &p), stats.total_volume());
    }

    /// The partitioner always returns valid, reasonably balanced
    /// partitions whose reported cutsize matches a recomputation.
    #[test]
    fn partitioner_postconditions(
        a in square_matrix(),
        k in 1u32..=4,
        seed in 0u64..100,
    ) {
        let m = FineGrainModel::build(&a).unwrap();
        let r = partition_hypergraph(m.hypergraph(), k, &PartitionConfig::with_seed(seed)).unwrap();
        prop_assert_eq!(r.partition.k(), k);
        prop_assert_eq!(r.partition.len(), m.hypergraph().num_vertices() as usize);
        prop_assert_eq!(r.cutsize, cutsize_connectivity(m.hypergraph(), &r.partition));
        // Decoding never fails (consistency condition holds by construction).
        let d = m.decode(&a, &r.partition).unwrap();
        d.validate(&a).unwrap();
    }

    /// Distributed SpMV is numerically exact for arbitrary decompositions
    /// and input vectors.
    #[test]
    fn spmv_exactness(
        a in square_matrix(),
        k in 1u32..=4,
        seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nz: Vec<u32> = (0..a.nnz()).map(|_| rand::Rng::gen_range(&mut rng, 0..k)).collect();
        let vo: Vec<u32> = (0..a.nrows()).map(|_| rand::Rng::gen_range(&mut rng, 0..k)).collect();
        let d = Decomposition::general(&a, k, nz, vo).unwrap();
        let plan = DistributedSpmv::build(&a, &d).unwrap();
        let x: Vec<f64> = (0..a.ncols())
            .map(|_| rand::Rng::gen_range(&mut rng, -10.0..10.0))
            .collect();
        let (y, _) = plan.multiply(&x).unwrap();
        let y_serial = a.spmv(&x).unwrap();
        for (yp, ys) in y.iter().zip(&y_serial) {
            prop_assert!((yp - ys).abs() <= 1e-9 * ys.abs().max(1.0));
        }
    }

    /// Coarsening invariant: for ANY partition of the coarse hypergraph,
    /// its connectivity−1 cutsize equals the cutsize of the projected
    /// fine partition (merged identical nets carry summed costs; dropped
    /// single-pin nets can never be cut).
    #[test]
    fn coarsening_preserves_projected_cutsize(
        a in square_matrix(),
        seed in 0u64..500,
        k in 2u32..=4,
    ) {
        use fine_grain_hypergraph::partition::coarsen::{coarsen_once, FREE};
        use fine_grain_hypergraph::partition::CoarseningScheme;
        let m = FineGrainModel::build(&a).unwrap();
        let hg = m.hypergraph();
        let fixed = vec![FREE; hg.num_vertices() as usize];
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Some(level) = coarsen_once(
            hg,
            &fixed,
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight().max(1),
            &mut rng,
        ) {
            // Total weight preserved.
            prop_assert_eq!(level.coarse.total_vertex_weight(), hg.total_vertex_weight());
            // Random coarse partition -> projected fine partition.
            let coarse_parts: Vec<u32> = (0..level.coarse.num_vertices())
                .map(|_| rand::Rng::gen_range(&mut rng, 0..k))
                .collect();
            let pc = Partition::new(k, coarse_parts).unwrap();
            let fine_parts: Vec<u32> = (0..hg.num_vertices())
                .map(|v| pc.part(level.map[v as usize]))
                .collect();
            let pf = Partition::new(k, fine_parts).unwrap();
            prop_assert_eq!(
                cutsize_connectivity(&level.coarse, &pc),
                cutsize_connectivity(hg, &pf)
            );
        }
    }

    /// Symmetric partitioning invariant: the decoded x-owner and y-owner
    /// coincide for every index (conformal vectors).
    #[test]
    fn symmetric_partitioning(a in square_matrix(), seed in 0u64..100) {
        let m = FineGrainModel::build(&a).unwrap();
        let r = partition_hypergraph(m.hypergraph(), 3, &PartitionConfig::with_seed(seed)).unwrap();
        let d = m.decode(&a, &r.partition).unwrap();
        // Decomposition stores a single vec_owner used for both x and y —
        // assert it matches part[v_jj] on both nets' connectivity sets.
        for j in 0..a.nrows() {
            prop_assert_eq!(d.vec_owner[j as usize], r.partition.part(m.diag_vertex(j)));
        }
    }
}
