//! Integration tests for the extension layer: round scheduling, machine
//! cost model, reordering invariance, multi-constraint partitioning, and
//! the full 2D model taxonomy playing together.

use fine_grain_hypergraph::core::models::{CheckerboardHgModel, JaggedModel, MondriaanModel};
use fine_grain_hypergraph::core::CommStats;
use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::sparse::catalog;
use fine_grain_hypergraph::sparse::reorder::{permute_symmetric, rcm_order};
use fine_grain_hypergraph::spmv::schedule::SpmvSchedule;
use fine_grain_hypergraph::spmv::{estimate, MachineModel};

/// Round schedules are valid and consistent with message counts for every
/// model on a catalog analogue.
#[test]
fn schedules_cover_all_messages() {
    let a = catalog::by_name("nl")
        .expect("catalog")
        .generate_scaled(32, 1);
    for model in [Model::Graph1D, Model::FineGrain2D, Model::Checkerboard2D] {
        let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 8))
            .and_then(WorkloadOutcome::into_spmv)
            .expect("ok");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        let sch = SpmvSchedule::build(&plan);
        let scheduled: usize = sch.expand.rounds.iter().map(|r| r.len()).sum::<usize>()
            + sch.fold.rounds.iter().map(|r| r.len()).sum::<usize>();
        assert_eq!(
            scheduled as u64,
            out.stats.total_messages(),
            "{}: every message scheduled exactly once",
            model.name()
        );
        // Round count at least the max per-processor message count.
        assert!(
            sch.total_rounds() as u64 >= out.stats.max_messages_per_proc(),
            "{}",
            model.name()
        );
    }
}

/// The cost model ranks a volume-heavy decomposition worse on a
/// bandwidth-bound machine and a message-heavy one worse on a
/// latency-bound machine.
#[test]
fn cost_model_tradeoff_direction() {
    let a = catalog::by_name("ken-11")
        .expect("catalog")
        .generate_scaled(16, 2);
    let fg = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 8),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    let cb = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::Checkerboard2D, 8),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    // Sanity preconditions for this instance: fg has less volume, more msgs.
    assert!(fg.stats.total_volume() < cb.stats.total_volume());
    assert!(fg.stats.total_messages() > cb.stats.total_messages());

    let plan_fg = DistributedSpmv::build(&a, &fg.decomposition).expect("plan");
    let plan_cb = DistributedSpmv::build(&a, &cb.decomposition).expect("plan");

    // Latency-dominated: the message-light checkerboard should not lose
    // badly; specifically its communication time advantage must be larger
    // (or its disadvantage smaller) than on a pure-bandwidth machine.
    let lat = MachineModel {
        alpha: 1e-3,
        beta: 1e-9,
        gamma: 1e-12,
    };
    let bw = MachineModel {
        alpha: 1e-12,
        beta: 1e-6,
        gamma: 1e-12,
    };
    let t = |p: &DistributedSpmv, m: &MachineModel| {
        let e = estimate(p, m);
        e.t_expand + e.t_fold
    };
    let ratio_lat = t(&plan_fg, &lat) / t(&plan_cb, &lat);
    let ratio_bw = t(&plan_fg, &bw) / t(&plan_cb, &bw);
    assert!(
        ratio_lat > ratio_bw,
        "fine-grain should look relatively worse on the latency-bound machine \
         (lat ratio {ratio_lat:.3} vs bw ratio {ratio_bw:.3})"
    );
}

/// Hypergraph decomposition volume is invariant (statistically) under
/// symmetric permutation, while the executed SpMV stays numerically
/// correct on the permuted system.
#[test]
fn reordering_pipeline() {
    let a = catalog::by_name("bcspwr10")
        .expect("catalog")
        .generate_scaled(16, 3);
    let order = rcm_order(&a).expect("square");
    let b = permute_symmetric(&a, &order).expect("bijection");
    assert_eq!(a.nnz(), b.nnz());

    let oa = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 4),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    let ob = decompose_workload(
        Workload::Spmv(&b),
        &DecomposeConfig::new(Model::FineGrain2D, 4),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    // Identical structure, so volumes should be close (partitioner
    // randomness aside) — generous 2x band.
    let (va, vb) = (
        oa.stats.total_volume() as f64,
        ob.stats.total_volume() as f64,
    );
    assert!(
        va <= 2.0 * vb && vb <= 2.0 * va,
        "volumes {va} vs {vb} diverged"
    );

    let plan = DistributedSpmv::build(&b, &ob.decomposition).expect("plan");
    let x: Vec<f64> = (0..b.ncols()).map(|j| 1.0 + (j % 5) as f64).collect();
    let (y, _) = plan.multiply(&x).expect("dims");
    assert_eq!(y, b.spmv(&x).expect("dims"));
}

/// All four 2D models produce valid decompositions whose SpMV executes
/// correctly, and their Cartesian/stripe structures differ as designed.
#[test]
fn two_dimensional_taxonomy() {
    let a = catalog::by_name("cq9")
        .expect("catalog")
        .generate_scaled(32, 4);
    let x: Vec<f64> = (0..a.ncols())
        .map(|j| (j as f64 * 0.01).exp() % 3.0)
        .collect();
    let y_serial = a.spmv(&x).expect("dims");

    let pcfg = PartitionConfig::with_seed(2);
    let decomps = vec![
        (
            "jagged",
            JaggedModel::new(4, 0.1)
                .unwrap()
                .decompose(&a, &pcfg)
                .unwrap(),
        ),
        (
            "mondriaan",
            MondriaanModel::new(4, 0.1).decompose(&a, &pcfg).unwrap(),
        ),
        (
            "checkerboard-hg",
            CheckerboardHgModel::new(4, 0.25)
                .unwrap()
                .decompose(&a, &pcfg)
                .unwrap(),
        ),
    ];
    for (name, d) in &decomps {
        d.validate(&a).expect("valid");
        let s = CommStats::compute(&a, d).expect("stats");
        let plan = DistributedSpmv::build(&a, d).expect("plan");
        let (y, comm) = plan.multiply(&x).expect("dims");
        assert_eq!(comm.total_words(), s.total_volume(), "{name}");
        for (yp, ys) in y.iter().zip(&y_serial) {
            assert!((yp - ys).abs() <= 1e-9 * ys.abs().max(1.0), "{name}");
        }
    }
}

/// Multi-constraint partitioning balances anti-correlated constraints
/// that a plain partitioner ignores.
#[test]
fn multiconstraint_on_fine_grain_stripes() {
    use fine_grain_hypergraph::partition::multiconstraint::{
        partition_multiconstraint, MultiWeights,
    };
    let a = catalog::by_name("sherman3")
        .expect("catalog")
        .generate_scaled(16, 5);
    let m = fine_grain_hypergraph::core::models::ColumnNetModel::build(&a).expect("square");
    let hg = m.hypergraph();
    // Two constraints: nonzeros in the left half vs right half of the row.
    let n = a.nrows();
    let mut flat = Vec::with_capacity(2 * n as usize);
    for i in 0..n {
        let left = a.row_cols(i).iter().filter(|&&j| j < n / 2).count() as u32;
        let right = a.row_nnz(i) as u32 - left;
        flat.push(left);
        flat.push(right);
    }
    let w = MultiWeights::new(2, flat);
    let r = partition_multiconstraint(hg, &w, 4, 0.25, 1, 4).expect("ok");
    assert!(
        r.worst_imbalance_percent <= 30.0,
        "both constraints balanced, worst {}%",
        r.worst_imbalance_percent
    );
    r.partition.validate(hg, true).expect("valid");
}
