//! End-to-end integration tests across all crates: catalog matrix →
//! model → partitioner → decode → exact metrics → executed SpMV, checking
//! the paper's identities at every joint.

use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::sparse::catalog;
use fine_grain_hypergraph::spmv::parallel::parallel_spmv;

const TEST_SCALE: u32 = 32;

fn models() -> [Model; 4] {
    [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::Hypergraph1DRowNet,
        Model::FineGrain2D,
    ]
}

/// The whole catalog, every model, K = 4: valid decomposition, balanced
/// load, exact volume identity for hypergraph models, numerically correct
/// distributed SpMV with exactly the predicted traffic.
#[test]
fn full_catalog_pipeline() {
    for entry in catalog::catalog() {
        let a = entry.generate_scaled(TEST_SCALE, 1);
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 + (j % 13) as f64).collect();
        let y_serial = a.spmv(&x).expect("dims");
        for model in models() {
            let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 4))
                .and_then(WorkloadOutcome::into_spmv)
                .unwrap_or_else(|e| panic!("{} {}: {e}", entry.name, model.name()));
            out.decomposition.validate(&a).expect("valid decomposition");
            assert!(
                out.stats.load_imbalance_percent() <= 12.0,
                "{} {}: imbalance {:.1}%",
                entry.name,
                model.name(),
                out.stats.load_imbalance_percent()
            );
            if model != Model::Graph1D {
                assert_eq!(
                    out.objective,
                    out.stats.total_volume(),
                    "{} {}: cutsize must equal decoded volume",
                    entry.name,
                    model.name()
                );
            }
            let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
            let (y, comm) = plan.multiply(&x).expect("dims");
            assert_eq!(
                comm.total_words(),
                out.stats.total_volume(),
                "{} {}: executed words != modeled volume",
                entry.name,
                model.name()
            );
            for (yp, ys) in y.iter().zip(&y_serial) {
                assert!(
                    (yp - ys).abs() <= 1e-9 * ys.abs().max(1.0),
                    "{} {}: numeric mismatch",
                    entry.name,
                    model.name()
                );
            }
        }
    }
}

/// The threaded executor agrees with the simulator on a few instances.
#[test]
fn threaded_executor_agrees_with_simulator() {
    for name in ["sherman3", "cq9", "finan512"] {
        let a = catalog::by_name(name)
            .expect("catalog")
            .generate_scaled(TEST_SCALE, 2);
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 6),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .expect("ok");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        let x: Vec<f64> = (0..a.ncols()).map(|j| (j as f64 * 0.37).cos()).collect();
        let (y_sim, m_sim) = plan.multiply(&x).expect("dims");
        let (y_par, m_par) = parallel_spmv(&plan, &x).expect("dims");
        assert_eq!(m_sim, m_par, "{name}: traffic mismatch");
        for (a_, b_) in y_sim.iter().zip(&y_par) {
            assert!((a_ - b_).abs() < 1e-12, "{name}: value mismatch");
        }
    }
}

/// Paper protocol sanity at reduced scale: on average over the catalog,
/// the fine-grain model beats the graph model on total volume, and the 1D
/// hypergraph model sits in between (Table 2's ordering).
#[test]
fn table2_ordering_holds_on_average() {
    let mut vol = [0.0f64; 3]; // graph, hg1d, fg2d
    for entry in catalog::catalog() {
        let a = entry.generate_scaled(TEST_SCALE, 3);
        for (i, model) in [
            Model::Graph1D,
            Model::Hypergraph1DColNet,
            Model::FineGrain2D,
        ]
        .iter()
        .enumerate()
        {
            let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(*model, 8))
                .and_then(WorkloadOutcome::into_spmv)
                .expect("ok");
            vol[i] += out.stats.scaled_total_volume();
        }
    }
    assert!(
        vol[2] < vol[0],
        "fine-grain ({:.2}) must beat the graph model ({:.2}) on average",
        vol[2],
        vol[0]
    );
    assert!(
        vol[2] < vol[1] * 1.05,
        "fine-grain ({:.2}) must not lose to the 1D hypergraph model ({:.2})",
        vol[2],
        vol[1]
    );
}

/// Message-count bounds of Section 4: per-processor sent messages are at
/// most K−1 for 1D models and 2(K−1) for the fine-grain model.
#[test]
fn message_bounds() {
    let a = catalog::by_name("nl")
        .expect("catalog")
        .generate_scaled(TEST_SCALE, 4);
    let k = 8u32;
    for model in models() {
        let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, k))
            .and_then(WorkloadOutcome::into_spmv)
            .expect("ok");
        let bound = match model {
            Model::FineGrain2D => 2 * (k as u64 - 1),
            _ => k as u64 - 1,
        };
        assert!(
            out.stats.max_messages_per_proc() <= bound,
            "{}: {} messages exceeds bound {bound}",
            model.name(),
            out.stats.max_messages_per_proc()
        );
    }
}

/// Matrix Market round trip feeding the pipeline: write, read, decompose,
/// identical results.
#[test]
fn matrix_market_roundtrip_through_pipeline() {
    let a = catalog::by_name("sherman3")
        .expect("catalog")
        .generate_scaled(64, 5);
    let mut buf = Vec::new();
    fine_grain_hypergraph::sparse::io::write_matrix_market_to(&a, &mut buf).expect("write");
    let b = CsrMatrix::from_coo(
        fine_grain_hypergraph::sparse::io::read_matrix_market_from(buf.as_slice()).expect("read"),
    );
    assert_eq!(a, b);
    let cfg = DecomposeConfig::new(Model::FineGrain2D, 4);
    let oa = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .expect("ok");
    let ob = decompose_workload(Workload::Spmv(&b), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .expect("ok");
    assert_eq!(
        oa.decomposition, ob.decomposition,
        "pipeline must be deterministic"
    );
}

/// Whole-pipeline determinism: same seed, same decomposition; different
/// seed, (almost surely) different cutsize or mapping.
#[test]
fn pipeline_determinism() {
    let a = catalog::by_name("cre-d")
        .expect("catalog")
        .generate_scaled(TEST_SCALE, 6);
    let cfg = DecomposeConfig {
        seed: 17,
        ..DecomposeConfig::new(Model::FineGrain2D, 8)
    };
    let r1 = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .expect("ok");
    let r2 = decompose_workload(Workload::Spmv(&a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .expect("ok");
    assert_eq!(r1.decomposition, r2.decomposition);
    assert_eq!(r1.objective, r2.objective);
}

/// The extension models (checkerboard, Mondriaan) run the same pipeline:
/// valid decompositions, objective == decoded volume, exact executed
/// traffic, correct numerics.
#[test]
fn extension_models_pipeline() {
    for name in ["bcspwr10", "cq9"] {
        let a = catalog::by_name(name)
            .expect("catalog")
            .generate_scaled(TEST_SCALE, 7);
        let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 + (j % 7) as f64).collect();
        let y_serial = a.spmv(&x).expect("dims");
        for model in [Model::Checkerboard2D, Model::Mondriaan2D, Model::Jagged2D] {
            let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 6))
                .and_then(WorkloadOutcome::into_spmv)
                .unwrap_or_else(|e| panic!("{name} {}: {e}", model.name()));
            out.decomposition.validate(&a).expect("valid");
            assert_eq!(
                out.objective,
                out.stats.total_volume(),
                "{name} {}",
                model.name()
            );
            let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
            let (y, comm) = plan.multiply(&x).expect("dims");
            assert_eq!(comm.total_words(), out.stats.total_volume());
            for (yp, ys) in y.iter().zip(&y_serial) {
                assert!((yp - ys).abs() <= 1e-9 * ys.abs().max(1.0));
            }
        }
    }
}

/// Transpose SpMV is numerically exact and costs the same traffic as the
/// forward multiply across the whole catalog (symmetric partitioning).
#[test]
fn transpose_spmv_catalog() {
    for name in ["ken-11", "world"] {
        let a = catalog::by_name(name)
            .expect("catalog")
            .generate_scaled(TEST_SCALE, 9);
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, 5),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .expect("ok");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        let x: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 13) % 17) as f64 - 8.0)
            .collect();
        let (yt, mt) = plan.multiply_transpose(&x).expect("dims");
        let yt_serial = a.transpose().spmv(&x).expect("dims");
        for (a_, b_) in yt.iter().zip(&yt_serial) {
            assert!((a_ - b_).abs() <= 1e-9 * b_.abs().max(1.0), "{name}");
        }
        let (_, mf) = plan.multiply(&x).expect("dims");
        assert_eq!(
            mf.total_words(),
            mt.total_words(),
            "{name}: Ax and Aᵀx volumes differ"
        );
    }
}

/// K exceeding the matrix order must not panic anywhere in the pipeline.
#[test]
fn degenerate_k_larger_than_matrix() {
    let a = CsrMatrix::identity(6);
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 16),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    out.decomposition.validate(&a).expect("valid");
    let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
    let (y, _) = plan.multiply(&[1.0; 6]).expect("dims");
    assert_eq!(y, vec![1.0; 6]);
}
