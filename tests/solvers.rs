//! Integration tests of the iterative solvers across decomposition models
//! and catalog matrices: CG and CGNR converge to the true solution under
//! every model's distribution, and their communication totals equal
//! iterations x per-SpMV volume.

use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::sparse::catalog;
use fine_grain_hypergraph::spmv::solver::{cgnr, conjugate_gradient, power_iteration};

/// CG on an SPD catalog analogue converges for every model's distribution
/// and every model reports comm = iterations * volume (CG does one SpMV
/// per iteration).
#[test]
fn cg_across_models() {
    // Laplacian-valued analogues are SPD.
    let a = catalog::by_name("sherman3")
        .expect("catalog")
        .generate_scaled(16, 1);
    let n = a.nrows() as usize;
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
    let b = a.spmv(&x_true).expect("dims");
    for model in [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::FineGrain2D,
        Model::Jagged2D,
    ] {
        let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, 4))
            .and_then(WorkloadOutcome::into_spmv)
            .expect("ok");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        let sol = conjugate_gradient(&plan, &b, 1e-10, 10 * n).expect("SPD converges");
        let err = sol
            .x
            .iter()
            .zip(&x_true)
            .map(|(s, t)| (s - t).abs())
            .fold(0.0f64, f64::max);
        assert!(err < 1e-6, "{}: error {err}", model.name());
        assert_eq!(
            sol.comm.total_words(),
            out.stats.total_volume() * sol.iterations as u64,
            "{}: comm accounting",
            model.name()
        );
    }
}

/// CGNR solves a nonsymmetric system (two SpMVs per iteration plus the
/// initial residual transform).
#[test]
fn cgnr_nonsymmetric_catalog() {
    // Take a symmetric analogue and skew it: keep upper triangle values,
    // scale lower triangle — still diagonally dominant, no longer
    // symmetric.
    let base = catalog::by_name("bcspwr10")
        .expect("catalog")
        .generate_scaled(32, 2);
    let mut coo = CooMatrix::new(base.nrows(), base.ncols());
    for (i, j, v) in base.iter() {
        let w = if i > j { v * 0.25 } else { v };
        coo.push(i, j, w).expect("in bounds");
    }
    let a = CsrMatrix::from_coo(coo);
    assert!(!a.numerically_symmetric(1e-12));

    let n = a.nrows() as usize;
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 4) as f64) - 1.5).collect();
    let b = a.spmv(&x_true).expect("dims");
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, 4),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
    let sol = cgnr(&plan, &b, 1e-12, 50 * n).expect("converges");
    let err = sol
        .x
        .iter()
        .zip(&x_true)
        .map(|(s, t)| (s - t).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-5, "error {err}");
}

/// Power iteration's eigenpair satisfies the residual test on a catalog
/// analogue with a dominant hub.
#[test]
fn power_iteration_catalog() {
    let a = catalog::by_name("cre-b")
        .expect("catalog")
        .generate_scaled(32, 3);
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::Hypergraph1DColNet, 4),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("ok");
    let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
    let sol = power_iteration(&plan, 400).expect("runs");
    let ax = a.spmv(&sol.x).expect("dims");
    let resid = ax
        .iter()
        .zip(&sol.x)
        .map(|(axi, xi)| (axi - sol.scalar * xi).abs())
        .fold(0.0f64, f64::max);
    assert!(
        resid / sol.scalar.abs().max(1.0) < 5e-2,
        "residual {resid}, lambda {}",
        sol.scalar
    );
}
