//! # fine-grain-hypergraph
//!
//! A complete Rust implementation of **"A Fine-Grain Hypergraph Model for
//! 2D Decomposition of Sparse Matrices"** (Çatalyürek & Aykanat,
//! IPPS/IPDPS 2001), including every substrate the paper relies on:
//!
//! * [`sparse`] — sparse matrices (COO/CSR/CSC), Matrix Market I/O,
//!   synthetic generators and the Table-1 matrix catalog,
//! * [`hypergraph`] — hypergraphs, partitions, cutsize metrics,
//! * [`partition`] — a PaToH-style multilevel hypergraph partitioner,
//! * [`graph`] — a MeTiS-style multilevel graph partitioner (baseline),
//! * [`core`] — the decomposition models (fine-grain 2D, 1D column/row-net,
//!   standard graph), partition decoding, exact communication statistics,
//! * [`spmv`] — distributed SpMV (word-counting simulator + threaded
//!   executor) and iterative solvers.
//!
//! ## Quickstart
//!
//! ```
//! use fine_grain_hypergraph::prelude::*;
//!
//! // A small SPD test matrix (5-point stencil on an 8x8 grid).
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let a = fgh_sparse::gen::grid5(8, 8, 1.0, ValueMode::Laplacian, &mut rng);
//!
//! // 2D fine-grain decomposition of the SpMV workload for 4 processors.
//! let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(Model::FineGrain2D, 4))
//!     .and_then(WorkloadOutcome::into_spmv)
//!     .unwrap();
//! assert_eq!(out.objective, out.stats.total_volume()); // exact volume model
//!
//! // Run the distributed SpMV and check it against the serial kernel.
//! let plan = DistributedSpmv::build(&a, &out.decomposition).unwrap();
//! let x = vec![1.0; a.ncols() as usize];
//! let (y, comm) = plan.multiply(&x).unwrap();
//! assert_eq!(comm.total_words(), out.stats.total_volume());
//! assert_eq!(y, a.spmv(&x).unwrap());
//! ```

pub use fgh_core as core;
pub use fgh_graph as graph;
pub use fgh_hypergraph as hypergraph;
pub use fgh_partition as partition;
pub use fgh_sparse as sparse;
pub use fgh_spmv as spmv;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    #[allow(deprecated)] // re-exported through its one deprecation cycle
    pub use fgh_core::decompose;
    pub use fgh_core::{
        decompose_workload, decompose_workload_any, Budget, CommStats, DecomposeConfig,
        Decomposition, DecompositionOutcome, DecompositionStatus, EngineStats, ErrorCategory,
        FghError, Model, SpgemmOutcome, Workload, WorkloadAny, WorkloadKind, WorkloadOutcome,
    };
    pub use fgh_hypergraph::{
        cutsize_connectivity, cutsize_cutnet, Hypergraph, HypergraphBuilder, Partition,
    };
    pub use fgh_partition::{partition_hypergraph, partition_hypergraph_best, PartitionConfig};
    pub use fgh_sparse::gen::ValueMode;
    pub use fgh_sparse::{CooMatrix, CscMatrix, CsrMatrix, MatrixStats};
    pub use fgh_spmv::{DistributedSpmv, MeasuredComm};
    pub use rand::rngs::SmallRng;
    pub use rand::SeedableRng;
}
