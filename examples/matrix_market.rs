//! File-based workflow: write a matrix to Matrix Market format, read it
//! back, reorder it with reverse Cuthill–McKee, and show that hypergraph
//! decomposition quality is *permutation invariant* (the model sees the
//! same structure under any symmetric reordering) while the checkerboard
//! baseline is strongly ordering-dependent.
//!
//!     cargo run --release --example matrix_market

use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::sparse::reorder::{bandwidth, permute_symmetric, rcm_order};
use rand::seq::SliceRandom;

fn volume(a: &CsrMatrix, model: Model, k: u32, seed: u64) -> u64 {
    let cfg = DecomposeConfig {
        seed,
        ..DecomposeConfig::new(model, k)
    };
    decompose_workload(Workload::Spmv(a), &cfg)
        .and_then(WorkloadOutcome::into_spmv)
        .expect("decompose")
        .stats
        .total_volume()
}

fn main() {
    let dir = std::env::temp_dir().join("fgh_example_mm");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // A banded SPD matrix, scrambled so its structure is hidden.
    let mut rng = SmallRng::seed_from_u64(5);
    let banded =
        fine_grain_hypergraph::sparse::gen::banded(600, 4, 0.9, ValueMode::Laplacian, &mut rng);
    let mut shuffle: Vec<u32> = (0..600).collect();
    shuffle.shuffle(&mut rng);
    let scrambled = permute_symmetric(&banded, &shuffle).expect("bijection");

    // Round-trip through a .mtx file.
    let path = dir.join("scrambled.mtx");
    fine_grain_hypergraph::sparse::io::write_matrix_market(&scrambled, &path).expect("write");
    let loaded = CsrMatrix::from_coo(
        fine_grain_hypergraph::sparse::io::read_matrix_market(&path).expect("read"),
    );
    assert_eq!(loaded, scrambled);
    println!(
        "wrote + re-read {} ({} nonzeros): identical",
        path.display(),
        loaded.nnz()
    );

    // RCM restores the band.
    let order = rcm_order(&loaded).expect("square");
    let restored = permute_symmetric(&loaded, &order).expect("bijection");
    println!(
        "bandwidth: original {} -> scrambled {} -> RCM {}",
        bandwidth(&banded),
        bandwidth(&loaded),
        bandwidth(&restored)
    );

    // Decomposition quality under reordering, K = 8.
    let k = 8;
    println!();
    println!("{:<22} {:>12} {:>12}", "model", "scrambled", "RCM-ordered");
    for model in [Model::FineGrain2D, Model::Checkerboard2D] {
        let v_scr = volume(&loaded, model, k, 1);
        let v_rcm = volume(&restored, model, k, 1);
        println!("{:<22} {:>12} {:>12}", model.name(), v_scr, v_rcm);
    }
    println!();
    println!("the hypergraph model's volume barely moves under reordering (it sees");
    println!("the same connectivity), while the block checkerboard collapses only");
    println!("after RCM reveals the band -- ordering sensitivity the paper's model");
    println!("does not suffer from.");
}
