//! Parallel conjugate-gradient solve — the iterative-solver workload that
//! motivates the paper. Repeated `y = Ax` on the decomposed matrix; all
//! vector operations are conformal (symmetric x/y partitioning), so the
//! only communication is the per-iteration expand/fold.
//!
//!     cargo run --release --example cg_solver

use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::spmv::solver::conjugate_gradient;

fn main() {
    // SPD system: Laplacian-valued 5-point stencil (diagonally dominant).
    let mut rng = SmallRng::seed_from_u64(3);
    let a = fine_grain_hypergraph::sparse::gen::grid5(40, 40, 1.0, ValueMode::Laplacian, &mut rng);
    let n = a.nrows() as usize;
    println!("SPD system: {} unknowns, {} nonzeros", n, a.nnz());

    // Manufactured solution -> right-hand side.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
    let b = a.spmv(&x_true).expect("dims");

    println!();
    println!(
        "{:>3} {:>12} {:>10} {:>14} {:>14}",
        "K", "iterations", "residual", "words moved", "words/iter"
    );
    for k in [1u32, 4, 16] {
        let out = decompose_workload(
            Workload::Spmv(&a),
            &DecomposeConfig::new(Model::FineGrain2D, k),
        )
        .and_then(WorkloadOutcome::into_spmv)
        .expect("decompose");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        let sol = conjugate_gradient(&plan, &b, 1e-10, 10 * n).expect("SPD system converges");

        // Verify against the true solution.
        let max_err = sol
            .x
            .iter()
            .zip(&x_true)
            .map(|(xs, xt)| (xs - xt).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-6, "CG solution error {max_err}");

        println!(
            "{:>3} {:>12} {:>10.2e} {:>14} {:>14.1}",
            k,
            sol.iterations,
            sol.scalar,
            sol.comm.total_words(),
            sol.comm.total_words() as f64 / sol.iterations.max(1) as f64,
        );
    }

    println!();
    println!("words/iter is exactly the decomposition's communication volume -- the");
    println!("quantity the fine-grain model minimizes; it is paid once per CG iteration.");
}
