//! Decomposing a general reduction problem (paper §1, §3): the fine-grain
//! model is not SpMV-specific — any computation whose atomic tasks read
//! input elements and accumulate into output elements fits.
//!
//! This example decomposes a synthetic map-reduce-style histogram
//! aggregation: tasks read record blocks (inputs) and add into buckets
//! (outputs), with some buckets *pre-assigned* to processors (e.g. pinned
//! to the nodes that must publish them) — exercising the paper's fixed
//! part-vertex mechanism.
//!
//!     cargo run --release --example reduction

use fine_grain_hypergraph::core::reduction::{ReductionProblem, Task, UNASSIGNED};
use fine_grain_hypergraph::prelude::*;
use rand::Rng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);

    // 600 tasks over 150 input blocks and 60 output buckets. Each task
    // reads 2-4 blocks (with locality) and feeds 1-2 buckets.
    let num_inputs = 150u32;
    let num_outputs = 60u32;
    let tasks: Vec<Task> = (0..600)
        .map(|t| {
            let base = t * num_inputs / 600;
            let n_in = rng.gen_range(2..=4usize);
            let inputs: Vec<u32> = (0..n_in)
                .map(|_| (base + rng.gen_range(0..8)) % num_inputs)
                .collect();
            let mut inputs = inputs;
            inputs.sort_unstable();
            inputs.dedup();
            let n_out = rng.gen_range(1..=2usize);
            let outputs: Vec<u32> = {
                let mut o: Vec<u32> = (0..n_out).map(|_| rng.gen_range(0..num_outputs)).collect();
                o.sort_unstable();
                o.dedup();
                o
            };
            Task {
                inputs,
                outputs,
                weight: 1,
            }
        })
        .collect();

    let mut problem = ReductionProblem::new(num_inputs, num_outputs, tasks);

    // Pin the first 8 buckets round-robin to processors 0..4 (they must be
    // published from those nodes).
    let k = 4u32;
    for o in 0..8u32 {
        problem.output_owner[o as usize] = o % k;
    }

    let d = problem
        .decompose(k, &PartitionConfig::with_seed(5))
        .expect("valid problem");

    println!("reduction decomposition over K = {k} processors");
    let mut per_part = vec![0usize; k as usize];
    for &o in &d.task_owner {
        per_part[o as usize] += 1;
    }
    println!(
        "  tasks per processor: {per_part:?} (imbalance {:.2}%)",
        d.imbalance_percent
    );
    println!(
        "  expand volume (input distribution): {} words",
        d.expand_volume
    );
    println!(
        "  fold volume (output accumulation):  {} words",
        d.fold_volume
    );

    // Pre-assigned buckets kept their pinned owners.
    for o in 0..8u32 {
        assert_eq!(d.output_owner[o as usize], o % k, "pinned bucket moved");
    }
    println!("  pinned buckets respected: OK");

    // Free elements always land on a processor that touches them.
    let free_inputs = problem
        .input_owner
        .iter()
        .filter(|&&p| p == UNASSIGNED)
        .count();
    println!("  {free_inputs}/{num_inputs} inputs were free; each placed on a using processor");
}
