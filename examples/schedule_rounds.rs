//! Communication-round scheduling per model: under a single-port network
//! each processor exchanges one message per round, so the number of
//! rounds — not just the volume — bounds completion time. This example
//! schedules both phases of one SpMV for every model and compares round
//! counts against the theoretical bounds (K−1 per phase).
//!
//!     cargo run --release --example schedule_rounds [matrix-name] [K]

use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::spmv::schedule::SpmvSchedule;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "world".to_string());
    let k: u32 = args
        .next()
        .map(|s| s.parse().expect("K must be an integer"))
        .unwrap_or(16);

    let entry = fine_grain_hypergraph::sparse::catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown matrix {name:?}"));
    let a = entry.generate_scaled(8, 11);
    println!(
        "{} analogue: {} rows, {} nonzeros, K = {k} (single-port model)\n",
        entry.name,
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<22} {:>8} {:>14} {:>14} {:>12} {:>10}",
        "model", "volume", "expand rounds", "fold rounds", "total", "optimal?"
    );
    println!("{}", "-".repeat(86));

    for model in [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::Checkerboard2D,
        Model::Jagged2D,
        Model::FineGrain2D,
    ] {
        let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, k))
            .and_then(WorkloadOutcome::into_spmv)
            .expect("decompose");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        let sch = SpmvSchedule::build(&plan);
        println!(
            "{:<22} {:>8} {:>7} (Δ={:>3}) {:>7} (Δ={:>3}) {:>12} {:>10}",
            model.name(),
            out.stats.total_volume(),
            sch.expand.num_rounds(),
            sch.expand.max_degree,
            sch.fold.num_rounds(),
            sch.fold.max_degree,
            sch.total_rounds(),
            if sch.expand.is_optimal() && sch.fold.is_optimal() {
                "yes"
            } else {
                "near"
            },
        );
    }

    println!();
    println!("Δ is the Konig lower bound (max per-processor messages in the phase).");
    println!("checkerboard trades volume for very few rounds; fine-grain the reverse --");
    println!("the latency/bandwidth tension behind the paper's Section 4 discussion.");
}
