//! Quickstart: decompose a sparse matrix with the fine-grain 2D model and
//! run one distributed SpMV.
//!
//!     cargo run --release --example quickstart

use fine_grain_hypergraph::prelude::*;

fn main() {
    // 1. Get a matrix. Here: a synthetic analogue of the paper's
    //    `bcspwr10` power grid (use fgh_sparse::io::read_matrix_market for
    //    your own .mtx files). Scale 1/8 keeps the demo fast.
    let entry =
        fine_grain_hypergraph::sparse::catalog::by_name("bcspwr10").expect("catalog matrix");
    let a = entry.generate_scaled(8, 42);
    println!(
        "matrix: {} analogue, {} rows, {} nonzeros",
        entry.name,
        a.nrows(),
        a.nnz()
    );

    // 2. Decompose for K = 8 processors with the paper's fine-grain 2D
    //    hypergraph model (3% load-imbalance tolerance).
    let k = 8;
    let out = decompose_workload(
        Workload::Spmv(&a),
        &DecomposeConfig::new(Model::FineGrain2D, k),
    )
    .and_then(WorkloadOutcome::into_spmv)
    .expect("square matrix, K >= 1");
    println!(
        "fine-grain 2D decomposition for K = {k}: \
         cutsize (= predicted comm volume) {} words",
        out.objective
    );
    println!(
        "  total volume {} words ({:.3} scaled), max/proc {} words, \
         {:.2} msgs/proc, load imbalance {:.2}%",
        out.stats.total_volume(),
        out.stats.scaled_total_volume(),
        out.stats.max_sent_words(),
        out.stats.avg_messages_per_proc(),
        out.stats.load_imbalance_percent(),
    );

    // 3. Build the communication plan and execute y = Ax, counting every
    //    word that actually moves.
    let plan = DistributedSpmv::build(&a, &out.decomposition).expect("valid decomposition");
    let x: Vec<f64> = (0..a.ncols()).map(|j| 1.0 + (j as f64) * 1e-3).collect();
    let (y, comm) = plan.multiply(&x).expect("dimensions match");

    // 4. The paper's claim, verified live: modeled cutsize == words moved,
    //    and the distributed result equals the serial kernel.
    assert_eq!(comm.total_words(), out.objective);
    let y_serial = a.spmv(&x).expect("dimensions match");
    let max_err = y
        .iter()
        .zip(&y_serial)
        .map(|(p, s)| (p - s).abs())
        .fold(0.0f64, f64::max);
    println!(
        "executed SpMV: moved {} words in {} messages; max |y_par - y_serial| = {max_err:.2e}",
        comm.total_words(),
        comm.total_messages()
    );
    println!("cutsize == measured volume: OK");
}
