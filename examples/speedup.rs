//! Predicted speedup of parallel SpMV per decomposition model under
//! different machine balances — an extension over the paper's Table 2
//! combining its volume and message-count columns through an α-β-γ cost
//! model.
//!
//! The interesting effect: the fine-grain model minimizes *volume* (β
//! term) at the price of up to 2x the *messages* (α term), so its edge
//! over the 1D models grows on bandwidth-bound machines and shrinks on
//! latency-bound ones — exactly the tradeoff §4 of the paper discusses.
//!
//!     cargo run --release --example speedup [matrix-name] [K]

use fine_grain_hypergraph::prelude::*;
use fine_grain_hypergraph::spmv::{estimate, MachineModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "cre-d".to_string());
    let k: u32 = args
        .next()
        .map(|s| s.parse().expect("K must be an integer"))
        .unwrap_or(16);

    let entry = fine_grain_hypergraph::sparse::catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown matrix {name:?}"));
    let a = entry.generate_scaled(8, 7);
    println!(
        "{} analogue: {} rows, {} nonzeros, K = {k}\n",
        entry.name,
        a.nrows(),
        a.nnz()
    );

    let machines = [
        ("classic-mpp", MachineModel::classic_mpp()),
        ("beowulf", MachineModel::beowulf()),
        ("modern-cluster", MachineModel::modern_cluster()),
        ("latency-bound", MachineModel::latency_bound()),
    ];

    print!("{:<22} {:>9} {:>8}", "model", "volume", "msgs");
    for (mn, _) in &machines {
        print!(" {:>15}", mn);
    }
    println!();
    println!("{}", "-".repeat(22 + 9 + 8 + 1 + machines.len() * 16));

    for model in [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::Checkerboard2D,
        Model::Mondriaan2D,
        Model::FineGrain2D,
    ] {
        let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, k))
            .and_then(WorkloadOutcome::into_spmv)
            .expect("decompose");
        let plan = DistributedSpmv::build(&a, &out.decomposition).expect("plan");
        print!(
            "{:<22} {:>9} {:>8}",
            model.name(),
            out.stats.total_volume(),
            out.stats.total_messages()
        );
        for (_, machine) in &machines {
            let e = estimate(&plan, machine);
            print!(" {:>9.2}x ({:>2.0}%)", e.speedup(), 100.0 * e.efficiency(k));
        }
        println!();
    }

    println!();
    println!("cells are predicted speedup (parallel efficiency); phases modeled as");
    println!("alpha*msgs + beta*words per bottleneck processor plus gamma*2nnz compute.");
}
