//! Compare all four decomposition models on one matrix — a one-matrix
//! slice of the paper's Table 2.
//!
//!     cargo run --release --example compare_models [matrix-name] [K]
//!
//! `matrix-name` is a Table-1 catalog name (default `ken-11`); `K`
//! defaults to 16.

use fine_grain_hypergraph::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "ken-11".to_string());
    let k: u32 = args
        .next()
        .map(|s| s.parse().expect("K must be an integer"))
        .unwrap_or(16);

    let entry = fine_grain_hypergraph::sparse::catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown matrix {name:?}; see `table1` for the catalog"));
    let a = entry.generate_scaled(8, 7);
    println!(
        "{} analogue: {} rows, {} nonzeros, K = {k}\n",
        entry.name,
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "model", "objective", "volume", "vol/M", "max/proc", "msgs/p", "time"
    );
    println!("{}", "-".repeat(86));

    for model in [
        Model::Graph1D,
        Model::Hypergraph1DColNet,
        Model::Hypergraph1DRowNet,
        Model::Checkerboard2D,
        Model::CheckerboardHg2D,
        Model::Jagged2D,
        Model::Mondriaan2D,
        Model::FineGrain2D,
    ] {
        let out = decompose_workload(Workload::Spmv(&a), &DecomposeConfig::new(model, k))
            .and_then(WorkloadOutcome::into_spmv)
            .expect("decompose");
        println!(
            "{:<22} {:>10} {:>10} {:>10.3} {:>10} {:>9.2} {:>8.3}s",
            model.name(),
            out.objective,
            out.stats.total_volume(),
            out.stats.scaled_total_volume(),
            out.stats.max_sent_words(),
            out.stats.avg_messages_per_proc(),
            out.elapsed.as_secs_f64(),
        );
    }

    println!();
    println!("notes:");
    println!(" * for hypergraph models, objective (connectivity-1 cutsize) == volume exactly;");
    println!("   the graph model's edge-cut objective only approximates its true volume.");
    println!(" * fine-grain-2d may use up to 2(K-1) messages per processor (two phases)");
    println!("   vs K-1 for the 1D models -- the volume-vs-latency tradeoff of Section 4.");
}
