//! Width-erased matrix carriers.
//!
//! [`crate::IndexWidth::select`] picks an index width from a parsed Matrix
//! Market header *at runtime*, but `CooMatrix<I>` / `CsrMatrix<I>` are
//! width-*generic* types. These enums bridge the two worlds: an
//! `AnyCooMatrix` is "a COO matrix at whichever width the input needed",
//! and callers either dispatch on the variant or use the width-agnostic
//! accessors below. `fgh-core`'s `decompose_any` consumes these so the CLI
//! never names an index width.

use crate::index::{IndexType, IndexWidth};
use crate::{CooMatrix, CsrMatrix, Result};

/// A COO matrix at either index width.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyCooMatrix {
    /// 32-bit indices (fast path).
    U32(CooMatrix<u32>),
    /// 64-bit indices (big path).
    U64(CooMatrix<u64>),
}

impl AnyCooMatrix {
    /// The index width of the carried matrix.
    pub fn width(&self) -> IndexWidth {
        match self {
            AnyCooMatrix::U32(_) => IndexWidth::U32,
            AnyCooMatrix::U64(_) => IndexWidth::U64,
        }
    }

    /// Number of rows, widened to `u64`.
    pub fn nrows(&self) -> u64 {
        match self {
            AnyCooMatrix::U32(m) => m.nrows().as_u64(),
            AnyCooMatrix::U64(m) => m.nrows().as_u64(),
        }
    }

    /// Number of columns, widened to `u64`.
    pub fn ncols(&self) -> u64 {
        match self {
            AnyCooMatrix::U32(m) => m.ncols().as_u64(),
            AnyCooMatrix::U64(m) => m.ncols().as_u64(),
        }
    }

    /// Number of stored (pre-dedup) entries.
    pub fn nnz(&self) -> usize {
        match self {
            AnyCooMatrix::U32(m) => m.nnz(),
            AnyCooMatrix::U64(m) => m.nnz(),
        }
    }

    /// Compresses to CSR at the same width, honoring the matrix's dedup
    /// policy (see [`CsrMatrix::try_from_coo`]).
    pub fn try_into_csr(self) -> Result<AnyCsrMatrix> {
        Ok(match self {
            AnyCooMatrix::U32(m) => AnyCsrMatrix::U32(CsrMatrix::try_from_coo(m)?),
            AnyCooMatrix::U64(m) => AnyCsrMatrix::U64(CsrMatrix::try_from_coo(m)?),
        })
    }

    /// Re-expresses the matrix at an explicit width (typed
    /// [`crate::SparseError::TooLarge`] when narrowing does not fit).
    pub fn convert_width(&self, width: IndexWidth) -> Result<AnyCooMatrix> {
        Ok(match (self, width) {
            (AnyCooMatrix::U32(m), IndexWidth::U32) => AnyCooMatrix::U32(m.clone()),
            (AnyCooMatrix::U32(m), IndexWidth::U64) => AnyCooMatrix::U64(m.convert_width()?),
            (AnyCooMatrix::U64(m), IndexWidth::U32) => AnyCooMatrix::U32(m.convert_width()?),
            (AnyCooMatrix::U64(m), IndexWidth::U64) => AnyCooMatrix::U64(m.clone()),
        })
    }
}

impl From<CooMatrix<u32>> for AnyCooMatrix {
    fn from(m: CooMatrix<u32>) -> Self {
        AnyCooMatrix::U32(m)
    }
}

impl From<CooMatrix<u64>> for AnyCooMatrix {
    fn from(m: CooMatrix<u64>) -> Self {
        AnyCooMatrix::U64(m)
    }
}

/// A CSR matrix at either index width.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyCsrMatrix {
    /// 32-bit indices (fast path).
    U32(CsrMatrix<u32>),
    /// 64-bit indices (big path).
    U64(CsrMatrix<u64>),
}

impl AnyCsrMatrix {
    /// The index width of the carried matrix.
    pub fn width(&self) -> IndexWidth {
        match self {
            AnyCsrMatrix::U32(_) => IndexWidth::U32,
            AnyCsrMatrix::U64(_) => IndexWidth::U64,
        }
    }

    /// Number of rows, widened to `u64`.
    pub fn nrows(&self) -> u64 {
        match self {
            AnyCsrMatrix::U32(m) => m.nrows().as_u64(),
            AnyCsrMatrix::U64(m) => m.nrows().as_u64(),
        }
    }

    /// Number of columns, widened to `u64`.
    pub fn ncols(&self) -> u64 {
        match self {
            AnyCsrMatrix::U32(m) => m.ncols().as_u64(),
            AnyCsrMatrix::U64(m) => m.ncols().as_u64(),
        }
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        match self {
            AnyCsrMatrix::U32(m) => m.nnz(),
            AnyCsrMatrix::U64(m) => m.nnz(),
        }
    }

    /// `true` for square matrices.
    pub fn is_square(&self) -> bool {
        self.nrows() == self.ncols()
    }

    /// Heap bytes held by the CSR arrays at the carried width.
    pub fn heap_bytes(&self) -> usize {
        match self {
            AnyCsrMatrix::U32(m) => m.heap_bytes(),
            AnyCsrMatrix::U64(m) => m.heap_bytes(),
        }
    }

    /// The `u32` matrix, if that is the carried width.
    pub fn as_u32(&self) -> Option<&CsrMatrix<u32>> {
        match self {
            AnyCsrMatrix::U32(m) => Some(m),
            AnyCsrMatrix::U64(_) => None,
        }
    }

    /// The `u64` matrix, if that is the carried width.
    pub fn as_u64(&self) -> Option<&CsrMatrix<u64>> {
        match self {
            AnyCsrMatrix::U32(_) => None,
            AnyCsrMatrix::U64(m) => Some(m),
        }
    }

    /// Re-expresses the matrix at an explicit width (typed
    /// [`crate::SparseError::TooLarge`] when narrowing does not fit).
    pub fn convert_width(&self, width: IndexWidth) -> Result<AnyCsrMatrix> {
        Ok(match (self, width) {
            (AnyCsrMatrix::U32(m), IndexWidth::U32) => AnyCsrMatrix::U32(m.clone()),
            (AnyCsrMatrix::U32(m), IndexWidth::U64) => AnyCsrMatrix::U64(m.convert_width()?),
            (AnyCsrMatrix::U64(m), IndexWidth::U32) => AnyCsrMatrix::U32(m.convert_width()?),
            (AnyCsrMatrix::U64(m), IndexWidth::U64) => AnyCsrMatrix::U64(m.clone()),
        })
    }
}

impl From<CsrMatrix<u32>> for AnyCsrMatrix {
    fn from(m: CsrMatrix<u32>) -> Self {
        AnyCsrMatrix::U32(m)
    }
}

impl From<CsrMatrix<u64>> for AnyCsrMatrix {
    fn from(m: CsrMatrix<u64>) -> Self {
        AnyCsrMatrix::U64(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coo32() -> CooMatrix<u32> {
        CooMatrix::from_triplets(3, 3, vec![(0, 0, 1.0), (1, 2, 2.0), (2, 1, 3.0)]).unwrap()
    }

    #[test]
    fn width_accessors() {
        let any = AnyCooMatrix::from(coo32());
        assert_eq!(any.width(), IndexWidth::U32);
        assert_eq!(any.nrows(), 3);
        assert_eq!(any.nnz(), 3);
    }

    #[test]
    fn into_csr_preserves_width() {
        let csr = AnyCooMatrix::from(coo32()).try_into_csr().unwrap();
        assert_eq!(csr.width(), IndexWidth::U32);
        assert!(csr.as_u32().is_some());
        assert!(csr.as_u64().is_none());
        assert_eq!(csr.nnz(), 3);
        assert!(csr.is_square());
        assert!(csr.heap_bytes() > 0);
    }

    #[test]
    fn convert_width_roundtrip() {
        let any = AnyCooMatrix::from(coo32());
        let wide = any.convert_width(IndexWidth::U64).unwrap();
        assert_eq!(wide.width(), IndexWidth::U64);
        let back = wide.convert_width(IndexWidth::U32).unwrap();
        assert_eq!(back, any);
    }

    #[test]
    fn narrowing_out_of_range_errors() {
        let mut big: CooMatrix<u64> = CooMatrix::new(1 << 40, 1 << 40);
        big.push(1 << 35, 0, 1.0).unwrap();
        let any = AnyCooMatrix::from(big);
        assert!(any.convert_width(IndexWidth::U32).is_err());
    }
}
