//! The sealed index-width abstraction: every index-carrying container in
//! the stack (`CooMatrix<I>`, `CsrMatrix<I>`, `Hypergraph<I>`,
//! `CsrGraph<I>`, the partition engine) is generic over an [`IndexType`].
//!
//! Two widths are supported and the trait is sealed to exactly them:
//!
//! * `u32` — the fast path. Half the index memory, the right choice for
//!   every matrix whose fine-grain hypergraph stays below `u32::MAX` pins
//!   (all 14 catalog instances by a wide margin).
//! * `u64` — the big path, for instances whose vertex/net/pin counts
//!   exceed what 32 bits address.
//!
//! `Self::MAX` doubles as the *sentinel* ("no vertex" / "unassigned")
//! throughout the engine, so the usable id range is `0 .. MAX`, exclusive.
//! Width selection from parsed dimensions lives in [`IndexWidth::select`].

use crate::SparseError;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Index width of a sparse structure: `u32` (fast path) or `u64` (big
/// path). Sealed — exactly these two implementations exist.
///
/// The supertraits `TryFrom<u64> + Into<u64>` give callers a portable
/// widening/narrowing story; the inherent helpers below add the checked
/// conversions used on untrusted input (typed [`SparseError::TooLarge`]
/// instead of silent truncation) and the debug-checked casts used where a
/// bound is proven by construction.
pub trait IndexType:
    sealed::Sealed
    + Copy
    + Default
    + Eq
    + Ord
    + std::hash::Hash
    + std::fmt::Debug
    + std::fmt::Display
    + Send
    + Sync
    + TryFrom<u64>
    + Into<u64>
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// One.
    const ONE: Self;
    /// Largest representable value — reserved as the engine's sentinel,
    /// so usable ids are `0 .. MAX` exclusive.
    const MAX: Self;
    /// Width in bits (32 or 64).
    const BITS: u32;
    /// Human-readable width name for reports ("u32" / "u64").
    const NAME: &'static str;

    /// The value as a `usize` array index. Indices originate from
    /// in-memory containers, so they fit `usize` on every platform this
    /// crate targets (debug-checked).
    fn index(self) -> usize;

    /// The value widened to `u64` (always lossless).
    fn as_u64(self) -> u64;

    /// Converts a loop counter / array length known to be in range back
    /// into an index (debug-checked; use [`IndexType::checked_usize`] for
    /// untrusted values).
    fn from_index(i: usize) -> Self;

    /// Checked narrowing from `u64`; `None` when the value does not fit
    /// (or equals the reserved sentinel `MAX`).
    fn from_u64_checked(v: u64) -> Option<Self>;

    /// Checked narrowing with a typed [`SparseError::TooLarge`] carrying
    /// what overflowed — the conversion used on every untrusted input.
    fn checked(v: u64, what: &'static str) -> Result<Self, SparseError> {
        Self::from_u64_checked(v).ok_or(SparseError::TooLarge {
            what,
            value: v,
            max: Self::MAX.as_u64() - 1,
        })
    }

    /// [`IndexType::checked`] for `usize` counts.
    fn checked_usize(v: usize, what: &'static str) -> Result<Self, SparseError> {
        Self::checked(v as u64, what)
    }
}

impl IndexType for u32 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u32::MAX;
    const BITS: u32 = 32;
    const NAME: &'static str = "u32";

    #[inline(always)]
    fn index(self) -> usize {
        self as usize
    }

    #[inline(always)]
    fn as_u64(self) -> u64 {
        self as u64
    }

    #[inline(always)]
    fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "index {i} exceeds u32 range");
        i as u32 // lint: checked-cast — callers prove i is in u32 range; debug-asserted above
    }

    #[inline]
    fn from_u64_checked(v: u64) -> Option<Self> {
        if v >= u32::MAX as u64 {
            None
        } else {
            Some(v as u32) // lint: checked-cast — guarded right above
        }
    }
}

impl IndexType for u64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u64::MAX;
    const BITS: u32 = 64;
    const NAME: &'static str = "u64";

    #[inline(always)]
    fn index(self) -> usize {
        debug_assert!(
            self <= usize::MAX as u64,
            "index {self} exceeds usize range"
        );
        self as usize // in-memory ids fit usize on 64-bit targets; debug-asserted
    }

    #[inline(always)]
    fn as_u64(self) -> u64 {
        self
    }

    #[inline(always)]
    fn from_index(i: usize) -> Self {
        i as u64
    }

    #[inline]
    fn from_u64_checked(v: u64) -> Option<Self> {
        if v == u64::MAX {
            None
        } else {
            Some(v)
        }
    }
}

/// A runtime tag for the two supported index widths — the width-erased
/// counterpart of [`IndexType`], carried by [`crate::AnyCooMatrix`] /
/// [`crate::AnyCsrMatrix`] and reported in decomposition outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexWidth {
    /// 32-bit indices (fast path).
    #[default]
    U32,
    /// 64-bit indices (big path).
    U64,
}

impl IndexWidth {
    /// Selects the narrowest width that can index the *fine-grain
    /// hypergraph* of a matrix with the given header: `Z + M` vertices
    /// (nonzeros plus worst-case dummy diagonals), `2M` nets, and
    /// `2 (Z + M)` pins must all stay below the `u32` sentinel for the
    /// fast path; anything larger selects `u64`.
    pub fn select(nrows: u64, ncols: u64, nnz: u64) -> IndexWidth {
        let cap = u32::MAX as u64;
        let dim = nrows.max(ncols);
        let vertices = nnz.saturating_add(dim); // worst case: every diagonal missing
        let nets = dim.saturating_mul(2);
        let pins = vertices.saturating_mul(2);
        if dim >= cap || vertices >= cap || nets >= cap || pins > cap {
            IndexWidth::U64
        } else {
            IndexWidth::U32
        }
    }

    /// Bits of this width (32 or 64).
    pub fn bits(self) -> u32 {
        match self {
            IndexWidth::U32 => 32,
            IndexWidth::U64 => 64,
        }
    }
}

impl std::fmt::Display for IndexWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexWidth::U32 => write!(f, "u32"),
            IndexWidth::U64 => write!(f, "u64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32() {
        assert_eq!(u32::from_index(7).index(), 7);
        assert_eq!(u32::from_u64_checked(7), Some(7));
        assert_eq!(
            u32::from_u64_checked(u32::MAX as u64),
            None,
            "sentinel reserved"
        );
        assert_eq!(u32::from_u64_checked(1 << 40), None);
        assert_eq!(<u32 as IndexType>::NAME, "u32");
    }

    #[test]
    fn roundtrip_u64() {
        let big = (1u64 << 40) + 3;
        assert_eq!(u64::from_u64_checked(big), Some(big));
        assert_eq!(u64::from_u64_checked(u64::MAX), None, "sentinel reserved");
        assert_eq!(big.index(), big as usize);
    }

    #[test]
    fn checked_conversion_reports_too_large() {
        match u32::checked(1 << 40, "row count") {
            Err(SparseError::TooLarge { what, value, max }) => {
                assert_eq!(what, "row count");
                assert_eq!(value, 1 << 40);
                assert_eq!(max, u32::MAX as u64 - 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(u64::checked(1 << 40, "x").unwrap(), 1 << 40);
    }

    #[test]
    fn width_selection_rules() {
        // Every catalog-scale instance takes the fast path.
        assert_eq!(IndexWidth::select(74_752, 74_752, 615_774), IndexWidth::U32);
        // Pins 2(Z+M) crossing u32::MAX forces the big path even though
        // the raw nnz still fits u32.
        assert_eq!(
            IndexWidth::select(1 << 20, 1 << 20, 2_200_000_000),
            IndexWidth::U64
        );
        // Huge dimensions force it regardless of nnz.
        assert_eq!(IndexWidth::select(5_000_000_000, 3, 1), IndexWidth::U64);
        // Just below every threshold stays u32.
        assert_eq!(
            IndexWidth::select(1000, 1000, 2_000_000_000),
            IndexWidth::U32
        );
        assert_eq!(IndexWidth::U32.bits(), 32);
        assert_eq!(IndexWidth::U64.to_string(), "u64");
    }
}
