//! Coordinate (triplet) format — the mutable construction format.

use crate::{Result, SparseError};

/// A sparse matrix in coordinate (COO / triplet) format.
///
/// Entries are stored as `(row, col, value)` triplets in arbitrary order and
/// may contain duplicates until [`CooMatrix::compress`] is called. This is
/// the format every generator and the Matrix Market reader produce; convert
/// to [`crate::CsrMatrix`] for analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: u32,
    ncols: u32,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` matrix.
    pub fn new(nrows: u32, ncols: u32) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: u32, ncols: u32, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> u32 {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> u32 {
        self.ncols
    }

    /// Number of stored entries (including not-yet-compressed duplicates).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends an entry. Returns an error if the coordinates are out of
    /// bounds. Duplicates are allowed and later summed by [`compress`].
    ///
    /// [`compress`]: CooMatrix::compress
    pub fn push(&mut self, row: u32, col: u32, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Builds a matrix from triplet slices, validating bounds.
    pub fn from_triplets(
        nrows: u32,
        ncols: u32,
        triplets: impl IntoIterator<Item = (u32, u32, f64)>,
    ) -> Result<Self> {
        let mut m = CooMatrix::new(nrows, ncols);
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Iterates over the raw (possibly duplicated) entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.rows.len()).map(move |i| (self.rows[i], self.cols[i], self.vals[i]))
    }

    /// Sorts entries into row-major order and sums duplicates in place.
    /// Entries whose summed value is exactly `0.0` are *kept* (explicit
    /// zeros are structurally meaningful for decomposition: they are
    /// nonzeros of the pattern).
    pub fn compress(&mut self) {
        let n = self.rows.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));

        let mut rows = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for &i in &order {
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("vals parallel to rows") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Consumes the matrix and returns `(nrows, ncols, rows, cols, vals)`.
    pub fn into_parts(self) -> (u32, u32, Vec<u32>, Vec<u32>, Vec<f64>) {
        (self.nrows, self.ncols, self.rows, self.cols, self.vals)
    }

    /// Transposes in place (swaps row/column coordinates and dimensions).
    pub fn transpose(&mut self) {
        std::mem::swap(&mut self.rows, &mut self.cols);
        std::mem::swap(&mut self.nrows, &mut self.ncols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 1, 2.0).unwrap();
        m.push(2, 3, -1.0).unwrap();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 1, 2.0), (2, 3, -1.0)]);
    }

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut m = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn compress_sums_duplicates_and_sorts() {
        let mut m = CooMatrix::from_triplets(
            3,
            3,
            vec![(2, 2, 1.0), (0, 0, 1.0), (2, 2, 3.0), (0, 1, 5.0)],
        )
        .unwrap();
        m.compress();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 1, 5.0), (2, 2, 4.0)]);
    }

    #[test]
    fn compress_keeps_explicit_zero_sum() {
        let mut m = CooMatrix::from_triplets(2, 2, vec![(1, 1, 2.0), (1, 1, -2.0)]).unwrap();
        m.compress();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.iter().next(), Some((1, 1, 0.0)));
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut m = CooMatrix::from_triplets(2, 3, vec![(0, 2, 7.0)]).unwrap();
        m.transpose();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.iter().next(), Some((2, 0, 7.0)));
    }

    #[test]
    fn empty_matrix() {
        let m = CooMatrix::new(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.nnz(), 0);
    }
}
