//! Coordinate (triplet) format — the mutable construction format.

use fgh_invariant::{invariant, InvariantViolation};

use crate::index::IndexType;
use crate::{Result, SparseError};

/// How duplicate `(row, col)` entries are resolved when a COO matrix is
/// compressed or converted to CSR.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DedupPolicy {
    /// Duplicates are an error ([`SparseError::DuplicateEntry`]).
    Error,
    /// Duplicate values are summed (the classical COO semantics; default).
    #[default]
    Sum,
    /// The last-pushed value wins.
    LastWins,
}

/// A sparse matrix in coordinate (COO / triplet) format, generic over the
/// index width `I` ([`IndexType`]; `u32` by default, `u64` for instances
/// beyond 32-bit addressing).
///
/// Entries are stored as `(row, col, value)` triplets in arbitrary order and
/// may contain duplicates until [`CooMatrix::compress`] is called. This is
/// the format every generator and the Matrix Market reader produce; convert
/// to [`crate::CsrMatrix`] for analysis. The [`DedupPolicy`] attached to the
/// matrix decides what duplicates mean — summed (default), last-wins, or a
/// hard error via [`crate::CsrMatrix::try_from_coo`].
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix<I: IndexType = u32> {
    nrows: I,
    ncols: I,
    rows: Vec<I>,
    cols: Vec<I>,
    vals: Vec<f64>,
    dedup_policy: DedupPolicy,
}

impl<I: IndexType> CooMatrix<I> {
    /// Creates an empty `nrows x ncols` matrix.
    pub fn new(nrows: I, ncols: I) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
            dedup_policy: DedupPolicy::default(),
        }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: I, ncols: I, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
            dedup_policy: DedupPolicy::default(),
        }
    }

    /// The duplicate-resolution policy applied on compression.
    pub fn dedup_policy(&self) -> DedupPolicy {
        self.dedup_policy
    }

    /// Sets the duplicate-resolution policy (builder style).
    pub fn with_dedup_policy(mut self, policy: DedupPolicy) -> Self {
        self.dedup_policy = policy;
        self
    }

    /// Sets the duplicate-resolution policy in place.
    pub fn set_dedup_policy(&mut self, policy: DedupPolicy) {
        self.dedup_policy = policy;
    }

    /// Number of rows.
    pub fn nrows(&self) -> I {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> I {
        self.ncols
    }

    /// Number of stored entries (including not-yet-compressed duplicates).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends an entry. Returns an error if the coordinates are out of
    /// bounds. Duplicates are allowed and later summed by [`compress`].
    ///
    /// [`compress`]: CooMatrix::compress
    pub fn push(&mut self, row: I, col: I, val: f64) -> Result<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row: row.as_u64(),
                col: col.as_u64(),
                nrows: self.nrows.as_u64(),
                ncols: self.ncols.as_u64(),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Builds a matrix from triplet slices, validating bounds.
    pub fn from_triplets(
        nrows: I,
        ncols: I,
        triplets: impl IntoIterator<Item = (I, I, f64)>,
    ) -> Result<Self> {
        let mut m = CooMatrix::new(nrows, ncols);
        for (r, c, v) in triplets {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Iterates over the raw (possibly duplicated) entries.
    pub fn iter(&self) -> impl Iterator<Item = (I, I, f64)> + '_ {
        (0..self.rows.len()).map(move |i| (self.rows[i], self.cols[i], self.vals[i]))
    }

    /// Sorts entries into row-major order and sums duplicates in place
    /// (equivalent to [`CooMatrix::compress_with`] under
    /// [`DedupPolicy::Sum`], regardless of the attached policy).
    /// Entries whose summed value is exactly `0.0` are *kept* (explicit
    /// zeros are structurally meaningful for decomposition: they are
    /// nonzeros of the pattern).
    pub fn compress(&mut self) {
        // Sum never fails, so the error arm is unreachable.
        let _ = self.compress_with(DedupPolicy::Sum);
    }

    /// Sorts entries into row-major order, resolving duplicates according
    /// to `policy`. Under [`DedupPolicy::Error`] the matrix is left
    /// untouched when a duplicate exists and the offending coordinate is
    /// reported.
    pub fn compress_with(&mut self, policy: DedupPolicy) -> Result<()> {
        let n = self.rows.len();
        let mut order: Vec<usize> = (0..n).collect();
        // The index tiebreak keeps duplicates in push order, which is what
        // gives `LastWins` its meaning.
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i], i));

        if policy == DedupPolicy::Error {
            for w in order.windows(2) {
                let (a, b) = (w[0], w[1]);
                if self.rows[a] == self.rows[b] && self.cols[a] == self.cols[b] {
                    return Err(SparseError::DuplicateEntry {
                        row: self.rows[a].as_u64(),
                        col: self.cols[a].as_u64(),
                    });
                }
            }
        }

        let mut rows: Vec<I> = Vec::with_capacity(n);
        let mut cols: Vec<I> = Vec::with_capacity(n);
        let mut vals: Vec<f64> = Vec::with_capacity(n);
        for &i in &order {
            let (r, c, v) = (self.rows[i], self.cols[i], self.vals[i]);
            if let Some(last) = vals.last_mut() {
                if rows[rows.len() - 1] == r && cols[cols.len() - 1] == c {
                    match policy {
                        DedupPolicy::Sum => *last += v,
                        DedupPolicy::LastWins => *last = v,
                        // Checked above; duplicates cannot reach here.
                        DedupPolicy::Error => {}
                    }
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
        Ok(())
    }

    /// Compresses using the matrix's attached [`DedupPolicy`].
    pub fn compress_policy(&mut self) -> Result<()> {
        self.compress_with(self.dedup_policy)
    }

    /// Consumes the matrix and returns `(nrows, ncols, rows, cols, vals)`.
    pub fn into_parts(self) -> (I, I, Vec<I>, Vec<I>, Vec<f64>) {
        (self.nrows, self.ncols, self.rows, self.cols, self.vals)
    }

    /// Transposes in place (swaps row/column coordinates and dimensions).
    pub fn transpose(&mut self) {
        std::mem::swap(&mut self.rows, &mut self.cols);
        std::mem::swap(&mut self.nrows, &mut self.ncols);
    }

    /// Re-expresses the matrix under another index width, with a typed
    /// [`SparseError::TooLarge`] when narrowing does not fit. Widening
    /// (`u32` → `u64`) always succeeds.
    pub fn convert_width<J: IndexType>(&self) -> Result<CooMatrix<J>> {
        let mut m: CooMatrix<J> = CooMatrix::with_capacity(
            J::checked(self.nrows.as_u64(), "row count")?,
            J::checked(self.ncols.as_u64(), "column count")?,
            self.nnz(),
        );
        m.dedup_policy = self.dedup_policy;
        for (r, c, v) in self.iter() {
            m.push(
                J::checked(r.as_u64(), "row index")?,
                J::checked(c.as_u64(), "column index")?,
                v,
            )?;
        }
        Ok(m)
    }

    /// Checks the structural invariants: the three triplet arrays are
    /// parallel and every coordinate is inside the declared dimensions.
    /// Every public mutating operation preserves these (proptested);
    /// a violation therefore indicates a defect, not bad user input.
    pub fn validate(&self) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "CooMatrix";
        invariant!(
            self.rows.len() == self.cols.len() && self.cols.len() == self.vals.len(),
            S,
            "triplets.parallel",
            "rows/cols/vals have lengths {}/{}/{}",
            self.rows.len(),
            self.cols.len(),
            self.vals.len()
        );
        for (e, (&r, &c)) in self.rows.iter().zip(&self.cols).enumerate() {
            invariant!(
                r < self.nrows && c < self.ncols,
                S,
                "entry.in_bounds",
                "entry {e} at ({r}, {c}) outside {} x {}",
                self.nrows,
                self.ncols
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter_roundtrip() {
        let mut m: CooMatrix = CooMatrix::new(3, 4);
        m.push(0, 1, 2.0).unwrap();
        m.push(2, 3, -1.0).unwrap();
        assert_eq!(m.nnz(), 2);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 1, 2.0), (2, 3, -1.0)]);
    }

    #[test]
    fn push_out_of_bounds_is_rejected() {
        let mut m: CooMatrix = CooMatrix::new(2, 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn compress_sums_duplicates_and_sorts() {
        let mut m: CooMatrix = CooMatrix::from_triplets(
            3,
            3,
            vec![(2, 2, 1.0), (0, 0, 1.0), (2, 2, 3.0), (0, 1, 5.0)],
        )
        .unwrap();
        m.compress();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 1, 5.0), (2, 2, 4.0)]);
    }

    #[test]
    fn compress_keeps_explicit_zero_sum() {
        let mut m: CooMatrix =
            CooMatrix::from_triplets(2, 2, vec![(1, 1, 2.0), (1, 1, -2.0)]).unwrap();
        m.compress();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.iter().next(), Some((1, 1, 0.0)));
    }

    #[test]
    fn dedup_policy_error_reports_coordinate_and_preserves_matrix() {
        let mut m: CooMatrix =
            CooMatrix::from_triplets(3, 3, vec![(1, 2, 1.0), (0, 0, 2.0), (1, 2, 3.0)])
                .unwrap()
                .with_dedup_policy(DedupPolicy::Error);
        assert_eq!(m.dedup_policy(), DedupPolicy::Error);
        match m.compress_policy() {
            Err(SparseError::DuplicateEntry { row: 1, col: 2 }) => {}
            other => panic!("expected DuplicateEntry(1,2), got {other:?}"),
        }
        assert_eq!(m.nnz(), 3, "failed compression must not mutate");
    }

    #[test]
    fn dedup_policy_last_wins() {
        let mut m: CooMatrix =
            CooMatrix::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 9.0), (1, 1, 5.0)]).unwrap();
        m.compress_with(DedupPolicy::LastWins).unwrap();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 9.0), (1, 1, 5.0)]);
    }

    #[test]
    fn dedup_policy_error_accepts_unique_entries() {
        let mut m: CooMatrix =
            CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        m.compress_with(DedupPolicy::Error).unwrap();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mut m: CooMatrix = CooMatrix::from_triplets(2, 3, vec![(0, 2, 7.0)]).unwrap();
        m.transpose();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.iter().next(), Some((2, 0, 7.0)));
    }

    #[test]
    fn empty_matrix() {
        let m: CooMatrix = CooMatrix::new(0, 0);
        assert!(m.is_empty());
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn u64_width_accepts_indices_beyond_u32() {
        let big = (1u64 << 33) + 5;
        let mut m: CooMatrix<u64> = CooMatrix::new(1 << 34, 1 << 34);
        m.push(big, 3, 1.5).unwrap();
        assert_eq!(m.iter().next(), Some((big, 3, 1.5)));
    }

    #[test]
    fn convert_width_roundtrips_and_narrows_checked() {
        let m: CooMatrix = CooMatrix::from_triplets(3, 3, vec![(0, 1, 2.0), (2, 2, 4.0)])
            .unwrap()
            .with_dedup_policy(DedupPolicy::LastWins);
        let wide: CooMatrix<u64> = m.convert_width().unwrap();
        assert_eq!(wide.dedup_policy(), DedupPolicy::LastWins);
        let back: CooMatrix<u32> = wide.convert_width().unwrap();
        assert_eq!(m, back);

        let big: CooMatrix<u64> = CooMatrix::new(1 << 40, 2);
        assert!(matches!(
            big.convert_width::<u32>(),
            Err(SparseError::TooLarge { .. })
        ));
    }
}
