//! Synthetic analogues of the paper's Table-1 test matrices.
//!
//! The paper evaluates 14 matrices from the netlib LP sets and the
//! UF/SuiteSparse collection. This module regenerates *structurally
//! analogous* matrices: same order, approximately the same nonzero count,
//! and a qualitatively matching nonzero distribution (bounded-degree power
//! grids, skewed network-LP hubs, FD/FE meshes, multistage blocks). The
//! original Table-1 numbers are kept alongside for reporting.
//!
//! Every entry supports generation at a reduced `scale` (dimensions divided
//! by `scale`, density preserved) so the full experiment pipeline can run in
//! tests and CI at a fraction of the cost.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::gen::{self, ValueMode};
use crate::{CsrMatrix, MatrixStats};

/// Properties of the original matrix as printed in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Number of rows (= columns).
    pub rows: u32,
    /// Total nonzeros.
    pub nnz: usize,
    /// Minimum nonzeros per row/col.
    pub min: usize,
    /// Maximum nonzeros per row/col.
    pub max: usize,
    /// Average nonzeros per row/col.
    pub avg: f64,
}

/// The structural family a matrix belongs to, selecting the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// 2D FD stencil, thinned to match the average degree (`sherman3`).
    ThinnedGrid,
    /// Power transmission network (`bcspwr10`).
    PowerGrid,
    /// Network-LP normal equations — scale-free with hubs (`ken`, `nl`,
    /// `cq9`, `co9`, `cre`, `world`, `mod2`).
    NetworkLp,
    /// Multistage stochastic program (`pltexpA4-6`).
    Multistage,
    /// FE model with a wide stencil (`vibrobox`).
    WideStencil,
    /// Lattice plus dense hub vertices (`finan512`).
    LatticeHubs,
}

/// One catalog entry: a named test matrix with its paper-reported stats and
/// a deterministic synthetic generator.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Matrix name as printed in the paper.
    pub name: &'static str,
    /// The Table-1 properties of the original matrix.
    pub paper: PaperStats,
    family: Family,
}

impl CatalogEntry {
    /// Generates the full-size synthetic analogue. Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> CsrMatrix {
        self.generate_scaled(1, seed)
    }

    /// Generates a reduced-size analogue with dimensions divided by
    /// `scale` (`scale = 1` is full size). Density per row is preserved as
    /// far as the family allows.
    pub fn generate_scaled(&self, scale: u32, seed: u64) -> CsrMatrix {
        assert!(scale >= 1, "scale must be >= 1");
        let mut rng = SmallRng::seed_from_u64(seed ^ fxhash(self.name));
        let n = (self.paper.rows / scale).max(16);
        let avg = self.paper.avg;
        match self.family {
            Family::ThinnedGrid => {
                // 5-point stencil has interior degree 5 (incl. diagonal);
                // thin links to match the target average.
                let side = (n as f64).sqrt().ceil() as u32; // lint: checked-cast — ceil(sqrt(n)) <= n, a u32
                let keep = ((avg - 1.0) / 4.0).clamp(0.05, 1.0);
                gen::grid5(side, side, keep, ValueMode::Laplacian, &mut rng)
            }
            Family::PowerGrid => {
                let extra = (((avg - 1.0) / 2.0 - 1.0) * n as f64).max(0.0) as usize;
                gen::power_grid(
                    n,
                    extra,
                    self.paper.max.saturating_sub(1),
                    ValueMode::Laplacian,
                    &mut rng,
                )
            }
            Family::NetworkLp => {
                let m = ((avg - 1.0) / 2.0).max(1.0);
                gen::scale_free(n, m, ValueMode::Laplacian, &mut rng)
            }
            Family::Multistage => {
                let block = 512u32.min(n);
                let blocks = (n / block).max(1);
                // Interior half-bandwidth chosen so banded degree ≈ avg.
                let half_bw = (((avg - 1.0) / 2.0).round() as u32).max(1); // lint: checked-cast — avg nnz/row of Table 1 matrices is < 100
                let link_span = (self.paper.max as u32 / 2).min(block); // lint: checked-cast — Table 1 max nnz/row is < 1500
                gen::block_multistage(
                    blocks,
                    block,
                    half_bw,
                    2,
                    link_span,
                    ValueMode::Laplacian,
                    &mut rng,
                )
            }
            Family::WideStencil => {
                let side = (n as f64).sqrt().ceil() as u32; // lint: checked-cast — ceil(sqrt(n)) <= n, a u32
                                                            // radius-2 stencil: interior degree 25 (incl. diag).
                let keep = ((avg - 1.0) / 24.0).clamp(0.05, 1.0);
                gen::wide_stencil(side, side, 2, keep, ValueMode::Laplacian, &mut rng)
            }
            Family::LatticeHubs => {
                let k = (((avg - 1.0) / 2.0).floor() as u32).max(1); // lint: checked-cast — avg nnz/row of Table 1 matrices is < 100
                let hubs = (n / 4096).max(1);
                let hub_degree = (self.paper.max as u32).min(n / 2).max(8); // lint: checked-cast — Table 1 max nnz/row is < 1500
                gen::lattice_with_hubs(n, k, hubs, hub_degree, ValueMode::Laplacian, &mut rng)
            }
        }
    }

    /// Computed statistics of a generated instance.
    pub fn measured_stats(&self, scale: u32, seed: u64) -> MatrixStats {
        MatrixStats::compute(&self.generate_scaled(scale, seed))
    }
}

/// Stable tiny string hash to decorrelate per-matrix RNG streams.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The 14 test matrices of Table 1, in the paper's order (increasing nnz).
pub fn catalog() -> Vec<CatalogEntry> {
    use Family::*;
    let e = |name, rows, nnz, min, max, avg, family| CatalogEntry {
        name,
        paper: PaperStats {
            rows,
            nnz,
            min,
            max,
            avg,
        },
        family,
    };
    vec![
        e("sherman3", 5005, 20033, 1, 7, 4.00, ThinnedGrid),
        e("bcspwr10", 5300, 21842, 2, 14, 4.12, PowerGrid),
        e("ken-11", 14694, 82454, 2, 243, 5.61, NetworkLp),
        e("nl", 7039, 105089, 1, 361, 14.93, NetworkLp),
        e("ken-13", 28632, 161804, 2, 339, 5.65, NetworkLp),
        e("cq9", 9278, 221590, 1, 702, 23.88, NetworkLp),
        e("co9", 10789, 249205, 1, 707, 23.10, NetworkLp),
        e("pltexpA4-6", 26894, 269736, 5, 204, 10.03, Multistage),
        e("vibrobox", 12328, 342828, 9, 121, 27.81, WideStencil),
        e("cre-d", 8926, 372266, 1, 845, 41.71, NetworkLp),
        e("cre-b", 9648, 398806, 1, 904, 41.34, NetworkLp),
        e("world", 34506, 582064, 1, 972, 16.87, NetworkLp),
        e("mod2", 34774, 604910, 1, 941, 17.40, NetworkLp),
        e("finan512", 74752, 615774, 3, 1449, 8.24, LatticeHubs),
    ]
}

/// Looks up a catalog entry by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<CatalogEntry> {
    catalog()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fourteen_entries_in_nnz_order() {
        let c = catalog();
        assert_eq!(c.len(), 14);
        for w in c.windows(2) {
            assert!(
                w[0].paper.nnz <= w[1].paper.nnz,
                "catalog must be nnz-sorted"
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("sherman3").is_some());
        assert!(by_name("SHERMAN3").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scaled_generation_dimensions() {
        for entry in catalog() {
            let a = entry.generate_scaled(16, 1);
            // Dimensions near rows/16 (grid families round to squares).
            let target = (entry.paper.rows / 16).max(16) as f64;
            let n = a.nrows() as f64;
            assert!(
                n >= target * 0.9 && n <= target * 1.3,
                "{}: n={} target={}",
                entry.name,
                n,
                target
            );
            assert!(a.is_square());
            assert!(
                a.has_full_diagonal(),
                "{} analogue must have a diagonal",
                entry.name
            );
            assert!(
                a.pattern_symmetric(),
                "{} analogue should be symmetric",
                entry.name
            );
        }
    }

    #[test]
    fn determinism() {
        let e = by_name("ken-11").unwrap();
        assert_eq!(e.generate_scaled(8, 3), e.generate_scaled(8, 3));
        assert_ne!(e.generate_scaled(8, 3), e.generate_scaled(8, 4));
    }

    #[test]
    fn average_density_roughly_matches_paper() {
        // Spot-check at scale 8: per-row averages should be within ~40% of
        // the paper's (generators are approximate by design).
        for name in ["bcspwr10", "ken-11", "cq9", "vibrobox", "finan512"] {
            let e = by_name(name).unwrap();
            let s = e.measured_stats(8, 1);
            let ratio = s.row_avg / e.paper.avg;
            assert!(
                (0.5..=1.6).contains(&ratio),
                "{name}: measured avg {} vs paper {} (ratio {ratio})",
                s.row_avg,
                e.paper.avg
            );
        }
    }

    #[test]
    fn hubs_present_in_network_lp_analogues() {
        let e = by_name("cre-d").unwrap();
        let s = e.measured_stats(8, 1);
        assert!(
            s.row_max as f64 > 4.0 * s.row_avg,
            "expected skewed degrees"
        );
    }
}
