//! ASCII "spy" plots: terminal visualization of sparsity patterns.
//!
//! Each character cell aggregates a block of the matrix; density maps to
//! a ramp of glyphs. Used by the `fgh spy` CLI command and handy when
//! eyeballing generator output against the original matrices' spy plots.

use crate::csr::CsrMatrix;

/// Density ramp from empty to full.
const RAMP: [char; 5] = ['.', '\u{2591}', '\u{2592}', '\u{2593}', '\u{2588}'];

/// Renders the sparsity pattern of `a` as an ASCII grid at most
/// `max_cells` characters wide/tall (aspect preserved for square
/// matrices). Returns a newline-separated string.
pub fn spy_pattern(a: &CsrMatrix, max_cells: u32) -> String {
    let (rows, cols) = (a.nrows().max(1), a.ncols().max(1));
    let cells_r = rows.min(max_cells).max(1);
    let cells_c = cols.min(max_cells).max(1);
    let mut counts = vec![0u32; (cells_r * cells_c) as usize];
    for (i, j, _) in a.iter() {
        let r = (i as u64 * cells_r as u64 / rows as u64) as u32; // lint: checked-cast — quotient < cells_r, a small display grid
        let c = (j as u64 * cells_c as u64 / cols as u64) as u32; // lint: checked-cast — quotient < cells_c, a small display grid
        counts[(r * cells_c + c) as usize] += 1;
    }
    // Cell capacity for normalization.
    let cell_rows = rows.div_ceil(cells_r) as f64;
    let cell_cols = cols.div_ceil(cells_c) as f64;
    let cap = (cell_rows * cell_cols).max(1.0);
    let mut out = String::with_capacity(((cells_c + 1) * cells_r) as usize);
    for r in 0..cells_r {
        for c in 0..cells_c {
            let d = counts[(r * cells_c + c) as usize] as f64 / cap;
            let idx = if d <= 0.0 {
                0
            } else {
                (1.0 + d.min(1.0) * 3.0).round() as usize
            };
            out.push(RAMP[idx.min(4)]);
        }
        out.push('\n');
    }
    out
}

/// Renders an ownership map: each character cell shows the *dominant
/// owner* of the nonzeros it covers (base-36 digit), or `.` when empty.
/// `owner` must be parallel to the CSR iteration order.
pub fn spy_owners(a: &CsrMatrix, owner: &[u32], max_cells: u32) -> String {
    assert_eq!(owner.len(), a.nnz(), "one owner per nonzero");
    let (rows, cols) = (a.nrows().max(1), a.ncols().max(1));
    let cells_r = rows.min(max_cells).max(1);
    let cells_c = cols.min(max_cells).max(1);
    let k = owner
        .iter()
        .copied()
        .max()
        .map(|m| m as usize + 1)
        .unwrap_or(1);
    let mut counts = vec![0u32; (cells_r * cells_c) as usize * k];
    for (e, (i, j, _)) in a.iter().enumerate() {
        let r = (i as u64 * cells_r as u64 / rows as u64) as u32; // lint: checked-cast — quotient < cells_r, a small display grid
        let c = (j as u64 * cells_c as u64 / cols as u64) as u32; // lint: checked-cast — quotient < cells_c, a small display grid
        counts[((r * cells_c + c) as usize) * k + owner[e] as usize] += 1;
    }
    let digit = |p: usize| char::from_digit((p % 36) as u32, 36).unwrap_or('?'); // lint: checked-cast — p % 36 < 36
    let mut out = String::with_capacity(((cells_c + 1) * cells_r) as usize);
    for r in 0..cells_r {
        for c in 0..cells_c {
            let cell = &counts[((r * cells_c + c) as usize) * k..][..k];
            match cell.iter().enumerate().max_by_key(|&(_, &n)| n) {
                Some((p, &n)) if n > 0 => out.push(digit(p)),
                _ => out.push('.'),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn spy_pattern_shape() {
        let a = CsrMatrix::identity(100);
        let s = spy_pattern(&a, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.chars().count() == 10));
        // Diagonal cells are non-empty, corners off-diagonal empty.
        assert_ne!(lines[0].chars().next().unwrap(), '.');
        assert_eq!(lines[0].chars().last().unwrap(), '.');
        assert_eq!(lines[9].chars().next().unwrap(), '.');
    }

    #[test]
    fn spy_small_matrix_not_upscaled() {
        let a = CsrMatrix::identity(3);
        let s = spy_pattern(&a, 50);
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn spy_owners_dominant() {
        // 4x4: upper-left block owned by 0, lower-right by 1.
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 0, 1.0),
                    (2, 3, 1.0),
                    (3, 3, 1.0),
                ],
            )
            .unwrap(),
        );
        let owner = vec![0u32, 0, 0, 1, 1];
        let s = spy_owners(&a, &owner, 2);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].chars().next().unwrap(), '0');
        assert_eq!(lines[1].chars().last().unwrap(), '1');
        assert_eq!(lines[1].chars().next().unwrap(), '.');
    }

    #[test]
    fn spy_owners_base36() {
        let a = CsrMatrix::identity(2);
        let owner = vec![10u32, 35];
        let s = spy_owners(&a, &owner, 2);
        assert!(s.contains('a'));
        assert!(s.contains('z'));
    }

    #[test]
    #[should_panic(expected = "one owner per nonzero")]
    fn spy_owners_length_checked() {
        let a = CsrMatrix::identity(2);
        spy_owners(&a, &[0], 2);
    }
}
