//! Synthetic sparse-matrix generators.
//!
//! The paper evaluates on 14 real matrices (finite-difference problems,
//! power grids, network/interior-point LP matrices, finite-element models,
//! multistage stochastic programs). Without access to those collections we
//! synthesize structurally analogous patterns; each generator here mimics
//! one of those application domains. The [`crate::catalog`] module combines
//! them into analogues of the specific Table-1 matrices.
//!
//! All symmetric generators can emit Laplacian-style values
//! (`a_ii = degree_i + 1`, `a_ij = -1`), which makes the matrices symmetric
//! positive definite — handy for the CG solver example.

// Infallible-by-construction: every generator pushes indices it just drew
// from `0..nrows` / `0..ncols`, so `CooMatrix::push` cannot fail here. The
// generators are developer-facing (synthetic test data), not an untrusted
// input path.
#![allow(clippy::expect_used)]

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{CooMatrix, CsrMatrix};

/// How to assign numeric values to generated patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueMode {
    /// Every stored entry is `1.0`.
    Ones,
    /// Off-diagonal entries are `-1.0`, diagonals are `degree + 1.0`
    /// (diagonally dominant, SPD for symmetric patterns).
    Laplacian,
}

/// Builds a CSR matrix from a symmetric adjacency list (`adj[i]` lists the
/// neighbors of `i`, each undirected edge present in both lists), adding a
/// full diagonal.
fn from_adjacency(adj: Vec<Vec<u32>>, values: ValueMode) -> CsrMatrix {
    let n = adj.len() as u32; // lint: checked-cast — generator sizes are u32-bounded
    let nnz: usize = adj.iter().map(|a| a.len()).sum::<usize>() + n as usize;
    let mut coo = CooMatrix::with_capacity(n, n, nnz);
    for (i, neigh) in adj.iter().enumerate() {
        let i = i as u32; // lint: checked-cast — i < adj.len() = n, a u32
        let deg = neigh.len() as f64;
        let dv = match values {
            ValueMode::Ones => 1.0,
            ValueMode::Laplacian => deg + 1.0,
        };
        coo.push(i, i, dv).expect("in bounds");
        for &j in neigh {
            let ov = match values {
                ValueMode::Ones => 1.0,
                ValueMode::Laplacian => -1.0,
            };
            coo.push(i, j, ov).expect("in bounds");
        }
    }
    CsrMatrix::from_coo(coo)
}

/// Uniformly random `nrows x ncols` pattern with approximately `nnz`
/// nonzeros (duplicates collapse). When `ensure_diag` is set (square
/// matrices only) every `a_ii` is added.
pub fn random_general(
    nrows: u32,
    ncols: u32,
    nnz: usize,
    ensure_diag: bool,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz + nrows as usize);
    if ensure_diag && nrows == ncols {
        for i in 0..nrows {
            coo.push(i, i, 1.0).expect("in bounds");
        }
    }
    for _ in 0..nnz {
        let i = rng.gen_range(0..nrows);
        let j = rng.gen_range(0..ncols);
        coo.push(i, j, rng.gen_range(-1.0..1.0)).expect("in bounds");
    }
    CsrMatrix::from_coo(coo)
}

/// Symmetric banded matrix of order `n` with half-bandwidth `half_bw`;
/// each in-band off-diagonal pair is kept with probability `density`.
pub fn banded(
    n: u32,
    half_bw: u32,
    density: f64,
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for i in 0..n {
        for d in 1..=half_bw {
            if i + d < n && rng.gen_bool(density) {
                adj[i as usize].push(i + d);
                adj[(i + d) as usize].push(i);
            }
        }
    }
    from_adjacency(adj, values)
}

/// 2D 5-point finite-difference stencil on an `nx x ny` grid (order
/// `nx * ny`), with each off-diagonal link kept with probability `keep`
/// (use `1.0` for the plain Laplacian). Models matrices like `sherman3`.
pub fn grid5(nx: u32, ny: u32, keep: f64, values: ValueMode, rng: &mut impl Rng) -> CsrMatrix {
    grid_stencil(nx, ny, 1, false, keep, values, rng)
}

/// 2D 9-point stencil (adds diagonal links) — denser FD/FE meshes.
pub fn grid9(nx: u32, ny: u32, keep: f64, values: ValueMode, rng: &mut impl Rng) -> CsrMatrix {
    grid_stencil(nx, ny, 1, true, keep, values, rng)
}

/// Wide-stencil grid: couples every node within Chebyshev radius `radius`
/// (a `(2r+1)²−1`-point stencil). Mimics higher-order FE discretizations
/// such as `vibrobox` (average ≈ 25–28 nonzeros per row for `radius = 2`).
pub fn wide_stencil(
    nx: u32,
    ny: u32,
    radius: u32,
    keep: f64,
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    grid_stencil(nx, ny, radius, true, keep, values, rng)
}

fn grid_stencil(
    nx: u32,
    ny: u32,
    radius: u32,
    diagonal_links: bool,
    keep: f64,
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let n = (nx as usize) * (ny as usize);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let idx = |x: u32, y: u32| (y as usize * nx as usize + x as usize) as u32; // lint: checked-cast — grid has nx*ny cells, validated to fit u32
    for y in 0..ny {
        for x in 0..nx {
            let u = idx(x, y);
            // Enumerate only "forward" offsets so each undirected edge is
            // considered once.
            for dy in 0..=radius {
                let lo_dx = if dy == 0 { 1 } else { -(radius as i64) };
                for dx in lo_dx..=radius as i64 {
                    if dy == 0 && dx <= 0 {
                        continue;
                    }
                    if !diagonal_links && dx != 0 && dy != 0 {
                        continue;
                    }
                    let nxp = x as i64 + dx;
                    let nyp = y as i64 + dy as i64;
                    if nxp < 0 || nxp >= nx as i64 || nyp >= ny as i64 {
                        continue;
                    }
                    if keep < 1.0 && !rng.gen_bool(keep) {
                        continue;
                    }
                    let v = idx(nxp as u32, nyp as u32); // lint: checked-cast — neighbour coords bounds-checked against nx/ny
                    adj[u as usize].push(v);
                    adj[v as usize].push(u);
                }
            }
        }
    }
    from_adjacency(adj, values)
}

/// Power-transmission-network topology: a random spanning tree over `n`
/// buses plus `extra` locally-biased reinforcement edges, degree-capped at
/// `max_degree`. Low, tightly bounded degrees — the structure of `bcspwr10`.
pub fn power_grid(
    n: u32,
    extra: usize,
    max_degree: usize,
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    assert!(n > 0, "power_grid needs at least one bus");
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    // Random tree: node i attaches to a random earlier node, biased toward
    // recent nodes to create long stringy feeders like real grids.
    for i in 1..n {
        let lo = i.saturating_sub(50);
        let p = rng.gen_range(lo..i);
        adj[i as usize].push(p);
        adj[p as usize].push(i);
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra && attempts < extra * 20 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        // Locally biased second endpoint.
        let span = 200.min(n as usize - 1) as u32; // lint: checked-cast — min with 200
        let off = rng.gen_range(1..=span);
        let v = if rng.gen_bool(0.5) {
            u.saturating_sub(off)
        } else {
            (u + off).min(n - 1)
        };
        if u == v
            || adj[u as usize].len() >= max_degree
            || adj[v as usize].len() >= max_degree
            || adj[u as usize].contains(&v)
        {
            continue;
        }
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        added += 1;
    }
    from_adjacency(adj, values)
}

/// Scale-free (Barabási–Albert style preferential attachment) graph with
/// `edges_per_node` links added per new node. Produces the skewed degree
/// distributions of network-LP normal-equation matrices (`ken`, `cre`,
/// `cq9`, `co9`, `nl`, `world`, `mod2`): most rows sparse, a few hubs with
/// hundreds of nonzeros.
pub fn scale_free(n: u32, edges_per_node: f64, values: ValueMode, rng: &mut impl Rng) -> CsrMatrix {
    assert!(n >= 2, "scale_free needs at least two nodes");
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    // Endpoint multiset for preferential attachment.
    let mut endpoints: Vec<u32> = Vec::with_capacity((n as usize) * (edges_per_node as usize + 1));
    adj[0].push(1);
    adj[1].push(0);
    endpoints.push(0);
    endpoints.push(1);
    let m_floor = edges_per_node.floor() as usize;
    let frac = edges_per_node - m_floor as f64;
    for i in 2..n {
        let m = m_floor + usize::from(rng.gen_bool(frac));
        let m = m.max(1).min(i as usize);
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            // Mix preferential attachment with uniform choice to soften the
            // hub tail slightly (matches the observed max degrees better).
            let t = if rng.gen_bool(0.8) && !endpoints.is_empty() {
                endpoints[rng.gen_range(0..endpoints.len())]
            } else {
                rng.gen_range(0..i)
            };
            if t != i && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            adj[i as usize].push(t);
            adj[t as usize].push(i);
            endpoints.push(i);
            endpoints.push(t);
        }
    }
    from_adjacency(adj, values)
}

/// Multistage block-structured matrix: `blocks` diagonal blocks of size
/// `block_size`, each internally banded (half-bandwidth `half_bw`), with
/// `links_per_block` interface rows per block that couple densely
/// (`link_span` targets) into the next block. Mimics multistage stochastic
/// programs (`pltexpA4-6`) and, with hub links, `finan512`.
pub fn block_multistage(
    blocks: u32,
    block_size: u32,
    half_bw: u32,
    links_per_block: u32,
    link_span: u32,
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let n = (blocks as usize) * (block_size as usize);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let base = |b: u32| b as usize * block_size as usize;
    for b in 0..blocks {
        let s = base(b) as u32; // lint: checked-cast — block base index < n, a u32
                                // Banded interior.
        for i in 0..block_size {
            for d in 1..=half_bw {
                if i + d < block_size {
                    let (u, v) = ((s + i) as usize, (s + i + d) as usize);
                    adj[u].push(s + i + d);
                    adj[v].push(s + i);
                }
            }
        }
        // Interface rows coupling into the next block.
        if b + 1 < blocks {
            let ns = base(b + 1) as u32; // lint: checked-cast — block base index < n, a u32
            for l in 0..links_per_block {
                let u = s + rng.gen_range(0..block_size.max(1));
                let _ = l;
                let span = link_span.min(block_size);
                let mut targets: Vec<u32> = (0..block_size).collect();
                targets.shuffle(rng);
                for &t in targets.iter().take(span as usize) {
                    let v = ns + t;
                    if !adj[u as usize].contains(&v) {
                        adj[u as usize].push(v);
                        adj[v as usize].push(u);
                    }
                }
            }
        }
    }
    from_adjacency(adj, values)
}

/// Ring lattice (each node linked to its `k` nearest successors) plus
/// `hubs` hub nodes each wired to `hub_degree` uniformly random nodes.
/// Mimics `finan512` (min degree 3, a few degree-1400+ hubs).
pub fn lattice_with_hubs(
    n: u32,
    k: u32,
    hubs: u32,
    hub_degree: u32,
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            adj[i as usize].push(j);
            adj[j as usize].push(i);
        }
    }
    for _ in 0..hubs {
        let h = rng.gen_range(0..n);
        let mut added = 0;
        let mut guard = 0;
        while added < hub_degree && guard < hub_degree * 10 {
            guard += 1;
            let t = rng.gen_range(0..n);
            if t != h && !adj[h as usize].contains(&t) {
                adj[h as usize].push(t);
                adj[t as usize].push(h);
                added += 1;
            }
        }
    }
    from_adjacency(adj, values)
}

/// Rectangular network-LP staircase constraint matrix `A` (rows =
/// constraints, cols = variables): each column has `nnz_per_col` entries in
/// a local row window, plus `dense_cols` columns with `dense_col_nnz`
/// scattered entries. Feed to [`aat_pattern`] to obtain the square
/// normal-equation matrix interior-point methods iterate with.
pub fn lp_staircase(
    nrows: u32,
    ncols: u32,
    nnz_per_col: u32,
    dense_cols: u32,
    dense_col_nnz: u32,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(
        nrows,
        ncols,
        (ncols * nnz_per_col + dense_cols * dense_col_nnz) as usize,
    );
    for j in 0..ncols {
        // Staircase window: columns sweep down the rows.
        let center = ((j as u64 * nrows as u64) / ncols.max(1) as u64) as u32; // lint: checked-cast — quotient < nrows, a u32
        for _ in 0..nnz_per_col {
            let off = rng.gen_range(0..40u32);
            let i = (center + off) % nrows.max(1);
            coo.push(i, j, rng.gen_range(-1.0..1.0)).expect("in bounds");
        }
    }
    for d in 0..dense_cols {
        let j = (d * ncols / dense_cols.max(1)).min(ncols.saturating_sub(1));
        for _ in 0..dense_col_nnz {
            let i = rng.gen_range(0..nrows);
            coo.push(i, j, rng.gen_range(-1.0..1.0)).expect("in bounds");
        }
    }
    CsrMatrix::from_coo(coo)
}

/// R-MAT (recursive matrix) generator: `nnz` edges placed by recursive
/// quadrant descent with probabilities `(a, b, c, d)`, `a+b+c+d = 1`.
/// The classic (0.57, 0.19, 0.19, 0.05) setting yields power-law
/// degree distributions with community structure — a second family of
/// skewed patterns alongside [`scale_free`], useful for robustness
/// checks of the decomposition models. The pattern is symmetrized and a
/// full diagonal is added so the result is a valid SpMV test matrix.
pub fn rmat(
    scale: u32,
    nnz: usize,
    probs: (f64, f64, f64, f64),
    values: ValueMode,
    rng: &mut impl Rng,
) -> CsrMatrix {
    let (a, b, c, d) = probs;
    assert!(
        (a + b + c + d - 1.0).abs() < 1e-9,
        "probabilities must sum to 1"
    );
    assert!((1..=24).contains(&scale), "scale in 1..=24");
    let n = 1u32 << scale;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < nnz && attempts < nnz * 4 {
        attempts += 1;
        let (mut i, mut j) = (0u32, 0u32);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (di, dj) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            i |= di << level;
            j |= dj << level;
        }
        if i == j || adj[i as usize].contains(&j) {
            continue;
        }
        adj[i as usize].push(j);
        adj[j as usize].push(i);
        placed += 1;
    }
    from_adjacency(adj, values)
}

/// The structural pattern of `A·Aᵀ` (values = number of shared columns,
/// i.e. the inner-product term count). Always square, symmetric, and with a
/// full diagonal whenever every row of `A` is non-empty.
pub fn aat_pattern(a: &CsrMatrix) -> CsrMatrix {
    let csc = a.to_csc();
    let n = a.nrows();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz() * 4);
    // For each column, the rows it touches form a clique in A·Aᵀ.
    for j in 0..a.ncols() {
        let rows = csc.col_rows(j);
        for (pi, &r) in rows.iter().enumerate() {
            coo.push(r, r, 1.0).expect("in bounds");
            for &s in &rows[pi + 1..] {
                coo.push(r, s, 1.0).expect("in bounds");
                coo.push(s, r, 1.0).expect("in bounds");
            }
        }
    }
    CsrMatrix::from_coo(coo)
}

/// A structure-only description of a huge symmetric banded pattern: full
/// diagonal plus mirrored bands at the given offsets. Nothing is stored
/// per entry — `O(bands)` memory regardless of `n` — so parameterizations
/// whose fine-grain hypergraphs exceed `u32::MAX` *pins* are describable
/// (and streamable to disk) without a multi-gigabyte fixture. The u64 CI
/// path materializes small instances with [`BigPattern::to_csr`] and
/// asserts the scaling arithmetic on the huge ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigPattern {
    n: u64,
    bands: Vec<u64>,
}

impl BigPattern {
    /// A pattern of order `n` with the main diagonal and symmetric bands
    /// at the given offsets (deduplicated; offsets `0` or `>= n` are
    /// ignored).
    pub fn new(n: u64, bands: &[u64]) -> Self {
        let mut bands: Vec<u64> = bands.iter().copied().filter(|&d| d > 0 && d < n).collect();
        bands.sort_unstable();
        bands.dedup();
        BigPattern { n, bands }
    }

    /// Matrix order.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exact nonzero count: `n` diagonal entries plus `2 (n - d)` per band.
    pub fn nnz(&self) -> u64 {
        self.n + self.bands.iter().map(|&d| 2 * (self.n - d)).sum::<u64>()
    }

    /// Pin count of the fine-grain hypergraph this pattern induces: every
    /// nonzero joins one row net and one column net, and the full diagonal
    /// means no dummy vertices — `2 · nnz` exactly.
    pub fn fine_grain_pins(&self) -> u64 {
        2 * self.nnz()
    }

    /// The index width [`crate::IndexWidth::select`] assigns this pattern.
    pub fn width(&self) -> crate::IndexWidth {
        crate::IndexWidth::select(self.n, self.n, self.nnz())
    }

    /// Iterates the entries in row-major order with sorted columns, values
    /// implicitly `1.0`. Streaming: `O(bands)` transient state.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.n).flat_map(move |i| {
            let lower = self
                .bands
                .iter()
                .rev()
                .filter_map(move |&d| i.checked_sub(d));
            let upper = self.bands.iter().filter_map(move |&d| {
                let j = i + d;
                (j < self.n).then_some(j)
            });
            lower
                .chain(std::iter::once(i))
                .chain(upper)
                .map(move |j| (i, j))
        })
    }

    /// Materializes the pattern as CSR at an explicit width (all values
    /// `1.0`). Intended for CI-sized parameterizations; a pattern too big
    /// for the width is a typed [`crate::SparseError::TooLarge`].
    pub fn to_csr<I: crate::IndexType>(&self) -> crate::Result<CsrMatrix<I>> {
        let n = I::checked(self.n, "matrix order")?;
        let nnz = usize::try_from(self.nnz()).map_err(|_| crate::SparseError::TooLarge {
            what: "nonzero count",
            value: self.nnz(),
            max: usize::MAX as u64,
        })?;
        let mut coo = CooMatrix::with_capacity(n, n, nnz);
        for (i, j) in self.entries() {
            coo.push(I::from_index(i as usize), I::from_index(j as usize), 1.0)
                .expect("band entries are in bounds");
        }
        Ok(CsrMatrix::from_coo(coo))
    }

    /// Streams the pattern as a `pattern symmetric` Matrix Market document
    /// (lower triangle plus diagonal), never holding more than one line in
    /// memory — this is how an on-disk fixture beyond RAM size is written.
    pub fn write_matrix_market_pattern(&self, mut w: impl std::io::Write) -> crate::Result<()> {
        writeln!(w, "%%MatrixMarket matrix coordinate pattern symmetric")?;
        writeln!(w, "% BigPattern n={} bands={:?}", self.n, self.bands)?;
        let stored = self.n + self.bands.iter().map(|&d| self.n - d).sum::<u64>();
        writeln!(w, "{} {} {}", self.n, self.n, stored)?;
        for i in 0..self.n {
            // Lower triangle, ascending columns, 1-based.
            for &d in self.bands.iter().rev() {
                if let Some(j) = i.checked_sub(d) {
                    writeln!(w, "{} {}", i + 1, j + 1)?;
                }
            }
            writeln!(w, "{} {}", i + 1, i + 1)?;
        }
        w.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::MatrixStats;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn random_general_bounds_and_diag() {
        let a = random_general(50, 50, 200, true, &mut rng());
        assert!(a.has_full_diagonal());
        assert!(a.nnz() >= 50);
        assert!(a.nnz() <= 250);
    }

    #[test]
    fn grid5_is_symmetric_spd_shape() {
        let a = grid5(10, 10, 1.0, ValueMode::Laplacian, &mut rng());
        assert_eq!(a.nrows(), 100);
        assert!(a.pattern_symmetric());
        assert!(a.has_full_diagonal());
        // Interior nodes have 4 neighbors + diagonal.
        let s = MatrixStats::compute(&a);
        assert_eq!(s.row_max, 5);
        assert_eq!(s.row_min, 3);
    }

    #[test]
    fn grid9_has_diagonal_links() {
        let a = grid9(5, 5, 1.0, ValueMode::Ones, &mut rng());
        // Center node (2,2) = 12 has 8 neighbors + self.
        assert_eq!(a.row_nnz(12), 9);
        assert!(a.pattern_symmetric());
    }

    #[test]
    fn wide_stencil_degree() {
        let a = wide_stencil(9, 9, 2, 1.0, ValueMode::Ones, &mut rng());
        // Center node has 24 neighbors + self.
        let center = 4 * 9 + 4;
        assert_eq!(a.row_nnz(center), 25);
        assert!(a.pattern_symmetric());
    }

    #[test]
    fn power_grid_connected_low_degree() {
        let a = power_grid(500, 120, 14, ValueMode::Ones, &mut rng());
        let s = MatrixStats::compute(&a);
        assert!(s.row_max <= 15, "degree cap exceeded: {}", s.row_max);
        assert!(s.row_min >= 2, "tree guarantees degree >= 1 plus diagonal");
        assert!(a.pattern_symmetric());
        assert!(a.has_full_diagonal());
    }

    #[test]
    fn scale_free_has_hubs() {
        let a = scale_free(2000, 3.0, ValueMode::Ones, &mut rng());
        let s = MatrixStats::compute(&a);
        assert!(s.row_max > 30, "expected hub rows, max was {}", s.row_max);
        assert!(a.pattern_symmetric());
        assert!(
            (s.row_avg - 7.0).abs() < 2.0,
            "avg {} should be near 2m+1",
            s.row_avg
        );
    }

    #[test]
    fn laplacian_values_are_spd_like() {
        let a = grid5(6, 6, 1.0, ValueMode::Laplacian, &mut rng());
        for i in 0..a.nrows() {
            let diag = a.get(i, i).unwrap();
            let off: f64 = a
                .row_vals(i)
                .iter()
                .zip(a.row_cols(i))
                .filter(|(_, &j)| j != i)
                .map(|(v, _)| v.abs())
                .sum();
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn block_multistage_structure() {
        let a = block_multistage(4, 100, 3, 2, 30, ValueMode::Ones, &mut rng());
        assert_eq!(a.nrows(), 400);
        assert!(a.pattern_symmetric());
        // No entry may couple non-adjacent blocks.
        for (i, j, _) in a.iter() {
            let (bi, bj) = (i / 100, j / 100);
            assert!(
                bi.abs_diff(bj) <= 1,
                "entry ({i},{j}) spans non-adjacent blocks"
            );
        }
    }

    #[test]
    fn lattice_with_hubs_degrees() {
        let a = lattice_with_hubs(1000, 2, 3, 200, ValueMode::Ones, &mut rng());
        let s = MatrixStats::compute(&a);
        assert!(
            s.row_min >= 5,
            "lattice base degree 4 + diag, got {}",
            s.row_min
        );
        assert!(
            s.row_max >= 150,
            "hubs should be high degree, got {}",
            s.row_max
        );
        assert!(a.pattern_symmetric());
    }

    #[test]
    fn aat_pattern_is_square_symmetric() {
        let a = lp_staircase(300, 450, 2, 3, 40, &mut rng());
        let m = aat_pattern(&a);
        assert_eq!(m.nrows(), 300);
        assert!(m.is_square());
        assert!(m.pattern_symmetric());
    }

    #[test]
    fn aat_pattern_small_exact() {
        // A = [1 0 1; 0 1 1] -> AAᵀ pattern full 2x2 (rows share col 2).
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                2,
                3,
                vec![(0, 0, 1.0), (0, 2, 1.0), (1, 1, 1.0), (1, 2, 1.0)],
            )
            .unwrap(),
        );
        let m = aat_pattern(&a);
        assert_eq!(m.nnz(), 4);
        assert!(m.contains(0, 1) && m.contains(1, 0));
        // Diagonal counts = row nnz of A; shared-column count on off-diagonal.
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.get(0, 1), Some(1.0));
    }

    #[test]
    fn rmat_skewed_and_symmetric() {
        let a = rmat(
            10,
            4000,
            (0.57, 0.19, 0.19, 0.05),
            ValueMode::Ones,
            &mut rng(),
        );
        assert_eq!(a.nrows(), 1024);
        assert!(a.pattern_symmetric());
        assert!(a.has_full_diagonal());
        let s = MatrixStats::compute(&a);
        assert!(
            s.row_max as f64 > 3.0 * s.row_avg,
            "R-MAT should be skewed: max {} avg {}",
            s.row_max,
            s.row_avg
        );
    }

    #[test]
    #[should_panic(expected = "probabilities must sum to 1")]
    fn rmat_validates_probs() {
        rmat(4, 10, (0.5, 0.5, 0.5, 0.5), ValueMode::Ones, &mut rng());
    }

    #[test]
    fn big_pattern_counts_and_entries() {
        let p = BigPattern::new(6, &[1, 3, 0, 99, 3]);
        assert_eq!(p.n(), 6);
        // diag 6 + band1 2*5 + band3 2*3 = 22
        assert_eq!(p.nnz(), 22);
        assert_eq!(p.fine_grain_pins(), 44);
        assert_eq!(p.entries().count(), 22);
        let a: CsrMatrix<u64> = p.to_csr().unwrap();
        assert_eq!(a.nnz(), 22);
        assert!(a.pattern_symmetric());
        assert!(a.has_full_diagonal());
        // Same matrix at u32 width.
        let b: CsrMatrix<u32> = p.to_csr().unwrap();
        assert_eq!(a.nnz(), b.nnz());
    }

    #[test]
    fn big_pattern_crosses_u32_pin_threshold_cheaply() {
        // ~3e9 nonzeros from five bands on a 268M-order matrix: the
        // fine-grain hypergraph has > u32::MAX pins, yet the descriptor is
        // a few dozen bytes.
        let n = 1u64 << 28;
        let p = BigPattern::new(n, &[1, 2, 7, 64, 4096]);
        assert!(
            p.fine_grain_pins() > u32::MAX as u64,
            "{}",
            p.fine_grain_pins()
        );
        assert_eq!(p.width(), crate::IndexWidth::U64);
        // Entry enumeration is lazy — peeking at the stream allocates
        // nothing proportional to nnz.
        assert_eq!(p.entries().nth(6), Some((1, 0)));
    }

    #[test]
    fn big_pattern_streams_matrix_market() {
        let p = BigPattern::new(5, &[2]);
        let mut buf = Vec::new();
        p.write_matrix_market_pattern(&mut buf).unwrap();
        let coo = crate::io::read_matrix_market_from(buf.as_slice()).unwrap();
        let a = CsrMatrix::from_coo(coo);
        let direct: CsrMatrix<u32> = p.to_csr().unwrap();
        assert_eq!(a, direct);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a1 = scale_free(500, 2.5, ValueMode::Ones, &mut SmallRng::seed_from_u64(7));
        let a2 = scale_free(500, 2.5, ValueMode::Ones, &mut SmallRng::seed_from_u64(7));
        assert_eq!(a1, a2);
        let a3 = scale_free(500, 2.5, ValueMode::Ones, &mut SmallRng::seed_from_u64(8));
        assert_ne!(a1, a3);
    }
}
