//! Per-row / per-column nonzero statistics — the quantities reported in
//! Table 1 of the paper.

use crate::csr::CsrMatrix;

/// Nonzero-count statistics for a sparse matrix, matching the columns of
/// Table 1: total nonzeros, and the min / max / average number of nonzeros
/// per row and per column.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Number of rows.
    pub nrows: u32,
    /// Number of columns.
    pub ncols: u32,
    /// Total structural nonzeros.
    pub nnz: usize,
    /// Minimum nonzeros in any row.
    pub row_min: usize,
    /// Maximum nonzeros in any row.
    pub row_max: usize,
    /// Average nonzeros per row.
    pub row_avg: f64,
    /// Minimum nonzeros in any column.
    pub col_min: usize,
    /// Maximum nonzeros in any column.
    pub col_max: usize,
    /// Average nonzeros per column.
    pub col_avg: f64,
}

impl MatrixStats {
    /// Computes statistics for `a`.
    pub fn compute(a: &CsrMatrix) -> Self {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let nnz = a.nnz();

        let (mut row_min, mut row_max) = (usize::MAX, 0usize);
        for i in 0..nrows {
            let c = a.row_nnz(i);
            row_min = row_min.min(c);
            row_max = row_max.max(c);
        }
        if nrows == 0 {
            row_min = 0;
        }

        let mut col_counts = vec![0usize; ncols as usize];
        for &j in a.col_idx() {
            col_counts[j as usize] += 1;
        }
        let (mut col_min, mut col_max) = (usize::MAX, 0usize);
        for &c in &col_counts {
            col_min = col_min.min(c);
            col_max = col_max.max(c);
        }
        if ncols == 0 {
            col_min = 0;
        }

        MatrixStats {
            nrows,
            ncols,
            nnz,
            row_min,
            row_max,
            row_avg: if nrows == 0 {
                0.0
            } else {
                nnz as f64 / nrows as f64
            },
            col_min,
            col_max,
            col_avg: if ncols == 0 {
                0.0
            } else {
                nnz as f64 / ncols as f64
            },
        }
    }

    /// Min nonzeros over rows *and* columns combined — the single
    /// "per row/col min" column Table 1 prints for square matrices.
    pub fn rowcol_min(&self) -> usize {
        self.row_min.min(self.col_min)
    }

    /// Max nonzeros over rows and columns combined.
    pub fn rowcol_max(&self) -> usize {
        self.row_max.max(self.col_max)
    }

    /// Average nonzeros per row/column (they coincide for square matrices).
    pub fn rowcol_avg(&self) -> f64 {
        if self.nrows == self.ncols {
            self.row_avg
        } else {
            (self.row_avg + self.col_avg) / 2.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn stats_basic() {
        // [ 1 1 1 ]
        // [ 0 1 0 ]
        // [ 0 1 0 ]
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (0, 2, 1.0),
                    (1, 1, 1.0),
                    (2, 1, 1.0),
                ],
            )
            .unwrap(),
        );
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 5);
        assert_eq!(s.row_min, 1);
        assert_eq!(s.row_max, 3);
        assert!((s.row_avg - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.col_min, 1);
        assert_eq!(s.col_max, 3);
        assert_eq!(s.rowcol_min(), 1);
        assert_eq!(s.rowcol_max(), 3);
    }

    #[test]
    fn stats_empty_matrix() {
        let a = CsrMatrix::from_coo(CooMatrix::new(0, 0));
        let s = MatrixStats::compute(&a);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.row_min, 0);
        assert_eq!(s.col_max, 0);
        assert_eq!(s.row_avg, 0.0);
    }

    #[test]
    fn identity_stats() {
        let s = MatrixStats::compute(&CsrMatrix::identity(10));
        assert_eq!(s.row_min, 1);
        assert_eq!(s.row_max, 1);
        assert_eq!(s.col_min, 1);
        assert_eq!(s.rowcol_avg(), 1.0);
    }
}
