//! Symbolic pattern operations: symmetrization (A + Aᵀ), adjacency
//! structures for the standard graph model.

use crate::csr::CsrMatrix;
use crate::index::IndexType;
use crate::{Result, SparseError};

/// The symmetrized off-diagonal adjacency structure of a square matrix:
/// vertex `i` is adjacent to `j != i` iff `a_ij != 0` or `a_ji != 0`.
///
/// This is the pattern of `A + Aᵀ` with the diagonal removed — exactly the
/// graph the *standard graph model* partitions. For each edge we also record
/// whether both `a_ij` and `a_ji` are structurally present, which determines
/// the edge cost (2 when both, 1 otherwise) in the standard model's
/// communication-volume approximation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymmetrizedPattern<I: IndexType = u32> {
    n: I,
    adj_ptr: Vec<usize>,
    adj: Vec<I>,
    /// `both[e]` is true when the edge `e` comes from a symmetric nonzero
    /// pair (both `a_ij` and `a_ji` structurally nonzero).
    both: Vec<bool>,
}

impl<I: IndexType> SymmetrizedPattern<I> {
    /// Builds the symmetrized off-diagonal pattern of a square matrix.
    pub fn build(a: &CsrMatrix<I>) -> Result<Self> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows().as_u64(),
                ncols: a.ncols().as_u64(),
            });
        }
        let n = a.nrows();
        let t = a.transpose();
        let mut adj_ptr = Vec::with_capacity(n.index() + 1);
        let mut adj: Vec<I> = Vec::new();
        let mut both = Vec::new();
        adj_ptr.push(0);
        for iu in 0..n.index() {
            let i = I::from_index(iu);
            // Merge the sorted neighbor lists of row i of A and row i of Aᵀ,
            // skipping the diagonal.
            let ra = a.row_cols(i);
            let rt = t.row_cols(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ra.len() || q < rt.len() {
                let ca = ra.get(p).copied();
                let ct = rt.get(q).copied();
                let (j, is_both) = match (ca, ct) {
                    (Some(x), Some(y)) if x == y => {
                        p += 1;
                        q += 1;
                        (x, true)
                    }
                    (Some(x), Some(y)) if x < y => {
                        p += 1;
                        (x, false)
                    }
                    (Some(_), Some(y)) => {
                        q += 1;
                        (y, false)
                    }
                    (Some(x), None) => {
                        p += 1;
                        (x, false)
                    }
                    (None, Some(y)) => {
                        q += 1;
                        (y, false)
                    }
                    (None, None) => unreachable!("loop condition"),
                };
                if j != i {
                    adj.push(j);
                    both.push(is_both);
                }
            }
            adj_ptr.push(adj.len());
        }
        Ok(SymmetrizedPattern {
            n,
            adj_ptr,
            adj,
            both,
        })
    }

    /// Number of vertices (matrix order).
    pub fn n(&self) -> I {
        self.n
    }

    /// Number of directed adjacency slots (2x the undirected edge count).
    pub fn adjacency_len(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of vertex `i` (sorted, diagonal excluded).
    pub fn neighbors(&self, i: I) -> &[I] {
        &self.adj[self.adj_ptr[i.index()]..self.adj_ptr[i.index() + 1]]
    }

    /// Per-neighbor "symmetric pair" flags parallel to
    /// [`SymmetrizedPattern::neighbors`].
    pub fn neighbor_both_flags(&self, i: I) -> &[bool] {
        &self.both[self.adj_ptr[i.index()]..self.adj_ptr[i.index() + 1]]
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }
}

impl<I: crate::IndexType> From<CooMatrix<I>> for CsrMatrix<I> {
    fn from(coo: CooMatrix<I>) -> Self {
        CsrMatrix::from_coo(coo)
    }
}

use crate::CooMatrix;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn symmetrize_nonsymmetric() {
        // A = [ 1 1 0 ]
        //     [ 0 1 0 ]
        //     [ 1 0 1 ]
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 1, 1.0),
                    (1, 1, 1.0),
                    (2, 0, 1.0),
                    (2, 2, 1.0),
                ],
            )
            .unwrap(),
        );
        let p = SymmetrizedPattern::build(&a).unwrap();
        assert_eq!(p.neighbors(0), &[1, 2]);
        assert_eq!(p.neighbors(1), &[0]);
        assert_eq!(p.neighbors(2), &[0]);
        assert_eq!(p.num_edges(), 2);
        // Neither edge has a symmetric nonzero pair.
        assert_eq!(p.neighbor_both_flags(0), &[false, false]);
    }

    #[test]
    fn symmetric_pair_flagged() {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap(),
        );
        let p = SymmetrizedPattern::build(&a).unwrap();
        assert_eq!(p.neighbors(0), &[1]);
        assert_eq!(p.neighbor_both_flags(0), &[true]);
        assert_eq!(p.neighbor_both_flags(1), &[true]);
    }

    #[test]
    fn diagonal_only_matrix_has_no_edges() {
        let a = CsrMatrix::identity(5u32);
        let p = SymmetrizedPattern::build(&a).unwrap();
        assert_eq!(p.num_edges(), 0);
        for i in 0..5 {
            assert!(p.neighbors(i).is_empty());
        }
    }

    #[test]
    fn rectangular_rejected() {
        let a: CsrMatrix = CsrMatrix::from_coo(CooMatrix::new(2, 3));
        assert!(SymmetrizedPattern::build(&a).is_err());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![(0, 3, 1.0), (1, 2, 1.0), (2, 0, 1.0), (3, 3, 1.0)],
            )
            .unwrap(),
        );
        let p = SymmetrizedPattern::build(&a).unwrap();
        for i in 0..4u32 {
            for &j in p.neighbors(i) {
                assert!(p.neighbors(j).contains(&i), "edge ({i},{j}) not mirrored");
            }
        }
    }

    #[test]
    fn wide_pattern_matches_narrow() {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                4,
                4,
                vec![(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (0, 3, 1.0)],
            )
            .unwrap(),
        );
        let a64: CsrMatrix<u64> = a.convert_width().unwrap();
        let p32 = SymmetrizedPattern::build(&a).unwrap();
        let p64 = SymmetrizedPattern::build(&a64).unwrap();
        assert_eq!(p32.num_edges(), p64.num_edges());
        for i in 0..4u32 {
            let n32: Vec<u64> = p32.neighbors(i).iter().map(|&j| j as u64).collect();
            assert_eq!(n32, p64.neighbors(i as u64));
            assert_eq!(
                p32.neighbor_both_flags(i),
                p64.neighbor_both_flags(i as u64)
            );
        }
    }
}
