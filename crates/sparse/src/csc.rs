//! Compressed sparse column format.

use fgh_invariant::{invariant, InvariantViolation};

use crate::csr::CsrMatrix;
use crate::index::IndexType;

/// A sparse matrix in compressed sparse column (CSC) format, generic over
/// the index width `I` ([`IndexType`]; `u32` by default).
///
/// Column `j`'s entries occupy `row_idx[col_ptr[j] .. col_ptr[j + 1]]`.
/// Mostly used for column-oriented scans (column nets of the fine-grain
/// model, expand-side communication analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix<I: IndexType = u32> {
    nrows: I,
    ncols: I,
    col_ptr: Vec<usize>,
    row_idx: Vec<I>,
    values: Vec<f64>,
}

impl<I: IndexType> CscMatrix<I> {
    /// Internal constructor: the CSR representation of `Aᵀ` holds exactly
    /// the CSC arrays of `A`.
    pub(crate) fn from_transposed_csr(t: CsrMatrix<I>) -> Self {
        let nrows = t.ncols();
        let ncols = t.nrows();
        let col_ptr = t.row_ptr().to_vec();
        let row_idx = t.col_idx().to_vec();
        let values = t.values().to_vec();
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Builds from a CSR matrix.
    pub fn from_csr(a: &CsrMatrix<I>) -> Self {
        a.to_csc()
    }

    /// Number of rows.
    pub fn nrows(&self) -> I {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> I {
        self.ncols
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The raw column pointer array (length `ncols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The raw row index array (length `nnz`).
    pub fn row_idx(&self) -> &[I] {
        &self.row_idx
    }

    /// The raw value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Row indices of column `j`, sorted ascending.
    pub fn col_rows(&self, j: I) -> &[I] {
        &self.row_idx[self.col_ptr[j.index()]..self.col_ptr[j.index() + 1]]
    }

    /// Values of column `j`, parallel to [`CscMatrix::col_rows`].
    pub fn col_vals(&self, j: I) -> &[f64] {
        &self.values[self.col_ptr[j.index()]..self.col_ptr[j.index() + 1]]
    }

    /// Number of nonzeros in column `j`.
    pub fn col_nnz(&self, j: I) -> usize {
        self.col_ptr[j.index() + 1] - self.col_ptr[j.index()]
    }

    /// Checks the structural invariants: pointer array shape, monotonicity,
    /// parallel index/value arrays, and sorted, unique, in-bounds row
    /// indices per column. Mirrors [`CsrMatrix::validate`] with the roles
    /// of rows and columns swapped.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        const S: &str = "CscMatrix";
        invariant!(
            self.col_ptr.len() == self.ncols.index() + 1,
            S,
            "col_ptr.len",
            "col_ptr has {} entries for {} columns",
            self.col_ptr.len(),
            self.ncols
        );
        invariant!(
            self.col_ptr.first() == Some(&0),
            S,
            "col_ptr.origin",
            "col_ptr[0] = {:?}, expected 0",
            self.col_ptr.first()
        );
        invariant!(
            self.col_ptr.last() == Some(&self.row_idx.len()),
            S,
            "col_ptr.end",
            "col_ptr ends at {:?}, expected nnz = {}",
            self.col_ptr.last(),
            self.row_idx.len()
        );
        invariant!(
            self.row_idx.len() == self.values.len(),
            S,
            "arrays.parallel",
            "row_idx/values have lengths {}/{}",
            self.row_idx.len(),
            self.values.len()
        );
        for j in 0..self.ncols.index() {
            invariant!(
                self.col_ptr[j] <= self.col_ptr[j + 1],
                S,
                "col_ptr.monotone",
                "col_ptr not monotone at column {j}: {} > {}",
                self.col_ptr[j],
                self.col_ptr[j + 1]
            );
            let col = &self.row_idx[self.col_ptr[j]..self.col_ptr[j + 1]];
            for w in col.windows(2) {
                invariant!(
                    w[0] < w[1],
                    S,
                    "rows.sorted_unique",
                    "column {j} rows not sorted/unique: {} then {}",
                    w[0],
                    w[1]
                );
            }
            if let Some(&last) = col.last() {
                invariant!(
                    last < self.nrows,
                    S,
                    "rows.in_bounds",
                    "column {j} has row {last} >= nrows = {}",
                    self.nrows
                );
            }
        }
        Ok(())
    }

    /// Converts back to CSR.
    // Infallible: a well-formed `CscMatrix` (enforced at construction) has
    // sorted pointers and in-bounds indices, which is exactly what
    // `CsrMatrix::from_raw` validates.
    #[allow(clippy::expect_used)]
    pub fn to_csr(&self) -> CsrMatrix<I> {
        // The CSC arrays of A are the CSR arrays of Aᵀ; transpose recovers A.
        let t = CsrMatrix::from_raw(
            self.ncols,
            self.nrows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.values.clone(),
        )
        .expect("CSC invariants imply valid CSR of transpose");
        t.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 2, 2.0),
                    (1, 1, 3.0),
                    (2, 0, 4.0),
                    (2, 2, 5.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn csc_layout() {
        let c = sample().to_csc();
        assert_eq!(c.nnz(), 5);
        assert_eq!(c.col_rows(0), &[0, 2]);
        assert_eq!(c.col_vals(0), &[1.0, 4.0]);
        assert_eq!(c.col_rows(1), &[1]);
        assert_eq!(c.col_nnz(2), 2);
    }

    #[test]
    fn csr_csc_roundtrip() {
        let a = sample();
        assert_eq!(a.to_csc().to_csr(), a);
    }

    #[test]
    fn rectangular_csc() {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 4, vec![(0, 3, 1.0), (1, 0, 2.0)]).unwrap(),
        );
        let c = a.to_csc();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.col_rows(3), &[0]);
        assert_eq!(c.col_rows(1), &[] as &[u32]);
    }
}
