//! Symmetric reordering: reverse Cuthill–McKee (RCM) and permutation
//! application.
//!
//! The paper grows out of a thesis on *partitioning and reordering*;
//! orderings interact with decomposition (they change nothing for the
//! hypergraph models' volumes — a permutation invariance worth testing —
//! but strongly affect bandwidth-based schemes like the checkerboard
//! baseline). RCM is the classic bandwidth-reducing ordering.

use crate::csr::CsrMatrix;
use crate::pattern::SymmetrizedPattern;
use crate::{Result, SparseError};

/// Computes the reverse Cuthill–McKee ordering of a square matrix's
/// symmetrized pattern. Returns a permutation `perm` where `perm[new] =
/// old` (i.e. the vertex visited `new`-th). Handles disconnected graphs
/// (each component ordered from a pseudo-peripheral start).
pub fn rcm_order(a: &CsrMatrix) -> Result<Vec<u32>> {
    let pat = SymmetrizedPattern::build(a)?;
    let n = pat.n();
    let mut visited = vec![false; n as usize];
    let mut order: Vec<u32> = Vec::with_capacity(n as usize);

    // Process components in ascending root-degree order for determinism.
    let mut starts: Vec<u32> = (0..n).collect();
    starts.sort_by_key(|&v| (pat.neighbors(v).len(), v));

    let mut queue: std::collections::VecDeque<u32> = Default::default();
    for &s0 in &starts {
        if visited[s0 as usize] {
            continue;
        }
        let s = pseudo_peripheral(&pat, s0);
        visited[s as usize] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut neigh: Vec<u32> = pat
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| !visited[v as usize])
                .collect();
            neigh.sort_by_key(|&v| (pat.neighbors(v).len(), v));
            for v in neigh {
                visited[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    Ok(order)
}

/// Finds a pseudo-peripheral vertex of `start`'s component by repeated
/// BFS to the farthest minimum-degree vertex.
fn pseudo_peripheral(pat: &SymmetrizedPattern, start: u32) -> u32 {
    let mut s = start;
    let mut last_ecc = 0usize;
    for _ in 0..8 {
        let (far, ecc) = bfs_farthest(pat, s);
        if ecc <= last_ecc {
            return s;
        }
        last_ecc = ecc;
        s = far;
    }
    s
}

fn bfs_farthest(pat: &SymmetrizedPattern, start: u32) -> (u32, usize) {
    let n = pat.n() as usize;
    let mut dist = vec![usize::MAX; n];
    dist[start as usize] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut far = (start, 0usize);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in pat.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                // Prefer low degree among equally far vertices (classic
                // George–Liu heuristic, approximated by last-wins order).
                if du + 1 > far.1 {
                    far = (v, du + 1);
                }
                queue.push_back(v);
            }
        }
    }
    far
}

/// Applies the symmetric permutation `P A Pᵀ`: entry `(i, j)` moves to
/// `(inv[i], inv[j])` where `inv[old] = new` (inverse of the `perm[new] =
/// old` convention returned by [`rcm_order`]).
pub fn permute_symmetric(a: &CsrMatrix, perm: &[u32]) -> Result<CsrMatrix> {
    if !a.is_square() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows() as u64,
            ncols: a.ncols() as u64,
        });
    }
    let n = a.nrows() as usize;
    if perm.len() != n {
        return Err(SparseError::DimensionMismatch(format!(
            "permutation length {} for order {}",
            perm.len(),
            n
        )));
    }
    let mut inv = vec![u32::MAX; n];
    for (new, &old) in perm.iter().enumerate() {
        if old as usize >= n || inv[old as usize] != u32::MAX {
            return Err(SparseError::DimensionMismatch(
                "permutation is not a bijection".into(),
            ));
        }
        inv[old as usize] = new as u32; // lint: checked-cast — permutation index < n, a u32
    }
    let mut coo = crate::CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for (i, j, v) in a.iter() {
        coo.push(inv[i as usize], inv[j as usize], v)?;
    }
    Ok(CsrMatrix::from_coo(coo))
}

/// The matrix bandwidth: `max |i - j|` over structural nonzeros.
pub fn bandwidth(a: &CsrMatrix) -> u32 {
    a.iter().map(|(i, j, _)| i.abs_diff(j)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, ValueMode};
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn rcm_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = gen::grid5(8, 8, 1.0, ValueMode::Ones, &mut rng);
        let p = rcm_order(&a).unwrap();
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn rcm_recovers_banded_structure() {
        // A banded matrix, randomly shuffled, should get most of its
        // bandwidth back under RCM.
        let mut rng = SmallRng::seed_from_u64(2);
        let banded = gen::banded(200, 3, 1.0, ValueMode::Ones, &mut rng);
        let bw0 = bandwidth(&banded);
        let mut shuffle: Vec<u32> = (0..200).collect();
        shuffle.shuffle(&mut rng);
        let scrambled = permute_symmetric(&banded, &shuffle).unwrap();
        assert!(
            bandwidth(&scrambled) > 10 * bw0,
            "shuffle should destroy the band"
        );
        let rcm = rcm_order(&scrambled).unwrap();
        let restored = permute_symmetric(&scrambled, &rcm).unwrap();
        assert!(
            bandwidth(&restored) <= 3 * bw0,
            "RCM bandwidth {} vs original {}",
            bandwidth(&restored),
            bw0
        );
    }

    #[test]
    fn permute_preserves_values_and_symmetry() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = gen::power_grid(100, 30, 10, ValueMode::Laplacian, &mut rng);
        let p = rcm_order(&a).unwrap();
        let b = permute_symmetric(&a, &p).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        assert!(b.pattern_symmetric());
        // Value multiset preserved.
        let mut va: Vec<u64> = a.values().iter().map(|v| v.to_bits()).collect();
        let mut vb: Vec<u64> = b.values().iter().map(|v| v.to_bits()).collect();
        va.sort_unstable();
        vb.sort_unstable();
        assert_eq!(va, vb);
    }

    #[test]
    fn permute_roundtrip_via_inverse() {
        let mut rng = SmallRng::seed_from_u64(4);
        let a = gen::grid5(6, 6, 1.0, ValueMode::Ones, &mut rng);
        let p = rcm_order(&a).unwrap();
        let b = permute_symmetric(&a, &p).unwrap();
        // Build the inverse permutation (perm[new]=old -> inv[old]=new,
        // and applying inv with the same convention undoes it).
        let mut inv = vec![0u32; p.len()];
        for (new, &old) in p.iter().enumerate() {
            inv[new] = old; // apply the inverse mapping
        }
        // inverse of inverse convention: applying p then "p-as-inverse"
        let mut q = vec![0u32; p.len()];
        for (new, &old) in p.iter().enumerate() {
            q[old as usize] = new as u32;
        }
        let back = permute_symmetric(&b, &q).unwrap();
        assert_eq!(back, a);
        let _ = inv;
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two disjoint paths.
        let a = CsrMatrix::from_coo(
            crate::CooMatrix::from_triplets(
                6,
                6,
                vec![
                    (0, 1, 1.0),
                    (1, 0, 1.0),
                    (1, 2, 1.0),
                    (2, 1, 1.0),
                    (3, 4, 1.0),
                    (4, 3, 1.0),
                    (4, 5, 1.0),
                    (5, 4, 1.0),
                ],
            )
            .unwrap(),
        );
        let p = rcm_order(&a).unwrap();
        assert_eq!(p.len(), 6);
        let mut s = p.clone();
        s.sort_unstable();
        assert_eq!(s, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn bad_permutation_rejected() {
        let a = CsrMatrix::identity(3);
        assert!(permute_symmetric(&a, &[0, 1]).is_err());
        assert!(permute_symmetric(&a, &[0, 0, 1]).is_err());
        assert!(permute_symmetric(&a, &[0, 1, 7]).is_err());
    }
}
