//! # fgh-sparse — sparse matrix substrate
//!
//! Sparse matrix data structures and utilities underpinning the fine-grain
//! hypergraph decomposition library:
//!
//! * [`CooMatrix`] — coordinate (triplet) format, the mutable construction
//!   format,
//! * [`CsrMatrix`] — compressed sparse row, the primary analysis/compute
//!   format,
//! * [`CscMatrix`] — compressed sparse column,
//! * [`io`] — Matrix Market (`.mtx`) reading and writing,
//! * [`gen`] — synthetic sparse matrix generators (stencils, power grids,
//!   LP constraint blocks, scale-free patterns, ...),
//! * [`catalog`] — synthetic analogues of the 14 test matrices from Table 1
//!   of the paper (sherman3 ... finan512),
//! * [`stats`] — the per-row/per-column nonzero statistics reported in
//!   Table 1.
//!
//! Indices are generic over [`IndexType`] — `u32` by default (the paper's
//! largest instance has 74 752 rows and 615 774 nonzeros; `u32` keeps the
//! hypergraphs compact) with a `u64` big path for instances whose
//! fine-grain hypergraphs exceed what 32 bits address. Pointer arrays are
//! `usize`, values are `f64`. [`IndexWidth::select`] picks the narrowest
//! width from a parsed header, and [`AnyCooMatrix`] / [`AnyCsrMatrix`]
//! carry a width-erased matrix across API boundaries.

// Robustness contract: this crate parses untrusted input, so the library
// (non-test) code must not panic. Sites that are provably infallible carry
// a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod any;
pub mod catalog;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod gen;
pub mod index;
pub mod io;
pub mod pattern;
pub mod reorder;
pub mod spy;
pub mod stats;

pub use any::{AnyCooMatrix, AnyCsrMatrix};
pub use coo::{CooMatrix, DedupPolicy};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use index::{IndexType, IndexWidth};
pub use stats::MatrixStats;

/// Error type for matrix construction and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// An entry's row or column index is out of the declared bounds.
    /// Coordinates are reported as `u64` so the same error serves both
    /// index widths.
    IndexOutOfBounds {
        row: u64,
        col: u64,
        nrows: u64,
        ncols: u64,
    },
    /// A malformed Matrix Market file, with a human-readable reason.
    Parse(String),
    /// A malformed Matrix Market file, with the 1-based line number where
    /// the problem was detected.
    ParseAt { line: u64, msg: String },
    /// A duplicate `(row, col)` entry rejected by
    /// [`coo::DedupPolicy::Error`].
    DuplicateEntry { row: u64, col: u64 },
    /// An I/O failure while reading/writing a file.
    Io(String),
    /// A declared dimension or count exceeds what the `u32`/`usize` index
    /// types can represent. Carries what overflowed, the declared value,
    /// and the representable maximum — so a 5-billion-row header is a
    /// typed error instead of a silent `as` truncation.
    TooLarge {
        what: &'static str,
        value: u64,
        max: u64,
    },
    /// Operation requires a square matrix.
    NotSquare { nrows: u64, ncols: u64 },
    /// Dimension mismatch between operands (e.g. SpMV with wrong x length).
    DimensionMismatch(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) out of bounds for a {nrows} x {ncols} matrix"
            ),
            SparseError::Parse(msg) => write!(f, "matrix market parse error: {msg}"),
            SparseError::ParseAt { line, msg } => {
                write!(f, "matrix market parse error at line {line}: {msg}")
            }
            SparseError::DuplicateEntry { row, col } => {
                write!(f, "duplicate entry at ({row}, {col})")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
            SparseError::TooLarge { what, value, max } => {
                write!(f, "{what} {value} exceeds the supported maximum {max}")
            }
            SparseError::NotSquare { nrows, ncols } => {
                write!(
                    f,
                    "operation requires a square matrix, got {nrows} x {ncols}"
                )
            }
            SparseError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
