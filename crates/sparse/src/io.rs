//! Matrix Market (`.mtx`) I/O.
//!
//! Supports the `matrix coordinate` format with `real`, `integer`, and
//! `pattern` fields and `general`, `symmetric`, and `skew-symmetric`
//! symmetry qualifiers — enough to read every matrix the paper evaluates
//! straight from the UF/SuiteSparse collection when available.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{CooMatrix, CsrMatrix, Result, SparseError};

/// The value field declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Real floating-point values.
    Real,
    /// Integer values (read as `f64`).
    Integer,
    /// Pattern only — entries have no value; we store `1.0`.
    Pattern,
}

/// The symmetry qualifier declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(i, j)` implies `(j, i)` with equal value.
    Symmetric,
    /// Lower triangle stored; `(i, j)` implies `(j, i)` with negated value.
    SkewSymmetric,
}

/// Reads a Matrix Market file from disk into COO format.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CooMatrix> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Reads Matrix Market data from any reader.
///
/// The parser is strict about structure (every error carries the 1-based
/// line number where it was detected) but lenient about presentation:
/// banner keywords are case-insensitive, and blank lines or trailing
/// whitespace anywhere — including before EOF — are tolerated.
pub fn read_matrix_market_from(reader: impl Read) -> Result<CooMatrix> {
    // Pair every line with its 1-based line number so parse errors point
    // at the offending input.
    let mut lines = BufReader::new(reader).lines().zip(1u64..);
    let at = |line: u64, msg: String| SparseError::ParseAt { line, msg };

    let (header, header_line) = loop {
        match lines.next() {
            Some((line, no)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (line, no);
                }
            }
            None => return Err(SparseError::Parse("empty file".into())),
        }
    };

    let (field, symmetry) = parse_header(&header, header_line)?;

    // Skip comments, find the size line.
    let (size_line, size_line_no) = loop {
        match lines.next() {
            Some((line, no)) => {
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (line, no);
            }
            None => return Err(SparseError::Parse("missing size line".into())),
        }
    };

    // Parse dimensions and nnz as u64 first, then narrow with a typed
    // error: a 5-billion-row header must surface as `TooLarge`, not as a
    // confusing "bad rows" parse failure or a silent truncation.
    let mut it = size_line.split_whitespace();
    let nrows: u32 = narrow_u32(parse_num(it.next(), "rows", size_line_no)?, "row count")?;
    let ncols: u32 = narrow_u32(parse_num(it.next(), "cols", size_line_no)?, "column count")?;
    let nnz: usize = narrow_usize(parse_num(it.next(), "nnz", size_line_no)?, "nonzero count")?;
    if it.next().is_some() {
        return Err(at(size_line_no, "size line has extra fields".into()));
    }
    let stored_max = (nrows as usize).saturating_mul(ncols as usize);
    if nnz > stored_max {
        return Err(at(
            size_line_no,
            format!("declared {nnz} entries exceed the {nrows} x {ncols} capacity {stored_max}"),
        ));
    }

    // Cap the speculative preallocation: a hostile header may declare a
    // huge nnz and then supply no entries, which must not OOM the process.
    const MAX_PREALLOC: usize = 1 << 20;
    let want = if symmetry == MmSymmetry::General {
        nnz
    } else {
        nnz.saturating_mul(2)
    };
    let mut coo = CooMatrix::with_capacity(nrows, ncols, want.min(MAX_PREALLOC));
    let mut seen = 0usize;
    let mut last_line = size_line_no;
    for (line, no) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        last_line = no;
        if seen == nnz {
            return Err(at(no, format!("more entries than the declared {nnz}")));
        }
        let mut it = t.split_whitespace();
        let i: u32 = parse_num(it.next(), "row index", no)?;
        let j: u32 = parse_num(it.next(), "col index", no)?;
        if i == 0 || j == 0 {
            return Err(at(no, "matrix market indices are 1-based".into()));
        }
        let v = match field {
            MmField::Pattern => 1.0,
            MmField::Real | MmField::Integer => it
                .next()
                .ok_or_else(|| at(no, "missing value".into()))?
                .parse::<f64>()
                .map_err(|e| at(no, format!("bad value: {e}")))?,
        };
        if it.next().is_some() {
            return Err(at(no, "entry line has extra fields".into()));
        }
        let (i, j) = (i - 1, j - 1);
        coo.push(i, j, v).map_err(|e| at(no, e.to_string()))?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if i != j {
                    coo.push(j, i, v).map_err(|e| at(no, e.to_string()))?;
                }
            }
            MmSymmetry::SkewSymmetric => {
                if i == j {
                    return Err(at(no, "skew-symmetric matrix with diagonal entry".into()));
                }
                coo.push(j, i, -v).map_err(|e| at(no, e.to_string()))?;
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(at(
            last_line,
            format!("declared {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo)
}

/// Writes a CSR matrix to a Matrix Market file (`general real` coordinate
/// format).
pub fn write_matrix_market(a: &CsrMatrix, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market_to(a, BufWriter::new(file))
}

/// Writes a CSR matrix as Matrix Market data to any writer.
pub fn write_matrix_market_to(a: &CsrMatrix, mut w: impl Write) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by fgh-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {}", i + 1, j + 1, fmt_f64(v))?;
    }
    w.flush()?;
    Ok(())
}

fn fmt_f64(v: f64) -> String {
    // Shortest representation that round-trips.
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

fn parse_header(line: &str, line_no: u64) -> Result<(MmField, MmSymmetry)> {
    let err = |msg: String| SparseError::ParseAt { line: line_no, msg };
    // Banner keywords are matched case-insensitively (files in the wild
    // use `%%MatrixMarket`, `%%matrixmarket`, and everything in between).
    let tokens: Vec<String> = line
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() != 5
        || tokens[0] != "%%matrixmarket"
        || tokens[1] != "matrix"
        || tokens[2] != "coordinate"
    {
        return Err(err(format!(
            "unsupported header: {line:?} (only `matrix coordinate` is supported)"
        )));
    }
    let field = match tokens[3].as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => return Err(err(format!("unsupported field type {other:?}"))),
    };
    let symmetry = match tokens[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(err(format!("unsupported symmetry {other:?}"))),
    };
    Ok((field, symmetry))
}

fn narrow_u32(value: u64, what: &'static str) -> Result<u32> {
    u32::try_from(value).map_err(|_| SparseError::TooLarge {
        what,
        value,
        max: u32::MAX as u64,
    })
}

fn narrow_usize(value: u64, what: &'static str) -> Result<usize> {
    usize::try_from(value).map_err(|_| SparseError::TooLarge {
        what,
        value,
        max: usize::MAX as u64,
    })
}

fn parse_num<T: std::str::FromStr>(token: Option<&str>, what: &str, line: u64) -> Result<T> {
    token
        .ok_or_else(|| SparseError::ParseAt {
            line,
            msg: format!("missing {what}"),
        })?
        .parse::<T>()
        .map_err(|_| SparseError::ParseAt {
            line,
            msg: format!("bad {what}: {token:?}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_general_real() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 1 1.5\n\
                    3 2 -2.0\n";
        let coo = read_matrix_market_from(data.as_bytes()).unwrap();
        let a = CsrMatrix::from_coo(coo);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), Some(1.5));
        assert_eq!(a.get(2, 1), Some(-2.0));
    }

    #[test]
    fn read_symmetric_expands() {
        let data = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 7.0\n";
        let a = CsrMatrix::from_coo(read_matrix_market_from(data.as_bytes()).unwrap());
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), Some(7.0));
        assert_eq!(a.get(1, 0), Some(7.0));
    }

    #[test]
    fn read_skew_symmetric() {
        let data = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = CsrMatrix::from_coo(read_matrix_market_from(data.as_bytes()).unwrap());
        assert_eq!(a.get(1, 0), Some(3.0));
        assert_eq!(a.get(0, 1), Some(-3.0));
    }

    #[test]
    fn read_pattern() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 3\n\
                    2 1\n";
        let a = CsrMatrix::from_coo(read_matrix_market_from(data.as_bytes()).unwrap());
        assert_eq!(a.get(0, 2), Some(1.0));
        assert_eq!(a.get(1, 0), Some(1.0));
    }

    #[test]
    fn oversized_dimensions_are_typed_errors() {
        // 5e9 rows parses as u64 but does not fit u32: the reader must
        // report TooLarge, not a generic parse failure or a truncation.
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    5000000000 3 1\n\
                    1 1 1.0\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::TooLarge { what, value, max }) => {
                assert_eq!(what, "row count");
                assert_eq!(value, 5_000_000_000);
                assert_eq!(max, u32::MAX as u64);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    3 5000000000 1\n\
                    1 1 1.0\n";
        assert!(matches!(
            read_matrix_market_from(data.as_bytes()),
            Err(SparseError::TooLarge {
                what: "column count",
                ..
            })
        ));
        // A non-numeric field is still a positioned parse error.
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    x 3 1\n";
        assert!(matches!(
            read_matrix_market_from(data.as_bytes()),
            Err(SparseError::ParseAt { line: 2, .. })
        ));
    }

    #[test]
    fn reject_bad_header() {
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market_from("not a header\n".as_bytes()).is_err());
        assert!(read_matrix_market_from("".as_bytes()).is_err());
    }

    #[test]
    fn reject_wrong_count() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
    }

    #[test]
    fn reject_zero_based_index() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
    }

    #[test]
    fn reject_out_of_bounds() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
    }

    #[test]
    fn banner_case_insensitive_and_trailing_blanks_tolerated() {
        let data = "%%MATRIXMARKET MATRIX COORDINATE REAL GENERAL\n\
                    2 2 1\n\
                    1 1 3.5   \n\
                    \n\
                    \t\n";
        let coo = read_matrix_market_from(data.as_bytes()).unwrap();
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn count_mismatch_is_line_numbered() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n2 2 1.0\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::ParseAt { line, msg }) => {
                assert_eq!(line, 4, "should point at the last entry line");
                assert!(msg.contains("declared 3"), "{msg}");
            }
            other => panic!("expected line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn excess_entries_rejected_at_offending_line() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::ParseAt { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn extra_fields_on_entry_line_rejected() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0 7\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::ParseAt { line, msg }) => {
                assert_eq!(line, 3);
                assert!(msg.contains("extra fields"), "{msg}");
            }
            other => panic!("expected line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_nnz_declaration_does_not_preallocate() {
        // Declares far more entries than the dimensions can hold.
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 999999999999\n1 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
        // Declares a large-but-plausible nnz, then supplies one entry:
        // must fail with a count mismatch, not exhaust memory up front.
        let data =
            "%%MatrixMarket matrix coordinate real general\n100000 100000 4000000000\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market_from(data.as_bytes()),
            Err(SparseError::ParseAt { .. })
        ));
    }

    #[test]
    fn write_read_roundtrip() {
        let a = CsrMatrix::from_coo(
            CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.25), (1, 3, -7.0), (2, 2, 1e-9)]).unwrap(),
        );
        let mut buf = Vec::new();
        write_matrix_market_to(&a, &mut buf).unwrap();
        let b = CsrMatrix::from_coo(read_matrix_market_from(buf.as_slice()).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let a = CsrMatrix::identity(5);
        let dir = std::env::temp_dir().join("fgh_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("id5.mtx");
        write_matrix_market(&a, &path).unwrap();
        let b = CsrMatrix::from_coo(read_matrix_market(&path).unwrap());
        assert_eq!(a, b);
    }
}
