//! Matrix Market (`.mtx`) I/O.
//!
//! Supports the `matrix coordinate` format with `real`, `integer`, and
//! `pattern` fields and `general`, `symmetric`, and `skew-symmetric`
//! symmetry qualifiers — enough to read every matrix the paper evaluates
//! straight from the UF/SuiteSparse collection when available.
//!
//! ## Streaming architecture
//!
//! The parser is a line-fed state machine ([`MmParser`]) that builds the
//! COO matrix directly from byte slices without ever materializing the
//! text: drivers hand it one `&[u8]` line at a time with its 1-based line
//! number. Three drivers share the machine:
//!
//! * [`parse_matrix_market_bytes`] — zero-copy over an in-memory slice
//!   (also the mmap path: on unix, [`read_matrix_market_typed`] maps the
//!   file read-only and scans the mapping),
//! * [`read_matrix_market_from_typed`] — chunked scanning over any
//!   [`Read`] with a carry buffer for lines that straddle chunks,
//! * [`read_matrix_market_any`] — peeks the header first
//!   ([`read_mm_header`]), selects the index width with
//!   [`IndexWidth::select`], then parses at that width into an
//!   [`AnyCooMatrix`].
//!
//! Error reporting is unchanged from the historical in-memory parser:
//! every structural error carries the 1-based line number where it was
//! detected. That parser survives as [`legacy`] — a deliberately naive
//! oracle the test suite diffs the streaming parser against.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::index::{IndexType, IndexWidth};
use crate::{AnyCooMatrix, CooMatrix, CsrMatrix, Result, SparseError};

/// The value field declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Real floating-point values.
    Real,
    /// Integer values (read as `f64`).
    Integer,
    /// Pattern only — entries have no value; we store `1.0`.
    Pattern,
}

/// The symmetry qualifier declared in the Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(i, j)` implies `(j, i)` with equal value.
    Symmetric,
    /// Lower triangle stored; `(i, j)` implies `(j, i)` with negated value.
    SkewSymmetric,
}

/// Everything a Matrix Market banner + size line declare, before any entry
/// is read. Dimensions stay `u64` — this is what width selection consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmHeader {
    /// Declared row count.
    pub nrows: u64,
    /// Declared column count.
    pub ncols: u64,
    /// Declared entry count (stored entries, pre-expansion).
    pub nnz: u64,
    /// Value field.
    pub field: MmField,
    /// Symmetry qualifier.
    pub symmetry: MmSymmetry,
}

impl MmHeader {
    /// The narrowest index width able to hold this matrix's fine-grain
    /// hypergraph (symmetry expansion can double the stored entry count,
    /// which the pin estimate must survive).
    pub fn select_width(&self) -> IndexWidth {
        let nnz = if self.symmetry == MmSymmetry::General {
            self.nnz
        } else {
            self.nnz.saturating_mul(2)
        };
        IndexWidth::select(self.nrows, self.ncols, nnz)
    }
}

// Cap the speculative preallocation: a hostile header may declare a huge
// nnz and then supply no entries, which must not OOM the process.
const MAX_PREALLOC: usize = 1 << 20;

enum MmState {
    ExpectHeader,
    ExpectSize {
        field: MmField,
        symmetry: MmSymmetry,
    },
    Entries,
}

/// The streaming Matrix Market parser: a state machine fed one line at a
/// time as raw bytes. Drivers call [`MmParser::feed_line`] for every input
/// line (1-based numbering, no terminator) and [`MmParser::finish`] at
/// EOF. The COO matrix is built incrementally — no intermediate text or
/// token buffers outlive a single line.
pub struct MmParser<I: IndexType = u32> {
    state: MmState,
    field: MmField,
    symmetry: MmSymmetry,
    nnz: usize,
    seen: usize,
    last_line: u64,
    coo: CooMatrix<I>,
}

impl<I: IndexType> Default for MmParser<I> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: IndexType> MmParser<I> {
    /// A fresh parser expecting the banner line.
    pub fn new() -> Self {
        MmParser {
            state: MmState::ExpectHeader,
            field: MmField::Real,
            symmetry: MmSymmetry::General,
            nnz: 0,
            seen: 0,
            last_line: 0,
            coo: CooMatrix::new(I::ZERO, I::ZERO),
        }
    }

    /// The parsed header, once the size line has been consumed.
    pub fn header(&self) -> Option<MmHeader> {
        match self.state {
            MmState::Entries => Some(MmHeader {
                nrows: self.coo.nrows().as_u64(),
                ncols: self.coo.ncols().as_u64(),
                nnz: self.nnz as u64,
                field: self.field,
                symmetry: self.symmetry,
            }),
            _ => None,
        }
    }

    /// Feeds one input line (without its terminator). `no` is the 1-based
    /// line number used in error reports.
    pub fn feed_line(&mut self, no: u64, line: &[u8]) -> Result<()> {
        let at = |msg: String| SparseError::ParseAt { line: no, msg };
        // Invalid UTF-8 surfaces like the BufRead::lines() failure the
        // historical parser produced, keeping error variants stable.
        let text = std::str::from_utf8(line)
            .map_err(|_| SparseError::Io("stream did not contain valid UTF-8".into()))?;
        let t = text.trim();
        match self.state {
            MmState::ExpectHeader => {
                if t.is_empty() {
                    return Ok(());
                }
                let (field, symmetry) = parse_header(text, no)?;
                self.state = MmState::ExpectSize { field, symmetry };
                Ok(())
            }
            MmState::ExpectSize { field, symmetry } => {
                if t.is_empty() || t.starts_with('%') {
                    return Ok(());
                }
                // Parse dimensions and nnz as u64 first, then narrow with
                // a typed error: a 5-billion-row header must surface as
                // `TooLarge`, not as a confusing "bad rows" parse failure
                // or a silent truncation.
                let mut it = t.split_whitespace();
                let nrows_raw = parse_num::<u64>(it.next(), "rows", no)?;
                let ncols_raw = parse_num::<u64>(it.next(), "cols", no)?;
                let nnz_raw = parse_num::<u64>(it.next(), "nnz", no)?;
                let nrows = I::checked(nrows_raw, "row count")?;
                let ncols = I::checked(ncols_raw, "column count")?;
                let nnz = usize::try_from(nnz_raw).map_err(|_| SparseError::TooLarge {
                    what: "nonzero count",
                    value: nnz_raw,
                    max: usize::MAX as u64,
                })?;
                if it.next().is_some() {
                    return Err(at("size line has extra fields".into()));
                }
                let stored_max = (nrows_raw as u128) * (ncols_raw as u128);
                if nnz as u128 > stored_max {
                    return Err(at(format!(
                        "declared {nnz} entries exceed the {nrows_raw} x {ncols_raw} capacity {stored_max}"
                    )));
                }
                let want = if symmetry == MmSymmetry::General {
                    nnz
                } else {
                    nnz.saturating_mul(2)
                };
                self.field = field;
                self.symmetry = symmetry;
                self.nnz = nnz;
                self.last_line = no;
                self.coo = CooMatrix::with_capacity(nrows, ncols, want.min(MAX_PREALLOC));
                self.state = MmState::Entries;
                Ok(())
            }
            MmState::Entries => {
                if t.is_empty() || t.starts_with('%') {
                    return Ok(());
                }
                self.last_line = no;
                if self.seen == self.nnz {
                    return Err(at(format!("more entries than the declared {}", self.nnz)));
                }
                let mut it = t.split_whitespace();
                let i_raw = parse_num::<u64>(it.next(), "row index", no)?;
                let j_raw = parse_num::<u64>(it.next(), "col index", no)?;
                if i_raw == 0 || j_raw == 0 {
                    return Err(at("matrix market indices are 1-based".into()));
                }
                let v = match self.field {
                    MmField::Pattern => 1.0,
                    MmField::Real | MmField::Integer => it
                        .next()
                        .ok_or_else(|| SparseError::ParseAt {
                            line: no,
                            msg: "missing value".into(),
                        })?
                        .parse::<f64>()
                        .map_err(|e| SparseError::ParseAt {
                            line: no,
                            msg: format!("bad value: {e}"),
                        })?,
                };
                if it.next().is_some() {
                    return Err(at("entry line has extra fields".into()));
                }
                let i = I::from_u64_checked(i_raw - 1)
                    .ok_or_else(|| at(format!("row index {i_raw} exceeds {} range", I::NAME)))?;
                let j = I::from_u64_checked(j_raw - 1)
                    .ok_or_else(|| at(format!("col index {j_raw} exceeds {} range", I::NAME)))?;
                self.coo.push(i, j, v).map_err(|e| at(e.to_string()))?;
                match self.symmetry {
                    MmSymmetry::General => {}
                    MmSymmetry::Symmetric => {
                        if i != j {
                            self.coo.push(j, i, v).map_err(|e| at(e.to_string()))?;
                        }
                    }
                    MmSymmetry::SkewSymmetric => {
                        if i == j {
                            return Err(at("skew-symmetric matrix with diagonal entry".into()));
                        }
                        self.coo.push(j, i, -v).map_err(|e| at(e.to_string()))?;
                    }
                }
                self.seen += 1;
                Ok(())
            }
        }
    }

    /// Consumes the parser at EOF, returning the COO matrix or the
    /// structural error an incomplete stream implies.
    pub fn finish(self) -> Result<CooMatrix<I>> {
        match self.state {
            MmState::ExpectHeader => Err(SparseError::Parse("empty file".into())),
            MmState::ExpectSize { .. } => Err(SparseError::Parse("missing size line".into())),
            MmState::Entries => {
                if self.seen != self.nnz {
                    return Err(SparseError::ParseAt {
                        line: self.last_line,
                        msg: format!("declared {} entries, found {}", self.nnz, self.seen),
                    });
                }
                Ok(self.coo)
            }
        }
    }
}

/// Splits a byte buffer into lines at `\n`, stripping one trailing `\r`
/// per line (CRLF input). The final fragment counts as a line even without
/// a terminator.
// lint: checked-index — p comes from position() over the same slice, so p < rest.len()
fn for_each_line<F>(data: &[u8], mut f: F) -> Result<()>
where
    F: FnMut(u64, &[u8]) -> Result<()>,
{
    let mut no = 0u64;
    let mut rest = data;
    while !rest.is_empty() {
        no += 1;
        let (line, tail) = match rest.iter().position(|&b| b == b'\n') {
            Some(p) => (&rest[..p], &rest[p + 1..]),
            None => (rest, &rest[rest.len()..]),
        };
        f(no, trim_cr(line))?;
        rest = tail;
    }
    Ok(())
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.split_last() {
        Some((&b'\r', head)) => head,
        _ => line,
    }
}

/// Parses a complete in-memory Matrix Market document at an explicit
/// width. Zero-copy: also serves the mmap path.
pub fn parse_matrix_market_bytes<I: IndexType>(data: &[u8]) -> Result<CooMatrix<I>> {
    let mut p = MmParser::<I>::new();
    for_each_line(data, |no, line| p.feed_line(no, line))?;
    p.finish()
}

/// Parses an in-memory Matrix Market document, selecting the index width
/// from its header.
pub fn parse_matrix_market_bytes_any(data: &[u8]) -> Result<AnyCooMatrix> {
    match scan_header_bytes(data)?.select_width() {
        IndexWidth::U32 => Ok(AnyCooMatrix::U32(parse_matrix_market_bytes(data)?)),
        IndexWidth::U64 => Ok(AnyCooMatrix::U64(parse_matrix_market_bytes(data)?)),
    }
}

/// Scans only as far as the size line of an in-memory document.
// lint: checked-index — pos comes from position() over the same slice, so pos < rest.len()
fn scan_header_bytes(data: &[u8]) -> Result<MmHeader> {
    // Widths at or above the banner+size capacity never fail narrowing, so
    // u64 sees every header verbatim.
    let mut p = MmParser::<u64>::new();
    let mut no = 0u64;
    let mut rest = data;
    while !rest.is_empty() {
        no += 1;
        let (line, tail) = match rest.iter().position(|&b| b == b'\n') {
            Some(pos) => (&rest[..pos], &rest[pos + 1..]),
            None => (rest, &rest[rest.len()..]),
        };
        p.feed_line(no, trim_cr(line))?;
        if let Some(h) = p.header() {
            return Ok(h);
        }
        rest = tail;
    }
    match p.finish() {
        Err(e) => Err(e),
        // Unreachable: a stream that reached the Entries state returned
        // above, and finish() errors in every earlier state.
        Ok(_) => Err(SparseError::Parse("missing size line".into())),
    }
}

/// Drives an [`MmParser`] over any reader in fixed-size chunks, carrying
/// partial lines across chunk boundaries. Memory use is O(longest line),
/// independent of file size.
// lint: checked-index — n <= buf.len() from read(); pos from position() over the same chunk
fn drive_reader<I: IndexType>(mut reader: impl Read) -> Result<CooMatrix<I>> {
    let mut p = MmParser::<I>::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut pending: Vec<u8> = Vec::new();
    let mut no = 0u64;
    loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        let mut chunk = &buf[..n];
        while let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            let (line, rest) = (&chunk[..pos], &chunk[pos + 1..]);
            no += 1;
            if pending.is_empty() {
                p.feed_line(no, trim_cr(line))?;
            } else {
                pending.extend_from_slice(line);
                p.feed_line(no, trim_cr(&pending))?;
                pending.clear();
            }
            chunk = rest;
        }
        pending.extend_from_slice(chunk);
    }
    if !pending.is_empty() {
        no += 1;
        p.feed_line(no, trim_cr(&pending))?;
    }
    p.finish()
}

/// Reads a Matrix Market file from disk into COO format at the default
/// `u32` width. See [`read_matrix_market_any`] for automatic width
/// selection and [`read_matrix_market_typed`] for an explicit width.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CooMatrix> {
    read_matrix_market_typed::<u32>(path)
}

/// Reads a Matrix Market file from disk at an explicit index width. On
/// unix the file is memory-mapped and scanned zero-copy; elsewhere (and
/// whenever mapping fails, e.g. an empty file or a pipe) it falls back to
/// chunked streaming reads.
pub fn read_matrix_market_typed<I: IndexType>(path: impl AsRef<Path>) -> Result<CooMatrix<I>> {
    let file = std::fs::File::open(path)?;
    #[cfg(all(unix, not(miri)))]
    if let Some(map) = mmap::Mmap::map(&file) {
        return parse_matrix_market_bytes(map.bytes());
    }
    drive_reader(file)
}

/// Reads a Matrix Market file from disk, selecting the index width from
/// its header: `u32` when the fine-grain hypergraph fits 32-bit ids, `u64`
/// otherwise. The header is peeked (a bounded scan to the size line), then
/// the file is parsed once at the selected width.
pub fn read_matrix_market_any(path: impl AsRef<Path>) -> Result<AnyCooMatrix> {
    let path = path.as_ref();
    let header = read_mm_header(path)?;
    match header.select_width() {
        IndexWidth::U32 => Ok(AnyCooMatrix::U32(read_matrix_market_typed(path)?)),
        IndexWidth::U64 => Ok(AnyCooMatrix::U64(read_matrix_market_typed(path)?)),
    }
}

/// Reads only the banner and size line of a Matrix Market file — enough
/// for width selection and admission control without touching the entries.
pub fn read_mm_header(path: impl AsRef<Path>) -> Result<MmHeader> {
    let file = std::fs::File::open(path)?;
    let mut p = MmParser::<u64>::new();
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut no = 0u64;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return match p.finish() {
                Err(e) => Err(e),
                Ok(_) => Err(SparseError::Parse("missing size line".into())),
            };
        }
        no += 1;
        let bytes = line.as_bytes();
        let bytes = bytes.strip_suffix(b"\n").unwrap_or(bytes);
        p.feed_line(no, trim_cr(bytes))?;
        if let Some(h) = p.header() {
            return Ok(h);
        }
    }
}

/// Reads Matrix Market data from any reader at the default `u32` width.
///
/// The parser is strict about structure (every error carries the 1-based
/// line number where it was detected) but lenient about presentation:
/// banner keywords are case-insensitive, and blank lines or trailing
/// whitespace anywhere — including before EOF — are tolerated.
pub fn read_matrix_market_from(reader: impl Read) -> Result<CooMatrix> {
    drive_reader(reader)
}

/// [`read_matrix_market_from`] at an explicit index width.
pub fn read_matrix_market_from_typed<I: IndexType>(reader: impl Read) -> Result<CooMatrix<I>> {
    drive_reader(reader)
}

/// Writes a CSR matrix to a Matrix Market file (`general real` coordinate
/// format).
pub fn write_matrix_market<I: IndexType>(a: &CsrMatrix<I>, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market_to(a, BufWriter::new(file))
}

/// Writes a CSR matrix as Matrix Market data to any writer.
pub fn write_matrix_market_to<I: IndexType>(a: &CsrMatrix<I>, mut w: impl Write) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by fgh-sparse")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for (i, j, v) in a.iter() {
        writeln!(w, "{} {} {}", i.as_u64() + 1, j.as_u64() + 1, fmt_f64(v))?;
    }
    w.flush()?;
    Ok(())
}

fn fmt_f64(v: f64) -> String {
    // Shortest representation that round-trips.
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

// lint: checked-index — tokens.len() == 5 is checked before any fixed-position access
fn parse_header(line: &str, line_no: u64) -> Result<(MmField, MmSymmetry)> {
    let err = |msg: String| SparseError::ParseAt { line: line_no, msg };
    // Banner keywords are matched case-insensitively (files in the wild
    // use `%%MatrixMarket`, `%%matrixmarket`, and everything in between).
    let tokens: Vec<String> = line
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() != 5
        || tokens[0] != "%%matrixmarket"
        || tokens[1] != "matrix"
        || tokens[2] != "coordinate"
    {
        return Err(err(format!(
            "unsupported header: {line:?} (only `matrix coordinate` is supported)"
        )));
    }
    let field = match tokens[3].as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => return Err(err(format!("unsupported field type {other:?}"))),
    };
    let symmetry = match tokens[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => return Err(err(format!("unsupported symmetry {other:?}"))),
    };
    Ok((field, symmetry))
}

fn parse_num<T: std::str::FromStr>(token: Option<&str>, what: &str, line: u64) -> Result<T> {
    token
        .ok_or_else(|| SparseError::ParseAt {
            line,
            msg: format!("missing {what}"),
        })?
        .parse::<T>()
        .map_err(|_| SparseError::ParseAt {
            line,
            msg: format!("bad {what}: {token:?}"),
        })
}

/// Minimal read-only mmap over raw libc — no external crate, unmapped on
/// drop. Used only as a fast path; every failure falls back to streaming
/// reads.
#[cfg(all(unix, not(miri)))]
mod mmap {
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    impl Mmap {
        /// Maps a file read-only; `None` for empty/unstatable/unmappable
        /// inputs (pipes, zero-length files), signalling "use the reader".
        pub fn map(file: &std::fs::File) -> Option<Mmap> {
            let len = file.metadata().ok()?.len();
            if len == 0 || len > usize::MAX as u64 {
                return None;
            }
            let len = len as usize;
            // lint: unsafe — fresh private read-only mapping of a file we hold open; address chosen by the kernel, length is the file size
            let ptr = unsafe {
                mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1.
            if ptr.is_null() || ptr as usize == usize::MAX {
                return None;
            }
            Some(Mmap { ptr, len })
        }

        pub fn bytes(&self) -> &[u8] {
            // lint: unsafe — the mapping stays valid for `len` bytes until drop, and PROT_READ makes it plain immutable memory
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // lint: unsafe — ptr/len are exactly what mmap returned; unmapping once in Drop cannot double-free
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// The historical in-memory parser, retained verbatim as a differential
/// oracle: the proptest suite checks that the streaming parser produces
/// byte-identical matrices and identically positioned errors. Not part of
/// the supported API.
#[doc(hidden)]
pub mod legacy {
    use super::*;

    /// The pre-streaming `read_matrix_market_from`, `u32`-only.
    pub fn read_matrix_market_from(reader: impl Read) -> Result<CooMatrix> {
        let mut lines = BufReader::new(reader).lines().zip(1u64..);
        let at = |line: u64, msg: String| SparseError::ParseAt { line, msg };

        let (header, header_line) = loop {
            match lines.next() {
                Some((line, no)) => {
                    let line = line?;
                    if !line.trim().is_empty() {
                        break (line, no);
                    }
                }
                None => return Err(SparseError::Parse("empty file".into())),
            }
        };

        let (field, symmetry) = parse_header(&header, header_line)?;

        let (size_line, size_line_no) = loop {
            match lines.next() {
                Some((line, no)) => {
                    let line = line?;
                    let t = line.trim();
                    if t.is_empty() || t.starts_with('%') {
                        continue;
                    }
                    break (line, no);
                }
                None => return Err(SparseError::Parse("missing size line".into())),
            }
        };

        let mut it = size_line.split_whitespace();
        let nrows = u32::checked(parse_num(it.next(), "rows", size_line_no)?, "row count")?;
        let ncols = u32::checked(parse_num(it.next(), "cols", size_line_no)?, "column count")?;
        let nnz_raw: u64 = parse_num(it.next(), "nnz", size_line_no)?;
        let nnz = usize::try_from(nnz_raw).map_err(|_| SparseError::TooLarge {
            what: "nonzero count",
            value: nnz_raw,
            max: usize::MAX as u64,
        })?;
        if it.next().is_some() {
            return Err(at(size_line_no, "size line has extra fields".into()));
        }
        let stored_max = (nrows as u128) * (ncols as u128);
        if nnz as u128 > stored_max {
            return Err(at(
                size_line_no,
                format!(
                    "declared {nnz} entries exceed the {nrows} x {ncols} capacity {stored_max}"
                ),
            ));
        }

        let want = if symmetry == MmSymmetry::General {
            nnz
        } else {
            nnz.saturating_mul(2)
        };
        let mut coo = CooMatrix::with_capacity(nrows, ncols, want.min(MAX_PREALLOC));
        let mut seen = 0usize;
        let mut last_line = size_line_no;
        for (line, no) in lines {
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            last_line = no;
            if seen == nnz {
                return Err(at(no, format!("more entries than the declared {nnz}")));
            }
            let mut it = t.split_whitespace();
            let i_raw: u64 = parse_num(it.next(), "row index", no)?;
            let j_raw: u64 = parse_num(it.next(), "col index", no)?;
            if i_raw == 0 || j_raw == 0 {
                return Err(at(no, "matrix market indices are 1-based".into()));
            }
            let v = match field {
                MmField::Pattern => 1.0,
                MmField::Real | MmField::Integer => it
                    .next()
                    .ok_or_else(|| at(no, "missing value".into()))?
                    .parse::<f64>()
                    .map_err(|e| at(no, format!("bad value: {e}")))?,
            };
            if it.next().is_some() {
                return Err(at(no, "entry line has extra fields".into()));
            }
            let i = u32::from_u64_checked(i_raw - 1)
                .ok_or_else(|| at(no, format!("row index {i_raw} exceeds u32 range")))?;
            let j = u32::from_u64_checked(j_raw - 1)
                .ok_or_else(|| at(no, format!("col index {j_raw} exceeds u32 range")))?;
            coo.push(i, j, v).map_err(|e| at(no, e.to_string()))?;
            match symmetry {
                MmSymmetry::General => {}
                MmSymmetry::Symmetric => {
                    if i != j {
                        coo.push(j, i, v).map_err(|e| at(no, e.to_string()))?;
                    }
                }
                MmSymmetry::SkewSymmetric => {
                    if i == j {
                        return Err(at(no, "skew-symmetric matrix with diagonal entry".into()));
                    }
                    coo.push(j, i, -v).map_err(|e| at(no, e.to_string()))?;
                }
            }
            seen += 1;
        }
        if seen != nnz {
            return Err(at(
                last_line,
                format!("declared {nnz} entries, found {seen}"),
            ));
        }
        Ok(coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_general_real() {
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 3 2\n\
                    1 1 1.5\n\
                    3 2 -2.0\n";
        let coo = read_matrix_market_from(data.as_bytes()).unwrap();
        let a = CsrMatrix::from_coo(coo);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(0, 0), Some(1.5));
        assert_eq!(a.get(2, 1), Some(-2.0));
    }

    #[test]
    fn read_symmetric_expands() {
        let data = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 4.0\n\
                    2 1 7.0\n";
        let a = CsrMatrix::from_coo(read_matrix_market_from(data.as_bytes()).unwrap());
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), Some(7.0));
        assert_eq!(a.get(1, 0), Some(7.0));
    }

    #[test]
    fn read_skew_symmetric() {
        let data = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                    2 2 1\n\
                    2 1 3.0\n";
        let a = CsrMatrix::from_coo(read_matrix_market_from(data.as_bytes()).unwrap());
        assert_eq!(a.get(1, 0), Some(3.0));
        assert_eq!(a.get(0, 1), Some(-3.0));
    }

    #[test]
    fn read_pattern() {
        let data = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 3 2\n\
                    1 3\n\
                    2 1\n";
        let a = CsrMatrix::from_coo(read_matrix_market_from(data.as_bytes()).unwrap());
        assert_eq!(a.get(0, 2), Some(1.0));
        assert_eq!(a.get(1, 0), Some(1.0));
    }

    #[test]
    fn oversized_dimensions_are_typed_errors() {
        // 5e9 rows parses as u64 but does not fit u32: the reader must
        // report TooLarge, not a generic parse failure or a truncation.
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    5000000000 3 1\n\
                    1 1 1.0\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::TooLarge { what, value, .. }) => {
                assert_eq!(what, "row count");
                assert_eq!(value, 5_000_000_000);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    3 5000000000 1\n\
                    1 1 1.0\n";
        assert!(matches!(
            read_matrix_market_from(data.as_bytes()),
            Err(SparseError::TooLarge {
                what: "column count",
                ..
            })
        ));
        // A non-numeric field is still a positioned parse error.
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    x 3 1\n";
        assert!(matches!(
            read_matrix_market_from(data.as_bytes()),
            Err(SparseError::ParseAt { line: 2, .. })
        ));
    }

    #[test]
    fn u64_width_accepts_oversized_dimensions() {
        // The same 5-billion-row header parses fine on the big path.
        let data = "%%MatrixMarket matrix coordinate real general\n\
                    5000000000 3 1\n\
                    4999999999 2 1.0\n";
        let coo = read_matrix_market_from_typed::<u64>(data.as_bytes()).unwrap();
        assert_eq!(coo.nrows(), 5_000_000_000);
        assert_eq!(coo.nnz(), 1);
        assert_eq!(coo.iter().next(), Some((4_999_999_998, 1, 1.0)));
    }

    #[test]
    fn any_selects_width_from_header() {
        let small = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n";
        let any = parse_matrix_market_bytes_any(small.as_bytes()).unwrap();
        assert_eq!(any.width(), IndexWidth::U32);
        let big = "%%MatrixMarket matrix coordinate real general\n\
                   5000000000 3 1\n\
                   1 1 1.0\n";
        let any = parse_matrix_market_bytes_any(big.as_bytes()).unwrap();
        assert_eq!(any.width(), IndexWidth::U64);
        assert_eq!(any.nrows(), 5_000_000_000);
    }

    #[test]
    fn reject_bad_header() {
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
        assert!(read_matrix_market_from("not a header\n".as_bytes()).is_err());
        assert!(read_matrix_market_from("".as_bytes()).is_err());
    }

    #[test]
    fn reject_wrong_count() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
    }

    #[test]
    fn reject_zero_based_index() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
    }

    #[test]
    fn reject_out_of_bounds() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
    }

    #[test]
    fn banner_case_insensitive_and_trailing_blanks_tolerated() {
        let data = "%%MATRIXMARKET MATRIX COORDINATE REAL GENERAL\n\
                    2 2 1\n\
                    1 1 3.5   \n\
                    \n\
                    \t\n";
        let coo = read_matrix_market_from(data.as_bytes()).unwrap();
        assert_eq!(coo.nnz(), 1);
    }

    #[test]
    fn count_mismatch_is_line_numbered() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n2 2 1.0\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::ParseAt { line, msg }) => {
                assert_eq!(line, 4, "should point at the last entry line");
                assert!(msg.contains("declared 3"), "{msg}");
            }
            other => panic!("expected line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn excess_entries_rejected_at_offending_line() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 1.0\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::ParseAt { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn extra_fields_on_entry_line_rejected() {
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0 7\n";
        match read_matrix_market_from(data.as_bytes()) {
            Err(SparseError::ParseAt { line, msg }) => {
                assert_eq!(line, 3);
                assert!(msg.contains("extra fields"), "{msg}");
            }
            other => panic!("expected line-numbered parse error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_nnz_declaration_does_not_preallocate() {
        // Declares far more entries than the dimensions can hold.
        let data = "%%MatrixMarket matrix coordinate real general\n2 2 999999999999\n1 1 1.0\n";
        assert!(read_matrix_market_from(data.as_bytes()).is_err());
        // Declares a large-but-plausible nnz, then supplies one entry:
        // must fail with a count mismatch, not exhaust memory up front.
        let data =
            "%%MatrixMarket matrix coordinate real general\n100000 100000 4000000000\n1 1 1.0\n";
        assert!(matches!(
            read_matrix_market_from(data.as_bytes()),
            Err(SparseError::ParseAt { .. })
        ));
    }

    #[test]
    fn chunk_boundary_straddling_lines() {
        // Force a tiny chunked read path by feeding through a reader that
        // returns one byte at a time — every line straddles a "chunk".
        struct OneByte<'a>(&'a [u8]);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.split_first() {
                    Some((&b, rest)) => {
                        buf[0] = b;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let data = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.0\n";
        let a = read_matrix_market_from(OneByte(data.as_bytes())).unwrap();
        let b = read_matrix_market_from(data.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_final_newline_and_crlf_tolerated() {
        let unix = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0";
        let dos = "%%MatrixMarket matrix coordinate real general\r\n2 2 1\r\n1 1 1.0\r\n";
        let a = read_matrix_market_from(unix.as_bytes()).unwrap();
        let b = read_matrix_market_from(dos.as_bytes()).unwrap();
        assert_eq!(a, b);
        let c = parse_matrix_market_bytes::<u32>(unix.as_bytes()).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn streaming_matches_legacy_on_basics() {
        for data in [
            "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2.0\n",
            "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 4.0\n2 1 7.0\n",
            "%%MatrixMarket matrix coordinate pattern general\n2 3 2\n1 3\n2 1\n",
        ] {
            let new = read_matrix_market_from(data.as_bytes()).unwrap();
            let old = legacy::read_matrix_market_from(data.as_bytes()).unwrap();
            assert_eq!(new, old);
        }
    }

    #[test]
    fn header_peek() {
        let data = "%%MatrixMarket matrix coordinate pattern symmetric\n% c\n10 10 7\n";
        let h = scan_header_bytes(data.as_bytes()).unwrap();
        assert_eq!(
            h,
            MmHeader {
                nrows: 10,
                ncols: 10,
                nnz: 7,
                field: MmField::Pattern,
                symmetry: MmSymmetry::Symmetric,
            }
        );
        // Symmetric storage doubles the effective nnz for width selection.
        assert_eq!(h.select_width(), IndexWidth::U32);
        assert!(scan_header_bytes(b"%%MatrixMarket matrix coordinate real general\n").is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(3, 4, vec![(0, 0, 1.25), (1, 3, -7.0), (2, 2, 1e-9)]).unwrap(),
        );
        let mut buf = Vec::new();
        write_matrix_market_to(&a, &mut buf).unwrap();
        let b = CsrMatrix::from_coo(read_matrix_market_from(buf.as_slice()).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn file_roundtrip() {
        let a: CsrMatrix = CsrMatrix::identity(5);
        let dir = std::env::temp_dir().join("fgh_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("id5.mtx");
        write_matrix_market(&a, &path).unwrap();
        let b = CsrMatrix::from_coo(read_matrix_market(&path).unwrap());
        assert_eq!(a, b);
        // The mmap fast path and width peeking agree with the reader path.
        let c = read_matrix_market_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(b.to_coo(), c);
        let h = read_mm_header(&path).unwrap();
        assert_eq!((h.nrows, h.ncols, h.nnz), (5, 5, 5));
        assert_eq!(
            read_matrix_market_any(&path).unwrap().width(),
            IndexWidth::U32
        );
    }
}
