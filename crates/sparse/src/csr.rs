//! Compressed sparse row format — the primary analysis/compute format.

use fgh_invariant::{invariant, InvariantViolation};

use crate::index::IndexType;
use crate::{CooMatrix, CscMatrix, Result, SparseError};

/// A sparse matrix in compressed sparse row (CSR) format, generic over the
/// index width `I` ([`IndexType`]; `u32` by default).
///
/// Row `i`'s entries occupy `col_idx[row_ptr[i] .. row_ptr[i + 1]]` (and the
/// parallel range of `values`). Column indices within each row are sorted
/// ascending and unique. The pointer array is `usize` at either width.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<I: IndexType = u32> {
    nrows: I,
    ncols: I,
    row_ptr: Vec<usize>,
    col_idx: Vec<I>,
    values: Vec<f64>,
}

impl<I: IndexType> CsrMatrix<I> {
    /// Builds a CSR matrix from a COO matrix, summing duplicates (the
    /// historical behavior, equal to [`crate::coo::DedupPolicy::Sum`]).
    /// Use [`CsrMatrix::try_from_coo`] to honor the COO matrix's attached
    /// dedup policy — including rejecting duplicates outright.
    pub fn from_coo(mut coo: CooMatrix<I>) -> Self {
        coo.compress();
        Self::from_compressed(coo)
    }

    /// Builds a CSR matrix from a COO matrix, resolving duplicates with
    /// the COO matrix's [`crate::coo::DedupPolicy`]. Fails with
    /// [`SparseError::DuplicateEntry`] under the `Error` policy when a
    /// duplicate coordinate exists.
    pub fn try_from_coo(mut coo: CooMatrix<I>) -> Result<Self> {
        coo.compress_policy()?;
        Ok(Self::from_compressed(coo))
    }

    /// CSR assembly from an already-compressed (row-major, duplicate-free)
    /// COO matrix.
    // lint: checked-index — row_ptr has nrows+1 slots and every COO row id was bounds-checked at insert
    fn from_compressed(coo: CooMatrix<I>) -> Self {
        let (nrows, ncols, rows, cols, vals) = coo.into_parts();
        let nnz = rows.len();
        let mut row_ptr = vec![0usize; nrows.index() + 1];
        for &r in &rows {
            row_ptr[r.index() + 1] += 1;
        }
        for i in 0..nrows.index() {
            row_ptr[i + 1] += row_ptr[i];
        }
        debug_assert_eq!(row_ptr[nrows.index()], nnz);
        // `compress` already sorted row-major, so cols/vals are in final order.
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx: cols,
            values: vals,
        }
    }

    /// Builds directly from raw CSR arrays, validating the invariants
    /// (monotone `row_ptr`, in-bounds sorted unique column indices).
    // lint: checked-index — row_ptr.len() == nrows+1 is checked before any row_ptr[i] access
    pub fn from_raw(
        nrows: I,
        ncols: I,
        row_ptr: Vec<usize>,
        col_idx: Vec<I>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows.index() + 1 {
            // Widen before adding one: `nrows + 1` overflows the index type
            // (and panics under overflow-checks) when nrows == I::MAX.
            return Err(SparseError::Parse(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows.as_u64() + 1
            )));
        }
        if row_ptr[0] != 0 || row_ptr[nrows.index()] != col_idx.len() {
            return Err(SparseError::Parse("row_ptr endpoints invalid".into()));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::Parse(
                "col_idx / values length mismatch".into(),
            ));
        }
        for i in 0..nrows.index() {
            if row_ptr[i] > row_ptr[i + 1] || row_ptr[i + 1] > col_idx.len() {
                return Err(SparseError::Parse(format!(
                    "row_ptr not monotone at row {i}"
                )));
            }
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::Parse(format!(
                        "row {i} columns not sorted/unique"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    // Exact widening conversions, not narrowing casts: the
                    // error reports coordinates as u64 at either width.
                    return Err(SparseError::IndexOutOfBounds {
                        row: i as u64,
                        col: last.as_u64(),
                        nrows: nrows.as_u64(),
                        ncols: ncols.as_u64(),
                    });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: I) -> Self {
        let row_ptr = (0..=n.index()).collect();
        let col_idx = (0..n.index()).map(I::from_index).collect();
        let values = vec![1.0; n.index()];
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> I {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> I {
        self.ncols
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// `true` for square matrices.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// The raw row pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column index array (length `nnz`).
    pub fn col_idx(&self) -> &[I] {
        &self.col_idx
    }

    /// The raw value array (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `i`, sorted ascending.
    // lint: checked-index — i < nrows is the documented caller contract; row_ptr has nrows+1 entries
    pub fn row_cols(&self, i: I) -> &[I] {
        &self.col_idx[self.row_ptr[i.index()]..self.row_ptr[i.index() + 1]]
    }

    /// Values of row `i`, parallel to [`CsrMatrix::row_cols`].
    // lint: checked-index — i < nrows is the documented caller contract; row_ptr has nrows+1 entries
    pub fn row_vals(&self, i: I) -> &[f64] {
        &self.values[self.row_ptr[i.index()]..self.row_ptr[i.index() + 1]]
    }

    /// Number of nonzeros in row `i`.
    // lint: checked-index — i < nrows is the documented caller contract; row_ptr has nrows+1 entries
    pub fn row_nnz(&self, i: I) -> usize {
        self.row_ptr[i.index() + 1] - self.row_ptr[i.index()]
    }

    /// Looks up entry `(i, j)` by binary search over row `i`.
    // lint: checked-index — p comes from binary_search over the parallel row slice
    pub fn get(&self, i: I, j: I) -> Option<f64> {
        let cols = self.row_cols(i);
        cols.binary_search(&j).ok().map(|p| self.row_vals(i)[p])
    }

    /// `true` if entry `(i, j)` is structurally present.
    pub fn contains(&self, i: I, j: I) -> bool {
        self.row_cols(i).binary_search(&j).is_ok()
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (I, I, f64)> + '_ {
        (0..self.nrows.index()).flat_map(move |i| {
            let i = I::from_index(i);
            self.row_cols(i)
                .iter()
                .zip(self.row_vals(i))
                .map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Heap bytes held by the three CSR arrays (capacity, not length) —
    /// the working-set accounting `Budget::max_bytes` consumes.
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.capacity() * std::mem::size_of::<usize>()
            + self.col_idx.capacity() * std::mem::size_of::<I>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// The transpose as a new CSR matrix.
    // lint: checked-index — counting-sort slots: every column id < ncols by the CSR invariant, next[j] < nnz
    pub fn transpose(&self) -> CsrMatrix<I> {
        let nnz = self.nnz();
        let mut row_ptr = vec![0usize; self.ncols.index() + 1];
        for &j in &self.col_idx {
            row_ptr[j.index() + 1] += 1;
        }
        for i in 0..self.ncols.index() {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![I::ZERO; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut next = row_ptr.clone();
        for i in 0..self.nrows.index() {
            let i = I::from_index(i);
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                let slot = next[j.index()];
                col_idx[slot] = i;
                values[slot] = v;
                next[j.index()] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix<I> {
        let t = self.transpose();
        // The CSR of Aᵀ holds exactly the CSC arrays of A.
        CscMatrix::from_transposed_csr(t)
    }

    /// Converts back to COO format.
    // Infallible: `iter` yields indices already validated at construction,
    // so they are in bounds for a matrix of the same shape.
    #[allow(clippy::expect_used)]
    pub fn to_coo(&self) -> CooMatrix<I> {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (i, j, v) in self.iter() {
            coo.push(i, j, v).expect("CSR entries are in bounds");
        }
        coo
    }

    /// Re-expresses the matrix under another index width, with a typed
    /// [`SparseError::TooLarge`] when narrowing does not fit. Widening
    /// (`u32` → `u64`) always succeeds — this is how the forced-width
    /// parity tests feed one matrix to both engine paths.
    pub fn convert_width<J: IndexType>(&self) -> Result<CsrMatrix<J>> {
        let nrows = J::checked(self.nrows.as_u64(), "row count")?;
        let ncols = J::checked(self.ncols.as_u64(), "column count")?;
        let col_idx = self
            .col_idx
            .iter()
            .map(|&j| J::checked(j.as_u64(), "column index"))
            .collect::<Result<Vec<J>>>()?;
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx,
            values: self.values.clone(),
        })
    }

    /// Serial sparse matrix-vector multiply `y = A x`.
    // lint: checked-index — x.len() == ncols is checked up front; column ids < ncols by the CSR invariant
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols.index() {
            return Err(SparseError::DimensionMismatch(format!(
                "x has length {}, expected {}",
                x.len(),
                self.ncols
            )));
        }
        let mut y = vec![0.0f64; self.nrows.index()];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            let iv = I::from_index(i);
            for (&j, &v) in self.row_cols(iv).iter().zip(self.row_vals(iv)) {
                acc += v * x[j.index()];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// `true` if every diagonal entry `a_ii` is structurally present
    /// (requires square).
    pub fn has_full_diagonal(&self) -> bool {
        self.is_square()
            && (0..self.nrows.index()).all(|i| {
                let i = I::from_index(i);
                self.contains(i, i)
            })
    }

    /// Indices `i` with no structural `a_ii` (square matrices).
    pub fn missing_diagonal(&self) -> Vec<I> {
        if !self.is_square() {
            return Vec::new();
        }
        (0..self.nrows.index())
            .map(I::from_index)
            .filter(|&i| !self.contains(i, i))
            .collect()
    }

    /// `true` if the *pattern* is symmetric (values ignored).
    pub fn pattern_symmetric(&self) -> bool {
        if !self.is_square() {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// Checks the structural invariants of the compressed layout: pointer
    /// array shape, monotonicity, parallel index/value arrays, and sorted,
    /// unique, in-bounds column indices per row. Construction enforces all
    /// of these, so a violation indicates a defect (or corruption), not
    /// bad user input.
    // lint: checked-index — row_ptr has nrows+1 entries; windows(2) yields exactly two elements
    pub fn validate(&self) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "CsrMatrix";
        invariant!(
            self.row_ptr.len() == self.nrows.index() + 1,
            S,
            "row_ptr.len",
            "row_ptr has {} entries for {} rows",
            self.row_ptr.len(),
            self.nrows
        );
        invariant!(
            self.row_ptr.first() == Some(&0),
            S,
            "row_ptr.origin",
            "row_ptr[0] = {:?}, expected 0",
            self.row_ptr.first()
        );
        invariant!(
            self.row_ptr.last() == Some(&self.col_idx.len()),
            S,
            "row_ptr.end",
            "row_ptr ends at {:?}, expected nnz = {}",
            self.row_ptr.last(),
            self.col_idx.len()
        );
        invariant!(
            self.col_idx.len() == self.values.len(),
            S,
            "arrays.parallel",
            "col_idx/values have lengths {}/{}",
            self.col_idx.len(),
            self.values.len()
        );
        for i in 0..self.nrows.index() {
            invariant!(
                self.row_ptr[i] <= self.row_ptr[i + 1],
                S,
                "row_ptr.monotone",
                "row_ptr not monotone at row {i}: {} > {}",
                self.row_ptr[i],
                self.row_ptr[i + 1]
            );
            let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
            for w in row.windows(2) {
                invariant!(
                    w[0] < w[1],
                    S,
                    "cols.sorted_unique",
                    "row {i} columns not sorted/unique: {} then {}",
                    w[0],
                    w[1]
                );
            }
            if let Some(&last) = row.last() {
                invariant!(
                    last < self.ncols,
                    S,
                    "cols.in_bounds",
                    "row {i} has column {last} >= ncols = {}",
                    self.ncols
                );
            }
        }
        Ok(())
    }

    /// `true` if the matrix is numerically symmetric.
    pub fn numerically_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.iter().all(|(i, j, v)| match self.get(j, i) {
            Some(w) => (v - w).abs() <= tol,
            None => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        CsrMatrix::from_coo(
            CooMatrix::from_triplets(
                3,
                3,
                vec![
                    (0, 0, 1.0),
                    (0, 2, 2.0),
                    (1, 1, 3.0),
                    (2, 0, 4.0),
                    (2, 2, 5.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn from_coo_layout() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(m.row_cols(0), &[0, 2]);
        assert_eq!(m.row_vals(2), &[4.0, 5.0]);
    }

    #[test]
    fn get_and_contains() {
        let m = sample();
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert!(m.contains(2, 0));
        assert!(!m.contains(1, 0));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(0, 2), Some(4.0));
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn spmv_dimension_check() {
        let m = sample();
        assert!(m.spmv(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn diagonal_queries() {
        let m = sample();
        assert!(m.has_full_diagonal());
        let m2: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 2, vec![(0, 1, 1.0), (1, 0, 1.0)]).unwrap(),
        );
        assert!(!m2.has_full_diagonal());
        assert_eq!(m2.missing_diagonal(), vec![0, 1]);
    }

    #[test]
    fn symmetry_checks() {
        let sym: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(2, 2, vec![(0, 1, 2.0), (1, 0, 2.0)]).unwrap(),
        );
        assert!(sym.pattern_symmetric());
        assert!(sym.numerically_symmetric(0.0));
        let asym: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(2, 2, vec![(0, 1, 2.0)]).unwrap());
        assert!(!asym.pattern_symmetric());
    }

    #[test]
    fn identity_is_identity() {
        let i: CsrMatrix = CsrMatrix::identity(4);
        assert!(i.has_full_diagonal());
        let y = i.spmv(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(y, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_raw_validation() {
        assert!(
            CsrMatrix::<u32>::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok()
        );
        // unsorted columns in a row
        assert!(CsrMatrix::<u32>::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::<u32>::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // bad row_ptr
        assert!(
            CsrMatrix::<u32>::from_raw(2, 2, vec![0, 3, 2], vec![0, 1], vec![1.0, 1.0]).is_err()
        );
    }

    #[test]
    fn empty_rows_are_fine() {
        let m: CsrMatrix =
            CsrMatrix::from_coo(CooMatrix::from_triplets(3, 3, vec![(1, 1, 1.0)]).unwrap());
        assert_eq!(m.row_nnz(0), 0);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn u64_width_layout_and_queries() {
        // Note CSR's row pointer is dense in nrows, so a u64-width test
        // keeps the order modest; addressing beyond u32 is exercised on
        // the (fully sparse) COO side and by the BigPattern arithmetic.
        let n = 50_000u64;
        let m: CsrMatrix<u64> = CsrMatrix::from_coo(
            CooMatrix::from_triplets(n, n, vec![(0, 0, 1.0), (n - 1, 3, 2.0)]).unwrap(),
        );
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(n - 1, 3), Some(2.0));
        assert_eq!(m.row_nnz(17), 0);
    }

    #[test]
    fn convert_width_roundtrip() {
        let m = sample();
        let wide: CsrMatrix<u64> = m.convert_width().unwrap();
        assert_eq!(wide.nnz(), m.nnz());
        assert_eq!(wide.get(0, 2), Some(2.0));
        let back: CsrMatrix<u32> = wide.convert_width().unwrap();
        assert_eq!(m, back);
    }
}
