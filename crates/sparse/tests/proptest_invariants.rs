//! Property tests of the runtime invariant validators: `validate()` must
//! hold after every public mutating operation on [`CooMatrix`], and the
//! CSR/CSC structural validators must accept everything the conversion
//! pipeline produces.

use fgh_sparse::{CooMatrix, CscMatrix, CsrMatrix, DedupPolicy};
use proptest::prelude::*;

/// Dimensions plus a list of in-bounds (possibly duplicate) triplets.
fn triplets() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32, f64)>)> {
    (1u32..=12, 1u32..=12).prop_flat_map(|(nr, nc)| {
        proptest::collection::vec((0..nr, 0..nc, 0u32..100), 0..=40).prop_map(move |ts| {
            let ts = ts
                .into_iter()
                .map(|(i, j, v)| (i, j, v as f64 * 0.25 - 5.0))
                .collect();
            (nr, nc, ts)
        })
    })
}

proptest! {
    /// `CooMatrix::validate` holds after construction and after every
    /// `push`, `compress*`, and `transpose` call.
    #[test]
    fn coo_valid_after_every_mutation((nr, nc, ts) in triplets()) {
        let mut coo = CooMatrix::new(nr, nc);
        coo.validate().expect("empty matrix");
        for &(i, j, v) in &ts {
            coo.push(i, j, v).expect("in bounds");
            coo.validate().expect("after push");
        }

        let mut summed = coo.clone();
        summed.compress_with(DedupPolicy::Sum).expect("sum dedup");
        summed.validate().expect("after compress_with(Sum)");
        prop_assert!(summed.nnz() <= ts.len());

        let mut last = coo.clone();
        last.compress_with(DedupPolicy::LastWins).expect("last-wins dedup");
        last.validate().expect("after compress_with(LastWins)");

        let mut t = coo.clone();
        t.transpose();
        t.validate().expect("after transpose");
        prop_assert_eq!(t.nrows(), nc);
        prop_assert_eq!(t.ncols(), nr);
        t.transpose();
        t.validate().expect("after double transpose");

        let mut c = coo.clone();
        c.compress();
        c.validate().expect("after compress");
    }

    /// The CSR/CSC structural validators accept every matrix the
    /// conversion pipeline can produce, in both directions.
    #[test]
    fn csr_csc_conversions_stay_valid((nr, nc, ts) in triplets()) {
        let coo = CooMatrix::from_triplets(nr, nc, ts).expect("in bounds");
        let a = CsrMatrix::from_coo(coo);
        a.validate().expect("CSR from COO");

        let t = a.transpose();
        t.validate().expect("CSR transpose");
        prop_assert_eq!(t.nnz(), a.nnz());

        let csc = CscMatrix::from_csr(&a);
        csc.validate().expect("CSC from CSR");
        prop_assert_eq!(csc.nnz(), a.nnz());

        let back = CsrMatrix::from_coo(a.to_coo());
        back.validate().expect("CSR -> COO -> CSR");
        prop_assert_eq!(back.nnz(), a.nnz());

        // Round trip through raw parts exercises from_raw's checks.
        let rebuilt = CsrMatrix::from_raw(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().to_vec(),
        )
        .expect("raw arrays of a valid matrix");
        rebuilt.validate().expect("CSR from raw");
    }

    /// Validators reject corrupted structures: an out-of-bounds column
    /// index or a non-monotone row pointer must not pass.
    #[test]
    fn csr_validator_rejects_corruption((nr, nc, ts) in triplets()) {
        let coo = CooMatrix::from_triplets(nr, nc, ts).expect("in bounds");
        let a = CsrMatrix::from_coo(coo);
        if a.nnz() == 0 {
            return Ok(());
        }
        // Corrupt a column index out of range.
        let mut cols = a.col_idx().to_vec();
        cols[0] = a.ncols();
        prop_assert!(CsrMatrix::from_raw(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            cols,
            a.values().to_vec(),
        )
        .is_err());
    }
}
