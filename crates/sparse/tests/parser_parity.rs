//! Differential tests of the streaming Matrix Market parser against the
//! retained in-memory legacy parser (`io::legacy`): on every input —
//! randomly generated documents, mutilated documents, and the curated
//! corpus under `tests/corpus/` — the two must agree: both reject, or
//! both accept with identical matrices.

use fgh_sparse::io::{legacy, parse_matrix_market_bytes, parse_matrix_market_bytes_any};
use fgh_sparse::{AnyCooMatrix, CooMatrix};
use proptest::prelude::*;

/// Renders a syntactically well-formed coordinate document: random field
/// (real / integer / pattern), random symmetry (symmetric only when
/// square, entries kept lower-triangular), optional comments and blank
/// lines, in-bounds 1-based entries.
fn documents() -> impl Strategy<Value = String> {
    // flags bit 0: symmetric, bit 1: leading comment + blank line.
    (1u32..=15, 1u32..=15, 0u8..3, 0u8..4).prop_flat_map(|(nr, nc, field_idx, flags)| {
        let field = ["real", "integer", "pattern"][field_idx as usize];
        let comment = flags & 2 != 0;
        // Symmetric storage requires a square matrix.
        let (nr, nc, sym) = if flags & 1 != 0 {
            (nr, nr, true)
        } else {
            (nr, nc, false)
        };
        let entry = (1..=nr, 1..=nc, -50i32..50);
        proptest::collection::vec(entry, 0..=30).prop_map(move |mut entries| {
            if sym {
                // Keep the stored triangle lower: i >= j.
                for e in &mut entries {
                    if e.0 < e.1 {
                        std::mem::swap(&mut e.0, &mut e.1);
                    }
                }
            }
            // Coordinates must be unique: repeating a position would
            // let the declared nnz exceed the matrix capacity, which
            // the streaming parser rejects up front.
            entries.sort_by_key(|e| (e.0, e.1));
            entries.dedup_by_key(|e| (e.0, e.1));
            let mut doc = format!(
                "%%MatrixMarket matrix coordinate {field} {}\n",
                if sym { "symmetric" } else { "general" }
            );
            if comment {
                doc.push_str("% a comment line\n\n");
            }
            doc.push_str(&format!("{nr} {nc} {}\n", entries.len()));
            for (i, j, v) in entries {
                match field {
                    "pattern" => doc.push_str(&format!("{i} {j}\n")),
                    "integer" => doc.push_str(&format!("{i} {j} {v}\n")),
                    _ => doc.push_str(&format!("{i} {j} {}\n", v as f64 * 0.5)),
                }
            }
            doc
        })
    })
}

/// Both parsers on the same bytes: agree on accept/reject, and on the
/// parsed matrix when accepting.
fn assert_parity(data: &[u8], what: &str) {
    let streaming = parse_matrix_market_bytes::<u32>(data);
    let oracle = legacy::read_matrix_market_from(data);
    match (streaming, oracle) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "{what}: parsers accept different matrices"),
        (Err(_), Err(_)) => {}
        (new, old) => panic!(
            "{what}: parsers disagree: streaming {:?}, legacy {:?}",
            new.map(|m| m.nnz()),
            old.map(|m| m.nnz())
        ),
    }
}

proptest! {
    /// Well-formed documents: identical matrices from both parsers, and
    /// the width-erased entry point picks the fast path with the same
    /// content.
    #[test]
    fn streaming_matches_legacy_on_generated_documents(doc in documents()) {
        let data = doc.as_bytes();
        let new: CooMatrix = parse_matrix_market_bytes(data).unwrap_or_else(|e| panic!("streaming rejected {doc:?}: {e}"));
        let old = legacy::read_matrix_market_from(data).expect("well-formed");
        prop_assert_eq!(&new, &old);
        match parse_matrix_market_bytes_any(data).expect("well-formed") {
            AnyCooMatrix::U32(m) => prop_assert_eq!(&m, &old),
            AnyCooMatrix::U64(_) => prop_assert!(false, "small doc must stay u32"),
        }
    }

    /// Mutilated documents: truncate at an arbitrary byte. The parsers
    /// must still agree — both reject, or both accept the same prefix
    /// (truncation can leave a shorter-but-valid document only when it
    /// cuts exactly at the declared nnz, which both must treat alike).
    #[test]
    fn streaming_matches_legacy_on_truncated_documents(
        doc in documents(),
        cut in 0usize..400,
    ) {
        let data = doc.as_bytes();
        let cut = cut.min(data.len());
        assert_parity(&data[..cut], "truncated document");
    }

    /// Byte corruption: overwrite one byte with random garbage.
    #[test]
    fn streaming_matches_legacy_on_corrupted_documents(
        doc in documents(),
        pos in 0usize..400,
        byte in 0u8..128,
    ) {
        let mut data = doc.into_bytes();
        if data.is_empty() {
            return Ok(());
        }
        let pos = pos % data.len();
        data[pos] = byte;
        assert_parity(&data, "corrupted document");
    }
}

/// Every curated corpus file — lenient banners, garbled banners, bad
/// values, out-of-bounds entries, huge dimensions, truncations — gets the
/// same verdict and the same matrix from both parsers.
#[test]
fn corpus_files_agree() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/corpus must exist") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("mtx") {
            continue;
        }
        let data = std::fs::read(&path).unwrap();
        assert_parity(&data, path.file_name().unwrap().to_str().unwrap());
        seen += 1;
    }
    assert!(seen >= 10, "corpus unexpectedly small: {seen} files");
}
