//! Property tests of the FM machinery on random hypergraphs: gains match
//! brute-force cut deltas, moves are involutions, passes never worsen the
//! (balance, cut) pair, and the incremental cutsize always matches a full
//! recomputation.

use fgh_hypergraph::{cutsize_cutnet, Hypergraph, Partition};
use fgh_partition::coarsen::FREE;
use fgh_partition::refine::BisectionState;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a random hypergraph as (num_vertices, nets).
fn hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3u32..=24).prop_flat_map(|nv| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..nv, 2..=(nv as usize).min(6)),
            1..=30,
        )
        .prop_map(move |nets| {
            let nets: Vec<Vec<u32>> = nets.into_iter().map(|s| s.into_iter().collect()).collect();
            Hypergraph::from_nets(nv, &nets).expect("pins in range")
        })
    })
}

fn sides_for(hg: &Hypergraph, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..hg.num_vertices())
        .map(|_| rand::Rng::gen_range(&mut rng, 0..2u8))
        .collect()
}

proptest! {
    /// The incremental cut in BisectionState equals the metric module's
    /// cut-net cutsize, initially and after arbitrary move sequences.
    #[test]
    fn incremental_cut_matches_metric(hg in hypergraph(), seed in 0u64..500) {
        let fixed = vec![FREE; hg.num_vertices() as usize];
        let sides = sides_for(&hg, seed);
        let half = hg.total_vertex_weight() as f64 / 2.0;
        let mut st = BisectionState::new(&hg, sides, &fixed, [half, half], 0.2);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..10 {
            let v = rand::Rng::gen_range(&mut rng, 0..hg.num_vertices());
            st.apply_move(v, None);
            let p = Partition::new(
                2,
                st.sides().iter().map(|&s| s as u32).collect(),
            ).expect("sides valid");
            prop_assert_eq!(st.cut(), cutsize_cutnet(&hg, &p));
        }
    }

    /// gain(v) is exactly the cut decrease of moving v.
    #[test]
    fn gain_is_cut_delta(hg in hypergraph(), seed in 0u64..500) {
        let fixed = vec![FREE; hg.num_vertices() as usize];
        let sides = sides_for(&hg, seed);
        let half = hg.total_vertex_weight() as f64 / 2.0;
        let st = BisectionState::new(&hg, sides, &fixed, [half, half], 0.2);
        for v in 0..hg.num_vertices() {
            let mut st2 = st.clone();
            let before = st2.cut() as i64;
            st2.apply_move(v, None);
            prop_assert_eq!(st.gain(v), before - st2.cut() as i64);
        }
    }

    /// Moving a vertex twice restores the exact state.
    #[test]
    fn move_is_involution(hg in hypergraph(), seed in 0u64..500) {
        let fixed = vec![FREE; hg.num_vertices() as usize];
        let sides = sides_for(&hg, seed);
        let half = hg.total_vertex_weight() as f64 / 2.0;
        let st0 = BisectionState::new(&hg, sides, &fixed, [half, half], 0.2);
        let mut st = st0.clone();
        let v = hg.num_vertices() / 2;
        st.apply_move(v, None);
        st.apply_move(v, None);
        prop_assert_eq!(st.cut(), st0.cut());
        prop_assert_eq!(st.weights(), st0.weights());
        prop_assert_eq!(st.sides(), st0.sides());
    }

    /// A full FM refinement never worsens (penalty, cut) — including the
    /// boundary variant.
    #[test]
    fn refinement_monotone(hg in hypergraph(), seed in 0u64..200) {
        let fixed = vec![FREE; hg.num_vertices() as usize];
        let half = hg.total_vertex_weight() as f64 / 2.0;
        for boundary in [false, true] {
            let sides = sides_for(&hg, seed);
            let mut st = BisectionState::new(&hg, sides, &fixed, [half, half], 0.2);
            let before = (st.balance_penalty(), st.cut());
            let mut rng = SmallRng::seed_from_u64(seed);
            if boundary {
                st.refine_boundary(&mut rng, 4, 0);
            } else {
                st.refine(&mut rng, 4, 0);
            }
            prop_assert!((st.balance_penalty(), st.cut()) <= before, "boundary={boundary}");
        }
    }
}
