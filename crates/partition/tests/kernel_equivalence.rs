//! Differential tests pinning the fused table-driven `apply_move` kernel
//! to the historical branchy kernel, bucket state included.
//!
//! The fused kernel must be *bit-equivalent* to the original four-branch
//! form: recorded per-seed objectives (`golden_cutsize.rs` in `fgh-core`)
//! depend on FM tie-breaking, which in turn depends on the exact sequence
//! of gain-bucket operations — including "redundant" double adjusts whose
//! intermediate bucket hop re-raises the buckets' cached max index and
//! re-exposes vertices an earlier pop skipped as inadmissible.

use fgh_hypergraph::Hypergraph;
use fgh_partition::engine::{NetSideCounts, Substrate};
use fgh_partition::gain::GainBuckets;
use fgh_partition::LevelArena;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The pre-rewrite kernel, verbatim: one pin scan per firing λ-transition
/// branch. Kept as the oracle for the fused implementation.
fn apply_move_legacy(
    hg: &Hypergraph<u32>,
    cs: &mut NetSideCounts<u32>,
    side: &[u8],
    v: u32,
    cut: &mut u64,
    adjust: &mut dyn FnMut(u32, i64),
) {
    let s = side[v as usize] as usize;
    let t = 1 - s;
    for &n in hg.nets(v) {
        let ni = n as usize;
        let c = hg.net_cost(n) as i64;
        let (tc, fc) = (cs.pc[t][ni], cs.pc[s][ni]);
        if tc == 0 {
            *cut += c as u64;
            for &u in hg.pins(n) {
                if u != v {
                    adjust(u, c);
                }
            }
        } else if tc == 1 {
            for &u in hg.pins(n) {
                if u != v && side[u as usize] as usize == t {
                    adjust(u, -c);
                }
            }
        }
        let fc_after = fc as usize - 1;
        if fc_after == 0 {
            *cut -= c as u64;
            for &u in hg.pins(n) {
                if u != v {
                    adjust(u, -c);
                }
            }
        } else if fc_after == 1 {
            for &u in hg.pins(n) {
                if u != v && side[u as usize] as usize == s {
                    adjust(u, c);
                }
            }
        }
        cs.pc[s][ni] = fc_after as u32;
        cs.pc[t][ni] = tc + 1;
    }
}

fn random_instance(seed: u64) -> (Hypergraph<u32>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nv: u32 = 40;
    let nn = 80;
    let mut nets = Vec::new();
    for _ in 0..nn {
        // Bias toward 2-pin nets: their collapse transitions carry the
        // historical double-adjust the fused kernel must reproduce.
        let size = if rng.gen_bool(0.6) {
            2
        } else {
            rng.gen_range(1..=8usize)
        };
        let mut pins: Vec<u32> = Vec::new();
        while pins.len() < size {
            let v = rng.gen_range(0..nv);
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        nets.push(pins);
    }
    let weights: Vec<u32> = (0..nv).map(|_| rng.gen_range(1..4u32)).collect();
    let costs: Vec<u32> = nets.iter().map(|_| rng.gen_range(1..4u32)).collect();
    let hg = Hypergraph::from_nets_weighted(nv, &nets, weights, costs).unwrap();
    let side: Vec<u8> = (0..nv).map(|_| rng.gen_range(0..2u8)).collect();
    (hg, side)
}

fn drain(b: &mut GainBuckets<u32>) -> Vec<(u32, i64)> {
    let mut out = Vec::new();
    while let Some(x) = b.pop_max_where(|_| true) {
        out.push(x);
    }
    out
}

/// Random move sequences: cut, side counts, and the full bucket pop order
/// must match the legacy kernel after every move.
#[test]
fn fused_apply_move_matches_legacy_bucket_state() {
    for seed in 0..200u64 {
        let (hg, side) = random_instance(seed);
        let nv = hg.num_vertices();
        let mut rng = SmallRng::seed_from_u64(!seed);

        let mut arena = LevelArena::disabled();
        let (mut cs_new, mut cut_new) = hg.cut_state(&side, &mut arena);
        let (mut cs_old, mut cut_old) = hg.cut_state(&side, &mut arena);

        let mut side_new = side.clone();
        let mut side_old = side;
        let bound = hg.max_gain_bound();
        let mut b_new: GainBuckets<u32> = GainBuckets::new(nv as usize, bound);
        let mut b_old: GainBuckets<u32> = GainBuckets::new(nv as usize, bound);
        for v in 0..nv {
            let g = Substrate::gain(&hg, &cs_new, &side_new, v);
            b_new.insert(v, g);
            b_old.insert(v, g);
        }

        for step in 0..35 {
            let v = rng.gen_range(0..nv);
            b_new.remove(v);
            b_old.remove(v);
            Substrate::apply_move_gains(&hg, &mut cs_new, &side_new, v, &mut cut_new, |u, d| {
                b_new.adjust(u, d)
            });
            apply_move_legacy(&hg, &mut cs_old, &side_old, v, &mut cut_old, &mut |u, d| {
                b_old.adjust(u, d)
            });
            side_new[v as usize] ^= 1;
            side_old[v as usize] ^= 1;
            assert_eq!(cut_new, cut_old, "seed {seed} step {step}: cut diverged");
            assert_eq!(cs_new.pc, cs_old.pc, "seed {seed} step {step}: pc diverged");
            // Compare full pop order by draining and re-inserting in
            // reverse, which reconstructs the exact list state.
            let dn = drain(&mut b_new);
            let d_o = drain(&mut b_old);
            assert_eq!(dn, d_o, "seed {seed} step {step}: bucket order diverged");
            for &(u, g) in dn.iter().rev() {
                b_new.insert(u, g);
                b_old.insert(u, g);
            }
        }
    }
}

/// FM-shaped pass with an admissibility predicate that skips vertices:
/// `pop_max_where` lowers the cached max bucket past skipped vertices, so
/// the pop sequence is sensitive to *intermediate* bucket hops of
/// double-adjusts — the channel a naive coalesced kernel gets wrong.
#[test]
fn fused_apply_move_matches_legacy_under_admissibility_skips() {
    for seed in 0..200u64 {
        let (hg, side) = random_instance(seed ^ 0x9e37);
        let nv = hg.num_vertices();

        let mut arena = LevelArena::disabled();
        let (mut cs_new, mut cut_new) = hg.cut_state(&side, &mut arena);
        let (mut cs_old, mut cut_old) = hg.cut_state(&side, &mut arena);

        let mut side_new = side.clone();
        let mut side_old = side;
        let bound = hg.max_gain_bound();
        let mut b_new: GainBuckets<u32> = GainBuckets::new(nv as usize, bound);
        let mut b_old: GainBuckets<u32> = GainBuckets::new(nv as usize, bound);
        for v in 0..nv {
            let g = Substrate::gain(&hg, &cs_new, &side_new, v);
            b_new.insert(v, g);
            b_old.insert(v, g);
        }

        let mut step = 0u64;
        loop {
            // Phase-stable pseudo-random predicate, like FM balance
            // rejections: the same vertex subset stays inadmissible for
            // several consecutive pops, stranding skipped vertices above
            // the buckets' lowered max index.
            let phase = step / 6;
            let adm = |u: u32| (u as u64 ^ phase).wrapping_mul(0x9e3779b97f4a7c15) >> 62 != 0;
            let pick_new = b_new.pop_max_where(adm);
            let pick_old = b_old.pop_max_where(adm);
            assert_eq!(pick_new, pick_old, "seed {seed} step {step}: pop diverged");
            let Some((v, _)) = pick_new else { break };
            Substrate::apply_move_gains(&hg, &mut cs_new, &side_new, v, &mut cut_new, |u, d| {
                b_new.adjust(u, d)
            });
            apply_move_legacy(&hg, &mut cs_old, &side_old, v, &mut cut_old, &mut |u, d| {
                b_old.adjust(u, d)
            });
            side_new[v as usize] ^= 1;
            side_old[v as usize] ^= 1;
            assert_eq!(cut_new, cut_old, "seed {seed} step {step}: cut diverged");
            assert_eq!(cs_new.pc, cs_old.pc, "seed {seed} step {step}: pc diverged");
            step += 1;
        }
    }
}
