//! Thread-safety audit: runs the parallel driver with the `paranoid`
//! feature's invariant validators live at every engine checkpoint. A
//! cross-thread arena aliasing bug (two domains sharing scratch, a
//! recycled buffer leaking between subtrees) corrupts the extracted
//! sub-hypergraphs, which these validators reject by panicking — so a
//! clean pass is evidence the per-domain arena discipline holds under
//! real fork-join concurrency.
//!
//! Build with `cargo test -p fgh-partition --features paranoid`.
#![cfg(feature = "paranoid")]

use fgh_hypergraph::Hypergraph;
use fgh_partition::{partition_hypergraph_seeds, Parallelism, PartitionConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random hypergraph: `nv` vertices, `nn` nets of 2..=6 pins.
fn random_hypergraph(nv: u32, nn: u32, seed: u64) -> Hypergraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut nets = Vec::with_capacity(nn as usize);
    for _ in 0..nn {
        let size = rng.gen_range(2..=6).min(nv as usize);
        let mut pins: Vec<u32> = Vec::with_capacity(size);
        while pins.len() < size {
            let v = rng.gen_range(0..nv);
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        nets.push(pins);
    }
    Hypergraph::from_nets(nv, &nets).expect("valid test hypergraph")
}

#[test]
fn parallel_driver_passes_invariant_validators() {
    let hg = random_hypergraph(600, 1400, 42);
    let cfg = PartitionConfig {
        seed: 3,
        parallelism: Parallelism::Threads(4),
        ..Default::default()
    };
    // 4 seeds x K=8 forks both the multi-seed fan-out and the in-tree
    // recursive-bisection parallelism, with paranoid checkpoints armed.
    let results = partition_hypergraph_seeds(&hg, 8, &cfg, 4);
    assert_eq!(results.len(), 4);
    for r in results {
        let r = r.expect("paranoid parallel run failed");
        assert_eq!(r.partition.k(), 8);
        r.partition.validate(&hg, false).expect("valid partition");
    }
}
