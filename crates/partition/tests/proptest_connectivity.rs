//! Property-based equivalence: the hybrid inline/spill connectivity table
//! ([`NetConnectivity`]) must behave exactly like the scan-based oracle
//! ([`NaiveConnectivity`]) under arbitrary random move sequences —
//! counts, λ, iteration order, and move-error behavior included. The
//! spill migration (λ crossing [`INLINE_LAMBDA`] in either direction) is
//! the regression surface this harness exists to sweep.

use fgh_hypergraph::{Hypergraph, Partition};
use fgh_partition::connectivity::{NaiveConnectivity, NetConnectivity, INLINE_LAMBDA};
use proptest::collection::{btree_set, vec as pvec};
use proptest::prelude::*;

/// A random instance: nets over `nv` vertices, an initial k-way part
/// assignment, and a sequence of vertex moves (vertex, destination part).
#[derive(Debug, Clone)]
struct Instance {
    nv: u32,
    k: u32,
    nets: Vec<Vec<u32>>,
    parts: Vec<u32>,
    moves: Vec<(u32, u32)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    // k deliberately straddles INLINE_LAMBDA so nets cross the spill
    // threshold both ways during the move sequence.
    (4..30u32, 2..(3 * INLINE_LAMBDA as u32)).prop_flat_map(|(nv, k)| {
        let nets = pvec(btree_set(0..nv, 1..=(nv as usize).min(12)), 1..40).prop_map(|sets| {
            sets.into_iter()
                .map(|s| s.into_iter().collect::<Vec<u32>>())
                .collect::<Vec<_>>()
        });
        let parts = pvec(0..k, nv as usize);
        let moves = pvec((0..nv, 0..k), 0..120);
        (nets, parts, moves).prop_map(move |(nets, parts, moves)| Instance {
            nv,
            k,
            nets,
            parts,
            moves,
        })
    })
}

/// Full-table comparison through every accessor.
fn assert_tables_match(
    hg: &Hypergraph<u32>,
    hybrid: &NetConnectivity,
    oracle: &NaiveConnectivity,
    k: u32,
    ctx: &str,
) {
    for n in 0..hg.num_nets() {
        assert_eq!(hybrid.lambda(n), oracle.lambda(n), "{ctx}: lambda(net {n})");
        for p in 0..k {
            assert_eq!(
                hybrid.count(n, p),
                oracle.count(n, p),
                "{ctx}: count(net {n}, part {p})"
            );
        }
        let mut hv: Vec<(u32, u64)> = Vec::new();
        hybrid.for_each_part(n, |p, c| hv.push((p, c)));
        let mut ov: Vec<(u32, u64)> = Vec::new();
        oracle.for_each_part(n, |p, c| ov.push((p, c)));
        assert_eq!(hv, ov, "{ctx}: iteration order (net {n})");
    }
}

proptest! {
    /// Build + arbitrary move sequences: the hybrid table tracks the
    /// oracle exactly at every step, including iteration order (FM
    /// tie-breaking reads the table in row order, so order is part of
    /// the contract, not an implementation detail).
    #[test]
    fn hybrid_matches_naive_oracle(inst in instance()) {
        let hg = Hypergraph::<u32>::from_nets(inst.nv, &inst.nets).unwrap();
        let mut parts = inst.parts.clone();
        let partition = Partition::new(inst.k, parts.clone()).unwrap();
        let mut hybrid = NetConnectivity::build(&hg, &partition);
        let mut oracle = NaiveConnectivity::build(&hg, &partition);
        assert_tables_match(&hg, &hybrid, &oracle, inst.k, "after build");

        for (step, &(v, to)) in inst.moves.iter().enumerate() {
            let from = parts[v as usize];
            if from == to {
                continue;
            }
            for &n in hg.nets(v) {
                let rh = hybrid.move_pin(n, from, to);
                let ro = oracle.move_pin(n, from, to);
                prop_assert_eq!(
                    rh.is_ok(),
                    ro.is_ok(),
                    "step {}: move_pin disagreement on net {}",
                    step,
                    n
                );
            }
            parts[v as usize] = to;
            assert_tables_match(&hg, &hybrid, &oracle, inst.k, &format!("after move {step}"));
        }

        // End state must also equal a fresh build from the final parts:
        // incremental maintenance drifts from batch construction only
        // through bugs.
        let fresh = NaiveConnectivity::build(
            &hg,
            &Partition::new(inst.k, parts).unwrap(),
        );
        for n in 0..hg.num_nets() {
            prop_assert_eq!(hybrid.lambda(n), fresh.lambda(n), "final lambda(net {})", n);
            for p in 0..inst.k {
                prop_assert_eq!(
                    hybrid.count(n, p),
                    fresh.count(n, p),
                    "final count(net {}, part {})",
                    n,
                    p
                );
            }
        }
    }

    /// Moving a pin out of a part that has none is a typed error on both
    /// implementations, and a failed move must not corrupt the table.
    #[test]
    fn invalid_moves_error_identically(inst in instance()) {
        let hg = Hypergraph::<u32>::from_nets(inst.nv, &inst.nets).unwrap();
        let partition = Partition::new(inst.k, inst.parts.clone()).unwrap();
        let mut hybrid = NetConnectivity::build(&hg, &partition);
        let mut oracle = NaiveConnectivity::build(&hg, &partition);
        for n in 0..hg.num_nets() {
            // A part with zero pins on this net: guaranteed-invalid move.
            let Some(absent) = (0..inst.k).find(|&p| oracle.count(n, p) == 0) else {
                continue;
            };
            prop_assert!(hybrid.move_pin(n, absent, 0).is_err());
            prop_assert!(oracle.move_pin(n, absent, 0).is_err());
        }
        assert_tables_match(&hg, &hybrid, &oracle, inst.k, "after rejected moves");
    }
}
