//! Property test of the eq. 3 invariant: recursive bisection with net
//! splitting makes the per-bisection cut-net cuts sum to the K-way
//! connectivity−1 cutsize of the assembled partition.

use fgh_hypergraph::{cutsize_connectivity, Hypergraph, Partition};
use fgh_partition::{MultilevelDriver, PartitionConfig};
use proptest::prelude::*;

/// Strategy: a random hypergraph with `n` vertices and nets of size 2..=5
/// (pin sets drawn as btree sets for dedup and determinism).
fn hypergraph() -> impl Strategy<Value = Hypergraph> {
    (8u32..=60).prop_flat_map(|n| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..n, 2..=5usize),
            1..=(2 * n as usize),
        )
        .prop_map(move |nets| {
            let nets: Vec<Vec<u32>> = nets.into_iter().map(|s| s.into_iter().collect()).collect();
            Hypergraph::from_nets(n, &nets).expect("valid nets")
        })
    })
}

proptest! {
    /// With net splitting and no K-way post-refinement, the driver's
    /// accumulated bisection cut sum IS the connectivity−1 cutsize.
    #[test]
    fn bisection_cuts_compose_to_connectivity(hg in hypergraph(), seed in 0u64..50) {
        for k in [2u32, 4, 8] {
            let cfg = PartitionConfig {
                kway_refine: false,
                vcycles: 0,
                net_splitting: true,
                ..PartitionConfig::with_seed(seed)
            };
            let mut driver = MultilevelDriver::new(cfg);
            let fixed = vec![u32::MAX; hg.num_vertices() as usize];
            let out = driver.partition_recursive(&hg, k, &fixed);
            let p = Partition::new(k, out.parts).expect("parts in range");
            prop_assert_eq!(
                cutsize_connectivity(&hg, &p),
                out.cut_sum,
                "eq. 3 composition failed for k = {} seed = {}",
                k,
                seed
            );
        }
    }

    /// Without net splitting the sum only bounds the connectivity−1
    /// cutsize from below on cut nets counted once per bisection — the
    /// documented reason the ablation optimizes the wrong objective. Here
    /// we only require the partition itself to stay valid.
    #[test]
    fn no_split_still_yields_valid_partitions(hg in hypergraph(), seed in 0u64..25) {
        let cfg = PartitionConfig {
            kway_refine: false,
            vcycles: 0,
            net_splitting: false,
            ..PartitionConfig::with_seed(seed)
        };
        let mut driver = MultilevelDriver::new(cfg);
        let fixed = vec![u32::MAX; hg.num_vertices() as usize];
        let out = driver.partition_recursive(&hg, 4, &fixed);
        let p = Partition::new(4, out.parts).expect("parts in range");
        prop_assert_eq!(p.len(), hg.num_vertices() as usize);
    }
}
