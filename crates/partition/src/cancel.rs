//! Cooperative cancellation for long-running partitioning runs.
//!
//! A [`CancelToken`] is a shared, latched stop flag: any holder of a clone
//! may trip it, and the engine polls it at the same multilevel checkpoints
//! as the wall-clock budget (between coarsening levels, before initial
//! partitioning, between refinement levels). Cancellation degrades
//! gracefully exactly like an exhausted budget — the run keeps the best
//! partition found so far and records the truncation in
//! [`crate::EngineStats::cancel_truncations`] rather than failing — so a
//! server whose client disconnected stops burning CPU within one
//! checkpoint interval and still returns a valid (degraded) partial.
//!
//! The wall-clock deadline itself is built on the same latch: the
//! engine-internal [`SharedDeadline`] is a `CancelToken` that trips itself
//! the first time any thread observes the clock past the deadline, so all
//! forked workers agree the budget is gone without further clock reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cancellation flag for one partitioning run.
///
/// Clones share the flag (`Arc` inside); [`CancelToken::cancel`] latches
/// it permanently. Checking is a relaxed atomic load — cheap enough for
/// the engine to poll between every coarsening level and FM pass batch.
///
/// ```
/// use fgh_partition::CancelToken;
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    tripped: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Latches: there is no way to un-cancel, so
    /// every thread of the run converges on stopping.
    pub fn cancel(&self) {
        self.tripped.store(true, Ordering::Relaxed); // lint: atomic — relaxed: latched flag; checkpoints poll it, no data guarded
    }

    /// `true` once any clone of this token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.tripped.load(Ordering::Relaxed) // lint: atomic — relaxed: poll; a stale read only delays the stop by one checkpoint
    }
}

/// A wall-clock deadline shared by every thread of a run (forked workers
/// clone the `Arc` holding it). Built on [`CancelToken`]: the first
/// checkpoint poll — on any thread — that observes the clock past `at`
/// trips the token, so later polls are a relaxed atomic load instead of a
/// clock read and all domains agree the budget is gone.
#[derive(Debug)]
pub(crate) struct SharedDeadline {
    at: Instant,
    token: CancelToken,
}

impl SharedDeadline {
    pub(crate) fn new(at: Instant) -> Self {
        SharedDeadline {
            at,
            token: CancelToken::new(),
        }
    }

    pub(crate) fn exhausted(&self) -> bool {
        if self.token.is_cancelled() {
            return true;
        }
        let hit = Instant::now() >= self.at;
        if hit {
            self.token.cancel();
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_latches_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        c.cancel(); // idempotent
        assert!(c.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn deadline_trips_once_past_due() {
        let d = SharedDeadline::new(Instant::now() - Duration::from_millis(1));
        assert!(d.exhausted());
        assert!(d.exhausted(), "latched");
        let future = SharedDeadline::new(Instant::now() + Duration::from_secs(3600));
        assert!(!future.exhausted());
    }
}
