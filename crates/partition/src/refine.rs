//! Fiduccia–Mattheyses bisection refinement with gain buckets.
//!
//! [`BisectionState`] maintains a 2-way partition of a hypergraph together
//! with per-net pin counts on each side, the cut-net cutsize, and side
//! weights. [`BisectionState::fm_pass`] runs one FM pass: tentatively move
//! max-gain vertices (locking each after its move), then roll back to the
//! best prefix seen. Gains use the cut-net metric, which recursive
//! bisection with net splitting composes into the connectivity−1 metric.

use fgh_hypergraph::Hypergraph;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::coarsen::FREE;
use crate::gain::GainBuckets;

/// Mutable state of a hypergraph bisection.
#[derive(Debug, Clone)]
pub struct BisectionState<'a> {
    hg: &'a Hypergraph,
    /// Side (0/1) of each vertex.
    side: Vec<u8>,
    /// Fixed side per vertex (`FREE` = movable).
    fixed: &'a [i8],
    /// Pin counts per net on each side.
    pc: [Vec<u32>; 2],
    /// Total vertex weight on each side.
    weight: [u64; 2],
    /// Balance caps per side: side weight must not exceed `cap[s]`.
    cap: [u64; 2],
    /// One max vertex weight of slack lets FM pass through mildly
    /// imbalanced intermediate states (the rollback only keeps prefixes
    /// whose balance penalty did not worsen).
    slack: u64,
    /// Current cut-net cutsize.
    cut: u64,
}

impl<'a> BisectionState<'a> {
    /// Builds the state for an existing side assignment.
    ///
    /// `targets` are the ideal side weights (they sum to the total vertex
    /// weight for proportional K-way splits); `epsilon` is the per-level
    /// allowance, so `cap[s] = targets[s] * (1 + epsilon)`.
    pub fn new(
        hg: &'a Hypergraph,
        side: Vec<u8>,
        fixed: &'a [i8],
        targets: [f64; 2],
        epsilon: f64,
    ) -> Self {
        assert_eq!(side.len(), hg.num_vertices() as usize);
        assert_eq!(fixed.len(), side.len());
        let nn = hg.num_nets() as usize;
        let mut pc = [vec![0u32; nn], vec![0u32; nn]];
        let mut weight = [0u64; 2];
        for v in 0..hg.num_vertices() {
            let s = side[v as usize] as usize;
            weight[s] += hg.vertex_weight(v) as u64;
            for &n in hg.nets(v) {
                pc[s][n as usize] += 1;
            }
        }
        let mut cut = 0u64;
        for n in 0..nn {
            if pc[0][n] > 0 && pc[1][n] > 0 {
                cut += hg.net_cost(n as u32) as u64;
            }
        }
        let cap = [
            (targets[0] * (1.0 + epsilon)).floor().max(0.0) as u64,
            (targets[1] * (1.0 + epsilon)).floor().max(0.0) as u64,
        ];
        let slack = hg.vertex_weights().iter().copied().max().unwrap_or(1).max(1) as u64;
        BisectionState { hg, side, fixed, pc, weight, cap, slack, cut }
    }

    /// Current cut-net cutsize.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Current side weights.
    pub fn weights(&self) -> [u64; 2] {
        self.weight
    }

    /// Balance caps.
    pub fn caps(&self) -> [u64; 2] {
        self.cap
    }

    /// The side assignment.
    pub fn sides(&self) -> &[u8] {
        &self.side
    }

    /// Consumes the state, returning the side assignment.
    pub fn into_sides(self) -> Vec<u8> {
        self.side
    }

    /// Sum of balance-cap violations (0 when balanced).
    pub fn balance_penalty(&self) -> u64 {
        self.weight[0].saturating_sub(self.cap[0]) + self.weight[1].saturating_sub(self.cap[1])
    }

    /// FM gain of moving `v` to the opposite side (cut-net metric).
    pub fn gain(&self, v: u32) -> i64 {
        let s = self.side[v as usize] as usize;
        let t = 1 - s;
        let mut g = 0i64;
        for &n in self.hg.nets(v) {
            let c = self.hg.net_cost(n) as i64;
            if self.pc[s][n as usize] == 1 {
                g += c; // net becomes uncut (or stays internal to t)
            }
            if self.pc[t][n as usize] == 0 {
                g -= c; // net becomes cut
            }
        }
        g
    }

    /// Moves `v` to the opposite side, updating pin counts, weights, and
    /// the cutsize. Optionally applies FM delta-gain updates to `buckets`.
    pub fn apply_move(&mut self, v: u32, buckets: Option<&mut GainBuckets>) {
        let s = self.side[v as usize] as usize;
        let t = 1 - s;
        let w = self.hg.vertex_weight(v) as u64;

        if let Some(buckets) = buckets {
            for &n in self.hg.nets(v) {
                let ni = n as usize;
                let c = self.hg.net_cost(n) as i64;
                let (tc, fc) = (self.pc[t][ni], self.pc[s][ni]);
                if tc == 0 {
                    // Net becomes cut: every other (free, queued) pin gains +c.
                    self.cut += c as u64;
                    for &u in self.hg.pins(n) {
                        if u != v {
                            buckets.adjust(u, c);
                        }
                    }
                } else if tc == 1 {
                    // The lone pin on t loses its "uncut by moving" bonus.
                    for &u in self.hg.pins(n) {
                        if u != v && self.side[u as usize] as usize == t {
                            buckets.adjust(u, -c);
                        }
                    }
                }
                let fc_after = fc - 1;
                if fc_after == 0 {
                    // Net becomes internal to t: pins lose the "would cut" malus.
                    self.cut -= c as u64;
                    for &u in self.hg.pins(n) {
                        if u != v {
                            buckets.adjust(u, -c);
                        }
                    }
                } else if fc_after == 1 {
                    // The lone remaining pin on s gains the uncut bonus.
                    for &u in self.hg.pins(n) {
                        if u != v && self.side[u as usize] as usize == s {
                            buckets.adjust(u, c);
                        }
                    }
                }
                self.pc[s][ni] -= 1;
                self.pc[t][ni] += 1;
            }
        } else {
            for &n in self.hg.nets(v) {
                let ni = n as usize;
                let c = self.hg.net_cost(n) as u64;
                if self.pc[t][ni] == 0 {
                    self.cut += c;
                }
                self.pc[s][ni] -= 1;
                self.pc[t][ni] += 1;
                if self.pc[s][ni] == 0 {
                    self.cut -= c;
                }
            }
        }

        self.side[v as usize] = t as u8;
        self.weight[s] -= w;
        self.weight[t] += w;
    }

    /// `true` when moving `v` to the opposite side is admissible under the
    /// balance caps: the target side stays under its cap, or the source
    /// side is over its cap and the move strictly reduces the total
    /// violation.
    fn admissible(&self, v: u32) -> bool {
        let s = self.side[v as usize] as usize;
        let t = 1 - s;
        let w = self.hg.vertex_weight(v) as u64;
        if self.weight[t] + w <= self.cap[t] + self.slack {
            return true;
        }
        if self.weight[s] > self.cap[s] {
            let before = self.balance_penalty();
            let after = self.weight[s].saturating_sub(w).saturating_sub(self.cap[s])
                + (self.weight[t] + w).saturating_sub(self.cap[t]);
            return after < before;
        }
        false
    }

    /// Largest possible |gain| bound for bucket sizing: the maximum over
    /// vertices of the total cost of incident nets.
    fn max_gain_bound(&self) -> i64 {
        let mut best = 1i64;
        for v in 0..self.hg.num_vertices() {
            let s: i64 =
                self.hg.nets(v).iter().map(|&n| self.hg.net_cost(n) as i64).sum();
            best = best.max(s);
        }
        best
    }

    /// `true` if `v` touches at least one cut net.
    pub fn is_boundary(&self, v: u32) -> bool {
        self.hg.nets(v).iter().any(|&n| {
            let ni = n as usize;
            self.pc[0][ni] > 0 && self.pc[1][ni] > 0
        })
    }

    /// One FM pass: tentative max-gain moves with lock-on-move, then
    /// rollback to the best prefix (lexicographic on (balance penalty,
    /// cut)). Returns `true` if the pass strictly improved that pair.
    ///
    /// `early_exit` bounds the number of consecutive non-improving moves
    /// (0 = unbounded).
    pub fn fm_pass(&mut self, rng: &mut impl Rng, early_exit: usize) -> bool {
        self.fm_pass_impl(rng, early_exit, false)
    }

    /// Boundary variant of [`BisectionState::fm_pass`]: only boundary
    /// vertices are queued initially, which is substantially faster on
    /// large well-separated hypergraphs. Interior vertices are not
    /// reachable as move candidates (their gains are always negative at
    /// queue time), so quality loss is small; balance-repair moves may be
    /// missed when the boundary is tiny — use full passes when the start
    /// state is badly imbalanced.
    pub fn fm_pass_boundary(&mut self, rng: &mut impl Rng, early_exit: usize) -> bool {
        self.fm_pass_impl(rng, early_exit, true)
    }

    fn fm_pass_impl(&mut self, rng: &mut impl Rng, early_exit: usize, boundary: bool) -> bool {
        let n = self.hg.num_vertices();
        let mut buckets = GainBuckets::new(n as usize, self.max_gain_bound());

        // Insert free vertices in random order (ties broken by insertion).
        let mut order: Vec<u32> = (0..n)
            .filter(|&v| {
                self.fixed[v as usize] == FREE && (!boundary || self.is_boundary(v))
            })
            .collect();
        order.shuffle(rng);
        for &v in &order {
            buckets.insert(v, self.gain(v));
        }

        let start = (self.balance_penalty(), self.cut);
        let mut best = start;
        let mut moves: Vec<u32> = Vec::new();
        let mut best_len = 0usize;
        let mut since_best = 0usize;

        while let Some((v, _)) = {
            // Split borrows: admissibility needs &self, pop needs &mut buckets.
            let state: &BisectionState<'a> = &*self;
            buckets.pop_max_where(|u| state.admissible(u))
        } {
            self.apply_move(v, Some(&mut buckets));
            moves.push(v);
            let now = (self.balance_penalty(), self.cut);
            if now < best {
                best = now;
                best_len = moves.len();
                since_best = 0;
            } else {
                since_best += 1;
                if early_exit > 0 && since_best >= early_exit {
                    break;
                }
            }
        }

        // Roll back past the best prefix.
        for &v in moves[best_len..].iter().rev() {
            self.apply_move(v, None);
        }
        debug_assert_eq!((self.balance_penalty(), self.cut), best);
        best < start
    }

    /// Runs up to `max_passes` FM passes, stopping when a pass yields no
    /// improvement. Returns the number of improving passes.
    pub fn refine(&mut self, rng: &mut impl Rng, max_passes: usize, early_exit: usize) -> usize {
        let mut improved = 0;
        for _ in 0..max_passes {
            if self.fm_pass(rng, early_exit) {
                improved += 1;
            } else {
                break;
            }
        }
        improved
    }

    /// Like [`BisectionState::refine`] with boundary-only passes; one full
    /// pass is run first whenever the state starts imbalanced (boundary
    /// passes cannot always reach the vertices needed for balance repair).
    pub fn refine_boundary(
        &mut self,
        rng: &mut impl Rng,
        max_passes: usize,
        early_exit: usize,
    ) -> usize {
        let mut improved = 0;
        if self.balance_penalty() > 0 && self.fm_pass(rng, early_exit) {
            improved += 1;
        }
        for _ in improved..max_passes {
            if self.fm_pass_boundary(rng, early_exit) {
                improved += 1;
            } else {
                break;
            }
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_clusters;
    use fgh_hypergraph::{cutsize_cutnet, Partition};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn state_cut_matches_metric() {
        let hg = two_clusters(10);
        let fixed = free(20);
        // Deliberately bad split: even/odd.
        let side: Vec<u8> = (0..20).map(|v| (v % 2) as u8).collect();
        let st = BisectionState::new(&hg, side.clone(), &fixed, [10.0, 10.0], 0.1);
        let p = Partition::new(2, side.iter().map(|&s| s as u32).collect()).unwrap();
        assert_eq!(st.cut(), cutsize_cutnet(&hg, &p));
    }

    #[test]
    fn gain_matches_recompute() {
        let hg = two_clusters(8);
        let fixed = free(16);
        let side: Vec<u8> = (0..16).map(|v| (v % 2) as u8).collect();
        let st = BisectionState::new(&hg, side, &fixed, [8.0, 8.0], 0.2);
        for v in 0..16u32 {
            // Recompute gain by brute force: cut before minus cut after.
            let mut st2 = st.clone();
            let before = st2.cut() as i64;
            st2.apply_move(v, None);
            let after = st2.cut() as i64;
            assert_eq!(st.gain(v), before - after, "vertex {v}");
        }
    }

    #[test]
    fn apply_move_roundtrip() {
        let hg = two_clusters(8);
        let fixed = free(16);
        let side: Vec<u8> = (0..16).map(|v| u8::from(v >= 8)).collect();
        let st0 = BisectionState::new(&hg, side, &fixed, [8.0, 8.0], 0.2);
        let mut st = st0.clone();
        st.apply_move(3, None);
        st.apply_move(3, None);
        assert_eq!(st.cut(), st0.cut());
        assert_eq!(st.weights(), st0.weights());
        assert_eq!(st.sides(), st0.sides());
    }

    #[test]
    fn fm_finds_the_bridge_cut() {
        let hg = two_clusters(20);
        let fixed = free(40);
        // Start from a random-ish split with the right weights.
        let side: Vec<u8> = (0..40).map(|v| (v % 2) as u8).collect();
        let mut st = BisectionState::new(&hg, side, &fixed, [20.0, 20.0], 0.05);
        st.refine(&mut rng(), 8, 0);
        assert_eq!(st.cut(), 1, "optimal bisection cuts only the bridge net");
        assert_eq!(st.balance_penalty(), 0);
    }

    #[test]
    fn fm_never_worsens() {
        for seed in 0..5u64 {
            let hg = crate::testutil::random_hypergraph(60, 90, 6, seed);
            let fixed = free(60);
            let side: Vec<u8> = (0..60).map(|v| u8::from(v >= 30)).collect();
            let mut st = BisectionState::new(&hg, side, &fixed, [30.0, 30.0], 0.1);
            let before = (st.balance_penalty(), st.cut());
            st.refine(&mut SmallRng::seed_from_u64(seed), 6, 0);
            let after = (st.balance_penalty(), st.cut());
            assert!(after <= before, "seed {seed}: {before:?} -> {after:?}");
        }
    }

    #[test]
    fn fixed_vertices_never_move() {
        let hg = two_clusters(10);
        let mut fixed = free(20);
        fixed[0] = 1; // pinned to the "wrong" side
        fixed[19] = 0;
        let mut side: Vec<u8> = (0..20).map(|v| u8::from(v >= 10)).collect();
        side[0] = 1;
        side[19] = 0;
        let mut st = BisectionState::new(&hg, side, &fixed, [10.0, 10.0], 0.2);
        st.refine(&mut rng(), 6, 0);
        assert_eq!(st.sides()[0], 1);
        assert_eq!(st.sides()[19], 0);
    }

    #[test]
    fn rebalances_overweight_side() {
        let hg = two_clusters(16);
        let fixed = free(32);
        // Everything on side 0: grossly imbalanced.
        let side = vec![0u8; 32];
        let mut st = BisectionState::new(&hg, side, &fixed, [16.0, 16.0], 0.1);
        st.refine(&mut rng(), 8, 0);
        assert_eq!(st.balance_penalty(), 0, "FM must restore balance");
    }

    #[test]
    fn boundary_fm_matches_full_fm_on_separable_instance() {
        let hg = two_clusters(50);
        let fixed = free(100);
        let side: Vec<u8> = (0..100).map(|v| (v % 2) as u8).collect();
        let mut full = BisectionState::new(&hg, side.clone(), &fixed, [50.0, 50.0], 0.05);
        full.refine(&mut rng(), 8, 0);
        let mut bnd = BisectionState::new(&hg, side, &fixed, [50.0, 50.0], 0.05);
        bnd.refine_boundary(&mut rng(), 8, 0);
        assert_eq!(full.cut(), 1);
        assert_eq!(bnd.cut(), 1, "boundary FM should also find the bridge");
        assert_eq!(bnd.balance_penalty(), 0);
    }

    #[test]
    fn is_boundary_classification() {
        let hg = two_clusters(4);
        let fixed = free(8);
        // Sides match the cluster structure: only the bridge endpoints
        // (vertices 3 and 4) touch the single cut net.
        let side: Vec<u8> = (0..8).map(|v| u8::from(v >= 4)).collect();
        let st = BisectionState::new(&hg, side, &fixed, [4.0, 4.0], 0.1);
        assert!(st.is_boundary(3));
        assert!(st.is_boundary(4));
        assert!(!st.is_boundary(0));
        assert!(!st.is_boundary(7));
    }

    #[test]
    fn zero_weight_vertices_move_freely() {
        let hg = fgh_hypergraph::Hypergraph::from_nets_weighted(
            4,
            &[vec![0, 1], vec![1, 2], vec![2, 3]],
            vec![1, 0, 0, 1],
            vec![1, 1, 1],
        )
        .unwrap();
        let fixed = free(4);
        let side = vec![0u8, 1, 0, 1];
        let mut st = BisectionState::new(&hg, side, &fixed, [1.0, 1.0], 0.0);
        st.refine(&mut rng(), 6, 0);
        // Best achievable: dummies huddle with their net mates, cut = 1.
        assert_eq!(st.cut(), 1);
    }
}
