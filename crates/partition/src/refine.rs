//! Fiduccia–Mattheyses bisection refinement with gain buckets.
//!
//! [`BisectionState`] maintains a 2-way partition of any
//! [`Substrate`] — a hypergraph with per-net side pin counts and the
//! cut-net cutsize, or a graph with the edge cut — together with side
//! weights and balance caps. [`BisectionState::fm_pass`] runs one FM pass:
//! tentatively move max-gain vertices (locking each after its move), then
//! roll back to the best prefix seen. For hypergraphs, gains use the
//! cut-net metric, which recursive bisection with net splitting composes
//! into the connectivity−1 metric; for graphs they are the classic
//! external-minus-internal edge weights.
//!
//! Vertex ids carry the substrate's index width [`Substrate::Ix`]; the
//! gain buckets, order buffers, and move log are all width-matched so the
//! u32 fast path keeps its compact memory layout.

use fgh_hypergraph::Hypergraph;
use fgh_sparse::IndexType;
use fgh_trace::{Span, SpanHandle};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::arena::{ArenaIndex, LevelArena};
use crate::coarsen::FREE;
use crate::engine::Substrate;
use crate::gain::GainBuckets;
use crate::level::EngineStats;

/// Mutable state of a bisection over any [`Substrate`] (defaults to
/// [`Hypergraph`] for backward compatibility).
#[derive(Debug, Clone)]
pub struct BisectionState<'a, S: Substrate = Hypergraph> {
    sub: &'a S,
    /// Side (0/1) of each vertex.
    side: Vec<u8>,
    /// Fixed side per vertex (`FREE` = movable).
    fixed: &'a [i8],
    /// Substrate-specific cut bookkeeping (per-net side pin counts for
    /// hypergraphs, nothing for graphs).
    cs: S::CutState,
    /// Total vertex weight on each side.
    weight: [u64; 2],
    /// Balance caps per side: side weight must not exceed `cap[s]`.
    cap: [u64; 2],
    /// One max vertex weight of slack lets FM pass through mildly
    /// imbalanced intermediate states (the rollback only keeps prefixes
    /// whose balance penalty did not worsen).
    slack: u64,
    /// Current cutsize.
    cut: u64,
    /// Lazily computed [`Substrate::max_gain_bound`]: the bound is an
    /// O(incidences) scan, so it is cached across the FM passes of this
    /// bisection instead of being recomputed per pass.
    gain_bound: Option<i64>,
}

impl<'a, S: Substrate> BisectionState<'a, S> {
    /// Builds the state for an existing side assignment.
    ///
    /// `targets` are the ideal side weights (they sum to the total vertex
    /// weight for proportional K-way splits); `epsilon` is the per-level
    /// allowance, so `cap[s] = targets[s] * (1 + epsilon)`.
    pub fn new(
        sub: &'a S,
        side: Vec<u8>,
        fixed: &'a [i8],
        targets: [f64; 2],
        epsilon: f64,
    ) -> Self {
        Self::new_in(
            sub,
            side,
            fixed,
            targets,
            epsilon,
            &mut LevelArena::disabled(),
        )
    }

    /// Arena-backed variant of [`BisectionState::new`]: cut bookkeeping
    /// buffers are drawn from `arena` (return them with
    /// [`BisectionState::into_sides_in`]).
    // lint: checked-index — side/fixed lengths are asserted == num_vertices; weight/cap are [u64; 2] indexed by 0/1 sides
    pub fn new_in(
        sub: &'a S,
        side: Vec<u8>,
        fixed: &'a [i8],
        targets: [f64; 2],
        epsilon: f64,
        arena: &mut LevelArena,
    ) -> Self {
        assert_eq!(side.len(), sub.num_vertices());
        assert_eq!(fixed.len(), side.len());
        let mut weight = [0u64; 2];
        for (v, &s) in side.iter().enumerate() {
            weight[s as usize] += sub.vertex_weight(S::Ix::from_index(v)) as u64;
        }
        let (cs, cut) = sub.cut_state(&side, arena);
        let cap = [
            (targets[0] * (1.0 + epsilon)).floor().max(0.0) as u64,
            (targets[1] * (1.0 + epsilon)).floor().max(0.0) as u64,
        ];
        let slack = sub.max_vertex_weight().max(1);
        BisectionState {
            sub,
            side,
            fixed,
            cs,
            weight,
            cap,
            slack,
            cut,
            gain_bound: None,
        }
    }

    /// The substrate's gain bound, computed on first use and cached for
    /// the remaining FM passes of this bisection.
    fn cached_gain_bound(&mut self) -> i64 {
        match self.gain_bound {
            Some(b) => b,
            None => {
                let b = self.sub.max_gain_bound();
                self.gain_bound = Some(b);
                b
            }
        }
    }

    /// Current cutsize.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Current side weights.
    pub fn weights(&self) -> [u64; 2] {
        self.weight
    }

    /// Balance caps.
    pub fn caps(&self) -> [u64; 2] {
        self.cap
    }

    /// The side assignment.
    pub fn sides(&self) -> &[u8] {
        &self.side
    }

    /// Consumes the state, returning the side assignment.
    pub fn into_sides(self) -> Vec<u8> {
        self.side
    }

    /// Like [`BisectionState::into_sides`], but recycles the cut
    /// bookkeeping buffers into `arena` first.
    pub fn into_sides_in(self, arena: &mut LevelArena) -> Vec<u8> {
        S::recycle_cut_state(self.cs, arena);
        self.side
    }

    /// Sum of balance-cap violations (0 when balanced).
    // lint: checked-index — weight and cap are [u64; 2] indexed by constant 0/1
    pub fn balance_penalty(&self) -> u64 {
        self.weight[0].saturating_sub(self.cap[0]) + self.weight[1].saturating_sub(self.cap[1])
    }

    /// FM gain of moving `v` to the opposite side.
    pub fn gain(&self, v: S::Ix) -> i64 {
        self.sub.gain(&self.cs, &self.side, v)
    }

    /// Moves `v` to the opposite side, updating the cut bookkeeping,
    /// weights, and the cutsize. Optionally applies FM delta-gain updates
    /// to `buckets`.
    // lint: checked-index — v < num_vertices == side.len(); s/t are 0/1 into [u64; 2]
    pub fn apply_move(&mut self, v: S::Ix, buckets: Option<&mut GainBuckets<S::Ix>>) {
        let s = self.side[v.index()] as usize;
        let t = 1 - s;
        let w = self.sub.vertex_weight(v) as u64;
        match buckets {
            Some(b) => {
                self.sub
                    .apply_move_gains(&mut self.cs, &self.side, v, &mut self.cut, |u, d| {
                        b.adjust(u, d)
                    })
            }
            None => self
                .sub
                .apply_move(&mut self.cs, &self.side, v, &mut self.cut),
        }
        self.side[v.index()] = t as u8; // lint: checked-cast — t is a 0/1 side
        self.weight[s] -= w;
        self.weight[t] += w;
    }

    /// `true` when moving `v` to the opposite side is admissible under the
    /// balance caps: the target side stays under its cap, or the source
    /// side is over its cap and the move strictly reduces the total
    /// violation.
    // lint: checked-index — v < num_vertices == side.len(); s/t are 0/1 into [u64; 2]
    fn admissible(&self, v: S::Ix) -> bool {
        let s = self.side[v.index()] as usize;
        let t = 1 - s;
        let w = self.sub.vertex_weight(v) as u64;
        // Saturating adds: side weights approach the total vertex weight
        // and caps derive from it, so the per-move admission check needs
        // no range pre-checks — overflow saturates to "inadmissible"
        // instead of branching.
        if self.weight[t].saturating_add(w) <= self.cap[t].saturating_add(self.slack) {
            return true;
        }
        if self.weight[s] > self.cap[s] {
            let before = self.balance_penalty();
            let after = self.weight[s].saturating_sub(w).saturating_sub(self.cap[s])
                + self.weight[t].saturating_add(w).saturating_sub(self.cap[t]);
            return after < before;
        }
        false
    }

    /// `true` if `v` touches the cut.
    pub fn is_boundary(&self, v: S::Ix) -> bool {
        self.sub.is_boundary(&self.cs, &self.side, v)
    }

    /// One FM pass: tentative max-gain moves with lock-on-move, then
    /// rollback to the best prefix (lexicographic on (balance penalty,
    /// cut)). Returns `true` if the pass strictly improved that pair.
    ///
    /// `early_exit` bounds the number of consecutive non-improving moves
    /// (0 = unbounded).
    pub fn fm_pass(&mut self, rng: &mut impl Rng, early_exit: usize) -> bool {
        self.fm_pass_in(
            rng,
            early_exit,
            false,
            &mut LevelArena::disabled(),
            &mut EngineStats::default(),
        )
    }

    /// Boundary variant of [`BisectionState::fm_pass`]: only boundary
    /// vertices are queued initially, which is substantially faster on
    /// large well-separated instances. Interior vertices are not
    /// reachable as move candidates (their gains are always negative at
    /// queue time), so quality loss is small; balance-repair moves may be
    /// missed when the boundary is tiny — use full passes when the start
    /// state is badly imbalanced.
    pub fn fm_pass_boundary(&mut self, rng: &mut impl Rng, early_exit: usize) -> bool {
        self.fm_pass_in(
            rng,
            early_exit,
            true,
            &mut LevelArena::disabled(),
            &mut EngineStats::default(),
        )
    }

    /// Arena-backed FM pass used by the engine: the bucket structure and
    /// order/move buffers come from `arena`; pass/move counters accumulate
    /// into `stats`.
    // lint: checked-index — v ranges over 0..num_vertices == fixed.len(); best_len <= moves.len()
    pub(crate) fn fm_pass_in(
        &mut self,
        rng: &mut impl Rng,
        early_exit: usize,
        boundary: bool,
        arena: &mut LevelArena,
        stats: &mut EngineStats,
    ) -> bool {
        let n = self.sub.num_vertices();
        let bound = self.cached_gain_bound();
        let mut buckets = S::Ix::take_buckets(arena, n, bound);

        // Insert free vertices in random order (ties broken by insertion).
        let mut order = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
        order.extend(
            (0..n)
                .map(S::Ix::from_index)
                .filter(|&v| self.fixed[v.index()] == FREE && (!boundary || self.is_boundary(v))),
        );
        order.shuffle(rng);
        for &v in order.iter() {
            buckets.insert(v, self.gain(v));
        }

        let start = (self.balance_penalty(), self.cut);
        let mut best = start;
        let mut moves = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
        let mut best_len = 0usize;
        let mut since_best = 0usize;

        while let Some((v, _)) = {
            // Split borrows: admissibility needs &self, pop needs &mut buckets.
            let state: &Self = &*self;
            buckets.pop_max_where(|u| state.admissible(u))
        } {
            self.apply_move(v, Some(&mut buckets));
            moves.push(v);
            let now = (self.balance_penalty(), self.cut);
            if now < best {
                best = now;
                best_len = moves.len();
                since_best = 0;
            } else {
                since_best += 1;
                if early_exit > 0 && since_best >= early_exit {
                    break;
                }
            }
        }
        stats.fm_passes += 1;
        stats.fm_moves += moves.len() as u64;
        stats.fm_rollbacks += (moves.len() - best_len) as u64;

        // Roll back past the best prefix.
        for &v in moves[best_len..].iter().rev() {
            self.apply_move(v, None);
        }
        debug_assert_eq!((self.balance_penalty(), self.cut), best);
        S::Ix::give_buckets(arena, buckets);
        S::Ix::give_ids(arena, order);
        S::Ix::give_ids(arena, moves);
        best < start
    }

    /// Runs up to `max_passes` FM passes, stopping when a pass yields no
    /// improvement. Returns the number of improving passes.
    pub fn refine(&mut self, rng: &mut impl Rng, max_passes: usize, early_exit: usize) -> usize {
        self.refine_in(
            rng,
            max_passes,
            early_exit,
            false,
            &mut LevelArena::disabled(),
            &mut EngineStats::default(),
            &SpanHandle::noop(),
        )
    }

    /// Like [`BisectionState::refine`] with boundary-only passes; one full
    /// pass is run first whenever the state starts imbalanced (boundary
    /// passes cannot always reach the vertices needed for balance repair).
    pub fn refine_boundary(
        &mut self,
        rng: &mut impl Rng,
        max_passes: usize,
        early_exit: usize,
    ) -> usize {
        self.refine_in(
            rng,
            max_passes,
            early_exit,
            true,
            &mut LevelArena::disabled(),
            &mut EngineStats::default(),
            &SpanHandle::noop(),
        )
    }

    /// Arena-backed refinement loop used by the engine (`boundary` selects
    /// boundary-only passes after an optional balance-repair full pass).
    /// Each FM pass opens an `fm-pass[i]` child span under `span` (free
    /// when the handle is a noop) carrying per-pass `moves`/`rollbacks`
    /// counters.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn refine_in(
        &mut self,
        rng: &mut impl Rng,
        max_passes: usize,
        early_exit: usize,
        boundary: bool,
        arena: &mut LevelArena,
        stats: &mut EngineStats,
        span: &SpanHandle,
    ) -> usize {
        let mut improved = 0;
        let mut pass_idx = 0u64;
        if boundary && self.balance_penalty() > 0 {
            // Balance repair: boundary passes cannot always reach the
            // vertices a rebalance needs, so run one full pass first.
            if self.traced_pass(rng, early_exit, false, arena, stats, span, pass_idx) {
                improved += 1;
            }
            pass_idx += 1;
        }
        let remaining = max_passes.saturating_sub(improved);
        for _ in 0..remaining {
            if self.traced_pass(rng, early_exit, boundary, arena, stats, span, pass_idx) {
                pass_idx += 1;
                improved += 1;
            } else {
                break;
            }
        }
        improved
    }

    /// One [`BisectionState::fm_pass_in`] wrapped in an `fm-pass[idx]`
    /// span with per-pass counters. With the `trace` feature off, or a
    /// noop handle, this is exactly an `fm_pass_in` call.
    #[allow(clippy::too_many_arguments)]
    fn traced_pass(
        &mut self,
        rng: &mut impl Rng,
        early_exit: usize,
        boundary: bool,
        arena: &mut LevelArena,
        stats: &mut EngineStats,
        span: &SpanHandle,
        idx: u64,
    ) -> bool {
        let sp = if cfg!(feature = "trace") {
            span.child_indexed("fm-pass", idx)
        } else {
            Span::noop()
        };
        let (moves0, rollbacks0) = (stats.fm_moves, stats.fm_rollbacks);
        let improved = self.fm_pass_in(rng, early_exit, boundary, arena, stats);
        if sp.is_enabled() {
            sp.counter("moves", stats.fm_moves - moves0);
            sp.counter("rollbacks", stats.fm_rollbacks - rollbacks0);
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_clusters;
    use fgh_hypergraph::{cutsize_cutnet, Partition};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn state_cut_matches_metric() {
        let hg = two_clusters(10);
        let fixed = free(20);
        // Deliberately bad split: even/odd.
        let side: Vec<u8> = (0..20).map(|v| (v % 2) as u8).collect();
        let st = BisectionState::new(&hg, side.clone(), &fixed, [10.0, 10.0], 0.1);
        let p = Partition::new(2, side.iter().map(|&s| s as u32).collect()).unwrap();
        assert_eq!(st.cut(), cutsize_cutnet(&hg, &p));
    }

    #[test]
    fn gain_matches_recompute() {
        let hg = two_clusters(8);
        let fixed = free(16);
        let side: Vec<u8> = (0..16).map(|v| (v % 2) as u8).collect();
        let st = BisectionState::new(&hg, side, &fixed, [8.0, 8.0], 0.2);
        for v in 0..16u32 {
            // Recompute gain by brute force: cut before minus cut after.
            let mut st2 = st.clone();
            let before = st2.cut() as i64;
            st2.apply_move(v, None);
            let after = st2.cut() as i64;
            assert_eq!(st.gain(v), before - after, "vertex {v}");
        }
    }

    #[test]
    fn apply_move_roundtrip() {
        let hg = two_clusters(8);
        let fixed = free(16);
        let side: Vec<u8> = (0..16).map(|v| u8::from(v >= 8)).collect();
        let st0 = BisectionState::new(&hg, side, &fixed, [8.0, 8.0], 0.2);
        let mut st = st0.clone();
        st.apply_move(3, None);
        st.apply_move(3, None);
        assert_eq!(st.cut(), st0.cut());
        assert_eq!(st.weights(), st0.weights());
        assert_eq!(st.sides(), st0.sides());
    }

    #[test]
    fn fm_finds_the_bridge_cut() {
        let hg = two_clusters(20);
        let fixed = free(40);
        // Start from a random-ish split with the right weights.
        let side: Vec<u8> = (0..40).map(|v| (v % 2) as u8).collect();
        let mut st = BisectionState::new(&hg, side, &fixed, [20.0, 20.0], 0.05);
        st.refine(&mut rng(), 8, 0);
        assert_eq!(st.cut(), 1, "optimal bisection cuts only the bridge net");
        assert_eq!(st.balance_penalty(), 0);
    }

    #[test]
    fn fm_never_worsens() {
        for seed in 0..5u64 {
            let hg = crate::testutil::random_hypergraph(60, 90, 6, seed);
            let fixed = free(60);
            let side: Vec<u8> = (0..60).map(|v| u8::from(v >= 30)).collect();
            let mut st = BisectionState::new(&hg, side, &fixed, [30.0, 30.0], 0.1);
            let before = (st.balance_penalty(), st.cut());
            st.refine(&mut SmallRng::seed_from_u64(seed), 6, 0);
            let after = (st.balance_penalty(), st.cut());
            assert!(after <= before, "seed {seed}: {before:?} -> {after:?}");
        }
    }

    #[test]
    fn fixed_vertices_never_move() {
        let hg = two_clusters(10);
        let mut fixed = free(20);
        fixed[0] = 1; // pinned to the "wrong" side
        fixed[19] = 0;
        let mut side: Vec<u8> = (0..20).map(|v| u8::from(v >= 10)).collect();
        side[0] = 1;
        side[19] = 0;
        let mut st = BisectionState::new(&hg, side, &fixed, [10.0, 10.0], 0.2);
        st.refine(&mut rng(), 6, 0);
        assert_eq!(st.sides()[0], 1);
        assert_eq!(st.sides()[19], 0);
    }

    #[test]
    fn rebalances_overweight_side() {
        let hg = two_clusters(16);
        let fixed = free(32);
        // Everything on side 0: grossly imbalanced.
        let side = vec![0u8; 32];
        let mut st = BisectionState::new(&hg, side, &fixed, [16.0, 16.0], 0.1);
        st.refine(&mut rng(), 8, 0);
        assert_eq!(st.balance_penalty(), 0, "FM must restore balance");
    }

    #[test]
    fn boundary_fm_matches_full_fm_on_separable_instance() {
        let hg = two_clusters(50);
        let fixed = free(100);
        let side: Vec<u8> = (0..100).map(|v| (v % 2) as u8).collect();
        let mut full = BisectionState::new(&hg, side.clone(), &fixed, [50.0, 50.0], 0.05);
        full.refine(&mut rng(), 8, 0);
        let mut bnd = BisectionState::new(&hg, side, &fixed, [50.0, 50.0], 0.05);
        bnd.refine_boundary(&mut rng(), 8, 0);
        assert_eq!(full.cut(), 1);
        assert_eq!(bnd.cut(), 1, "boundary FM should also find the bridge");
        assert_eq!(bnd.balance_penalty(), 0);
    }

    #[test]
    fn is_boundary_classification() {
        let hg = two_clusters(4);
        let fixed = free(8);
        // Sides match the cluster structure: only the bridge endpoints
        // (vertices 3 and 4) touch the single cut net.
        let side: Vec<u8> = (0..8).map(|v| u8::from(v >= 4)).collect();
        let st = BisectionState::new(&hg, side, &fixed, [4.0, 4.0], 0.1);
        assert!(st.is_boundary(3));
        assert!(st.is_boundary(4));
        assert!(!st.is_boundary(0));
        assert!(!st.is_boundary(7));
    }

    #[test]
    fn zero_weight_vertices_move_freely() {
        let hg = fgh_hypergraph::Hypergraph::from_nets_weighted(
            4u32,
            &[vec![0, 1], vec![1, 2], vec![2, 3]],
            vec![1, 0, 0, 1],
            vec![1, 1, 1],
        )
        .unwrap();
        let fixed = free(4);
        let side = vec![0u8, 1, 0, 1];
        let mut st = BisectionState::new(&hg, side, &fixed, [1.0, 1.0], 0.0);
        st.refine(&mut rng(), 6, 0);
        // Best achievable: dummies huddle with their net mates, cut = 1.
        assert_eq!(st.cut(), 1);
    }

    #[test]
    fn u64_state_matches_u32_state() {
        // The same structure at both widths refines to the same sides.
        let hg = two_clusters(12);
        let nets: Vec<Vec<u64>> = (0..hg.num_nets())
            .map(|n| hg.pins(n).iter().map(|&p| p as u64).collect())
            .collect();
        let hg64 = Hypergraph::<u64>::from_nets(24u64, &nets).unwrap();
        let fixed = free(24);
        let side: Vec<u8> = (0..24).map(|v| (v % 2) as u8).collect();
        let mut a = BisectionState::new(&hg, side.clone(), &fixed, [12.0, 12.0], 0.1);
        let mut b = BisectionState::new(&hg64, side, &fixed, [12.0, 12.0], 0.1);
        a.refine(&mut rng(), 8, 0);
        b.refine(&mut rng(), 8, 0);
        assert_eq!(a.cut(), b.cut());
        assert_eq!(a.sides(), b.sides());
    }

    #[test]
    fn arena_backed_state_matches_plain() {
        let hg = two_clusters(12);
        let fixed = free(24);
        let side: Vec<u8> = (0..24).map(|v| (v % 2) as u8).collect();
        let mut arena = LevelArena::new();
        let mut stats = EngineStats::default();
        let mut a =
            BisectionState::new_in(&hg, side.clone(), &fixed, [12.0, 12.0], 0.1, &mut arena);
        let mut b = BisectionState::new(&hg, side, &fixed, [12.0, 12.0], 0.1);
        a.refine_in(
            &mut rng(),
            8,
            0,
            false,
            &mut arena,
            &mut stats,
            &SpanHandle::noop(),
        );
        b.refine(&mut rng(), 8, 0);
        assert_eq!(a.cut(), b.cut());
        assert_eq!(a.sides(), b.sides());
        assert!(stats.fm_passes > 0 && stats.fm_moves > 0);
        let sides = a.into_sides_in(&mut arena);
        assert_eq!(sides.len(), 24);
        assert!(
            arena.stats().reused > 0,
            "pass 2+ should reuse pooled buffers"
        );
    }
}
