//! Direct K-way greedy refinement on the connectivity−1 metric.
//!
//! Recursive bisection is locally optimal per bisection but cannot move a
//! vertex between parts created in different subtrees. This post-pass (an
//! extension over the paper; PaToH later grew a similar phase) sweeps
//! boundary vertices in random order and applies positive-gain moves under
//! the K-way balance constraint. It is generic over the hypergraph's index
//! width: vertex/net ids carry `I`, part ids stay `u32`, and per-part pin
//! counts are `u64` (a net at `u64` width can hold more than `u32::MAX`
//! pins in one part).

use fgh_hypergraph::{Hypergraph, Partition};
use fgh_sparse::IndexType;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::connectivity::NetConnectivity;
use crate::error::PartitionError;

/// Runs up to `passes` greedy K-way refinement sweeps over `partition`
/// in place. `fixed[v] != u32::MAX` pins vertex `v`. Returns the total
/// connectivity−1 gain achieved (non-negative), or
/// [`PartitionError::Internal`] when the part-count bookkeeping is found
/// corrupt mid-sweep.
pub fn kway_refine<I: IndexType>(
    hg: &Hypergraph<I>,
    partition: &mut Partition,
    fixed: &[u32],
    epsilon: f64,
    passes: usize,
    rng: &mut impl Rng,
) -> Result<u64, PartitionError> {
    let k = partition.k();
    if k < 2 || hg.num_vertices() == I::ZERO {
        return Ok(0);
    }
    let mut np = NetConnectivity::build(hg, partition);
    let mut weights = partition.part_weights(hg);
    let total: u64 = weights.iter().sum();
    let cap = ((total as f64 / k as f64) * (1.0 + epsilon)).floor() as u64;

    let mut total_gain = 0u64;
    let mut order: Vec<I> = (0..hg.num_vertices().index())
        .map(I::from_index)
        .filter(|&v| fixed[v.index()] == u32::MAX)
        .collect();

    for _ in 0..passes {
        order.shuffle(rng);
        let mut pass_gain = 0u64;
        for &v in &order {
            let from = partition.part_at(v.index());
            // Only boundary vertices can have positive gain.
            let mut candidate_parts: Vec<u32> = Vec::new();
            let mut boundary = false;
            for &n in hg.nets(v) {
                if np.lambda(n) > 1 {
                    boundary = true;
                }
                np.for_each_part(n, |q, _| {
                    if q != from && !candidate_parts.contains(&q) {
                        candidate_parts.push(q);
                    }
                });
            }
            if !boundary || candidate_parts.is_empty() {
                continue;
            }
            let w = hg.vertex_weight(v) as u64;
            let mut best: Option<(i64, u32)> = None;
            for &q in &candidate_parts {
                if weights[q as usize] + w > cap {
                    continue;
                }
                let mut gain = 0i64;
                for &n in hg.nets(v) {
                    let c = hg.net_cost(n) as i64;
                    if np.count(n, from) == 1 {
                        gain += c; // leaving removes `from` from Λ
                    }
                    if np.count(n, q) == 0 {
                        gain -= c; // arriving adds `q` to Λ
                    }
                }
                match best {
                    Some((bg, _)) if bg >= gain => {}
                    _ => best = Some((gain, q)),
                }
            }
            if let Some((gain, q)) = best {
                // Accept strict improvements, or zero-gain moves that
                // improve balance (helps escape RB artifacts).
                let improves_balance = weights[q as usize] + w < weights[from as usize];
                if gain > 0 || (gain == 0 && improves_balance) {
                    for &n in hg.nets(v) {
                        np.move_pin(n, from, q)?;
                    }
                    weights[from as usize] -= w;
                    weights[q as usize] += w;
                    partition.assign_at(v.index(), q);
                    pass_gain += gain.max(0) as u64;
                }
            }
        }
        total_gain += pass_gain;
        if pass_gain == 0 {
            break;
        }
    }
    Ok(total_gain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_hypergraph;
    use fgh_hypergraph::cutsize_connectivity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn refine_improves_or_preserves_cutsize() {
        for seed in 0..4u64 {
            let hg = random_hypergraph(200, 300, 5, seed);
            // Deliberately bad partition: round-robin.
            let parts: Vec<u32> = (0..200).map(|v| v % 4).collect();
            let mut p = Partition::new(4, parts).unwrap();
            let before = cutsize_connectivity(&hg, &p);
            let fixed = vec![u32::MAX; 200];
            let gain = kway_refine(
                &hg,
                &mut p,
                &fixed,
                0.05,
                4,
                &mut SmallRng::seed_from_u64(seed),
            )
            .unwrap();
            let after = cutsize_connectivity(&hg, &p);
            assert_eq!(
                before - after,
                gain,
                "reported gain must match metric delta"
            );
            assert!(after <= before);
            assert!(gain > 0, "round-robin should be improvable (seed {seed})");
        }
    }

    #[test]
    fn refine_respects_balance() {
        let hg = random_hypergraph(120, 200, 4, 2);
        let parts: Vec<u32> = (0..120).map(|v| v % 3).collect();
        let mut p = Partition::new(3, parts).unwrap();
        let fixed = vec![u32::MAX; 120];
        kway_refine(
            &hg,
            &mut p,
            &fixed,
            0.05,
            4,
            &mut SmallRng::seed_from_u64(1),
        )
        .unwrap();
        assert!(p.imbalance_percent(&hg) <= 5.0 + 1e-9);
    }

    #[test]
    fn refine_respects_fixed() {
        let hg = random_hypergraph(60, 100, 4, 3);
        let parts: Vec<u32> = (0..60).map(|v| v % 2).collect();
        let mut p = Partition::new(2, parts.clone()).unwrap();
        let fixed: Vec<u32> = (0..60)
            .map(|v| if v < 10 { parts[v as usize] } else { u32::MAX })
            .collect();
        kway_refine(&hg, &mut p, &fixed, 0.1, 3, &mut SmallRng::seed_from_u64(5)).unwrap();
        for v in 0..10u32 {
            assert_eq!(p.part(v), parts[v as usize], "fixed vertex {v} moved");
        }
    }

    #[test]
    fn wide_refine_matches_narrow() {
        let hg = random_hypergraph(150, 240, 5, 8);
        let nets: Vec<Vec<u64>> = (0..hg.num_nets())
            .map(|n| hg.pins(n).iter().map(|&p| p as u64).collect())
            .collect();
        let hg64 = Hypergraph::<u64>::from_nets(150u64, &nets).unwrap();
        let parts: Vec<u32> = (0..150).map(|v| v % 4).collect();
        let mut p32 = Partition::new(4, parts.clone()).unwrap();
        let mut p64 = Partition::new(4, parts).unwrap();
        let fixed = vec![u32::MAX; 150];
        let g32 = kway_refine(
            &hg,
            &mut p32,
            &fixed,
            0.05,
            3,
            &mut SmallRng::seed_from_u64(6),
        )
        .unwrap();
        let g64 = kway_refine(
            &hg64,
            &mut p64,
            &fixed,
            0.05,
            3,
            &mut SmallRng::seed_from_u64(6),
        )
        .unwrap();
        assert_eq!(g32, g64);
        assert_eq!(p32.parts(), p64.parts());
    }

    #[test]
    fn k1_noop() {
        let hg = random_hypergraph(20, 30, 4, 1);
        let mut p = Partition::trivial(20);
        let fixed = vec![u32::MAX; 20];
        assert_eq!(
            kway_refine(
                &hg,
                &mut p,
                &fixed,
                0.05,
                2,
                &mut SmallRng::seed_from_u64(1)
            )
            .unwrap(),
            0
        );
    }
}
