//! V-cycle (iterated multilevel) K-way refinement.
//!
//! After recursive bisection produces a K-way partition, further gains
//! hide at coarse granularities that flat per-vertex refinement cannot
//! reach (moving one degree-2 vertex of a fine-grain hypergraph rarely
//! uncuts a large net — whole clusters must move together). A V-cycle
//! recovers them: re-coarsen the hypergraph with clustering **restricted
//! to same-part vertices** (so the partition projects exactly, with
//! unchanged cutsize), refine greedily at the coarsest level where single
//! moves relocate whole clusters, then project back down refining at each
//! level. Repeats until a cycle yields no improvement.
//!
//! This is the standard PaToH/MeTiS "V-cycle" post-pass, one of the
//! "planned modifications" the paper's §4 alludes to for the fine-grain
//! model.

use fgh_hypergraph::{cutsize_connectivity, Hypergraph, Partition};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use crate::arena::{ArenaIndex, LevelArena};
use crate::coarsen::{coarsen_once_in, FREE};
use crate::config::{CoarseningScheme, PartitionConfig};
use crate::error::PartitionError;
use crate::kway::kway_refine;
use crate::level::Level;

/// Runs up to `cycles` V-cycles of K-way refinement on `partition` in
/// place. Returns the total connectivity−1 improvement, or
/// [`PartitionError::Internal`] when a projected partition falls outside
/// `0..k` (a coarsening-map defect, not bad input).
pub fn vcycle_refine<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    partition: &mut Partition,
    fixed: &[u32],
    cfg: &PartitionConfig,
    cycles: usize,
) -> Result<u64, PartitionError> {
    let k = partition.k();
    if k < 2 || hg.num_vertices() == I::ZERO {
        return Ok(0);
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0xd1b54a32d192ed03));
    let start = cutsize_connectivity(hg, partition);
    let mut current = start;

    for _ in 0..cycles {
        let improved = one_cycle(hg, partition, fixed, cfg, &mut rng)?;
        let now = cutsize_connectivity(hg, partition);
        debug_assert!(now <= current, "V-cycle must never worsen");
        if !improved || now == current {
            current = now;
            break;
        }
        current = now;
    }
    Ok(start - current)
}

fn one_cycle<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    partition: &mut Partition,
    fixed: &[u32],
    cfg: &PartitionConfig,
    rng: &mut SmallRng,
) -> Result<bool, PartitionError> {
    let k = partition.k();
    // Partition-respecting coarsening: cluster only same-part vertices so
    // the current partition projects exactly onto every coarse level.
    let mut levels: Vec<(Level<Hypergraph<I>>, Vec<u32>)> = Vec::new(); // (level, coarse parts)
    let weight_cap = (hg.total_vertex_weight() / (k as u64 * 2)).max(1);

    for _ in 0..10 {
        let (cur_hg, cur_parts): (&Hypergraph<I>, &[u32]) = match levels.last() {
            Some((l, p)) => (&l.coarse, p.as_slice()),
            None => (hg, partition.parts()),
        };
        if cur_hg.num_vertices().index() <= (cfg.coarsen_to as usize * k as usize).max(200) {
            break;
        }
        let next = coarsen_respecting(
            cur_hg,
            cur_parts,
            cfg.coarsening,
            cfg.max_net_size_for_matching,
            weight_cap,
            rng,
        );
        match next {
            Some(x) => levels.push(x),
            None => break,
        }
    }
    if levels.is_empty() {
        // No coarsening possible: fall back to one flat K-way pass.
        let gain = kway_refine(hg, partition, fixed, cfg.epsilon, 1, rng)?;
        return Ok(gain > 0);
    }

    // Refine at the coarsest level, then project down refining each level.
    let mut improved_any = false;
    let coarsest_idx = levels.len() - 1;
    let mut parts_at: Vec<u32> = levels[coarsest_idx].1.clone();
    for li in (0..levels.len()).rev() {
        let level_hg: &Hypergraph<I> = &levels[li].0.coarse;
        // Projected parts are always in `0..k`: restricted coarsening only
        // merges same-part vertices, so a failure here is a defect in the
        // coarsening maps and surfaces as a typed internal error.
        let mut p = Partition::new(k, parts_at.clone()).map_err(|e| {
            PartitionError::internal(format!(
                "V-cycle level {li}: projected parts out of range: {e}"
            ))
        })?;
        // Coarse fixed vertices: a cluster is pinned if any member is.
        let level_fixed = project_fixed(hg, &levels, li, fixed);
        let gain = kway_refine(level_hg, &mut p, &level_fixed, cfg.epsilon, 2, rng)?;
        improved_any |= gain > 0;
        // Project to the next finer level (or the original hypergraph).
        let map = &levels[li].0.map;
        if li == 0 {
            for (v, m) in map.iter().enumerate().take(hg.num_vertices().index()) {
                partition.assign_at(v, p.part_at(m.index()));
            }
        } else {
            let finer_n = levels[li - 1].0.coarse.num_vertices().index();
            parts_at = (0..finer_n).map(|v| p.part_at(map[v].index())).collect();
        }
    }
    // Final flat pass on the original hypergraph.
    let gain = kway_refine(hg, partition, fixed, cfg.epsilon, 1, rng)?;
    Ok(improved_any | (gain > 0))
}

/// Coarsens while merging only vertices of the same part. Returns the
/// level plus the coarse per-vertex parts.
fn coarsen_respecting<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    parts: &[u32],
    scheme: CoarseningScheme,
    max_net: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
) -> Option<(Level<Hypergraph<I>>, Vec<u32>)> {
    // Reuse the two-sided fixed mechanism by running coarsening with a
    // "fixed" vector derived from parity, then rejecting any cross-part
    // cluster post-hoc would break the map; instead, encode each part in
    // the fixed domain via two passes is insufficient for K > 2. The
    // simplest correct approach: make cross-part merges impossible by
    // lifting parts into the net structure — coarsen each part's induced
    // sub-hypergraph separately and stitch the maps.
    let k = parts.iter().copied().max().map(|m| m + 1).unwrap_or(1);
    let partition = Partition::new(k, parts.to_vec()).ok()?;
    let n = hg.num_vertices().index();

    let mut map = vec![I::MAX; n];
    let mut coarse_parts: Vec<u32> = Vec::new();
    let mut cluster_weight: Vec<u64> = Vec::new();
    let mut next_cluster = 0usize;
    for part in 0..k {
        let (sub, ids) = hg.extract_part(&partition, part);
        if sub.num_vertices() == I::ZERO {
            continue;
        }
        let fixed = vec![FREE; sub.num_vertices().index()];
        match coarsen_once_in(
            &sub,
            &fixed,
            scheme,
            max_net,
            weight_cap,
            rng,
            &mut LevelArena::disabled(),
        ) {
            Some(level) => {
                for (lv, &c) in level.map.iter().enumerate() {
                    map[ids[lv].index()] = I::from_index(next_cluster + c.index());
                }
                for c in 0..level.coarse.num_vertices().index() {
                    coarse_parts.push(part);
                    cluster_weight.push(level.coarse.vertex_weight(I::from_index(c)) as u64);
                }
                next_cluster += level.coarse.num_vertices().index();
            }
            None => {
                // Part too small/rigid to coarsen: singleton clusters.
                for &orig in &ids {
                    map[orig.index()] = I::from_index(next_cluster);
                    coarse_parts.push(part);
                    cluster_weight.push(hg.vertex_weight(orig) as u64);
                    next_cluster += 1;
                }
            }
        }
    }
    if next_cluster as f64 > 0.95 * n as f64 {
        return None;
    }

    // Contract the FULL hypergraph under the stitched map (extract_part
    // dropped cross-part pins; the contraction below restores them so cut
    // nets keep their connectivity).
    let weights: Vec<u32> = cluster_weight
        .iter()
        .map(|&w| u32::try_from(w).unwrap_or(u32::MAX))
        .collect();
    let mut stamp = vec![I::MAX; next_cluster];
    let mut nets: Vec<Vec<I>> = Vec::new();
    let mut costs: Vec<u32> = Vec::new();
    let mut merged: std::collections::HashMap<Box<[I]>, usize> = Default::default();
    for nn in 0..hg.num_nets().index() {
        let nn = I::from_index(nn);
        let mut pins: Vec<I> = Vec::new();
        for &p in hg.pins(nn) {
            let c = map[p.index()];
            if stamp[c.index()] != nn {
                stamp[c.index()] = nn;
                pins.push(c);
            }
        }
        if pins.len() < 2 {
            continue;
        }
        pins.sort_unstable();
        let key: Box<[I]> = pins.clone().into_boxed_slice();
        match merged.get(&key) {
            Some(&i) => costs[i] += hg.net_cost(nn),
            None => {
                merged.insert(key, nets.len());
                nets.push(pins);
                costs.push(hg.net_cost(nn));
            }
        }
    }
    let coarse =
        Hypergraph::from_nets_weighted(I::from_index(next_cluster), &nets, weights, costs).ok()?;
    let fixed = vec![FREE; next_cluster];
    Some((Level { coarse, map, fixed }, coarse_parts))
}

/// Projects original fixed-vertex pins to a level's clusters.
fn project_fixed<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    levels: &[(Level<Hypergraph<I>>, Vec<u32>)],
    li: usize,
    fixed: &[u32],
) -> Vec<u32> {
    // Compose maps 0..=li.
    let mut composed: Vec<I> = levels[0].0.map.clone();
    for level in &levels[1..=li] {
        for c in composed.iter_mut() {
            *c = level.0.map[c.index()];
        }
    }
    let n_coarse = levels[li].0.coarse.num_vertices().index();
    let mut out = vec![u32::MAX; n_coarse];
    for v in 0..hg.num_vertices().index() {
        if fixed[v] != u32::MAX {
            out[composed[v].index()] = fixed[v];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive::partition_hypergraph;
    use crate::testutil::random_hypergraph;

    #[test]
    fn vcycle_never_worsens_and_often_improves() {
        let mut total_gain = 0u64;
        for seed in 0..4u64 {
            let hg = random_hypergraph(600, 900, 8, seed);
            let cfg = PartitionConfig {
                kway_refine: false,
                ..PartitionConfig::with_seed(seed)
            };
            let r = partition_hypergraph(&hg, 8, &cfg).unwrap();
            let before = r.cutsize;
            let mut p = r.partition;
            let fixed = vec![u32::MAX; 600];
            let gain = vcycle_refine(&hg, &mut p, &fixed, &cfg, 3).unwrap();
            let after = cutsize_connectivity(&hg, &p);
            assert_eq!(before - after, gain, "gain accounting");
            assert!(after <= before);
            total_gain += gain;
        }
        assert!(
            total_gain > 0,
            "V-cycles should find something across 4 seeds"
        );
    }

    #[test]
    fn vcycle_respects_balance() {
        let hg = random_hypergraph(400, 600, 6, 9);
        let cfg = PartitionConfig::with_seed(9);
        let r = partition_hypergraph(&hg, 4, &cfg).unwrap();
        let mut p = r.partition;
        let fixed = vec![u32::MAX; 400];
        vcycle_refine(&hg, &mut p, &fixed, &cfg, 2).unwrap();
        assert!(
            p.imbalance_percent(&hg) <= cfg.epsilon * 100.0 + 1.0,
            "imbalance {}%",
            p.imbalance_percent(&hg)
        );
    }

    #[test]
    fn vcycle_respects_fixed() {
        let hg = random_hypergraph(200, 300, 5, 3);
        let cfg = PartitionConfig::with_seed(3);
        let mut fixed = vec![u32::MAX; 200];
        fixed[0] = 1;
        fixed[5] = 3;
        let r = crate::recursive::partition_hypergraph_fixed(&hg, 4, Some(&fixed), &cfg).unwrap();
        let mut p = r.partition;
        vcycle_refine(&hg, &mut p, &fixed, &cfg, 2).unwrap();
        assert_eq!(p.part(0), 1);
        assert_eq!(p.part(5), 3);
    }

    #[test]
    fn wide_vcycle_matches_narrow() {
        let hg = random_hypergraph(300, 450, 6, 11);
        let nets: Vec<Vec<u64>> = (0..hg.num_nets())
            .map(|n| hg.pins(n).iter().map(|&p| p as u64).collect())
            .collect();
        let hg64 = Hypergraph::<u64>::from_nets(300u64, &nets).unwrap();
        let cfg = PartitionConfig {
            kway_refine: false,
            ..PartitionConfig::with_seed(11)
        };
        let r = partition_hypergraph(&hg, 4, &cfg).unwrap();
        let mut p32 = r.partition.clone();
        let mut p64 = r.partition;
        let fixed = vec![u32::MAX; 300];
        let g32 = vcycle_refine(&hg, &mut p32, &fixed, &cfg, 2).unwrap();
        let g64 = vcycle_refine(&hg64, &mut p64, &fixed, &cfg, 2).unwrap();
        assert_eq!(g32, g64, "width must not change V-cycle behavior");
        assert_eq!(p32.parts(), p64.parts());
    }

    #[test]
    fn restricted_coarsening_preserves_partition_cutsize() {
        let hg = random_hypergraph(300, 500, 6, 5);
        let r = partition_hypergraph(&hg, 4, &PartitionConfig::with_seed(5)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        if let Some((level, coarse_parts)) = coarsen_respecting(
            &hg,
            r.partition.parts(),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut rng,
        ) {
            let pc = Partition::new(4, coarse_parts).unwrap();
            assert_eq!(
                cutsize_connectivity(&level.coarse, &pc),
                r.cutsize,
                "projection must preserve the cutsize exactly"
            );
            // Every cluster is pure (one part).
            for (v, &c) in level.map.iter().enumerate() {
                assert_eq!(pc.part(c), r.partition.part(v as u32));
            }
        }
    }

    #[test]
    fn k1_noop() {
        let hg = random_hypergraph(50, 80, 4, 7);
        let mut p = Partition::trivial(50);
        let fixed = vec![u32::MAX; 50];
        assert_eq!(
            vcycle_refine(&hg, &mut p, &fixed, &PartitionConfig::default(), 2).unwrap(),
            0
        );
    }
}
