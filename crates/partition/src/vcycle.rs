//! V-cycle (iterated multilevel) K-way refinement.
//!
//! After recursive bisection produces a K-way partition, further gains
//! hide at coarse granularities that flat per-vertex refinement cannot
//! reach (moving one degree-2 vertex of a fine-grain hypergraph rarely
//! uncuts a large net — whole clusters must move together). A V-cycle
//! recovers them: re-coarsen the hypergraph with clustering **restricted
//! to same-part vertices** (so the partition projects exactly, with
//! unchanged cutsize), refine greedily at the coarsest level where single
//! moves relocate whole clusters, then project back down refining at each
//! level. Repeats until a cycle yields no improvement.
//!
//! This is the standard PaToH/MeTiS "V-cycle" post-pass, one of the
//! "planned modifications" the paper's §4 alludes to for the fine-grain
//! model.

use fgh_hypergraph::{cutsize_connectivity, Hypergraph, Partition};
use rand::rngs::SmallRng;
use rand::Rng;
use rand::SeedableRng;

use crate::coarsen::{coarsen_once, CoarseLevel, FREE};
use crate::config::{CoarseningScheme, PartitionConfig};
use crate::error::PartitionError;
use crate::kway::kway_refine;

/// Runs up to `cycles` V-cycles of K-way refinement on `partition` in
/// place. Returns the total connectivity−1 improvement, or
/// [`PartitionError::Internal`] when a projected partition falls outside
/// `0..k` (a coarsening-map defect, not bad input).
pub fn vcycle_refine(
    hg: &Hypergraph,
    partition: &mut Partition,
    fixed: &[u32],
    cfg: &PartitionConfig,
    cycles: usize,
) -> Result<u64, PartitionError> {
    let k = partition.k();
    if k < 2 || hg.num_vertices() == 0 {
        return Ok(0);
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0xd1b54a32d192ed03));
    let start = cutsize_connectivity(hg, partition);
    let mut current = start;

    for _ in 0..cycles {
        let improved = one_cycle(hg, partition, fixed, cfg, &mut rng)?;
        let now = cutsize_connectivity(hg, partition);
        debug_assert!(now <= current, "V-cycle must never worsen");
        if !improved || now == current {
            current = now;
            break;
        }
        current = now;
    }
    Ok(start - current)
}

fn one_cycle(
    hg: &Hypergraph,
    partition: &mut Partition,
    fixed: &[u32],
    cfg: &PartitionConfig,
    rng: &mut SmallRng,
) -> Result<bool, PartitionError> {
    let k = partition.k();
    // Partition-respecting coarsening: cluster only same-part vertices so
    // the current partition projects exactly onto every coarse level.
    let mut levels: Vec<(CoarseLevel, Vec<u32>)> = Vec::new(); // (level, coarse parts)
    let weight_cap = (hg.total_vertex_weight() / (k as u64 * 2)).max(1);

    for _ in 0..10 {
        let (cur_hg, cur_parts): (&Hypergraph, &[u32]) = match levels.last() {
            Some((l, p)) => (&l.coarse, p.as_slice()),
            None => (hg, partition.parts()),
        };
        if cur_hg.num_vertices() <= (cfg.coarsen_to * k).max(200) {
            break;
        }
        let next = coarsen_respecting(
            cur_hg,
            cur_parts,
            cfg.coarsening,
            cfg.max_net_size_for_matching,
            weight_cap,
            rng,
        );
        match next {
            Some(x) => levels.push(x),
            None => break,
        }
    }
    if levels.is_empty() {
        // No coarsening possible: fall back to one flat K-way pass.
        let gain = kway_refine(hg, partition, fixed, cfg.epsilon, 1, rng)?;
        return Ok(gain > 0);
    }

    // Refine at the coarsest level, then project down refining each level.
    let mut improved_any = false;
    let coarsest_idx = levels.len() - 1;
    let mut parts_at: Vec<u32> = levels[coarsest_idx].1.clone();
    for li in (0..levels.len()).rev() {
        let level_hg: &Hypergraph = &levels[li].0.coarse;
        // Projected parts are always in `0..k`: restricted coarsening only
        // merges same-part vertices, so a failure here is a defect in the
        // coarsening maps and surfaces as a typed internal error.
        let mut p = Partition::new(k, parts_at.clone()).map_err(|e| {
            PartitionError::internal(format!(
                "V-cycle level {li}: projected parts out of range: {e}"
            ))
        })?;
        // Coarse fixed vertices: a cluster is pinned if any member is.
        let level_fixed = project_fixed(hg, &levels, li, fixed);
        let gain = kway_refine(level_hg, &mut p, &level_fixed, cfg.epsilon, 2, rng)?;
        improved_any |= gain > 0;
        // Project to the next finer level (or the original hypergraph).
        let map = &levels[li].map_ref().map;
        if li == 0 {
            for v in 0..hg.num_vertices() {
                partition.assign(v, p.part(map[v as usize]));
            }
        } else {
            let finer_n = levels[li - 1].0.coarse.num_vertices();
            parts_at = (0..finer_n).map(|v| p.part(map[v as usize])).collect();
        }
    }
    // Final flat pass on the original hypergraph.
    let gain = kway_refine(hg, partition, fixed, cfg.epsilon, 1, rng)?;
    Ok(improved_any | (gain > 0))
}

/// Helper so `levels[li].map_ref()` reads naturally above.
trait MapRef {
    fn map_ref(&self) -> &CoarseLevel;
}

impl MapRef for (CoarseLevel, Vec<u32>) {
    fn map_ref(&self) -> &CoarseLevel {
        &self.0
    }
}

/// Coarsens while merging only vertices of the same part. Returns the
/// level plus the coarse per-vertex parts.
fn coarsen_respecting(
    hg: &Hypergraph,
    parts: &[u32],
    scheme: CoarseningScheme,
    max_net: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
) -> Option<(CoarseLevel, Vec<u32>)> {
    // Reuse the two-sided fixed mechanism by running coarsening with a
    // "fixed" vector derived from parity, then rejecting any cross-part
    // cluster post-hoc would break the map; instead, encode each part in
    // the fixed domain via two passes is insufficient for K > 2. The
    // simplest correct approach: make cross-part merges impossible by
    // lifting parts into the net structure — coarsen each part's induced
    // sub-hypergraph separately and stitch the maps.
    let k = parts.iter().copied().max().map(|m| m + 1).unwrap_or(1);
    let partition = Partition::new(k, parts.to_vec()).ok()?;
    let n = hg.num_vertices();

    let mut map = vec![u32::MAX; n as usize];
    let mut coarse_parts: Vec<u32> = Vec::new();
    let mut cluster_weight: Vec<u64> = Vec::new();
    let mut next_cluster = 0u32;
    for part in 0..k {
        let (sub, ids) = hg.extract_part(&partition, part);
        if sub.num_vertices() == 0 {
            continue;
        }
        let fixed = vec![FREE; sub.num_vertices() as usize];
        match coarsen_once(&sub, &fixed, scheme, max_net, weight_cap, rng) {
            Some(level) => {
                for (lv, &c) in level.map.iter().enumerate() {
                    map[ids[lv] as usize] = next_cluster + c;
                }
                for c in 0..level.coarse.num_vertices() {
                    coarse_parts.push(part);
                    cluster_weight.push(level.coarse.vertex_weight(c) as u64);
                }
                next_cluster += level.coarse.num_vertices();
            }
            None => {
                // Part too small/rigid to coarsen: singleton clusters.
                for &orig in &ids {
                    map[orig as usize] = next_cluster;
                    coarse_parts.push(part);
                    cluster_weight.push(hg.vertex_weight(orig) as u64);
                    next_cluster += 1;
                }
            }
        }
    }
    if next_cluster as f64 > 0.95 * n as f64 {
        return None;
    }

    // Contract the FULL hypergraph under the stitched map (extract_part
    // dropped cross-part pins; the contraction below restores them so cut
    // nets keep their connectivity).
    let weights: Vec<u32> = cluster_weight
        .iter()
        .map(|&w| u32::try_from(w).unwrap_or(u32::MAX))
        .collect();
    let mut stamp = vec![u32::MAX; next_cluster as usize];
    let mut nets: Vec<Vec<u32>> = Vec::new();
    let mut costs: Vec<u32> = Vec::new();
    let mut merged: std::collections::HashMap<Box<[u32]>, u32> = Default::default();
    for nn in 0..hg.num_nets() {
        let mut pins: Vec<u32> = Vec::new();
        for &p in hg.pins(nn) {
            let c = map[p as usize];
            if stamp[c as usize] != nn {
                stamp[c as usize] = nn;
                pins.push(c);
            }
        }
        if pins.len() < 2 {
            continue;
        }
        pins.sort_unstable();
        let key: Box<[u32]> = pins.clone().into_boxed_slice();
        match merged.get(&key) {
            Some(&i) => costs[i as usize] += hg.net_cost(nn),
            None => {
                merged.insert(key, nets.len() as u32); // lint: checked-cast — coarse net count <= original num_nets, a u32
                nets.push(pins);
                costs.push(hg.net_cost(nn));
            }
        }
    }
    let coarse = Hypergraph::from_nets_weighted(next_cluster, &nets, weights, costs).ok()?;
    let fixed = vec![FREE; next_cluster as usize];
    Some((CoarseLevel { coarse, map, fixed }, coarse_parts))
}

/// Projects original fixed-vertex pins to a level's clusters.
fn project_fixed(
    hg: &Hypergraph,
    levels: &[(CoarseLevel, Vec<u32>)],
    li: usize,
    fixed: &[u32],
) -> Vec<u32> {
    // Compose maps 0..=li.
    let mut composed: Vec<u32> = levels[0].0.map.clone();
    for level in &levels[1..=li] {
        for c in composed.iter_mut() {
            *c = level.0.map[*c as usize];
        }
    }
    let n_coarse = levels[li].0.coarse.num_vertices();
    let mut out = vec![u32::MAX; n_coarse as usize];
    for v in 0..hg.num_vertices() {
        if fixed[v as usize] != u32::MAX {
            out[composed[v as usize] as usize] = fixed[v as usize];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive::partition_hypergraph;
    use crate::testutil::random_hypergraph;

    #[test]
    fn vcycle_never_worsens_and_often_improves() {
        let mut total_gain = 0u64;
        for seed in 0..4u64 {
            let hg = random_hypergraph(600, 900, 8, seed);
            let cfg = PartitionConfig {
                kway_refine: false,
                ..PartitionConfig::with_seed(seed)
            };
            let r = partition_hypergraph(&hg, 8, &cfg).unwrap();
            let before = r.cutsize;
            let mut p = r.partition;
            let fixed = vec![u32::MAX; 600];
            let gain = vcycle_refine(&hg, &mut p, &fixed, &cfg, 3).unwrap();
            let after = cutsize_connectivity(&hg, &p);
            assert_eq!(before - after, gain, "gain accounting");
            assert!(after <= before);
            total_gain += gain;
        }
        assert!(
            total_gain > 0,
            "V-cycles should find something across 4 seeds"
        );
    }

    #[test]
    fn vcycle_respects_balance() {
        let hg = random_hypergraph(400, 600, 6, 9);
        let cfg = PartitionConfig::with_seed(9);
        let r = partition_hypergraph(&hg, 4, &cfg).unwrap();
        let mut p = r.partition;
        let fixed = vec![u32::MAX; 400];
        vcycle_refine(&hg, &mut p, &fixed, &cfg, 2).unwrap();
        assert!(
            p.imbalance_percent(&hg) <= cfg.epsilon * 100.0 + 1.0,
            "imbalance {}%",
            p.imbalance_percent(&hg)
        );
    }

    #[test]
    fn vcycle_respects_fixed() {
        let hg = random_hypergraph(200, 300, 5, 3);
        let cfg = PartitionConfig::with_seed(3);
        let mut fixed = vec![u32::MAX; 200];
        fixed[0] = 1;
        fixed[5] = 3;
        let r = crate::recursive::partition_hypergraph_fixed(&hg, 4, Some(&fixed), &cfg).unwrap();
        let mut p = r.partition;
        vcycle_refine(&hg, &mut p, &fixed, &cfg, 2).unwrap();
        assert_eq!(p.part(0), 1);
        assert_eq!(p.part(5), 3);
    }

    #[test]
    fn restricted_coarsening_preserves_partition_cutsize() {
        let hg = random_hypergraph(300, 500, 6, 5);
        let r = partition_hypergraph(&hg, 4, &PartitionConfig::with_seed(5)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        if let Some((level, coarse_parts)) = coarsen_respecting(
            &hg,
            r.partition.parts(),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut rng,
        ) {
            let pc = Partition::new(4, coarse_parts).unwrap();
            assert_eq!(
                cutsize_connectivity(&level.coarse, &pc),
                r.cutsize,
                "projection must preserve the cutsize exactly"
            );
            // Every cluster is pure (one part).
            for (v, &c) in level.map.iter().enumerate() {
                assert_eq!(pc.part(c), r.partition.part(v as u32));
            }
        }
    }

    #[test]
    fn k1_noop() {
        let hg = random_hypergraph(50, 80, 4, 7);
        let mut p = Partition::trivial(50);
        let fixed = vec![u32::MAX; 50];
        assert_eq!(
            vcycle_refine(&hg, &mut p, &fixed, &PartitionConfig::default(), 2).unwrap(),
            0
        );
    }
}
