//! Multi-seed fan-out: run the partitioner under several seeds, possibly
//! concurrently, and collect every result (the paper's 50-seed protocol
//! keeps the best of them — see
//! [`crate::recursive::partition_hypergraph_best`]).
//!
//! Parallelism is config-gated through [`crate::Parallelism`] and changes
//! wall-clock only: each seed derives its own RNG streams, so per-seed
//! results are bit-identical whether the seeds run serially, fanned out
//! here, or both this fan-out *and* the recursive-bisection forks inside
//! each seed share one pool's threads. Every concurrency domain checks a
//! scratch arena out of a shared [`ArenaPool`], keeping the multilevel
//! hot loops free of synchronization.

use std::sync::Arc;

use fgh_hypergraph::Hypergraph;
use fgh_trace::{Span, SpanHandle};

use crate::arena::{ArenaIndex, ArenaPool};
use crate::config::PartitionConfig;
use crate::engine::MultilevelDriver;
use crate::error::{panic_message, PartitionError};
use crate::level::EngineStats;
use crate::recursive::{partition_hypergraph_with, PartitionResult};

/// Partitions `hg` once per seed `cfg.seed + i` for `i in 0..runs` and
/// returns the results in seed order (`runs` is clamped to at least 1).
///
/// Under a parallel `cfg.parallelism`, the seed range fans out over a
/// bounded fork-join pool by binary splitting; when the caller is already
/// inside a pool, its threads are reused instead of building a nested
/// one. A panicking seed becomes `Err(PartitionError::Worker(..))` in its
/// slot and leaves the other seeds unaffected.
pub fn partition_hypergraph_seeds<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
) -> Vec<Result<PartitionResult, PartitionError>> {
    partition_hypergraph_seeds_traced(hg, k, cfg, runs, &SpanHandle::noop())
}

/// [`partition_hypergraph_seeds`] recording under a trace scope: each
/// seed gets a `run[offset]` child span of `parent` carrying the run's
/// engine/arena counters, with the multilevel phase spans nested inside
/// (requires the `trace` cargo feature to record anything).
pub fn partition_hypergraph_seeds_traced<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
    parent: &SpanHandle,
) -> Vec<Result<PartitionResult, PartitionError>> {
    partition_hypergraph_seeds_traced_in(hg, k, cfg, runs, &Arc::new(ArenaPool::new()), parent)
}

/// [`partition_hypergraph_seeds_traced`] drawing every seed's scratch
/// arena from a caller-supplied [`ArenaPool`] instead of a run-local one.
/// A long-lived session passes the same pool to every request so warm
/// buffers survive across whole decompositions, not just across the seeds
/// of one fan-out.
pub fn partition_hypergraph_seeds_traced_in<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
    pool: &Arc<ArenaPool>,
    parent: &SpanHandle,
) -> Vec<Result<PartitionResult, PartitionError>> {
    let runs = runs.max(1);
    let threads = cfg.parallelism.resolved();
    if threads > 1 && rayon::current_thread_index().is_none() {
        if let Ok(tp) = rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            return tp.install(|| run_range(hg, k, cfg, 0, runs, pool, parent));
        }
    }
    run_range(hg, k, cfg, 0, runs, pool, parent)
}

/// Runs seed offsets `lo..hi`, halving the range across `rayon::join`
/// until single seeds remain. Results concatenate back in seed order.
#[allow(clippy::too_many_arguments)]
fn run_range<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    lo: usize,
    hi: usize,
    pool: &Arc<ArenaPool>,
    span: &SpanHandle,
) -> Vec<Result<PartitionResult, PartitionError>> {
    if hi - lo <= 1 {
        return vec![run_seeded(hg, k, cfg, lo, pool, span)];
    }
    let mid = lo + (hi - lo) / 2;
    let (mut left, mut right) = rayon::join(
        || run_range(hg, k, cfg, lo, mid, pool, span),
        || run_range(hg, k, cfg, mid, hi, pool, span),
    );
    left.append(&mut right);
    left
}

/// Records a finished run's engine and arena counters onto its `run[i]`
/// span (a no-op for noop scopes). Public so substrate crates driving
/// their own seed fan-outs (e.g. the graph baseline) emit the same
/// counter vocabulary.
pub fn record_run_counters(
    scope: &SpanHandle,
    stats: &EngineStats,
    arena: crate::arena::ArenaStats,
) {
    if !scope.is_enabled() {
        return;
    }
    scope.counter("bisections", stats.bisections);
    scope.counter("levels", stats.levels);
    scope.counter("fm_passes", stats.fm_passes);
    scope.counter("fm_moves", stats.fm_moves);
    scope.counter("fm_rollbacks", stats.fm_rollbacks);
    scope.counter("parallel_forks", stats.parallel_forks);
    scope.counter(
        "budget_truncations",
        stats.wall_truncations
            + stats.level_truncations
            + stats.fm_truncations
            + stats.byte_truncations,
    );
    scope.counter("cancel_truncations", stats.cancel_truncations);
    scope.counter("arena_fresh", arena.fresh);
    scope.counter("arena_reused", arena.reused);
    scope.counter("gain_resizes", arena.bucket_grows);
}

/// One seed: a fresh driver over the shared arena pool, panics contained
/// to this seed's slot. The engine is panic-free by design; the catch is
/// defense in depth so a defect in one seed cannot sink a 50-seed sweep.
fn run_seeded<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    offset: usize,
    pool: &Arc<ArenaPool>,
    span: &SpanHandle,
) -> Result<PartitionResult, PartitionError> {
    let mut c = cfg.clone();
    c.seed = cfg.seed.wrapping_add(offset as u64);
    let rspan = if cfg!(feature = "trace") {
        span.child_indexed("run", offset as u64)
    } else {
        Span::noop()
    };
    let scope = rspan.handle();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut driver = MultilevelDriver::with_pool(c, Arc::clone(pool));
        driver.set_trace_parent(scope.clone());
        let r = partition_hypergraph_with(&mut driver, hg, k, None);
        if let Ok(res) = &r {
            record_run_counters(&scope, &res.stats, driver.arena_stats());
        }
        r
    }))
    .unwrap_or_else(|p| Err(PartitionError::Worker(panic_message(p))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Parallelism;
    use crate::recursive::partition_hypergraph;
    use crate::testutil::random_hypergraph;

    #[test]
    fn seeds_come_back_in_order_and_match_single_runs() {
        let hg = random_hypergraph(250, 400, 5, 31);
        let cfg = PartitionConfig::with_seed(5);
        let fanned = partition_hypergraph_seeds(&hg, 4, &cfg, 4);
        assert_eq!(fanned.len(), 4);
        for (i, r) in fanned.iter().enumerate() {
            let mut c = cfg.clone();
            c.seed = cfg.seed + i as u64;
            let single = partition_hypergraph(&hg, 4, &c).unwrap();
            let r = r.as_ref().unwrap();
            assert_eq!(
                r.partition.parts(),
                single.partition.parts(),
                "seed offset {i} differs from a standalone run"
            );
            assert_eq!(r.cutsize, single.cutsize);
        }
    }

    #[test]
    fn parallel_fanout_matches_serial_per_seed() {
        let hg = random_hypergraph(300, 500, 6, 7);
        let serial_cfg = PartitionConfig {
            parallelism: Parallelism::Serial,
            ..PartitionConfig::with_seed(9)
        };
        let par_cfg = PartitionConfig {
            parallelism: Parallelism::Threads(4),
            ..PartitionConfig::with_seed(9)
        };
        let serial = partition_hypergraph_seeds(&hg, 8, &serial_cfg, 6);
        let par = partition_hypergraph_seeds(&hg, 8, &par_cfg, 6);
        for (i, (s, p)) in serial.iter().zip(par.iter()).enumerate() {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.cutsize, p.cutsize, "seed offset {i}");
            assert_eq!(s.imbalance_percent, p.imbalance_percent, "seed offset {i}");
            assert_eq!(s.partition.parts(), p.partition.parts(), "seed offset {i}");
        }
    }

    #[test]
    fn zero_runs_clamps_to_one() {
        let hg = random_hypergraph(100, 150, 4, 2);
        let out = partition_hypergraph_seeds(&hg, 2, &PartitionConfig::with_seed(1), 0);
        assert_eq!(out.len(), 1);
        assert!(out.first().is_some_and(|r| r.is_ok()));
    }
}
