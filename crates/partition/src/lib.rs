//! # fgh-partition — multilevel hypergraph partitioner
//!
//! A PaToH-style multilevel hypergraph partitioner, built from scratch:
//!
//! * **Coarsening** ([`coarsen`]): heavy-connectivity matching (HCM) or
//!   agglomerative heavy-connectivity clustering (HCC), followed by
//!   contraction that dedupes pins, drops single-pin nets, and merges
//!   identical nets (summing their costs).
//! * **Initial partitioning** ([`initial`]): greedy hypergraph growing
//!   (GHG) from random seeds, multiple tries, best kept.
//! * **Refinement** ([`refine`]): Fiduccia–Mattheyses passes with
//!   gain-bucket lists, balance-constrained moves, lock-on-move, and
//!   best-prefix rollback.
//! * **K-way** ([`recursive`]): recursive bisection with **net splitting**,
//!   which makes the per-bisection cut-net objective compose to the
//!   K-way connectivity−1 objective (eq. 3 of the paper) — the metric that
//!   equals SpMV communication volume under the fine-grain model.
//! * **Fixed vertices**: vertices may be pre-assigned to parts (the paper's
//!   §3 remark about reduction problems with pre-assigned inputs/outputs);
//!   they are respected through coarsening, initial partitioning and
//!   refinement.
//!
//! Entry points: [`partition_hypergraph`] for one run,
//! [`partition_hypergraph_best`] for the paper's multi-seed protocol
//! (PaToH was run 50 times per instance; seeds run in parallel here).
//!
//! ## The unified engine
//!
//! The multilevel machinery is substrate-generic: the [`engine::Substrate`]
//! trait abstracts cut accounting, contraction, and extraction, and
//! [`engine::MultilevelDriver`] runs the V-cycle and recursive bisection
//! for both hypergraphs and graphs (`fgh-graph` implements the trait for
//! its CSR graph). The driver draws all per-level scratch from an
//! [`arena::LevelArena`], so a K-way run performs O(levels) allocations
//! instead of O(levels × vertices). Enable the `stats` cargo feature for
//! per-stage wall-clock timing in [`level::EngineStats`] (counters are
//! always collected).
//!
//! ## Parallelism
//!
//! [`PartitionConfig::parallelism`] gates a fork-join parallel mode
//! ([`Parallelism::Threads`] / [`Parallelism::Auto`]): independent
//! recursive-bisection subtrees and the seeds of a multi-seed sweep
//! ([`parallel::partition_hypergraph_seeds`]) run concurrently, each
//! domain drawing its scratch from a shared [`arena::ArenaPool`]. Every
//! recursion node seeds its RNG from its own identity, so parallel runs
//! are **bit-identical** to serial ones — threads change wall-clock time
//! only.

// Robustness contract: partitioning runs on untrusted, possibly degenerate
// instances, so the library (non-test) code must not panic. Sites that are
// provably infallible carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod bisect;
pub mod cancel;
pub mod coarsen;
pub mod config;
pub mod connectivity;
pub mod engine;
pub mod error;
pub mod gain;
pub mod geometric;
pub mod initial;
pub mod kway;
pub mod level;
pub mod multiconstraint;
pub mod parallel;
pub mod recursive;
pub mod refine;
pub mod vcycle;

pub use arena::{ArenaIndex, ArenaPool, ArenaStats, LevelArena};
pub use cancel::CancelToken;
pub use config::{Budget, CoarseningScheme, InitialScheme, Parallelism, PartitionConfig};
pub use connectivity::{NaiveConnectivity, NetConnectivity};
pub use engine::{MultilevelDriver, RecursiveOutcome, Substrate};
pub use error::PartitionError;
pub use level::{EngineStats, Level};
pub use parallel::{
    partition_hypergraph_seeds, partition_hypergraph_seeds_traced,
    partition_hypergraph_seeds_traced_in, record_run_counters,
};
pub use recursive::{
    partition_hypergraph, partition_hypergraph_best, partition_hypergraph_best_traced,
    partition_hypergraph_best_traced_in, partition_hypergraph_fixed, partition_hypergraph_traced,
    partition_hypergraph_with, PartitionResult,
};

#[cfg(test)]
pub(crate) mod testutil {
    use fgh_hypergraph::Hypergraph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random hypergraph for stress tests: `nv` vertices, `nn` nets of size
    /// 2..=max_size.
    pub fn random_hypergraph(nv: u32, nn: u32, max_size: usize, seed: u64) -> Hypergraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut nets = Vec::with_capacity(nn as usize);
        for _ in 0..nn {
            let size = rng.gen_range(2..=max_size.max(2)).min(nv as usize);
            let mut pins: Vec<u32> = Vec::with_capacity(size);
            while pins.len() < size {
                let v = rng.gen_range(0..nv);
                if !pins.contains(&v) {
                    pins.push(v);
                }
            }
            nets.push(pins);
        }
        Hypergraph::from_nets(nv, &nets).unwrap()
    }

    /// A hypergraph with two dense clusters joined by a single bridge net —
    /// the obvious optimal bisection cuts only the bridge.
    pub fn two_clusters(per_side: u32) -> Hypergraph {
        let n = per_side * 2;
        let mut nets = Vec::new();
        for i in 0..per_side - 1 {
            nets.push(vec![i, i + 1]);
            nets.push(vec![per_side + i, per_side + i + 1]);
        }
        // Triangles for density.
        for i in 0..per_side.saturating_sub(2) {
            nets.push(vec![i, i + 2]);
            nets.push(vec![per_side + i, per_side + i + 2]);
        }
        nets.push(vec![per_side - 1, per_side]); // the bridge
        Hypergraph::from_nets(n, &nets).unwrap()
    }
}
