//! Partitioner configuration.

use std::time::Duration;

use crate::cancel::CancelToken;

/// Resource budget for a partitioning run. Each limit is optional; `None`
/// means unbounded (the default). Budgets degrade gracefully: when a limit
/// trips, the engine keeps the best partition found so far and records the
/// truncation in [`crate::EngineStats`] rather than failing.
///
/// Checkpoints sit between coarsening levels and between FM passes, so a
/// budget is honored to the granularity of one level / one pass — a single
/// checkpoint interval may overshoot `max_wall` slightly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for the whole run (coarsening through
    /// refinement, including K-way post-refinement).
    pub max_wall: Option<Duration>,
    /// Cap on total FM passes across all levels and bisections.
    pub max_fm_passes: Option<u64>,
    /// Cap on coarsening levels built per bisection.
    pub max_levels: Option<u64>,
    /// Cap on engine heap bytes (levels + contracted substrates + arena
    /// pools), checked between coarsening levels. When the cap trips,
    /// coarsening stops at the size it reached and the run continues —
    /// a truncated-but-valid partition instead of an OOM abort. The input
    /// substrate itself is counted, so a cap smaller than the input stops
    /// level-building immediately (flat FM on the original structure).
    pub max_bytes: Option<usize>,
}

impl Budget {
    /// An unbounded budget.
    pub const UNLIMITED: Budget = Budget {
        max_wall: None,
        max_fm_passes: None,
        max_levels: None,
        max_bytes: None,
    };

    /// A wall-clock-only budget.
    pub fn wall(limit: Duration) -> Budget {
        Budget {
            max_wall: Some(limit),
            ..Budget::UNLIMITED
        }
    }

    /// A byte-cap-only budget.
    pub fn bytes(limit: usize) -> Budget {
        Budget {
            max_bytes: Some(limit),
            ..Budget::UNLIMITED
        }
    }

    /// `true` when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }

    /// The tighter of two budgets, limit by limit: a limit set on either
    /// side applies, and when both sides set one the smaller wins. A
    /// service uses this to clamp per-request budgets under a global
    /// ceiling — no request can escape the ceiling by asking for more.
    pub fn intersect(&self, other: &Budget) -> Budget {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Budget {
            max_wall: tighter(self.max_wall, other.max_wall),
            max_fm_passes: tighter(self.max_fm_passes, other.max_fm_passes),
            max_levels: tighter(self.max_levels, other.max_levels),
            max_bytes: tighter(self.max_bytes, other.max_bytes),
        }
    }
}

/// How much of the machine a partitioning run may use.
///
/// Parallelism never changes results: every recursion node and every seed
/// derives its RNG stream from its own identity (see
/// [`crate::engine::MultilevelDriver::partition_recursive`]), so
/// [`Parallelism::Threads`] and [`Parallelism::Auto`] produce bit-identical
/// partitions to [`Parallelism::Serial`] for the same seed — threads only
/// change wall-clock time.
///
/// One budget caveat: `Budget::max_fm_passes` is a *global* pass counter
/// in serial runs but is accounted per concurrency domain (per forked
/// subtree / per seed) in parallel runs, so a run limited by that knob may
/// do more total FM work under `Threads(n)` than under `Serial`. The
/// wall-clock budget is shared across all threads of a run either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Everything on the calling thread (the default for
    /// [`PartitionConfig`]).
    #[default]
    Serial,
    /// Fork-join pool of exactly `n` threads (`0` is treated as `1`).
    Threads(usize),
    /// One thread per available CPU.
    Auto,
}

impl Parallelism {
    /// The concrete thread count this setting resolves to on this machine.
    pub fn resolved(&self) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// Coarsening scheme selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarseningScheme {
    /// Heavy-connectivity *matching*: clusters have at most two vertices
    /// per level.
    Hcm,
    /// Heavy-connectivity *clustering* (agglomerative): a vertex may join
    /// an already-formed cluster, allowing multi-vertex clusters per level.
    Hcc,
    /// HCC with the connectivity score scaled by the candidate cluster's
    /// weight (PaToH's "absorption" flavour) — discourages snowballing
    /// into a few huge clusters.
    ScaledHcc,
}

/// Initial-partitioning scheme at the coarsest level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialScheme {
    /// Greedy hypergraph growing: grow side 1 by max-gain moves (default).
    Ghg,
    /// Random side assignment up to the weight target (ablation baseline).
    Random,
    /// Weight-only bin packing: heaviest vertices first onto the lighter
    /// side, ignoring connectivity (ablation baseline).
    BinPacking,
    /// Geometric bisection: project vertices to the coordinates attached
    /// via [`PartitionConfig::coords`] and cut along the longest axis at
    /// the weighted median (Fagginger Auer & Bisseling's 1D-cut scheme
    /// for fine-grain models). Falls back to [`InitialScheme::Ghg`] when
    /// no coordinates are attached.
    Geometric,
    /// Policy: [`InitialScheme::Geometric`] when coordinates are
    /// attached, [`InitialScheme::Ghg`] otherwise.
    Auto,
}

impl std::str::FromStr for InitialScheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ghg" => Ok(InitialScheme::Ghg),
            "random" => Ok(InitialScheme::Random),
            "binpacking" | "bin-packing" => Ok(InitialScheme::BinPacking),
            "geometric" => Ok(InitialScheme::Geometric),
            "auto" => Ok(InitialScheme::Auto),
            other => Err(format!(
                "unknown initial scheme '{other}' (expected ghg, random, \
                 binpacking, geometric, or auto)"
            )),
        }
    }
}

/// Configuration for the multilevel partitioner.
///
/// The defaults mirror the paper's experimental setup where it specifies
/// one: `epsilon = 0.03` (all reported imbalances are below 3%).
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum allowed imbalance ratio ε of the *final* K-way partition
    /// (eq. 1): every part weight ≤ average · (1 + ε).
    pub epsilon: f64,
    /// RNG seed; every stage is deterministic given the seed.
    pub seed: u64,
    /// Coarsening scheme.
    pub coarsening: CoarseningScheme,
    /// Initial-partitioning scheme at the coarsest level.
    pub initial: InitialScheme,
    /// Apply net splitting during recursive bisection (the correct
    /// treatment for the connectivity−1 objective). Disable only for the
    /// cut-net-metric ablation.
    pub net_splitting: bool,
    /// Stop coarsening once the working hypergraph has at most this many
    /// vertices.
    pub coarsen_to: u32,
    /// Nets larger than this are skipped during coarsening neighbor scans
    /// (they contribute little structural signal and cost O(size²)).
    pub max_net_size_for_matching: usize,
    /// Number of greedy-hypergraph-growing tries at the coarsest level.
    pub initial_tries: usize,
    /// Maximum FM passes per level (a pass that improves nothing ends
    /// refinement early).
    pub fm_passes: usize,
    /// Abort an FM pass after this many consecutive non-improving moves
    /// (0 disables the early exit).
    pub fm_early_exit: usize,
    /// Run a direct K-way greedy refinement pass over the assembled
    /// partition after recursive bisection (extension over the paper).
    pub kway_refine: bool,
    /// Use boundary-only FM passes during uncoarsening (faster on large
    /// instances; quality within a percent or two of full passes).
    pub boundary_fm: bool,
    /// V-cycles (iterated multilevel K-way refinement) after recursive
    /// bisection: 0 disables. Each cycle re-coarsens respecting the
    /// partition and refines at every level — recovers cluster-granular
    /// moves flat refinement cannot see.
    pub vcycles: usize,
    /// Resource budget (wall clock / FM passes / levels); unlimited by
    /// default. See [`Budget`].
    pub budget: Budget,
    /// Thread usage of a run: recursive-bisection subtrees and multi-seed
    /// fan-outs execute as fork-join tasks under [`Parallelism::Threads`] /
    /// [`Parallelism::Auto`]. Results are bit-identical across settings;
    /// see [`Parallelism`].
    pub parallelism: Parallelism,
    /// Cooperative cancellation: when a token is attached and tripped, the
    /// engine stops at its next multilevel checkpoint, keeps the best
    /// partition found so far, and records the stop in
    /// [`crate::EngineStats::cancel_truncations`] — same graceful
    /// degradation as an exhausted [`Budget`], but attributed to the
    /// caller. `None` (the default) disables polling.
    pub cancel: Option<CancelToken>,
    /// Per-vertex 2D coordinates, indexed by *original* vertex id, for
    /// the [`InitialScheme::Geometric`] / [`InitialScheme::Auto`]
    /// schemes. The engine carries original-id maps through recursive
    /// bisection and projects coordinates through coarsening levels by
    /// weighted centroid, so one top-level array serves the whole
    /// recursion. `None` (the default) leaves the geometric schemes
    /// falling back to GHG. Shared by `Arc`: parallel runs clone the
    /// config per domain, not the coordinates.
    pub coords: Option<std::sync::Arc<Vec<(f32, f32)>>>,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            epsilon: 0.03,
            seed: 1,
            coarsening: CoarseningScheme::Hcc,
            initial: InitialScheme::Ghg,
            net_splitting: true,
            coarsen_to: 100,
            max_net_size_for_matching: 64,
            initial_tries: 8,
            fm_passes: 4,
            fm_early_exit: 400,
            kway_refine: true,
            boundary_fm: false,
            vcycles: 0,
            budget: Budget::UNLIMITED,
            parallelism: Parallelism::Serial,
            cancel: None,
            coords: None,
        }
    }
}

impl PartitionConfig {
    /// A config with the given seed and defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        PartitionConfig {
            seed,
            ..Default::default()
        }
    }

    /// Quality preset: more initial tries and FM passes, no early exit.
    /// Roughly 2-3x slower than the default for a few percent lower
    /// cutsize — use when the decomposition is computed once and reused
    /// across thousands of SpMV iterations.
    pub fn quality(seed: u64) -> Self {
        PartitionConfig {
            seed,
            initial_tries: 16,
            fm_passes: 8,
            fm_early_exit: 0,
            vcycles: 3,
            ..Default::default()
        }
    }

    /// Speed preset: fewer tries/passes and aggressive early exit, for
    /// interactive experimentation on large instances.
    pub fn fast(seed: u64) -> Self {
        PartitionConfig {
            seed,
            initial_tries: 3,
            fm_passes: 2,
            fm_early_exit: 100,
            coarsen_to: 200,
            vcycles: 0,
            boundary_fm: true,
            ..Default::default()
        }
    }

    /// The initial scheme a run will actually execute: resolves
    /// [`InitialScheme::Auto`] and the no-coordinates fallback of
    /// [`InitialScheme::Geometric`].
    pub fn resolved_initial(&self) -> InitialScheme {
        match self.initial {
            InitialScheme::Geometric | InitialScheme::Auto => {
                if self.coords.is_some() {
                    InitialScheme::Geometric
                } else {
                    InitialScheme::Ghg
                }
            }
            other => other,
        }
    }

    /// Per-bisection imbalance for recursive bisection so that the final
    /// K-way imbalance stays within ε: with `d = ceil(log2 K)` levels,
    /// `(1 + ε') ^ d = 1 + ε`.
    pub fn per_level_epsilon(&self, k: u32) -> f64 {
        if k <= 2 {
            return self.epsilon;
        }
        let d = (k as f64).log2().ceil();
        (1.0 + self.epsilon).powf(1.0 / d) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PartitionConfig::default();
        assert!((c.epsilon - 0.03).abs() < 1e-12);
    }

    #[test]
    fn per_level_epsilon_composes() {
        let c = PartitionConfig::default();
        for k in [2u32, 4, 8, 16, 32, 64] {
            let e = c.per_level_epsilon(k);
            let d = (k as f64).log2().ceil();
            let total = (1.0 + e).powf(d) - 1.0;
            assert!(total <= c.epsilon + 1e-9, "k={k}: total {total}");
            assert!(e > 0.0);
        }
    }

    #[test]
    fn per_level_epsilon_k2_is_full() {
        let c = PartitionConfig::default();
        assert_eq!(c.per_level_epsilon(2), c.epsilon);
    }

    #[test]
    fn parallelism_resolves_to_positive_thread_counts() {
        assert_eq!(Parallelism::default(), Parallelism::Serial);
        assert_eq!(Parallelism::Serial.resolved(), 1);
        assert_eq!(Parallelism::Threads(4).resolved(), 4);
        assert_eq!(
            Parallelism::Threads(0).resolved(),
            1,
            "0 means 1, not a hang"
        );
        assert!(Parallelism::Auto.resolved() >= 1);
    }

    #[test]
    fn presets_differ_in_effort() {
        let q = PartitionConfig::quality(1);
        let f = PartitionConfig::fast(1);
        assert!(q.initial_tries > f.initial_tries);
        assert!(q.fm_passes > f.fm_passes);
        assert_eq!(q.epsilon, f.epsilon);
    }
}
