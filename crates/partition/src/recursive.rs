//! Recursive-bisection K-way partitioning with net splitting, plus the
//! multi-seed driver matching the paper's experimental protocol.
//!
//! The recursion itself lives in
//! [`MultilevelDriver::partition_recursive`]; this module adds the
//! hypergraph-specific validation, the K-way greedy / V-cycle
//! post-refinement, and the metric bookkeeping of [`PartitionResult`].
//!
//! Every entry point is generic over the hypergraph's index width `I`
//! (`u32` by default, `u64` for instances whose pin counts overflow
//! `u32`); the partition itself always carries `u32` part ids.

use fgh_hypergraph::{
    cutsize_connectivity, cutsize_cutnet, Hypergraph, HypergraphError, Partition,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use fgh_trace::SpanHandle;

use crate::arena::ArenaIndex;
use crate::config::PartitionConfig;
use crate::engine::MultilevelDriver;
use crate::error::PartitionError;
use crate::kway::kway_refine;
use crate::level::EngineStats;

/// Outcome of a K-way partitioning run.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// The K-way vertex partition.
    pub partition: Partition,
    /// Connectivity−1 cutsize (eq. 3) — equals SpMV communication volume
    /// in words under the fine-grain model.
    pub cutsize: u64,
    /// Cut-net cutsize (eq. 2), for reference.
    pub cutnet: u64,
    /// Percent load imbalance `100 (W_max − W_avg) / W_avg`.
    pub imbalance_percent: f64,
    /// Sum of the per-bisection cut-net cuts over the recursion tree,
    /// before any K-way post-refinement. With net splitting this equals
    /// the connectivity−1 cutsize of the recursive-bisection partition
    /// (eq. 3 composition).
    pub bisection_cut_sum: u64,
    /// Engine instrumentation for this run, including budget-truncation
    /// counters (see [`EngineStats::truncated`]).
    pub stats: EngineStats,
}

/// Partitions `hg` into `k` parts using multilevel recursive bisection.
///
/// ```
/// use fgh_hypergraph::Hypergraph;
/// use fgh_partition::{partition_hypergraph, PartitionConfig};
/// // Two pairs tied internally, one bridge net between them.
/// let hg = Hypergraph::from_nets(4u32, &[vec![0, 1], vec![2, 3], vec![1, 2]]).unwrap();
/// let r = partition_hypergraph(&hg, 2, &PartitionConfig::with_seed(1)).unwrap();
/// assert_eq!(r.cutsize, 1); // only the bridge is cut
/// assert_eq!(r.partition.part(0), r.partition.part(1));
/// assert_eq!(r.partition.part(2), r.partition.part(3));
/// ```
pub fn partition_hypergraph<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
) -> Result<PartitionResult, PartitionError> {
    partition_hypergraph_fixed(hg, k, None, cfg)
}

/// [`partition_hypergraph`] recording under a trace scope: the multilevel
/// phase spans (`bisect` → `coarsen`/`initial`/`refine`) nest directly
/// under `parent`, and the run's engine/arena counters are recorded onto
/// `parent` itself (requires the `trace` cargo feature to record
/// anything). Meant for composite models that stitch several single runs
/// into one decomposition.
pub fn partition_hypergraph_traced<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    parent: &SpanHandle,
) -> Result<PartitionResult, PartitionError> {
    let mut driver = MultilevelDriver::new(cfg.clone());
    driver.set_trace_parent(parent.clone());
    let r = partition_hypergraph_with(&mut driver, hg, k, None);
    if let Ok(res) = &r {
        crate::parallel::record_run_counters(parent, &res.stats, driver.arena_stats());
    }
    r
}

/// Like [`partition_hypergraph`], with optional pre-assigned vertices:
/// `fixed[v] = part` pins vertex `v`, `fixed[v] = u32::MAX` leaves it free.
pub fn partition_hypergraph_fixed<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    fixed: Option<&[u32]>,
    cfg: &PartitionConfig,
) -> Result<PartitionResult, PartitionError> {
    let mut driver = MultilevelDriver::new(cfg.clone());
    partition_hypergraph_with(&mut driver, hg, k, fixed)
}

/// Like [`partition_hypergraph_fixed`], but running on a caller-supplied
/// [`MultilevelDriver`] — the driver's arena and instrumentation persist
/// across calls, so repeated partitioning reuses all scratch buffers.
pub fn partition_hypergraph_with<I: ArenaIndex>(
    driver: &mut MultilevelDriver,
    hg: &Hypergraph<I>,
    k: u32,
    fixed: Option<&[u32]>,
) -> Result<PartitionResult, PartitionError> {
    if k == 0 {
        return Err(HypergraphError::InvalidK.into());
    }
    if let Some(f) = fixed {
        if f.len() != hg.num_vertices().index() {
            return Err(HypergraphError::PartitionLengthMismatch {
                expected: hg.num_vertices().index(),
                got: f.len(),
            }
            .into());
        }
        for (v, &p) in f.iter().enumerate() {
            if p != u32::MAX && p >= k {
                return Err(HypergraphError::PartOutOfBounds {
                    vertex: v as u64,
                    part: p,
                    k,
                }
                .into());
            }
        }
    }

    let n = hg.num_vertices().index();
    let fixed_vec: Vec<u32> = match fixed {
        Some(f) => f.to_vec(),
        None => vec![u32::MAX; n],
    };
    // Arm the wall budget here so the window also covers the K-way
    // post-refinement below (partition_recursive arms only if unarmed).
    let armed_here = driver.arm_budget();
    let outcome = driver.partition_recursive(hg, k, &fixed_vec);
    let cfg = driver.cfg().clone();

    let mut partition = Partition::new(k, outcome.parts).map_err(PartitionError::from)?;
    if (cfg.kway_refine || cfg.vcycles > 0) && k > 2 && !driver.interrupted() {
        if cfg.kway_refine {
            let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(0x9e3779b97f4a7c15));
            kway_refine(hg, &mut partition, &fixed_vec, cfg.epsilon, 2, &mut rng)?;
        }
        if cfg.vcycles > 0 && !driver.interrupted() {
            crate::vcycle::vcycle_refine(hg, &mut partition, &fixed_vec, &cfg, cfg.vcycles)?;
        }
    }
    if armed_here {
        driver.disarm_budget();
    }

    let cutsize = cutsize_connectivity(hg, &partition);
    let cutnet = cutsize_cutnet(hg, &partition);
    let imbalance_percent = partition.imbalance_percent(hg);
    Ok(PartitionResult {
        partition,
        cutsize,
        cutnet,
        imbalance_percent,
        bisection_cut_sum: outcome.cut_sum,
        stats: driver.stats(),
    })
}

/// Runs [`partition_hypergraph`] with `runs` different seeds — fanned out
/// over threads per `cfg.parallelism` — and returns the best balanced
/// result by connectivity−1 cutsize, following the paper's 50-seed
/// protocol. A panicking seed becomes a `PartitionError::Worker` value;
/// the surviving seeds still compete for the best result.
pub fn partition_hypergraph_best<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
) -> Result<PartitionResult, PartitionError> {
    partition_hypergraph_best_traced(hg, k, cfg, runs, &SpanHandle::noop())
}

/// [`partition_hypergraph_best`] recording under a trace scope: each seed
/// gets a `run[offset]` child span of `parent` carrying the run's
/// engine/arena counters, with the multilevel phase spans nested inside
/// (requires the `trace` cargo feature to record anything).
pub fn partition_hypergraph_best_traced<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
    parent: &SpanHandle,
) -> Result<PartitionResult, PartitionError> {
    partition_hypergraph_best_traced_in(
        hg,
        k,
        cfg,
        runs,
        &std::sync::Arc::new(crate::arena::ArenaPool::new()),
        parent,
    )
}

/// [`partition_hypergraph_best_traced`] drawing every seed's scratch
/// arena from a caller-supplied [`crate::ArenaPool`] — the session-reuse
/// entry point: a server passes one pool for its whole lifetime so warm
/// buffers survive across requests.
pub fn partition_hypergraph_best_traced_in<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
    pool: &std::sync::Arc<crate::arena::ArenaPool>,
    parent: &SpanHandle,
) -> Result<PartitionResult, PartitionError> {
    let results =
        crate::parallel::partition_hypergraph_seeds_traced_in(hg, k, cfg, runs, pool, parent);
    let mut best: Option<PartitionResult> = None;
    let mut first_err: Option<PartitionError> = None;
    for r in results {
        match r {
            Ok(res) => {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        // Prefer balanced results, then lower cutsize.
                        let rb = res.imbalance_percent <= cfg.epsilon * 100.0 + 1e-9;
                        let bb = b.imbalance_percent <= cfg.epsilon * 100.0 + 1e-9;
                        (rb, std::cmp::Reverse(res.cutsize)) > (bb, std::cmp::Reverse(b.cutsize))
                    }
                };
                if better {
                    best = Some(res);
                }
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match best {
        Some(b) => Ok(b),
        None => {
            Err(first_err
                .unwrap_or_else(|| PartitionError::Worker("no seed produced a result".into())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_hypergraph, two_clusters};

    #[test]
    fn k1_is_trivial() {
        let hg = two_clusters(10);
        let r = partition_hypergraph(&hg, 1, &PartitionConfig::default()).unwrap();
        assert_eq!(r.cutsize, 0);
        assert_eq!(r.bisection_cut_sum, 0);
        assert!(r.partition.parts().iter().all(|&p| p == 0));
    }

    #[test]
    fn k0_rejected() {
        let hg = two_clusters(4);
        assert!(matches!(
            partition_hypergraph(&hg, 0, &PartitionConfig::default()),
            Err(PartitionError::Hypergraph(HypergraphError::InvalidK))
        ));
    }

    #[test]
    fn k2_finds_bridge() {
        let hg = two_clusters(100);
        let r = partition_hypergraph(&hg, 2, &PartitionConfig::with_seed(3)).unwrap();
        assert_eq!(r.cutsize, 1);
        assert_eq!(r.bisection_cut_sum, 1);
        assert!(r.imbalance_percent <= 3.0 + 1e-9);
    }

    #[test]
    fn k4_balance_and_validity() {
        let hg = random_hypergraph(400, 600, 5, 1);
        let cfg = PartitionConfig::with_seed(7);
        let r = partition_hypergraph(&hg, 4, &cfg).unwrap();
        assert_eq!(r.partition.k(), 4);
        r.partition.validate(&hg, true).unwrap();
        assert!(
            r.imbalance_percent <= 3.5,
            "imbalance {}% exceeds epsilon",
            r.imbalance_percent
        );
        // Cutsize fields agree with the metric module.
        assert_eq!(r.cutsize, cutsize_connectivity(&hg, &r.partition));
        assert_eq!(r.cutnet, cutsize_cutnet(&hg, &r.partition));
        assert!(r.cutnet <= r.cutsize);
    }

    #[test]
    fn non_power_of_two_k() {
        let hg = random_hypergraph(300, 450, 5, 2);
        let r = partition_hypergraph(&hg, 5, &PartitionConfig::with_seed(1)).unwrap();
        assert_eq!(r.partition.k(), 5);
        let sizes = r.partition.part_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "empty part in {sizes:?}");
        assert!(
            r.imbalance_percent <= 6.0,
            "imbalance {}%",
            r.imbalance_percent
        );
    }

    #[test]
    fn k_exceeding_vertices_yields_empty_parts_error_free() {
        // 3 vertices into 8 parts: parts will be empty, but the call should
        // not panic and the partition must still be valid by construction.
        let hg = Hypergraph::from_nets(3u32, &[vec![0, 1, 2]]).unwrap();
        let r = partition_hypergraph(&hg, 8, &PartitionConfig::default()).unwrap();
        assert_eq!(r.partition.len(), 3);
    }

    #[test]
    fn fixed_vertices_respected_through_recursion() {
        let hg = random_hypergraph(200, 300, 5, 3);
        let mut fixed = vec![u32::MAX; 200];
        fixed[0] = 3;
        fixed[10] = 0;
        fixed[20] = 2;
        let r = partition_hypergraph_fixed(&hg, 4, Some(&fixed), &PartitionConfig::with_seed(2))
            .unwrap();
        assert_eq!(r.partition.part(0), 3);
        assert_eq!(r.partition.part(10), 0);
        assert_eq!(r.partition.part(20), 2);
    }

    #[test]
    fn fixed_validation() {
        let hg = two_clusters(4);
        let bad = vec![9u32; 8];
        assert!(
            partition_hypergraph_fixed(&hg, 4, Some(&bad), &PartitionConfig::default()).is_err()
        );
        let short = vec![u32::MAX; 3];
        assert!(
            partition_hypergraph_fixed(&hg, 4, Some(&short), &PartitionConfig::default()).is_err()
        );
    }

    #[test]
    fn multi_seed_never_worse_than_single() {
        let hg = random_hypergraph(300, 500, 6, 4);
        let cfg = PartitionConfig::with_seed(1);
        let single = partition_hypergraph(&hg, 8, &cfg).unwrap();
        let best = partition_hypergraph_best(&hg, 8, &cfg, 4).unwrap();
        assert!(best.cutsize <= single.cutsize);
    }

    #[test]
    fn wide_partition_matches_narrow_end_to_end() {
        // The full pipeline (RB + K-way + V-cycle post-refinement) must be
        // bit-identical across index widths for the same seed.
        let hg = random_hypergraph(350, 520, 6, 21);
        let nets: Vec<Vec<u64>> = (0..hg.num_nets())
            .map(|n| hg.pins(n).iter().map(|&p| p as u64).collect())
            .collect();
        let hg64 = Hypergraph::<u64>::from_nets(350u64, &nets).unwrap();
        let cfg = PartitionConfig {
            vcycles: 1,
            ..PartitionConfig::with_seed(21)
        };
        let r32 = partition_hypergraph(&hg, 6, &cfg).unwrap();
        let r64 = partition_hypergraph(&hg64, 6, &cfg).unwrap();
        assert_eq!(r32.partition.parts(), r64.partition.parts());
        assert_eq!(r32.cutsize, r64.cutsize);
        assert_eq!(r32.bisection_cut_sum, r64.bisection_cut_sum);
    }

    #[test]
    fn all_coarsening_and_initial_schemes_work() {
        use crate::config::{CoarseningScheme, InitialScheme};
        let hg = random_hypergraph(300, 450, 5, 12);
        for coarsening in [
            CoarseningScheme::Hcm,
            CoarseningScheme::Hcc,
            CoarseningScheme::ScaledHcc,
        ] {
            for initial in [
                InitialScheme::Ghg,
                InitialScheme::Random,
                InitialScheme::BinPacking,
                InitialScheme::Geometric,
                InitialScheme::Auto,
            ] {
                // Geometric/Auto run both with coordinates attached (an
                // arbitrary deterministic point cloud) and without
                // (exercising the GHG fallback).
                let coords: Option<std::sync::Arc<Vec<(f32, f32)>>> =
                    matches!(initial, InitialScheme::Geometric | InitialScheme::Auto).then(|| {
                        std::sync::Arc::new(
                            (0..300)
                                .map(|v| ((v % 17) as f32, (v / 17) as f32))
                                .collect(),
                        )
                    });
                let cfg = PartitionConfig {
                    coarsening,
                    initial,
                    coords,
                    ..PartitionConfig::with_seed(4)
                };
                let r = partition_hypergraph(&hg, 4, &cfg).unwrap();
                r.partition.validate(&hg, true).unwrap();
                assert!(
                    r.imbalance_percent <= 5.0,
                    "{coarsening:?}/{initial:?}: imbalance {}%",
                    r.imbalance_percent
                );
                if matches!(initial, InitialScheme::Geometric | InitialScheme::Auto) {
                    let no_coords = PartitionConfig {
                        coarsening,
                        initial,
                        ..PartitionConfig::with_seed(4)
                    };
                    let fallback = partition_hypergraph(&hg, 4, &no_coords).unwrap();
                    fallback.partition.validate(&hg, true).unwrap();
                    let ghg = PartitionConfig {
                        coarsening,
                        initial: InitialScheme::Ghg,
                        ..PartitionConfig::with_seed(4)
                    };
                    let baseline = partition_hypergraph(&hg, 4, &ghg).unwrap();
                    assert_eq!(
                        fallback.partition.parts(),
                        baseline.partition.parts(),
                        "{coarsening:?}/{initial:?}: coordinate-less run must equal GHG"
                    );
                }
            }
        }
    }

    #[test]
    fn net_splitting_ablation_not_better_without() {
        // Averaged over seeds, disabling net splitting must not improve
        // the connectivity−1 cutsize (it optimizes the wrong objective).
        let hg = random_hypergraph(400, 600, 6, 13);
        let (mut with, mut without) = (0u64, 0u64);
        for seed in 0..6u64 {
            let on = PartitionConfig {
                net_splitting: true,
                ..PartitionConfig::with_seed(seed)
            };
            let off = PartitionConfig {
                net_splitting: false,
                ..PartitionConfig::with_seed(seed)
            };
            with += partition_hypergraph(&hg, 8, &on).unwrap().cutsize;
            without += partition_hypergraph(&hg, 8, &off).unwrap().cutsize;
        }
        assert!(
            with <= without,
            "net splitting should help: with={with} without={without}"
        );
    }

    #[test]
    fn determinism() {
        let hg = random_hypergraph(250, 400, 5, 9);
        let cfg = PartitionConfig::with_seed(11);
        let a = partition_hypergraph(&hg, 4, &cfg).unwrap();
        let b = partition_hypergraph(&hg, 4, &cfg).unwrap();
        assert_eq!(a.partition.parts(), b.partition.parts());
        assert_eq!(a.cutsize, b.cutsize);
    }

    #[test]
    fn shared_driver_reuses_arena_across_calls() {
        let hg = random_hypergraph(300, 450, 5, 6);
        let mut driver = MultilevelDriver::new(PartitionConfig::with_seed(8));
        let a = partition_hypergraph_with(&mut driver, &hg, 4, None).unwrap();
        let miss_after_first = driver.arena_stats().fresh;
        let b = partition_hypergraph_with(&mut driver, &hg, 4, None).unwrap();
        assert_eq!(
            a.partition.parts(),
            b.partition.parts(),
            "same seed, same result"
        );
        // The second run should be served almost entirely from the pool.
        let growth = driver.arena_stats().fresh - miss_after_first;
        assert!(
            growth <= miss_after_first / 4 + 1,
            "second run allocated {growth} fresh buffers (first: {miss_after_first})"
        );
    }
}
