//! Coarsening: heavy-connectivity matching/clustering plus contraction.
//!
//! Each level groups strongly connected vertices into clusters and contracts
//! the hypergraph: cluster = coarse vertex (weights summed), nets keep one
//! pin per touched cluster, single-pin nets are dropped (they can never be
//! cut), and nets with identical pin sets are merged with summed costs.
//! Cluster weights are capped so one coarse vertex can never make balanced
//! bisection infeasible.

use std::collections::HashMap;

use fgh_hypergraph::Hypergraph;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::CoarseningScheme;

/// Free (not fixed to any side) marker in fixed-side vectors.
pub const FREE: i8 = -1;

const NIL: u32 = u32::MAX;

/// Result of one coarsening level.
#[derive(Debug)]
pub struct CoarseLevel {
    /// The contracted hypergraph.
    pub coarse: Hypergraph,
    /// Fine-vertex → coarse-vertex map.
    pub map: Vec<u32>,
    /// Per-coarse-vertex fixed side (`FREE`, `0`, or `1`).
    pub fixed: Vec<i8>,
}

/// Performs one level of coarsening. Returns `None` when clustering fails
/// to shrink the hypergraph meaningfully (reduction below 5%), signalling
/// the driver to stop.
pub fn coarsen_once(
    hg: &Hypergraph,
    fixed: &[i8],
    scheme: CoarseningScheme,
    max_net_size: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
) -> Option<CoarseLevel> {
    let n = hg.num_vertices() as usize;
    debug_assert_eq!(fixed.len(), n);

    let clusters = cluster_vertices(hg, fixed, scheme, max_net_size, weight_cap, rng);
    let num_clusters = clusters.num_clusters;
    if num_clusters as f64 > 0.95 * n as f64 {
        return None;
    }
    Some(contract(hg, fixed, &clusters.cluster_of, num_clusters))
}

struct Clustering {
    cluster_of: Vec<u32>,
    num_clusters: u32,
}

/// Visits vertices in random order; each vertex joins the
/// heaviest-connectivity cluster among its already-processed neighbors
/// (subject to the weight cap and fixed-side compatibility) or starts its
/// own. Under HCM a cluster accepts at most one extra vertex.
fn cluster_vertices(
    hg: &Hypergraph,
    fixed: &[i8],
    scheme: CoarseningScheme,
    max_net_size: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
) -> Clustering {
    let n = hg.num_vertices() as usize;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut cluster_of = vec![NIL; n];
    let mut cluster_weight: Vec<u64> = Vec::new();
    let mut cluster_size: Vec<u32> = Vec::new();
    let mut cluster_fixed: Vec<i8> = Vec::new();

    // Scratch connectivity scores keyed by cluster id.
    let mut score: Vec<u64> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();

    for &u in &order {
        let uw = hg.vertex_weight(u) as u64;
        let uf = fixed[u as usize];

        // Score already-formed clusters reachable through u's nets.
        touched.clear();
        for &net in hg.nets(u) {
            if hg.net_size(net) > max_net_size {
                continue;
            }
            let cost = hg.net_cost(net) as u64;
            for &v in hg.pins(net) {
                if v == u {
                    continue;
                }
                let c = cluster_of[v as usize];
                if c == NIL {
                    continue;
                }
                if score.len() <= c as usize {
                    score.resize(cluster_weight.len(), 0);
                }
                if score[c as usize] == 0 {
                    touched.push(c);
                }
                score[c as usize] += cost;
            }
        }

        // Best admissible cluster.
        let mut best: Option<(u32, f64)> = None;
        for &c in &touched {
            let s = score[c as usize];
            score[c as usize] = 0;
            let cf = cluster_fixed[c as usize];
            if uf != FREE && cf != FREE && uf != cf {
                continue;
            }
            if cluster_weight[c as usize] + uw > weight_cap {
                continue;
            }
            if scheme == CoarseningScheme::Hcm && cluster_size[c as usize] >= 2 {
                continue;
            }
            // Scaled HCC divides the connectivity score by the merged
            // weight, discouraging snowball clusters.
            let key = match scheme {
                CoarseningScheme::ScaledHcc => {
                    s as f64 / (cluster_weight[c as usize] + uw).max(1) as f64
                }
                _ => s as f64,
            };
            match best {
                Some((_, bs)) if bs >= key => {}
                _ => best = Some((c, key)),
            }
        }

        match best {
            Some((c, _)) => {
                cluster_of[u as usize] = c;
                cluster_weight[c as usize] += uw;
                cluster_size[c as usize] += 1;
                if cluster_fixed[c as usize] == FREE {
                    cluster_fixed[c as usize] = uf;
                }
            }
            None => {
                let c = cluster_weight.len() as u32;
                cluster_of[u as usize] = c;
                cluster_weight.push(uw);
                cluster_size.push(1);
                cluster_fixed.push(uf);
                if score.len() <= c as usize {
                    score.push(0);
                }
            }
        }
    }

    Clustering { cluster_of, num_clusters: cluster_weight.len() as u32 }
}

/// Contracts `hg` under the given clustering.
fn contract(hg: &Hypergraph, fixed: &[i8], cluster_of: &[u32], num_clusters: u32) -> CoarseLevel {
    let mut weights = vec![0u64; num_clusters as usize];
    let mut coarse_fixed = vec![FREE; num_clusters as usize];
    for v in 0..hg.num_vertices() as usize {
        let c = cluster_of[v] as usize;
        weights[c] += hg.vertex_weight(v as u32) as u64;
        if fixed[v] != FREE {
            debug_assert!(coarse_fixed[c] == FREE || coarse_fixed[c] == fixed[v]);
            coarse_fixed[c] = fixed[v];
        }
    }
    let weights: Vec<u32> =
        weights.into_iter().map(|w| u32::try_from(w).expect("weight overflow")).collect();

    // Build coarse nets: dedupe pins per net, drop singletons, merge
    // identical nets.
    let mut stamp = vec![u32::MAX; num_clusters as usize];
    let mut merged: HashMap<Box<[u32]>, u32> = HashMap::new();
    let mut nets: Vec<Vec<u32>> = Vec::new();
    let mut costs: Vec<u32> = Vec::new();
    for n in 0..hg.num_nets() {
        let mut pins: Vec<u32> = Vec::with_capacity(hg.net_size(n).min(16));
        for &p in hg.pins(n) {
            let c = cluster_of[p as usize];
            if stamp[c as usize] != n {
                stamp[c as usize] = n;
                pins.push(c);
            }
        }
        if pins.len() < 2 {
            continue;
        }
        pins.sort_unstable();
        let key: Box<[u32]> = pins.clone().into_boxed_slice();
        match merged.get(&key) {
            Some(&idx) => costs[idx as usize] += hg.net_cost(n),
            None => {
                merged.insert(key, nets.len() as u32);
                nets.push(pins);
                costs.push(hg.net_cost(n));
            }
        }
    }

    let coarse = Hypergraph::from_nets_weighted(num_clusters, &nets, weights, costs)
        .expect("contraction preserves hypergraph validity");
    CoarseLevel { coarse, map: cluster_of.to_vec(), fixed: coarse_fixed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_hypergraph, two_clusters};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn coarsening_shrinks_and_preserves_weight() {
        let hg = two_clusters(50);
        let total = hg.total_vertex_weight();
        let lvl = coarsen_once(&hg, &free(100), CoarseningScheme::Hcc, 64, total, &mut rng())
            .expect("should shrink");
        assert!(lvl.coarse.num_vertices() < hg.num_vertices());
        assert_eq!(lvl.coarse.total_vertex_weight(), total);
        lvl.coarse.validate().unwrap();
        // Every fine vertex maps to a valid coarse vertex.
        for &c in &lvl.map {
            assert!(c < lvl.coarse.num_vertices());
        }
    }

    #[test]
    fn hcm_clusters_have_at_most_two_vertices() {
        let hg = random_hypergraph(200, 300, 5, 7);
        let lvl = coarsen_once(
            &hg,
            &free(200),
            CoarseningScheme::Hcm,
            64,
            hg.total_vertex_weight(),
            &mut rng(),
        )
        .expect("should shrink");
        let mut sizes = vec![0u32; lvl.coarse.num_vertices() as usize];
        for &c in &lvl.map {
            sizes[c as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s <= 2), "HCM formed a cluster of size > 2");
    }

    #[test]
    fn weight_cap_respected() {
        let hg = two_clusters(40);
        let cap = 3u64;
        let lvl = coarsen_once(&hg, &free(80), CoarseningScheme::Hcc, 64, cap, &mut rng())
            .expect("should shrink");
        assert!(lvl.coarse.vertex_weights().iter().all(|&w| w as u64 <= cap));
    }

    #[test]
    fn incompatible_fixed_sides_never_merge() {
        let hg = two_clusters(20);
        let mut fixed = free(40);
        // Fix alternating vertices to opposite sides.
        for v in 0..40usize {
            fixed[v] = (v % 2) as i8;
        }
        if let Some(lvl) = coarsen_once(
            &hg,
            &fixed,
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut rng(),
        ) {
            // Each coarse vertex must contain fine vertices of one side only.
            let mut side: Vec<i8> = vec![FREE; lvl.coarse.num_vertices() as usize];
            for (v, &c) in lvl.map.iter().enumerate() {
                let f = fixed[v];
                assert!(side[c as usize] == FREE || side[c as usize] == f);
                side[c as usize] = f;
            }
            // And the coarse fixed vector reflects it.
            assert_eq!(side, lvl.fixed);
        }
    }

    #[test]
    fn identical_nets_merge_costs() {
        // Nets {0,1} and {0,1} should merge into one net of cost 2 if 0,1
        // stay separate clusters, or vanish if merged. Force separation
        // with a tiny weight cap.
        let hg = Hypergraph::from_nets(2, &[vec![0, 1], vec![0, 1]]).unwrap();
        let lvl = contract(&hg, &free(2), &[0, 1], 2);
        assert_eq!(lvl.coarse.num_nets(), 1);
        assert_eq!(lvl.coarse.net_cost(0), 2);
    }

    #[test]
    fn single_pin_nets_dropped() {
        let hg = Hypergraph::from_nets(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        // Merge 0 and 1: net {0,1} collapses to a single pin and is dropped.
        let lvl = contract(&hg, &free(3), &[0, 0, 1], 2);
        assert_eq!(lvl.coarse.num_nets(), 1);
        assert_eq!(lvl.coarse.pins(0), &[0, 1]);
    }

    #[test]
    fn stops_when_no_shrink_possible() {
        // A hypergraph with no nets cannot cluster at all.
        let hg = Hypergraph::from_nets(10, &[]).unwrap();
        assert!(coarsen_once(
            &hg,
            &free(10),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut rng()
        )
        .is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let hg = random_hypergraph(300, 500, 6, 11);
        let a = coarsen_once(
            &hg,
            &free(300),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut SmallRng::seed_from_u64(5),
        )
        .unwrap();
        let b = coarsen_once(
            &hg,
            &free(300),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut SmallRng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(a.map, b.map);
        assert_eq!(a.coarse, b.coarse);
    }
}
