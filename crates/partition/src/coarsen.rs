//! Coarsening: heavy-connectivity matching/clustering plus contraction.
//!
//! Each level groups strongly connected vertices into clusters and
//! contracts the substrate: cluster = coarse vertex (weights summed);
//! contraction itself (net/edge dedup and merging) lives in each
//! [`Substrate`] implementation. Cluster weights are capped so one coarse
//! vertex can never make balanced bisection infeasible. The clustering
//! loop only needs connectivity scores between a vertex and its
//! neighbors, so it is written once for graphs and hypergraphs via
//! [`Substrate::for_each_scored_neighbor`], at either index width.

use fgh_hypergraph::Hypergraph;
use fgh_sparse::IndexType;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::arena::{ArenaIndex, LevelArena};
use crate::config::CoarseningScheme;
use crate::engine::Substrate;
use crate::level::Level;

/// Free (not fixed to any side) marker in fixed-side vectors.
pub const FREE: i8 = -1;

/// Result of one coarsening level of a hypergraph (the historical name;
/// the engine uses [`Level`] over any substrate).
pub type CoarseLevel = Level<Hypergraph>;

/// Performs one level of coarsening. Returns `None` when clustering fails
/// to shrink the structure meaningfully (reduction below 5%), signalling
/// the driver to stop.
pub fn coarsen_once(
    hg: &Hypergraph,
    fixed: &[i8],
    scheme: CoarseningScheme,
    max_net_size: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
) -> Option<CoarseLevel> {
    coarsen_once_in(
        hg,
        fixed,
        scheme,
        max_net_size,
        weight_cap,
        rng,
        &mut LevelArena::disabled(),
    )
}

/// Substrate-generic, arena-backed coarsening level (the engine's entry
/// point). Scratch buffers and the fine→coarse map are drawn from `arena`;
/// the returned [`Level`]'s `map`/`fixed` should be given back to it once
/// projected through.
// lint: checked-index — v < n == fixed.len() == cluster_of.len(); cluster ids are < num_clusters == coarse_fixed.len()
pub(crate) fn coarsen_once_in<S: Substrate>(
    sub: &S,
    fixed: &[i8],
    scheme: CoarseningScheme,
    max_net_size: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
) -> Option<Level<S>> {
    let n = sub.num_vertices();
    debug_assert_eq!(fixed.len(), n);

    let (cluster_of, num_clusters) =
        cluster_vertices(sub, fixed, scheme, max_net_size, weight_cap, rng, arena);
    if num_clusters as f64 > 0.95 * n as f64 {
        S::Ix::give_ids(arena, cluster_of);
        return None;
    }

    // Project fixed sides onto clusters (clustering never merges
    // incompatible fixed vertices, so the projection is well-defined).
    let mut coarse_fixed = arena.take_i8(num_clusters, FREE);
    for v in 0..n {
        if fixed[v] != FREE {
            let c = cluster_of[v].index();
            debug_assert!(coarse_fixed[c] == FREE || coarse_fixed[c] == fixed[v]);
            coarse_fixed[c] = fixed[v];
        }
    }

    let coarse = sub.contract(&cluster_of, num_clusters, arena);
    Some(Level {
        coarse,
        map: cluster_of,
        fixed: coarse_fixed,
    })
}

/// Visits vertices in random order; each vertex joins the
/// heaviest-connectivity cluster among its already-processed neighbors
/// (subject to the weight cap and fixed-side compatibility) or starts its
/// own. Under HCM a cluster accepts at most one extra vertex. Returns the
/// per-vertex cluster id (an arena buffer, at the substrate's index
/// width — `S::Ix::MAX` is the "unclustered" sentinel during the pass)
/// and the cluster count.
// lint: checked-index — u and neighbors are < n == cluster_of.len(); cluster ids index the per-cluster vecs, which grow with each new cluster, and score is pre-sized to n (cluster ids are < n)
fn cluster_vertices<S: Substrate>(
    sub: &S,
    fixed: &[i8],
    scheme: CoarseningScheme,
    max_net_size: usize,
    weight_cap: u64,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
) -> (Vec<S::Ix>, usize) {
    let n = sub.num_vertices();
    let mut order = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
    order.extend((0..n).map(S::Ix::from_index));
    order.shuffle(rng);

    let mut cluster_of = S::Ix::take_ids(arena, n, S::Ix::MAX);
    let mut cluster_weight = arena.take_u64(0, 0);
    // Cluster sizes only gate HCM admission (size < 2), so u32 values
    // suffice at any index width.
    let mut cluster_size = arena.take_u32(0, 0);
    let mut cluster_fixed = arena.take_i8(0, 0);

    // Scratch connectivity scores keyed by cluster id. Cluster ids are
    // bounded by n, so sizing once up front removes the grow-check from
    // the scoring hot loop.
    let mut score = arena.take_u64(n, 0);
    let mut touched = S::Ix::take_ids(arena, 0, S::Ix::ZERO);

    for &u in order.iter() {
        let uw = sub.vertex_weight(u) as u64;
        let uf = fixed[u.index()];

        // Score already-formed clusters reachable through u's incidences.
        touched.clear();
        sub.for_each_scored_neighbor(u, max_net_size, |v, cost| {
            let c = cluster_of[v.index()];
            if c == S::Ix::MAX {
                return;
            }
            if score[c.index()] == 0 {
                touched.push(c);
            }
            score[c.index()] += cost;
        });

        // Best admissible cluster.
        let mut best: Option<(S::Ix, f64)> = None;
        for &c in touched.iter() {
            let ci = c.index();
            let s = score[ci];
            score[ci] = 0;
            let cf = cluster_fixed[ci];
            if uf != FREE && cf != FREE && uf != cf {
                continue;
            }
            if cluster_weight[ci] + uw > weight_cap {
                continue;
            }
            if scheme == CoarseningScheme::Hcm && cluster_size[ci] >= 2 {
                continue;
            }
            // Scaled HCC divides the connectivity score by the merged
            // weight, discouraging snowball clusters.
            let key = match scheme {
                CoarseningScheme::ScaledHcc => s as f64 / (cluster_weight[ci] + uw).max(1) as f64,
                _ => s as f64,
            };
            match best {
                Some((_, bs)) if bs >= key => {}
                _ => best = Some((c, key)),
            }
        }

        match best {
            Some((c, _)) => {
                let ci = c.index();
                cluster_of[u.index()] = c;
                cluster_weight[ci] += uw;
                cluster_size[ci] += 1;
                if cluster_fixed[ci] == FREE {
                    cluster_fixed[ci] = uf;
                }
            }
            None => {
                let c = cluster_weight.len();
                cluster_of[u.index()] = S::Ix::from_index(c);
                cluster_weight.push(uw);
                cluster_size.push(1);
                cluster_fixed.push(uf);
                if score.len() <= c {
                    score.push(0);
                }
            }
        }
    }

    let num_clusters = cluster_weight.len();
    S::Ix::give_ids(arena, order);
    arena.give_u64(cluster_weight);
    arena.give_u32(cluster_size);
    arena.give_i8(cluster_fixed);
    arena.give_u64(score);
    S::Ix::give_ids(arena, touched);
    (cluster_of, num_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_hypergraph, two_clusters};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    /// Direct contraction through the [`Substrate`] impl.
    fn contract(hg: &Hypergraph, cluster_of: &[u32], num_clusters: usize) -> Hypergraph {
        Substrate::contract(hg, cluster_of, num_clusters, &mut LevelArena::disabled())
    }

    #[test]
    fn coarsening_shrinks_and_preserves_weight() {
        let hg = two_clusters(50);
        let total = hg.total_vertex_weight();
        let lvl = coarsen_once(
            &hg,
            &free(100),
            CoarseningScheme::Hcc,
            64,
            total,
            &mut rng(),
        )
        .expect("should shrink");
        assert!(lvl.coarse.num_vertices() < hg.num_vertices());
        assert_eq!(lvl.coarse.total_vertex_weight(), total);
        lvl.coarse.validate().unwrap();
        // Every fine vertex maps to a valid coarse vertex.
        for &c in &lvl.map {
            assert!(c < lvl.coarse.num_vertices());
        }
    }

    #[test]
    fn hcm_clusters_have_at_most_two_vertices() {
        let hg = random_hypergraph(200, 300, 5, 7);
        let lvl = coarsen_once(
            &hg,
            &free(200),
            CoarseningScheme::Hcm,
            64,
            hg.total_vertex_weight(),
            &mut rng(),
        )
        .expect("should shrink");
        let mut sizes = vec![0u32; lvl.coarse.num_vertices() as usize];
        for &c in &lvl.map {
            sizes[c as usize] += 1;
        }
        assert!(
            sizes.iter().all(|&s| s <= 2),
            "HCM formed a cluster of size > 2"
        );
    }

    #[test]
    fn weight_cap_respected() {
        let hg = two_clusters(40);
        let cap = 3u64;
        let lvl = coarsen_once(&hg, &free(80), CoarseningScheme::Hcc, 64, cap, &mut rng())
            .expect("should shrink");
        assert!(lvl.coarse.vertex_weights().iter().all(|&w| w as u64 <= cap));
    }

    #[test]
    fn incompatible_fixed_sides_never_merge() {
        let hg = two_clusters(20);
        let mut fixed = free(40);
        // Fix alternating vertices to opposite sides.
        for (v, f) in fixed.iter_mut().enumerate() {
            *f = (v % 2) as i8;
        }
        if let Some(lvl) = coarsen_once(
            &hg,
            &fixed,
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut rng(),
        ) {
            // Each coarse vertex must contain fine vertices of one side only.
            let mut side: Vec<i8> = vec![FREE; lvl.coarse.num_vertices() as usize];
            for (v, &c) in lvl.map.iter().enumerate() {
                let f = fixed[v];
                assert!(side[c as usize] == FREE || side[c as usize] == f);
                side[c as usize] = f;
            }
            // And the coarse fixed vector reflects it.
            assert_eq!(side, lvl.fixed);
        }
    }

    #[test]
    fn identical_nets_merge_costs() {
        // Nets {0,1} and {0,1} should merge into one net of cost 2 if 0,1
        // stay separate clusters, or vanish if merged. Force separation by
        // keeping each vertex its own cluster.
        let hg = Hypergraph::from_nets(2, &[vec![0, 1], vec![0, 1]]).unwrap();
        let coarse = contract(&hg, &[0, 1], 2);
        assert_eq!(coarse.num_nets(), 1);
        assert_eq!(coarse.net_cost(0), 2);
    }

    #[test]
    fn single_pin_nets_dropped() {
        let hg = Hypergraph::from_nets(3, &[vec![0, 1], vec![1, 2]]).unwrap();
        // Merge 0 and 1: net {0,1} collapses to a single pin and is dropped.
        let coarse = contract(&hg, &[0, 0, 1], 2);
        assert_eq!(coarse.num_nets(), 1);
        assert_eq!(coarse.pins(0), &[0, 1]);
    }

    #[test]
    fn wide_contraction_matches_narrow() {
        // The same clustering at u64 width produces the same coarse
        // structure, modulo the id type.
        let hg = random_hypergraph(40, 60, 5, 2);
        let nets: Vec<Vec<u64>> = (0..hg.num_nets())
            .map(|n| hg.pins(n).iter().map(|&p| p as u64).collect())
            .collect();
        let hg64 = Hypergraph::<u64>::from_nets(40u64, &nets).unwrap();
        let cluster32: Vec<u32> = (0..40).map(|v| v / 2).collect();
        let cluster64: Vec<u64> = cluster32.iter().map(|&c| c as u64).collect();
        let c32 = contract(&hg, &cluster32, 20);
        let c64 = Substrate::contract(&hg64, &cluster64, 20, &mut LevelArena::disabled());
        assert_eq!(c32.num_nets() as u64, c64.num_nets());
        for n in 0..c32.num_nets() {
            let narrow: Vec<u64> = c32.pins(n).iter().map(|&p| p as u64).collect();
            assert_eq!(narrow.as_slice(), c64.pins(n as u64));
            assert_eq!(c32.net_cost(n), c64.net_cost(n as u64));
        }
    }

    #[test]
    fn stops_when_no_shrink_possible() {
        // A hypergraph with no nets cannot cluster at all.
        let hg = Hypergraph::from_nets(10, &[]).unwrap();
        assert!(coarsen_once(
            &hg,
            &free(10),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut rng()
        )
        .is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let hg = random_hypergraph(300, 500, 6, 11);
        let a = coarsen_once(
            &hg,
            &free(300),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut SmallRng::seed_from_u64(5),
        )
        .unwrap();
        let b = coarsen_once(
            &hg,
            &free(300),
            CoarseningScheme::Hcc,
            64,
            hg.total_vertex_weight(),
            &mut SmallRng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(a.map, b.map);
        assert_eq!(a.coarse, b.coarse);
    }
}
