//! Typed errors for the partitioning layer.

pub use fgh_hypergraph::HypergraphError;

/// Error type for K-way partitioning runs.
///
/// Most failures are structural (invalid `k`, malformed fixed-vertex
/// vectors) and surface as wrapped [`HypergraphError`]s; [`Worker`]
/// converts a panic caught from a multi-seed worker thread into a value
/// the caller can handle instead of an abort.
///
/// [`Worker`]: PartitionError::Worker
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// A structural error from the hypergraph layer (invalid `k`,
    /// fixed-vector length/part mismatches, malformed partitions).
    Hypergraph(HypergraphError),
    /// A worker thread of a multi-seed run panicked; the payload is the
    /// panic message when one was recoverable.
    Worker(String),
    /// An internal bookkeeping invariant broke mid-run (a partitioner
    /// defect, not bad input). Replaces what used to be
    /// `debug_assert!(false, ...)` sites: release builds now surface the
    /// defect as an error instead of silently continuing on corrupt state.
    Internal(String),
}

impl PartitionError {
    /// Builds an [`Internal`](PartitionError::Internal) error.
    pub fn internal(detail: impl Into<String>) -> Self {
        PartitionError::Internal(detail.into())
    }
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Hypergraph(e) => write!(f, "{e}"),
            PartitionError::Worker(msg) => write!(f, "partition worker failed: {msg}"),
            PartitionError::Internal(msg) => {
                write!(f, "internal partitioner invariant broken: {msg}")
            }
        }
    }
}

impl std::error::Error for PartitionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PartitionError::Hypergraph(e) => Some(e),
            PartitionError::Worker(_) | PartitionError::Internal(_) => None,
        }
    }
}

impl From<HypergraphError> for PartitionError {
    fn from(e: HypergraphError) -> Self {
        PartitionError::Hypergraph(e)
    }
}

/// Renders the payload of a caught thread panic — shared by the
/// multi-seed drivers here and in `fgh-graph`.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}
