//! Multilevel bisection driver: coarsen → initial partition → project &
//! refine back up.

use fgh_hypergraph::Hypergraph;
use rand::Rng;

use crate::coarsen::{coarsen_once, CoarseLevel};
use crate::config::PartitionConfig;
use crate::initial::initial_best;
use crate::refine::BisectionState;

/// Bisects `hg` into sides 0/1 with ideal side weights `targets` and
/// per-bisection imbalance `epsilon`. `fixed[v]` pins vertices to a side.
///
/// Returns the side assignment and the cut-net cutsize achieved.
pub fn multilevel_bisect(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    cfg: &PartitionConfig,
    rng: &mut impl Rng,
) -> (Vec<u8>, u64) {
    // Degenerate targets: everything belongs on one side.
    if targets[1] <= 0.0 {
        return (vec![0; hg.num_vertices() as usize], 0);
    }
    if targets[0] <= 0.0 {
        return (vec![1; hg.num_vertices() as usize], 0);
    }

    // --- Coarsening phase ---
    // Cap cluster weights so no coarse vertex exceeds a fraction of the
    // smaller side's cap; otherwise balanced bisection can become
    // infeasible at the coarsest level.
    let min_target = targets[0].min(targets[1]);
    let max_vw = hg.vertex_weights().iter().copied().max().unwrap_or(1) as u64;
    let weight_cap = ((min_target * (1.0 + epsilon)) / 4.0).ceil().max(1.0) as u64;
    let weight_cap = weight_cap.max(max_vw);

    let mut levels: Vec<CoarseLevel> = Vec::new();
    loop {
        let (cur_hg, cur_fixed): (&Hypergraph, &[i8]) = match levels.last() {
            Some(l) => (&l.coarse, &l.fixed),
            None => (hg, fixed),
        };
        if cur_hg.num_vertices() <= cfg.coarsen_to {
            break;
        }
        let next = coarsen_once(
            cur_hg,
            cur_fixed,
            cfg.coarsening,
            cfg.max_net_size_for_matching,
            weight_cap,
            rng,
        );
        match next {
            Some(level) => levels.push(level),
            None => break,
        }
    }

    // --- Initial partitioning at the coarsest level ---
    let (coarsest_hg, coarsest_fixed): (&Hypergraph, &[i8]) = match levels.last() {
        Some(l) => (&l.coarse, &l.fixed),
        None => (hg, fixed),
    };
    let mut sides = initial_best(
        coarsest_hg,
        coarsest_fixed,
        targets,
        epsilon,
        cfg.initial,
        cfg.initial_tries,
        cfg.fm_passes,
        rng,
    );

    // --- Uncoarsening: project and refine at every level ---
    for li in (0..levels.len()).rev() {
        let (fine_hg, fine_fixed): (&Hypergraph, &[i8]) = if li == 0 {
            (hg, fixed)
        } else {
            (&levels[li - 1].coarse, &levels[li - 1].fixed)
        };
        let map = &levels[li].map;
        let fine_sides: Vec<u8> = (0..fine_hg.num_vertices())
            .map(|v| sides[map[v as usize] as usize])
            .collect();
        let mut st = BisectionState::new(fine_hg, fine_sides, fine_fixed, targets, epsilon);
        if cfg.boundary_fm {
            st.refine_boundary(rng, cfg.fm_passes, cfg.fm_early_exit);
        } else {
            st.refine(rng, cfg.fm_passes, cfg.fm_early_exit);
        }
        sides = st.into_sides();
    }

    // Final safety refinement on the original hypergraph when no
    // coarsening happened (the loop above already covers li == 0).
    let st = BisectionState::new(hg, sides, fixed, targets, epsilon);
    let cut = st.cut();
    (st.into_sides(), cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::FREE;
    use crate::testutil::{random_hypergraph, two_clusters};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn bisect_two_clusters_optimally() {
        let hg = two_clusters(200);
        let cfg = PartitionConfig { coarsen_to: 40, ..Default::default() };
        let (sides, cut) = multilevel_bisect(
            &hg,
            &free(400),
            [200.0, 200.0],
            0.03,
            &cfg,
            &mut SmallRng::seed_from_u64(5),
        );
        assert_eq!(cut, 1, "should discover the single-bridge cut");
        let w1 = sides.iter().filter(|&&s| s == 1).count();
        assert!((194..=206).contains(&w1), "balance violated: {w1}/400");
    }

    #[test]
    fn bisect_respects_balance_on_random_hypergraphs() {
        for seed in 0..3u64 {
            let hg = random_hypergraph(500, 800, 6, seed);
            let cfg = PartitionConfig::default();
            let (sides, _) = multilevel_bisect(
                &hg,
                &free(500),
                [250.0, 250.0],
                0.05,
                &cfg,
                &mut SmallRng::seed_from_u64(seed),
            );
            let w1 = sides.iter().filter(|&&s| s == 1).count() as f64;
            assert!(
                w1 <= 250.0 * 1.05 + 1.0 && (500.0 - w1) <= 250.0 * 1.05 + 1.0,
                "seed {seed}: side weights {w1}/{}",
                500.0 - w1
            );
        }
    }

    #[test]
    fn degenerate_targets() {
        let hg = two_clusters(10);
        let cfg = PartitionConfig::default();
        let (sides, cut) = multilevel_bisect(
            &hg,
            &free(20),
            [20.0, 0.0],
            0.03,
            &cfg,
            &mut SmallRng::seed_from_u64(1),
        );
        assert!(sides.iter().all(|&s| s == 0));
        assert_eq!(cut, 0);
    }

    #[test]
    fn unbalanced_targets_respected() {
        // 3:1 split request.
        let hg = two_clusters(100);
        let cfg = PartitionConfig::default();
        let (sides, _) = multilevel_bisect(
            &hg,
            &free(200),
            [150.0, 50.0],
            0.05,
            &cfg,
            &mut SmallRng::seed_from_u64(2),
        );
        let w1 = sides.iter().filter(|&&s| s == 1).count() as f64;
        assert!(w1 <= 50.0 * 1.05 + 1.0, "side 1 too heavy: {w1}");
        assert!(w1 >= 30.0, "side 1 suspiciously light: {w1}");
    }

    #[test]
    fn fixed_vertices_survive_multilevel() {
        let hg = two_clusters(100);
        let mut fx = free(200);
        fx[0] = 1;
        fx[150] = 0;
        let cfg = PartitionConfig::default();
        let (sides, _) = multilevel_bisect(
            &hg,
            &fx,
            [100.0, 100.0],
            0.05,
            &cfg,
            &mut SmallRng::seed_from_u64(3),
        );
        assert_eq!(sides[0], 1, "fixed vertex 0 moved");
        assert_eq!(sides[150], 0, "fixed vertex 150 moved");
    }
}
