//! Multilevel bisection: coarsen → initial partition → project & refine
//! back up.
//!
//! The actual V-cycle lives in [`crate::engine::MultilevelDriver`], which
//! serves graphs and hypergraphs alike; this module keeps the historical
//! free-function entry point for hypergraph callers.

use fgh_hypergraph::Hypergraph;
use rand::Rng;

use crate::arena::ArenaIndex;
use crate::config::PartitionConfig;
use crate::engine::MultilevelDriver;

/// Bisects `hg` into sides 0/1 with ideal side weights `targets` and
/// per-bisection imbalance `epsilon`. `fixed[v]` pins vertices to a side.
///
/// Returns the side assignment and the cut-net cutsize achieved. Each call
/// builds a fresh [`MultilevelDriver`]; reuse a driver directly when
/// running many bisections.
pub fn multilevel_bisect<I: ArenaIndex>(
    hg: &Hypergraph<I>,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    cfg: &PartitionConfig,
    rng: &mut impl Rng,
) -> (Vec<u8>, u64) {
    MultilevelDriver::new(cfg.clone()).bisect(hg, fixed, targets, epsilon, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::FREE;
    use crate::testutil::{random_hypergraph, two_clusters};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn bisect_two_clusters_optimally() {
        let hg = two_clusters(200);
        let cfg = PartitionConfig {
            coarsen_to: 40,
            ..Default::default()
        };
        let (sides, cut) = multilevel_bisect(
            &hg,
            &free(400),
            [200.0, 200.0],
            0.03,
            &cfg,
            &mut SmallRng::seed_from_u64(5),
        );
        assert_eq!(cut, 1, "should discover the single-bridge cut");
        let w1 = sides.iter().filter(|&&s| s == 1).count();
        assert!((194..=206).contains(&w1), "balance violated: {w1}/400");
    }

    #[test]
    fn bisect_respects_balance_on_random_hypergraphs() {
        for seed in 0..3u64 {
            let hg = random_hypergraph(500, 800, 6, seed);
            let cfg = PartitionConfig::default();
            let (sides, _) = multilevel_bisect(
                &hg,
                &free(500),
                [250.0, 250.0],
                0.05,
                &cfg,
                &mut SmallRng::seed_from_u64(seed),
            );
            let w1 = sides.iter().filter(|&&s| s == 1).count() as f64;
            assert!(
                w1 <= 250.0 * 1.05 + 1.0 && (500.0 - w1) <= 250.0 * 1.05 + 1.0,
                "seed {seed}: side weights {w1}/{}",
                500.0 - w1
            );
        }
    }

    #[test]
    fn degenerate_targets() {
        let hg = two_clusters(10);
        let cfg = PartitionConfig::default();
        let (sides, cut) = multilevel_bisect(
            &hg,
            &free(20),
            [20.0, 0.0],
            0.03,
            &cfg,
            &mut SmallRng::seed_from_u64(1),
        );
        assert!(sides.iter().all(|&s| s == 0));
        assert_eq!(cut, 0);
    }

    #[test]
    fn unbalanced_targets_respected() {
        // 3:1 split request.
        let hg = two_clusters(100);
        let cfg = PartitionConfig::default();
        let (sides, _) = multilevel_bisect(
            &hg,
            &free(200),
            [150.0, 50.0],
            0.05,
            &cfg,
            &mut SmallRng::seed_from_u64(2),
        );
        let w1 = sides.iter().filter(|&&s| s == 1).count() as f64;
        assert!(w1 <= 50.0 * 1.05 + 1.0, "side 1 too heavy: {w1}");
        assert!(w1 >= 30.0, "side 1 suspiciously light: {w1}");
    }

    #[test]
    fn fixed_vertices_survive_multilevel() {
        let hg = two_clusters(100);
        let mut fx = free(200);
        fx[0] = 1;
        fx[150] = 0;
        let cfg = PartitionConfig::default();
        let (sides, _) = multilevel_bisect(
            &hg,
            &fx,
            [100.0, 100.0],
            0.05,
            &cfg,
            &mut SmallRng::seed_from_u64(3),
        );
        assert_eq!(sides[0], 1, "fixed vertex 0 moved");
        assert_eq!(sides[150], 0, "fixed vertex 150 moved");
    }
}
