//! Multi-constraint K-way hypergraph partitioning.
//!
//! Each vertex carries a *vector* of weights (one entry per constraint);
//! a partition is balanced when **every** constraint's per-part sums stay
//! within `(1 + ε)` of that constraint's average. This is the machinery
//! behind the coarse-grain *checkerboard hypergraph* model (Çatalyürek &
//! Aykanat's companion IPDPS 2001 paper): the column-partitioning phase
//! must keep every (row-stripe, column-group) cell balanced, i.e. one
//! constraint per stripe.
//!
//! The algorithm here is a direct K-way scheme (no multilevel): a
//! balance-first greedy placement followed by connectivity−1 refinement
//! sweeps that only accept moves keeping all constraints within their
//! caps. Simpler than multilevel multi-constraint (as in hMETIS/PaToH)
//! but sufficient for the model's moderate K and heavy vertices.

use fgh_hypergraph::{cutsize_connectivity, Hypergraph, HypergraphError, Partition};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::PartitionError;
use crate::level::StageTimer;
use crate::EngineStats;

/// Per-vertex weight vectors for `c` constraints, stored row-major
/// (`weights[v * c + i]`).
#[derive(Debug, Clone)]
pub struct MultiWeights {
    c: usize,
    flat: Vec<u32>,
}

impl MultiWeights {
    /// Builds from a flat row-major vector (`num_vertices * c` entries).
    pub fn new(c: usize, flat: Vec<u32>) -> Self {
        assert!(c >= 1, "at least one constraint");
        assert_eq!(flat.len() % c, 0, "flat length must be a multiple of c");
        MultiWeights { c, flat }
    }

    /// Number of constraints.
    pub fn constraints(&self) -> usize {
        self.c
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.flat.len() / self.c
    }

    /// The weight vector of vertex `v`.
    pub fn of(&self, v: u32) -> &[u32] {
        &self.flat[v as usize * self.c..(v as usize + 1) * self.c]
    }

    /// Per-constraint totals.
    pub fn totals(&self) -> Vec<u64> {
        let mut t = vec![0u64; self.c];
        for v in 0..self.num_vertices() {
            let v32 = v as u32; // lint: checked-cast — v < num_vertices, a u32
            for (i, &w) in self.of(v32).iter().enumerate() {
                t[i] += w as u64;
            }
        }
        t
    }
}

/// Result of a multi-constraint partitioning run.
#[derive(Debug, Clone)]
pub struct MultiConstraintResult {
    /// The K-way partition.
    pub partition: Partition,
    /// Connectivity−1 cutsize.
    pub cutsize: u64,
    /// Worst percent imbalance over all constraints.
    pub worst_imbalance_percent: f64,
    /// Engine counters for the run, in multilevel vocabulary: greedy
    /// placement reports as initial partitioning, refinement sweeps as FM
    /// passes, and accepted moves as FM moves (the greedy scheme never
    /// rolls back, so `fm_rollbacks` stays 0). Coarsening counters stay 0
    /// — the scheme is direct, not multilevel.
    pub stats: EngineStats,
}

/// Partitions `hg` into `k` parts balancing every constraint of `weights`
/// within `epsilon`, minimizing the connectivity−1 cutsize with greedy
/// sweeps. Deterministic in `seed`. Structural problems (invalid `k`)
/// surface as wrapped [`HypergraphError`]s; corrupt internal bookkeeping
/// surfaces as [`PartitionError::Internal`].
pub fn partition_multiconstraint(
    hg: &Hypergraph,
    weights: &MultiWeights,
    k: u32,
    epsilon: f64,
    seed: u64,
    passes: usize,
) -> Result<MultiConstraintResult, PartitionError> {
    if k == 0 {
        return Err(HypergraphError::InvalidK.into());
    }
    let n = hg.num_vertices();
    assert_eq!(
        weights.num_vertices(),
        n as usize,
        "weights cover every vertex"
    );
    let c = weights.constraints();
    let totals = weights.totals();
    // Caps with one max-entry slack so placement is always feasible-ish.
    let caps: Vec<f64> = totals
        .iter()
        .map(|&t| (t as f64 / k as f64) * (1.0 + epsilon))
        .collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut stats = EngineStats::default();
    let placement_timer = StageTimer::start();

    // --- Balance-first greedy placement ---
    // Heaviest (by normalized total) vertices first; each goes to the part
    // with the lowest maximum relative fill after placement, with a small
    // connectivity bonus (prefer parts already holding net-mates).
    let mut order: Vec<u32> = (0..n).collect();
    order.shuffle(&mut rng);
    order.sort_by(|&a, &b| {
        let na: f64 = norm_total(weights, &totals, a);
        let nb: f64 = norm_total(weights, &totals, b);
        nb.partial_cmp(&na).unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut part_load = vec![0u64; k as usize * c];
    let mut parts = vec![u32::MAX; n as usize];
    let mut net_touch: Vec<Vec<(u32, u32)>> = vec![Vec::new(); hg.num_nets() as usize];
    for &v in &order {
        let mut best: Option<(f64, u32)> = None;
        for p in 0..k {
            // Relative fill after adding v, worst constraint.
            let mut fill = 0.0f64;
            for (i, &w) in weights.of(v).iter().enumerate() {
                let cap = caps[i].max(1.0);
                fill = fill.max((part_load[p as usize * c + i] as f64 + w as f64) / cap);
            }
            // Connectivity bonus: parts already on v's nets are cheaper.
            let mut bonus = 0.0f64;
            for &nn in hg.nets(v) {
                if net_touch[nn as usize].iter().any(|&(q, _)| q == p) {
                    bonus += hg.net_cost(nn) as f64;
                }
            }
            let score = fill - 0.01 * bonus;
            match best {
                Some((bs, _)) if bs <= score => {}
                _ => best = Some((score, p)),
            }
        }
        // `k >= 1` makes the candidate loop non-empty; part 0 is a safe
        // fallback rather than a panic.
        let p = best.map(|(_, p)| p).unwrap_or(0);
        parts[v as usize] = p;
        for (i, &w) in weights.of(v).iter().enumerate() {
            part_load[p as usize * c + i] += w as u64;
        }
        for &nn in hg.nets(v) {
            match net_touch[nn as usize].iter_mut().find(|(q, _)| *q == p) {
                Some((_, cnt)) => *cnt += 1,
                None => net_touch[nn as usize].push((p, 1)),
            }
        }
    }

    placement_timer.stop(&mut stats.initial_nanos);

    // --- Connectivity−1 refinement sweeps under all caps ---
    let refine_timer = StageTimer::start();
    let mut order: Vec<u32> = (0..n).collect();
    for _ in 0..passes {
        order.shuffle(&mut rng);
        stats.fm_passes += 1;
        let mut moved = 0usize;
        for &v in &order {
            let from = parts[v as usize];
            // Candidate parts: those on v's nets.
            let mut cands: Vec<u32> = Vec::new();
            for &nn in hg.nets(v) {
                for &(q, _) in &net_touch[nn as usize] {
                    if q != from && !cands.contains(&q) {
                        cands.push(q);
                    }
                }
            }
            let mut best: Option<(i64, u32)> = None;
            for &q in &cands {
                // All caps must hold after the move.
                let fits = weights.of(v).iter().enumerate().all(|(i, &w)| {
                    part_load[q as usize * c + i] as f64 + w as f64 <= caps[i].max(1.0)
                });
                if !fits {
                    continue;
                }
                let mut gain = 0i64;
                for &nn in hg.nets(v) {
                    let cost = hg.net_cost(nn) as i64;
                    let cnt_from = count(&net_touch[nn as usize], from);
                    let cnt_to = count(&net_touch[nn as usize], q);
                    if cnt_from == 1 {
                        gain += cost;
                    }
                    if cnt_to == 0 {
                        gain -= cost;
                    }
                }
                match best {
                    Some((bg, _)) if bg >= gain => {}
                    _ => best = Some((gain, q)),
                }
            }
            if let Some((gain, q)) = best {
                if gain > 0 {
                    parts[v as usize] = q;
                    for (i, &w) in weights.of(v).iter().enumerate() {
                        part_load[from as usize * c + i] -= w as u64;
                        part_load[q as usize * c + i] += w as u64;
                    }
                    for &nn in hg.nets(v) {
                        move_touch(&mut net_touch[nn as usize], nn, from, q)?;
                    }
                    moved += 1;
                }
            }
        }
        stats.fm_moves += moved as u64;
        if moved == 0 {
            break;
        }
    }
    refine_timer.stop(&mut stats.refine_nanos);

    let partition = Partition::new(k, parts)?;
    let cutsize = cutsize_connectivity(hg, &partition);
    let mut worst = 0.0f64;
    for i in 0..c {
        let avg = totals[i] as f64 / k as f64;
        if avg > 0.0 {
            let max = (0..k)
                .map(|p| part_load[p as usize * c + i])
                .max()
                .unwrap_or(0) as f64;
            worst = worst.max(100.0 * (max - avg) / avg);
        }
    }
    Ok(MultiConstraintResult {
        partition,
        cutsize,
        worst_imbalance_percent: worst,
        stats,
    })
}

fn norm_total(w: &MultiWeights, totals: &[u64], v: u32) -> f64 {
    w.of(v)
        .iter()
        .enumerate()
        .map(|(i, &x)| x as f64 / (totals[i].max(1)) as f64)
        .sum()
}

fn count(touch: &[(u32, u32)], p: u32) -> u32 {
    touch
        .iter()
        .find(|&&(q, _)| q == p)
        .map(|&(_, c)| c)
        .unwrap_or(0)
}

fn move_touch(
    touch: &mut Vec<(u32, u32)>,
    net: u32,
    from: u32,
    to: u32,
) -> Result<(), PartitionError> {
    let Some(i) = touch.iter().position(|&(q, _)| q == from) else {
        // Corrupt per-net touch table: a typed error so release builds
        // abort the sweep instead of continuing on broken counts.
        return Err(PartitionError::internal(format!(
            "net {net} has no pins in part {from} to move to part {to}"
        )));
    };
    touch[i].1 -= 1;
    if touch[i].1 == 0 {
        touch.swap_remove(i);
    }
    match touch.iter_mut().find(|(q, _)| *q == to) {
        Some((_, c)) => *c += 1,
        None => touch.push((to, 1)),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_hypergraph;
    use rand::Rng;

    #[test]
    fn multiweights_accessors() {
        let w = MultiWeights::new(2, vec![1, 10, 2, 20, 3, 30]);
        assert_eq!(w.constraints(), 2);
        assert_eq!(w.num_vertices(), 3);
        assert_eq!(w.of(1), &[2, 20]);
        assert_eq!(w.totals(), vec![6, 60]);
    }

    #[test]
    fn single_constraint_reduces_to_ordinary_balance() {
        let hg = random_hypergraph(120, 200, 4, 1);
        let w = MultiWeights::new(1, vec![1; 120]);
        let r = partition_multiconstraint(&hg, &w, 4, 0.05, 1, 4).unwrap();
        r.partition.validate(&hg, true).unwrap();
        assert!(
            r.worst_imbalance_percent <= 6.0,
            "{}",
            r.worst_imbalance_percent
        );
        assert_eq!(r.cutsize, cutsize_connectivity(&hg, &r.partition));
    }

    #[test]
    fn both_constraints_balanced() {
        // Two anti-correlated constraints: heavy-in-0 vertices are light
        // in 1 and vice versa — single-constraint balance would fail one.
        let hg = random_hypergraph(200, 300, 4, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut flat = Vec::with_capacity(400);
        for _ in 0..200 {
            let a = rng.gen_range(1..10u32);
            flat.push(a);
            flat.push(11 - a);
        }
        let w = MultiWeights::new(2, flat);
        let r = partition_multiconstraint(&hg, &w, 4, 0.10, 2, 4).unwrap();
        assert!(
            r.worst_imbalance_percent <= 11.0,
            "worst constraint imbalance {}%",
            r.worst_imbalance_percent
        );
    }

    #[test]
    fn refinement_reduces_cut_vs_no_passes() {
        let hg = random_hypergraph(150, 250, 5, 4);
        let w = MultiWeights::new(1, vec![1; 150]);
        let r0 = partition_multiconstraint(&hg, &w, 4, 0.10, 5, 0).unwrap();
        let r4 = partition_multiconstraint(&hg, &w, 4, 0.10, 5, 4).unwrap();
        assert!(r4.cutsize <= r0.cutsize, "{} vs {}", r4.cutsize, r0.cutsize);
    }

    #[test]
    fn deterministic() {
        let hg = random_hypergraph(100, 150, 4, 5);
        let w = MultiWeights::new(1, vec![1; 100]);
        let a = partition_multiconstraint(&hg, &w, 3, 0.1, 7, 3).unwrap();
        let b = partition_multiconstraint(&hg, &w, 3, 0.1, 7, 3).unwrap();
        assert_eq!(a.partition.parts(), b.partition.parts());
    }

    #[test]
    fn k0_rejected_k1_trivial() {
        let hg = random_hypergraph(20, 30, 3, 6);
        let w = MultiWeights::new(1, vec![1; 20]);
        assert!(partition_multiconstraint(&hg, &w, 0, 0.1, 1, 2).is_err());
        let r = partition_multiconstraint(&hg, &w, 1, 0.1, 1, 2).unwrap();
        assert_eq!(r.cutsize, 0);
    }

    #[test]
    fn zero_weight_constraint_handled() {
        // A constraint that is all zeros must not divide by zero.
        let hg = random_hypergraph(40, 60, 3, 7);
        let mut flat = Vec::new();
        for _ in 0..40 {
            flat.push(1u32);
            flat.push(0u32);
        }
        let w = MultiWeights::new(2, flat);
        let r = partition_multiconstraint(&hg, &w, 4, 0.1, 1, 2).unwrap();
        r.partition.validate(&hg, false).unwrap();
    }
}
