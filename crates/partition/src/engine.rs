//! The substrate-generic multilevel engine.
//!
//! Graph and hypergraph partitioning share one skeleton — coarsen by
//! clustering, partition the coarsest level, project and FM-refine back up,
//! recurse for K-way — and differ only in how a cut is counted, how moves
//! change it, and how contraction/extraction rebuild the structure. The
//! [`Substrate`] trait captures exactly those differences; everything else
//! (the FM state machine in [`crate::refine`], the clustering loop in
//! [`crate::coarsen`], the initial-partitioning schemes in
//! [`crate::initial`], and the V-cycle + recursive-bisection control flow
//! here) is written once against the trait.
//!
//! [`MultilevelDriver`] owns the run: the [`PartitionConfig`], a
//! [`LevelArena`] of recycled scratch buffers, and [`EngineStats`]
//! counters. One driver instance serves a whole K-way run, so every level
//! of every bisection draws its match/map arrays, side vectors, and gain
//! buckets from the same pool.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fgh_hypergraph::{Hypergraph, Partition};
use fgh_invariant::InvariantViolation;

use crate::arena::LevelArena;
use crate::coarsen::{coarsen_once_in, FREE};
use crate::config::PartitionConfig;
use crate::initial::initial_best_in;
use crate::level::{EngineStats, Level, StageTimer};
use crate::refine::BisectionState;

/// The structure a multilevel partitioner runs on: vertices with weights,
/// an incidence structure that defines cut and FM gains, and the
/// contraction/extraction operations of the V-cycle.
///
/// Implemented by [`fgh_hypergraph::Hypergraph`] (cut-net metric over
/// nets, net splitting on extraction) and by `fgh_graph::CsrGraph`
/// (edge-cut metric, induced-subgraph extraction — cut edges are split
/// away trivially).
pub trait Substrate: Sized {
    /// Incremental cut bookkeeping for a bisection: per-net side pin
    /// counts for hypergraphs, nothing for graphs (gains are recomputed
    /// from the adjacency directly).
    type CutState: Clone + std::fmt::Debug;

    /// Number of vertices.
    fn num_vertices(&self) -> u32;
    /// Weight of vertex `v`.
    fn vertex_weight(&self, v: u32) -> u32;
    /// Sum of vertex weights.
    fn total_vertex_weight(&self) -> u64;
    /// Maximum vertex weight (1 when there are no vertices).
    fn max_vertex_weight(&self) -> u64;
    /// Stored incidences — pins for hypergraphs, directed adjacency
    /// entries for graphs. Only used for instrumentation.
    fn num_incidences(&self) -> u64;
    /// Upper bound on |FM gain| of any single move, for gain-bucket sizing.
    fn max_gain_bound(&self) -> i64;

    /// Builds cut bookkeeping for `side` and returns it with the cut.
    fn cut_state(&self, side: &[u8], arena: &mut LevelArena) -> (Self::CutState, u64);
    /// Returns a cut state's buffers to the arena.
    fn recycle_cut_state(cs: Self::CutState, arena: &mut LevelArena);
    /// FM gain of moving `v` to the opposite side.
    fn gain(&self, cs: &Self::CutState, side: &[u8], v: u32) -> i64;
    /// `true` if `v` touches the cut.
    fn is_boundary(&self, cs: &Self::CutState, side: &[u8], v: u32) -> bool;
    /// Applies the cut/bookkeeping effects of moving `v` to the opposite
    /// side; the caller flips `side[v]` and the side weights afterwards.
    /// When `adjust` is given, it receives `(u, delta)` for every other
    /// vertex whose gain changes (the FM delta-gain updates).
    fn apply_move(
        &self,
        cs: &mut Self::CutState,
        side: &[u8],
        v: u32,
        cut: &mut u64,
        adjust: Option<&mut dyn FnMut(u32, i64)>,
    );

    /// Visits the clustering-score contributions of `u`'s neighbors:
    /// `visit(v, score)` once per shared net of size ≤ `max_net_size`
    /// (hypergraphs) or once per incident edge (graphs, which ignore
    /// `max_net_size` — every edge has two pins).
    fn for_each_scored_neighbor(
        &self,
        u: u32,
        max_net_size: usize,
        visit: &mut dyn FnMut(u32, u64),
    );
    /// Contracts under a clustering: cluster = coarse vertex with summed
    /// weight, degenerate nets/edges dropped, parallel ones merged.
    fn contract(&self, cluster_of: &[u32], num_clusters: u32, arena: &mut LevelArena) -> Self;
    /// Extracts the sub-structure induced by `side[v] == which`, returning
    /// it with the new→old vertex map. `split` enables net splitting
    /// (hypergraphs only; graphs always drop cut edges).
    fn extract_side(&self, side: &[u8], which: u8, split: bool) -> (Self, Vec<u32>);

    /// Full structural self-audit, run by the driver at multilevel
    /// checkpoints when the `paranoid` feature is enabled. The default is
    /// a no-op so lightweight substrates opt in by overriding.
    fn validate_invariants(&self) -> Result<(), InvariantViolation> {
        Ok(())
    }
}

/// Audits `sub` at a named driver checkpoint. Compiled to nothing without
/// the `paranoid` feature; with it, a violation aborts the run — a broken
/// substrate invariant mid-partition is a defect in coarsening/extraction,
/// never a recoverable input condition.
#[inline]
fn paranoid_check<S: Substrate>(sub: &S, checkpoint: &str) {
    if cfg!(feature = "paranoid") {
        if let Err(v) = sub.validate_invariants() {
            panic!("paranoid checkpoint '{checkpoint}': {v}");
        }
    }
}

/// Outcome of [`MultilevelDriver::partition_recursive`].
#[derive(Debug, Clone)]
pub struct RecursiveOutcome {
    /// Per-vertex part assignment in `0..k`.
    pub parts: Vec<u32>,
    /// Sum of the per-bisection cuts over the recursion tree. With net
    /// splitting enabled this equals the connectivity−1 cutsize of
    /// `parts` (eq. 3 of the paper); for graphs it equals the edge cut.
    pub cut_sum: u64,
}

/// The unified multilevel driver: owns the configuration, the scratch
/// arena, and instrumentation for one partitioning run over any
/// [`Substrate`].
#[derive(Debug)]
pub struct MultilevelDriver {
    cfg: PartitionConfig,
    arena: LevelArena,
    stats: EngineStats,
    /// Wall-clock deadline derived from `cfg.budget.max_wall`, armed at
    /// the start of a run (see [`MultilevelDriver::arm_budget`]).
    deadline: Option<std::time::Instant>,
}

impl MultilevelDriver {
    /// A driver with a pooling arena (the default).
    pub fn new(cfg: PartitionConfig) -> Self {
        Self::with_arena(cfg, LevelArena::new())
    }

    /// A driver over a caller-supplied arena — pass
    /// [`LevelArena::disabled`] to reproduce the allocation behavior of
    /// the pre-engine per-level drivers (benchmark ablation).
    pub fn with_arena(cfg: PartitionConfig, arena: LevelArena) -> Self {
        MultilevelDriver {
            cfg,
            arena,
            stats: EngineStats::default(),
            deadline: None,
        }
    }

    /// Starts the wall-clock budget: the deadline is
    /// `now + cfg.budget.max_wall`, measured from this call. Returns
    /// `true` if a deadline was armed (idempotent: re-arming while armed
    /// is a no-op so an outer caller's window covers nested runs).
    pub fn arm_budget(&mut self) -> bool {
        if self.deadline.is_none() {
            if let Some(limit) = self.cfg.budget.max_wall {
                self.deadline = Some(std::time::Instant::now() + limit);
                return true;
            }
        }
        false
    }

    /// Clears the wall-clock deadline.
    pub fn disarm_budget(&mut self) {
        self.deadline = None;
    }

    /// `true` once the armed wall-clock deadline has passed.
    pub fn wall_exhausted(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// FM passes still allowed by `Budget::max_fm_passes`, capped at
    /// `want`; records an `fm_truncations` tick when the cap bites.
    fn fm_pass_allowance(&mut self, want: usize) -> usize {
        match self.cfg.budget.max_fm_passes {
            None => want,
            Some(max) => {
                let remaining = max.saturating_sub(self.stats.fm_passes);
                let allowed = (want as u64).min(remaining) as usize;
                if allowed < want {
                    self.stats.fm_truncations += 1;
                }
                allowed
            }
        }
    }

    /// The configuration this driver runs with.
    pub fn cfg(&self) -> &PartitionConfig {
        &self.cfg
    }

    /// Instrumentation accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The arena's allocation counters.
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.arena.stats()
    }

    /// Bisects `sub` into sides 0/1 with ideal side weights `targets` and
    /// per-bisection imbalance `epsilon`; `fixed[v]` pins vertices to a
    /// side ([`FREE`] = movable). Returns the side assignment and the cut.
    pub fn bisect<S: Substrate>(
        &mut self,
        sub: &S,
        fixed: &[i8],
        targets: [f64; 2],
        epsilon: f64,
        rng: &mut impl Rng,
    ) -> (Vec<u8>, u64) {
        // Degenerate targets: everything belongs on one side.
        if targets[1] <= 0.0 {
            return (vec![0; sub.num_vertices() as usize], 0);
        }
        if targets[0] <= 0.0 {
            return (vec![1; sub.num_vertices() as usize], 0);
        }
        self.stats.bisections += 1;

        // --- Coarsening phase ---
        // Cap cluster weights so no coarse vertex exceeds a fraction of
        // the smaller side's cap; otherwise balanced bisection can become
        // infeasible at the coarsest level.
        let min_target = targets[0].min(targets[1]);
        let weight_cap = (((min_target * (1.0 + epsilon)) / 4.0).ceil().max(1.0) as u64)
            .max(sub.max_vertex_weight());

        let mut levels: Vec<Level<S>> = Vec::new();
        loop {
            let (cur, cur_fixed): (&S, &[i8]) = match levels.last() {
                Some(l) => (&l.coarse, &l.fixed),
                None => (sub, fixed),
            };
            if cur.num_vertices() <= self.cfg.coarsen_to {
                break;
            }
            // Budget checkpoints: stop building levels once the per-
            // bisection level cap or the wall deadline is hit; the run
            // continues from whatever coarseness was reached.
            if let Some(max_levels) = self.cfg.budget.max_levels {
                if levels.len() as u64 >= max_levels {
                    self.stats.level_truncations += 1;
                    break;
                }
            }
            if self.wall_exhausted() {
                self.stats.wall_truncations += 1;
                break;
            }
            let timer = StageTimer::start();
            let next = coarsen_once_in(
                cur,
                cur_fixed,
                self.cfg.coarsening,
                self.cfg.max_net_size_for_matching,
                weight_cap,
                rng,
                &mut self.arena,
            );
            timer.stop(&mut self.stats.coarsen_nanos);
            match next {
                Some(level) => {
                    paranoid_check(&level.coarse, "coarsen.contract");
                    self.stats.levels += 1;
                    self.stats.contracted_incidences += level.coarse.num_incidences();
                    levels.push(level);
                }
                None => break,
            }
        }

        // --- Initial partitioning at the coarsest level ---
        let (coarsest, coarsest_fixed): (&S, &[i8]) = match levels.last() {
            Some(l) => (&l.coarse, &l.fixed),
            None => (sub, fixed),
        };
        let timer = StageTimer::start();
        let mut sides = if self.wall_exhausted() {
            // Out of time: one weight-only split instead of multi-try
            // greedy growing — still balanced, no connectivity work.
            self.stats.wall_truncations += 1;
            let quick = PartitionConfig {
                initial: crate::config::InitialScheme::BinPacking,
                initial_tries: 1,
                fm_passes: 0,
                ..self.cfg.clone()
            };
            initial_best_in(
                coarsest,
                coarsest_fixed,
                targets,
                epsilon,
                &quick,
                rng,
                &mut self.arena,
                &mut self.stats,
            )
        } else {
            initial_best_in(
                coarsest,
                coarsest_fixed,
                targets,
                epsilon,
                &self.cfg,
                rng,
                &mut self.arena,
                &mut self.stats,
            )
        };
        timer.stop(&mut self.stats.initial_nanos);

        // --- Uncoarsening: project and refine at every level ---
        let timer = StageTimer::start();
        for li in (0..levels.len()).rev() {
            let (fine, fine_fixed): (&S, &[i8]) = if li == 0 {
                (sub, fixed)
            } else {
                (&levels[li - 1].coarse, &levels[li - 1].fixed)
            };
            let map = &levels[li].map;
            let nf = fine.num_vertices() as usize;
            let mut fine_sides = self.arena.take_u8(nf, 0);
            for (v, fs) in fine_sides.iter_mut().enumerate() {
                *fs = sides[map[v] as usize];
            }
            self.arena
                .give_u8(std::mem::replace(&mut sides, fine_sides));
            // Budget checkpoint between refinement levels: out of wall
            // time → project only; FM-pass cap → run the remaining
            // allowance.
            let passes = if self.wall_exhausted() {
                self.stats.wall_truncations += 1;
                0
            } else {
                self.fm_pass_allowance(self.cfg.fm_passes)
            };
            let mut st = BisectionState::new_in(
                fine,
                std::mem::take(&mut sides),
                fine_fixed,
                targets,
                epsilon,
                &mut self.arena,
            );
            st.refine_in(
                rng,
                passes,
                self.cfg.fm_early_exit,
                self.cfg.boundary_fm,
                &mut self.arena,
                &mut self.stats,
            );
            sides = st.into_sides_in(&mut self.arena);
        }
        timer.stop(&mut self.stats.refine_nanos);

        // Recycle per-level scratch before computing the final cut.
        for l in levels {
            self.arena.give_u32(l.map);
            self.arena.give_i8(l.fixed);
        }
        let st = BisectionState::new_in(sub, sides, fixed, targets, epsilon, &mut self.arena);
        let cut = st.cut();
        (st.into_sides_in(&mut self.arena), cut)
    }

    /// Recursive-bisection K-way partitioning. `fixed[v]` pins vertex `v`
    /// to an absolute part (`u32::MAX` = free); it must have one entry per
    /// vertex and in-range parts (callers validate). Net splitting /
    /// edge dropping on extraction follows the config.
    pub fn partition_recursive<S: Substrate>(
        &mut self,
        sub: &S,
        k: u32,
        fixed: &[u32],
    ) -> RecursiveOutcome {
        paranoid_check(sub, "recursive.input");
        let n = sub.num_vertices();
        let mut parts = vec![0u32; n as usize];
        let mut cut_sum = 0u64;
        // Arm the wall budget here unless an outer caller (whose window
        // should also cover post-refinement) already did.
        let armed_here = self.arm_budget();
        if k > 1 && n > 0 {
            let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
            let eps = self.cfg.per_level_epsilon(k);
            let ids: Vec<u32> = (0..n).collect();
            self.recurse(
                sub,
                &ids,
                fixed,
                k,
                0,
                eps,
                &mut rng,
                &mut parts,
                &mut cut_sum,
            );
        }
        if armed_here {
            self.disarm_budget();
        }
        RecursiveOutcome { parts, cut_sum }
    }

    /// Recursive worker. `sub` is a sub-structure of the original (nets
    /// already split); `ids[v]` maps its vertices back to original ids;
    /// `fixed` is indexed by *original* vertex id with absolute parts.
    /// Parts `part_lo .. part_lo + k` are assigned into `out`.
    #[allow(clippy::too_many_arguments)]
    fn recurse<S: Substrate>(
        &mut self,
        sub: &S,
        ids: &[u32],
        fixed: &[u32],
        k: u32,
        part_lo: u32,
        eps: f64,
        rng: &mut SmallRng,
        out: &mut [u32],
        cut_sum: &mut u64,
    ) {
        if k == 1 {
            for &orig in ids {
                out[orig as usize] = part_lo;
            }
            return;
        }
        let k0 = k.div_ceil(2);
        let k1 = k - k0;
        let total = sub.total_vertex_weight() as f64;
        let targets = [total * k0 as f64 / k as f64, total * k1 as f64 / k as f64];

        // Translate absolute fixed parts into bisection sides.
        let mut fixed_sides = self.arena.take_i8(0, 0);
        fixed_sides.extend(ids.iter().map(|&orig| {
            let p = fixed[orig as usize];
            if p == u32::MAX {
                FREE
            } else if p < part_lo + k0 {
                debug_assert!(p >= part_lo);
                0
            } else {
                1
            }
        }));

        let (sides, cut) = self.bisect(sub, &fixed_sides, targets, eps, rng);
        self.arena.give_i8(fixed_sides);
        *cut_sum += cut;

        // Extract both halves (net splitting per config) and recurse.
        for (side, (kk, lo)) in [(0u8, (k0, part_lo)), (1u8, (k1, part_lo + k0))] {
            let (child, child_map) = sub.extract_side(&sides, side, self.cfg.net_splitting);
            paranoid_check(&child, "recurse.extract");
            let child_ids: Vec<u32> = child_map.iter().map(|&lv| ids[lv as usize]).collect();
            self.recurse(&child, &child_ids, fixed, kk, lo, eps, rng, out, cut_sum);
        }
    }
}

/// Per-net side pin counts: the hypergraph cut bookkeeping.
#[derive(Debug, Clone)]
pub struct NetSideCounts {
    /// `pc[s][n]` = pins of net `n` on side `s`.
    pub pc: [Vec<u32>; 2],
}

impl Substrate for Hypergraph {
    type CutState = NetSideCounts;

    fn num_vertices(&self) -> u32 {
        Hypergraph::num_vertices(self)
    }

    fn vertex_weight(&self, v: u32) -> u32 {
        Hypergraph::vertex_weight(self, v)
    }

    fn total_vertex_weight(&self) -> u64 {
        Hypergraph::total_vertex_weight(self)
    }

    fn max_vertex_weight(&self) -> u64 {
        self.vertex_weights().iter().copied().max().unwrap_or(1) as u64
    }

    fn num_incidences(&self) -> u64 {
        self.num_pins() as u64
    }

    fn max_gain_bound(&self) -> i64 {
        let mut best = 1i64;
        for v in 0..Hypergraph::num_vertices(self) {
            let s: i64 = self.nets(v).iter().map(|&n| self.net_cost(n) as i64).sum();
            best = best.max(s);
        }
        best
    }

    fn cut_state(&self, side: &[u8], arena: &mut LevelArena) -> (NetSideCounts, u64) {
        let nn = self.num_nets() as usize;
        let mut pc = [arena.take_u32(nn, 0), arena.take_u32(nn, 0)];
        for v in 0..Hypergraph::num_vertices(self) {
            let s = side[v as usize] as usize;
            for &n in self.nets(v) {
                pc[s][n as usize] += 1;
            }
        }
        let mut cut = 0u64;
        for (n, (&p0, &p1)) in pc[0].iter().zip(pc[1].iter()).enumerate() {
            if p0 > 0 && p1 > 0 {
                cut += self.net_cost(n as u32) as u64; // lint: checked-cast — n < num_nets, a u32
            }
        }
        (NetSideCounts { pc }, cut)
    }

    fn recycle_cut_state(cs: NetSideCounts, arena: &mut LevelArena) {
        let [a, b] = cs.pc;
        arena.give_u32(a);
        arena.give_u32(b);
    }

    fn gain(&self, cs: &NetSideCounts, side: &[u8], v: u32) -> i64 {
        let s = side[v as usize] as usize;
        let t = 1 - s;
        let mut g = 0i64;
        for &n in self.nets(v) {
            let c = self.net_cost(n) as i64;
            if cs.pc[s][n as usize] == 1 {
                g += c; // net becomes uncut (or stays internal to t)
            }
            if cs.pc[t][n as usize] == 0 {
                g -= c; // net becomes cut
            }
        }
        g
    }

    fn is_boundary(&self, cs: &NetSideCounts, _side: &[u8], v: u32) -> bool {
        self.nets(v).iter().any(|&n| {
            let ni = n as usize;
            cs.pc[0][ni] > 0 && cs.pc[1][ni] > 0
        })
    }

    fn apply_move(
        &self,
        cs: &mut NetSideCounts,
        side: &[u8],
        v: u32,
        cut: &mut u64,
        adjust: Option<&mut dyn FnMut(u32, i64)>,
    ) {
        let s = side[v as usize] as usize;
        let t = 1 - s;
        if let Some(adjust) = adjust {
            for &n in self.nets(v) {
                let ni = n as usize;
                let c = self.net_cost(n) as i64;
                let (tc, fc) = (cs.pc[t][ni], cs.pc[s][ni]);
                if tc == 0 {
                    // Net becomes cut: every other (free, queued) pin gains +c.
                    *cut += c as u64;
                    for &u in self.pins(n) {
                        if u != v {
                            adjust(u, c);
                        }
                    }
                } else if tc == 1 {
                    // The lone pin on t loses its "uncut by moving" bonus.
                    for &u in self.pins(n) {
                        if u != v && side[u as usize] as usize == t {
                            adjust(u, -c);
                        }
                    }
                }
                let fc_after = fc - 1;
                if fc_after == 0 {
                    // Net becomes internal to t: pins lose the "would cut" malus.
                    *cut -= c as u64;
                    for &u in self.pins(n) {
                        if u != v {
                            adjust(u, -c);
                        }
                    }
                } else if fc_after == 1 {
                    // The lone remaining pin on s gains the uncut bonus.
                    for &u in self.pins(n) {
                        if u != v && side[u as usize] as usize == s {
                            adjust(u, c);
                        }
                    }
                }
                cs.pc[s][ni] -= 1;
                cs.pc[t][ni] += 1;
            }
        } else {
            for &n in self.nets(v) {
                let ni = n as usize;
                let c = self.net_cost(n) as u64;
                if cs.pc[t][ni] == 0 {
                    *cut += c;
                }
                cs.pc[s][ni] -= 1;
                cs.pc[t][ni] += 1;
                if cs.pc[s][ni] == 0 {
                    *cut -= c;
                }
            }
        }
    }

    fn for_each_scored_neighbor(
        &self,
        u: u32,
        max_net_size: usize,
        visit: &mut dyn FnMut(u32, u64),
    ) {
        for &net in self.nets(u) {
            if self.net_size(net) > max_net_size {
                continue;
            }
            let cost = self.net_cost(net) as u64;
            for &v in self.pins(net) {
                if v != u {
                    visit(v, cost);
                }
            }
        }
    }

    // Infallible `expect` below: contraction emits sorted, deduped,
    // in-bounds pin lists with matched pointer arrays, which is exactly
    // what `from_flat_nets` validates.
    #[allow(clippy::expect_used)]
    fn contract(&self, cluster_of: &[u32], num_clusters: u32, arena: &mut LevelArena) -> Self {
        let nc = num_clusters as usize;
        let mut weights64 = arena.take_u64(nc, 0);
        for v in 0..Hypergraph::num_vertices(self) as usize {
            let v32 = v as u32; // lint: checked-cast — v < num_vertices, a u32
            weights64[cluster_of[v] as usize] += Hypergraph::vertex_weight(self, v32) as u64;
        }
        // Cluster weights saturate rather than abort: a u32::MAX-weight
        // coarse vertex only degrades balance quality on absurd inputs.
        let weights: Vec<u32> = weights64
            .iter()
            .map(|&w| u32::try_from(w).unwrap_or(u32::MAX))
            .collect();
        arena.give_u64(weights64);

        // Dedupe pins per net into one flat buffer, dropping nets that
        // collapse below two pins (they can never be cut).
        let mut stamp = arena.take_u32(nc, u32::MAX);
        let mut flat = arena.take_u32(0, 0);
        let mut start = arena.take_u32(0, 0);
        let mut cost = arena.take_u32(0, 0);
        start.push(0);
        for n in 0..self.num_nets() {
            let s = flat.len();
            for &p in self.pins(n) {
                let c = cluster_of[p as usize];
                if stamp[c as usize] != n {
                    stamp[c as usize] = n;
                    flat.push(c);
                }
            }
            if flat.len() - s < 2 {
                flat.truncate(s);
                continue;
            }
            flat[s..].sort_unstable();
            start.push(flat.len() as u32); // lint: checked-cast — pin count <= u32::MAX by substrate contract
            cost.push(self.net_cost(n));
        }
        arena.give_u32(stamp);

        // Merge nets with identical pin sets: sort net ids by pin slice,
        // then fold runs of equal slices (summed costs). No per-net boxes.
        let kept = cost.len();
        let mut order = arena.take_u32(0, 0);
        order.extend(0..kept as u32); // lint: checked-cast — kept <= num_nets, a u32
        let slice_of = |i: u32| &flat[start[i as usize] as usize..start[i as usize + 1] as usize];
        order.sort_unstable_by(|&a, &b| slice_of(a).cmp(slice_of(b)));

        let mut pin_ptr: Vec<usize> = Vec::with_capacity(kept + 1);
        let mut pins: Vec<u32> = Vec::with_capacity(flat.len());
        let mut costs: Vec<u32> = Vec::with_capacity(kept);
        pin_ptr.push(0);
        let mut i = 0usize;
        while i < kept {
            let sl = slice_of(order[i]);
            let mut c = cost[order[i] as usize] as u64;
            let mut j = i + 1;
            while j < kept && slice_of(order[j]) == sl {
                c += cost[order[j] as usize] as u64;
                j += 1;
            }
            pins.extend_from_slice(sl);
            pin_ptr.push(pins.len());
            costs.push(u32::try_from(c).unwrap_or(u32::MAX));
            i = j;
        }
        arena.give_u32(order);
        arena.give_u32(flat);
        arena.give_u32(start);
        arena.give_u32(cost);

        Hypergraph::from_flat_nets(num_clusters, pin_ptr, pins, weights, costs)
            .expect("contraction preserves hypergraph validity")
    }

    // Infallible `expect`: `side` holds only 0/1 by construction, so the
    // 2-way `Partition` is always valid.
    #[allow(clippy::expect_used)]
    fn extract_side(&self, side: &[u8], which: u8, split: bool) -> (Self, Vec<u32>) {
        let partition =
            Partition::new(2, side.iter().map(|&s| s as u32).collect()).expect("sides are 0/1"); // lint: checked-cast — side entries are 0 or 1
        self.extract_part_mode(&partition, which as u32, split) // lint: checked-cast — which is 0 or 1
    }

    fn validate_invariants(&self) -> Result<(), InvariantViolation> {
        Hypergraph::validate_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_hypergraph, two_clusters};
    use fgh_hypergraph::cutsize_connectivity;

    #[test]
    fn driver_bisect_matches_quality_of_direct_path() {
        let hg = two_clusters(200);
        let fixed = vec![FREE; 400];
        let cfg = PartitionConfig {
            coarsen_to: 40,
            ..PartitionConfig::with_seed(5)
        };
        let mut driver = MultilevelDriver::new(cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let (sides, cut) = driver.bisect(&hg, &fixed, [200.0, 200.0], 0.03, &mut rng);
        assert_eq!(cut, 1, "should discover the single-bridge cut");
        let w1 = sides.iter().filter(|&&s| s == 1).count();
        assert!((194..=206).contains(&w1), "balance violated: {w1}/400");
        let st = driver.stats();
        assert!(st.bisections == 1 && st.levels > 0 && st.fm_passes > 0);
    }

    #[test]
    fn arena_reuses_buffers_across_levels() {
        let hg = random_hypergraph(600, 900, 6, 3);
        let mut driver = MultilevelDriver::new(PartitionConfig::with_seed(2));
        let fixed = vec![u32::MAX; 600];
        driver.partition_recursive(&hg, 8, &fixed);
        let a = driver.arena_stats();
        assert!(a.reused > a.fresh, "pool should serve most takes: {a:?}");

        let mut ablation =
            MultilevelDriver::with_arena(PartitionConfig::with_seed(2), LevelArena::disabled());
        ablation.partition_recursive(&hg, 8, &fixed);
        let b = ablation.arena_stats();
        assert_eq!(b.reused, 0);
        assert!(b.fresh > a.fresh, "disabled arena must allocate every take");
    }

    #[test]
    fn cut_sum_equals_connectivity_with_net_splitting() {
        let hg = random_hypergraph(300, 500, 6, 7);
        let fixed = vec![u32::MAX; 300];
        for k in [2u32, 4, 8] {
            let cfg = PartitionConfig {
                kway_refine: false,
                vcycles: 0,
                net_splitting: true,
                ..PartitionConfig::with_seed(k as u64)
            };
            let mut driver = MultilevelDriver::new(cfg);
            let out = driver.partition_recursive(&hg, k, &fixed);
            let p = Partition::new(k, out.parts).unwrap();
            assert_eq!(
                cutsize_connectivity(&hg, &p),
                out.cut_sum,
                "eq. 3 composition failed for k = {k}"
            );
        }
    }

    #[test]
    fn recursive_driver_is_deterministic() {
        let hg = random_hypergraph(250, 400, 5, 9);
        let fixed = vec![u32::MAX; 250];
        let run = || {
            let mut d = MultilevelDriver::new(PartitionConfig::with_seed(11));
            d.partition_recursive(&hg, 4, &fixed)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.parts, b.parts);
        assert_eq!(a.cut_sum, b.cut_sum);
    }

    #[test]
    fn disabled_arena_gives_identical_results() {
        let hg = random_hypergraph(300, 450, 5, 4);
        let fixed = vec![u32::MAX; 300];
        let cfg = PartitionConfig::with_seed(3);
        let mut pooled = MultilevelDriver::new(cfg.clone());
        let mut fresh = MultilevelDriver::with_arena(cfg, LevelArena::disabled());
        let a = pooled.partition_recursive(&hg, 4, &fixed);
        let b = fresh.partition_recursive(&hg, 4, &fixed);
        assert_eq!(a.parts, b.parts, "arena pooling must not change results");
        assert_eq!(a.cut_sum, b.cut_sum);
    }
}
