//! The substrate-generic multilevel engine.
//!
//! Graph and hypergraph partitioning share one skeleton — coarsen by
//! clustering, partition the coarsest level, project and FM-refine back up,
//! recurse for K-way — and differ only in how a cut is counted, how moves
//! change it, and how contraction/extraction rebuild the structure. The
//! [`Substrate`] trait captures exactly those differences; everything else
//! (the FM state machine in [`crate::refine`], the clustering loop in
//! [`crate::coarsen`], the initial-partitioning schemes in
//! [`crate::initial`], and the V-cycle + recursive-bisection control flow
//! here) is written once against the trait.
//!
//! A substrate also declares its index width through [`Substrate::Ix`]:
//! `u32` for everything that fits 32-bit ids (the fast path — half the
//! scratch memory) and `u64` for instances whose vertex/net/pin counts
//! overflow it. The engine's own loops run on `usize` positions and only
//! materialize typed ids where they are stored (maps, gain-bucket links,
//! cut bookkeeping), so one monomorphization per width covers the whole
//! multilevel stack.
//!
//! [`MultilevelDriver`] owns the run: the [`PartitionConfig`], a
//! [`LevelArena`] of recycled scratch buffers, and [`EngineStats`]
//! counters. One driver instance serves a whole K-way run, so every level
//! of every bisection draws its match/map arrays, side vectors, and gain
//! buckets from the same pool. The driver itself is *not* generic — its
//! methods are — so a single driver can serve substrates of both widths.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fgh_hypergraph::{Hypergraph, Partition};
use fgh_invariant::InvariantViolation;
use fgh_sparse::IndexType;
use fgh_trace::{Span, SpanHandle};

use crate::arena::{ArenaIndex, ArenaPool, LevelArena};
use crate::cancel::{CancelToken, SharedDeadline};
use crate::coarsen::{coarsen_once_in, FREE};
use crate::config::PartitionConfig;
use crate::initial::initial_best_in;
use crate::level::{EngineStats, Level, StageTimer};
use crate::refine::BisectionState;

/// The structure a multilevel partitioner runs on: vertices with weights,
/// an incidence structure that defines cut and FM gains, and the
/// contraction/extraction operations of the V-cycle.
///
/// Implemented by [`fgh_hypergraph::Hypergraph`] (cut-net metric over
/// nets, net splitting on extraction) and by `fgh_graph::CsrGraph`
/// (edge-cut metric, induced-subgraph extraction — cut edges are split
/// away trivially), each at both index widths.
pub trait Substrate: Sized {
    /// Incremental cut bookkeeping for a bisection: per-net side pin
    /// counts for hypergraphs, nothing for graphs (gains are recomputed
    /// from the adjacency directly).
    type CutState: Clone + std::fmt::Debug;

    /// Vertex-id width of this substrate. Drives the width of projection
    /// maps, gain-bucket links, and cut bookkeeping throughout the engine.
    type Ix: ArenaIndex;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// Weight of vertex `v`.
    fn vertex_weight(&self, v: Self::Ix) -> u32;
    /// Sum of vertex weights.
    fn total_vertex_weight(&self) -> u64;
    /// Maximum vertex weight (1 when there are no vertices).
    fn max_vertex_weight(&self) -> u64;
    /// Stored incidences — pins for hypergraphs, directed adjacency
    /// entries for graphs. Only used for instrumentation.
    fn num_incidences(&self) -> u64;
    /// Upper bound on |FM gain| of any single move, for gain-bucket sizing.
    fn max_gain_bound(&self) -> i64;
    /// Heap bytes held by this substrate's backing arrays — the input to
    /// the engine's `Budget::max_bytes` accounting.
    fn heap_bytes(&self) -> usize;

    /// Builds cut bookkeeping for `side` and returns it with the cut.
    fn cut_state(&self, side: &[u8], arena: &mut LevelArena) -> (Self::CutState, u64);
    /// Returns a cut state's buffers to the arena.
    fn recycle_cut_state(cs: Self::CutState, arena: &mut LevelArena);
    /// FM gain of moving `v` to the opposite side.
    fn gain(&self, cs: &Self::CutState, side: &[u8], v: Self::Ix) -> i64;
    /// `true` if `v` touches the cut.
    fn is_boundary(&self, cs: &Self::CutState, side: &[u8], v: Self::Ix) -> bool;
    /// Applies the cut/bookkeeping effects of moving `v` to the opposite
    /// side; the caller flips `side[v]` and the side weights afterwards.
    /// Counter-only form — rollbacks and replay paths that do not keep
    /// gain buckets use this cheaper kernel.
    fn apply_move(&self, cs: &mut Self::CutState, side: &[u8], v: Self::Ix, cut: &mut u64);

    /// Like [`Substrate::apply_move`], additionally invoking
    /// `adjust(u, delta)` for every other vertex whose FM gain changes.
    /// The callback is a generic parameter, not a `dyn` object: this is
    /// the FM inner loop, and monomorphizing it lets the gain-bucket
    /// update inline into the pin scan.
    fn apply_move_gains(
        &self,
        cs: &mut Self::CutState,
        side: &[u8],
        v: Self::Ix,
        cut: &mut u64,
        adjust: impl FnMut(Self::Ix, i64),
    );

    /// Visits the clustering-score contributions of `u`'s neighbors:
    /// `visit(v, score)` once per shared net of size ≤ `max_net_size`
    /// (hypergraphs) or once per incident edge (graphs, which ignore
    /// `max_net_size` — every edge has two pins). Generic for the same
    /// reason as [`Substrate::apply_move_gains`]: this is the coarsening
    /// hot loop.
    fn for_each_scored_neighbor(
        &self,
        u: Self::Ix,
        max_net_size: usize,
        visit: impl FnMut(Self::Ix, u64),
    );
    /// Contracts under a clustering: cluster = coarse vertex with summed
    /// weight, degenerate nets/edges dropped, parallel ones merged.
    fn contract(
        &self,
        cluster_of: &[Self::Ix],
        num_clusters: usize,
        arena: &mut LevelArena,
    ) -> Self;
    /// Extracts the sub-structure induced by `side[v] == which`, returning
    /// it with the new→old vertex map. `split` enables net splitting
    /// (hypergraphs only; graphs always drop cut edges).
    fn extract_side(&self, side: &[u8], which: u8, split: bool) -> (Self, Vec<Self::Ix>);

    /// Extracts both sides of a bisection at once, returning the side-0
    /// and side-1 sub-structures with their new→old maps. The default
    /// delegates to two [`Substrate::extract_side`] passes; substrates
    /// override it to build both halves in a *single* pass over the
    /// incidence structure, drawing remap scratch from `arena`. Must
    /// produce exactly what the two `extract_side` calls would.
    fn extract_both(
        &self,
        side: &[u8],
        split: bool,
        arena: &mut LevelArena,
    ) -> [(Self, Vec<Self::Ix>); 2] {
        let _ = arena;
        [
            self.extract_side(side, 0, split),
            self.extract_side(side, 1, split),
        ]
    }

    /// Full structural self-audit, run by the driver at multilevel
    /// checkpoints when the `paranoid` feature is enabled. The default is
    /// a no-op so lightweight substrates opt in by overriding.
    fn validate_invariants(&self) -> Result<(), InvariantViolation> {
        Ok(())
    }
}

/// Audits `sub` at a named driver checkpoint. Compiled to nothing without
/// the `paranoid` feature; with it, a violation aborts the run — a broken
/// substrate invariant mid-partition is a defect in coarsening/extraction,
/// never a recoverable input condition.
#[inline]
fn paranoid_check<S: Substrate>(sub: &S, checkpoint: &str) {
    if cfg!(feature = "paranoid") {
        if let Err(v) = sub.validate_invariants() {
            panic!("paranoid checkpoint '{checkpoint}': {v}");
        }
    }
}

/// Outcome of [`MultilevelDriver::partition_recursive`].
#[derive(Debug, Clone)]
pub struct RecursiveOutcome {
    /// Per-vertex part assignment in `0..k`.
    pub parts: Vec<u32>,
    /// Sum of the per-bisection cuts over the recursion tree. With net
    /// splitting enabled this equals the connectivity−1 cutsize of
    /// `parts` (eq. 3 of the paper); for graphs it equals the edge cut.
    pub cut_sum: u64,
}

/// RNG seed for one node of the recursive-bisection tree, mixed from the
/// run seed and the node's identity. The half-open part range
/// `[part_lo, part_lo + k)` is unique per node, so each node's stream is
/// independent of *traversal order* — the invariant that makes parallel
/// runs bit-identical to serial ones. splitmix64 finalization separates
/// the streams of adjacent nodes.
fn node_seed(seed: u64, part_lo: u32, k: u32) -> u64 {
    let node = ((part_lo as u64) << 32) | k as u64;
    let mut z = seed ^ node.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The unified multilevel driver: owns the configuration, the scratch
/// arena, and instrumentation for one partitioning run over any
/// [`Substrate`].
///
/// Under [`crate::Parallelism::Threads`] / `Auto`, recursive-bisection
/// subtrees fork onto a bounded rayon pool; each fork checks a whole
/// [`LevelArena`] out of a shared [`ArenaPool`] so the multilevel hot
/// loops stay synchronization-free. On drop the driver returns its arena
/// to that pool.
#[derive(Debug)]
pub struct MultilevelDriver {
    cfg: PartitionConfig,
    arena: LevelArena,
    /// Shared arena pool serving forked workers; this driver's own arena
    /// returns here on drop so repeated runs reuse warm buffers.
    pool: Arc<ArenaPool>,
    /// Thread count resolved from `cfg.parallelism`.
    threads: usize,
    stats: EngineStats,
    /// Wall-clock deadline derived from `cfg.budget.max_wall`, armed at
    /// the start of a run (see [`MultilevelDriver::arm_budget`]) and
    /// shared with forked workers.
    deadline: Option<Arc<SharedDeadline>>,
    /// Trace scope this driver records phase spans under. A noop handle
    /// (the default) makes every span site a single branch; see
    /// [`MultilevelDriver::set_trace_parent`].
    span: SpanHandle,
}

impl Drop for MultilevelDriver {
    fn drop(&mut self) {
        // Return the warm arena to the shared pool (disabled arenas are
        // dropped there): forked workers recycle buffers across forks,
        // and a caller holding the pool keeps them across whole runs.
        self.pool.checkin(std::mem::take(&mut self.arena));
    }
}

impl MultilevelDriver {
    /// A driver with a pooling arena (the default).
    pub fn new(cfg: PartitionConfig) -> Self {
        Self::with_arena(cfg, LevelArena::new())
    }

    /// A driver over a caller-supplied arena — pass
    /// [`LevelArena::disabled`] to reproduce the allocation behavior of
    /// the pre-engine per-level drivers (benchmark ablation).
    pub fn with_arena(cfg: PartitionConfig, arena: LevelArena) -> Self {
        Self::assemble(cfg, arena, Arc::new(ArenaPool::new()))
    }

    /// A driver drawing its scratch arena from (and returning it to) a
    /// shared [`ArenaPool`] — what parallel fan-outs use so every
    /// concurrency domain recycles the same warm buffers over time.
    pub fn with_pool(cfg: PartitionConfig, pool: Arc<ArenaPool>) -> Self {
        let arena = pool.checkout();
        Self::assemble(cfg, arena, pool)
    }

    fn assemble(cfg: PartitionConfig, arena: LevelArena, pool: Arc<ArenaPool>) -> Self {
        let threads = cfg.parallelism.resolved();
        MultilevelDriver {
            cfg,
            arena,
            pool,
            threads,
            stats: EngineStats::default(),
            deadline: None,
            span: SpanHandle::noop(),
        }
    }

    /// Attaches this driver to a trace scope: subsequent phase spans
    /// (`bisect[part] → coarsen[level] / initial / refine[level] →
    /// fm-pass[i]`) are recorded as children of `span`. Forked workers
    /// inherit the scope through per-domain child spans, so parallel
    /// traces stitch under the same parent. Requires the `trace` cargo
    /// feature; without it the span sites compile to no-ops and this
    /// setter has no observable effect.
    pub fn set_trace_parent(&mut self, span: SpanHandle) {
        self.span = span;
    }

    /// Opens a child span under this driver's trace scope — a noop span
    /// unless the `trace` feature is on *and* a real scope was attached.
    fn trace_child(&self, name: &'static str, index: Option<u64>) -> Span {
        if cfg!(feature = "trace") {
            match index {
                Some(i) => self.span.child_indexed(name, i),
                None => self.span.child(name),
            }
        } else {
            Span::noop()
        }
    }

    /// A worker for one forked recursion branch: same config, shared
    /// budget deadline and arena pool, fresh stats (merged back at the
    /// join).
    fn fork(&self) -> MultilevelDriver {
        let arena = if self.arena.is_enabled() {
            self.pool.checkout()
        } else {
            LevelArena::disabled()
        };
        MultilevelDriver {
            cfg: self.cfg.clone(),
            arena,
            pool: Arc::clone(&self.pool),
            threads: self.threads,
            stats: EngineStats::default(),
            deadline: self.deadline.clone(),
            span: self.span.clone(),
        }
    }

    /// Starts the wall-clock budget: the deadline is
    /// `now + cfg.budget.max_wall`, measured from this call, and is
    /// shared with every worker forked during the run. Returns `true` if
    /// a deadline was armed (idempotent: re-arming while armed is a no-op
    /// so an outer caller's window covers nested runs).
    pub fn arm_budget(&mut self) -> bool {
        if self.deadline.is_none() {
            if let Some(limit) = self.cfg.budget.max_wall {
                self.deadline = Some(Arc::new(SharedDeadline::new(
                    std::time::Instant::now() + limit,
                )));
                return true;
            }
        }
        false
    }

    /// Clears the wall-clock deadline.
    pub fn disarm_budget(&mut self) {
        self.deadline = None;
    }

    /// `true` once the armed wall-clock deadline has passed (on any
    /// thread of the run).
    pub fn wall_exhausted(&self) -> bool {
        self.deadline.as_ref().is_some_and(|d| d.exhausted())
    }

    /// `true` once the external [`CancelToken`] attached to the config
    /// has been cancelled. Polled at the same multilevel checkpoints as
    /// the wall deadline; always `false` when no token was attached.
    pub fn cancel_requested(&self) -> bool {
        self.cfg
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    /// `true` once the run should stop early for any reason — external
    /// cancellation or the armed wall-clock deadline. Callers layering
    /// post-refinement on top of the engine gate it on this.
    pub fn interrupted(&self) -> bool {
        self.cancel_requested() || self.wall_exhausted()
    }

    /// Interrupt checkpoint: polls cancellation and the wall deadline,
    /// recording the matching truncation counter when one has tripped.
    /// Cancellation wins the attribution when both have — a cancelled run
    /// must be reported as cancelled, not as a budget accident.
    fn interrupt_checkpoint(&mut self) -> bool {
        if self.cancel_requested() {
            self.stats.cancel_truncations += 1;
            true
        } else if self.wall_exhausted() {
            self.stats.wall_truncations += 1;
            true
        } else {
            false
        }
    }

    /// FM passes still allowed by `Budget::max_fm_passes`, capped at
    /// `want`; records an `fm_truncations` tick when the cap bites.
    fn fm_pass_allowance(&mut self, want: usize) -> usize {
        match self.cfg.budget.max_fm_passes {
            None => want,
            Some(max) => {
                let remaining = max.saturating_sub(self.stats.fm_passes);
                let allowed = (want as u64).min(remaining) as usize;
                if allowed < want {
                    self.stats.fm_truncations += 1;
                }
                allowed
            }
        }
    }

    /// The configuration this driver runs with.
    pub fn cfg(&self) -> &PartitionConfig {
        &self.cfg
    }

    /// Instrumentation accumulated so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The arena's allocation counters.
    pub fn arena_stats(&self) -> crate::arena::ArenaStats {
        self.arena.stats()
    }

    /// Bisects `sub` into sides 0/1 with ideal side weights `targets` and
    /// per-bisection imbalance `epsilon`; `fixed[v]` pins vertices to a
    /// side ([`FREE`] = movable). Returns the side assignment and the cut.
    pub fn bisect<S: Substrate>(
        &mut self,
        sub: &S,
        fixed: &[i8],
        targets: [f64; 2],
        epsilon: f64,
        rng: &mut impl Rng,
    ) -> (Vec<u8>, u64) {
        // No per-vertex coordinates at this entry point: the geometric
        // initial scheme falls back to GHG (see `initial_best_in`).
        self.bisect_with_coords(sub, fixed, targets, epsilon, rng, None)
    }

    /// [`Engine::bisect`] with optional per-vertex coordinates (indexed
    /// by `sub`'s local vertex ids) for the geometric initial scheme.
    /// The recursion builds these from [`PartitionConfig::coords`] via
    /// its original-id maps; coordinates are projected level by level
    /// through coarsening so the coarsest substrate sees centroids.
    fn bisect_with_coords<S: Substrate>(
        &mut self,
        sub: &S,
        fixed: &[i8],
        targets: [f64; 2],
        epsilon: f64,
        rng: &mut impl Rng,
        coords: Option<&[(f32, f32)]>,
    ) -> (Vec<u8>, u64) {
        // Degenerate targets: everything belongs on one side.
        if targets[1] <= 0.0 {
            return (vec![0; sub.num_vertices()], 0);
        }
        if targets[0] <= 0.0 {
            return (vec![1; sub.num_vertices()], 0);
        }
        self.stats.bisections += 1;

        // --- Coarsening phase ---
        // Cap cluster weights so no coarse vertex exceeds a fraction of
        // the smaller side's cap; otherwise balanced bisection can become
        // infeasible at the coarsest level.
        let min_target = targets[0].min(targets[1]);
        let weight_cap = (((min_target * (1.0 + epsilon)) / 4.0).ceil().max(1.0) as u64)
            .max(sub.max_vertex_weight());

        let mut levels: Vec<Level<S>> = Vec::new();
        loop {
            let (cur, cur_fixed): (&S, &[i8]) = match levels.last() {
                Some(l) => (&l.coarse, &l.fixed),
                None => (sub, fixed),
            };
            if cur.num_vertices() <= self.cfg.coarsen_to as usize {
                break;
            }
            // Budget checkpoints: stop building levels once the per-
            // bisection level cap, the wall deadline / cancel token, or
            // the byte cap is hit; the run continues from whatever
            // coarseness was reached.
            if let Some(max_levels) = self.cfg.budget.max_levels {
                if levels.len() as u64 >= max_levels {
                    self.stats.level_truncations += 1;
                    break;
                }
            }
            if self.interrupt_checkpoint() {
                break;
            }
            if let Some(max_bytes) = self.cfg.budget.max_bytes {
                // Everything the multilevel state holds right now: the
                // input structure, every contracted level (substrate +
                // projection map), and the arena's idle pools. Honored to
                // the granularity of one level, like the wall checkpoint.
                let held = sub.heap_bytes()
                    + levels.iter().map(Level::heap_bytes).sum::<usize>()
                    + self.arena.heap_bytes();
                if held > max_bytes {
                    self.stats.byte_truncations += 1;
                    break;
                }
            }
            let cspan = self.trace_child("coarsen", Some(levels.len() as u64));
            let timer = StageTimer::start();
            let next = coarsen_once_in(
                cur,
                cur_fixed,
                self.cfg.coarsening,
                self.cfg.max_net_size_for_matching,
                weight_cap,
                rng,
                &mut self.arena,
            );
            timer.stop(&mut self.stats.coarsen_nanos);
            match next {
                Some(level) => {
                    paranoid_check(&level.coarse, "coarsen.contract");
                    self.stats.levels += 1;
                    self.stats.contracted_incidences += level.coarse.num_incidences();
                    if cspan.is_enabled() {
                        cspan.counter("vertices", level.coarse.num_vertices() as u64);
                        cspan.counter("incidences", level.coarse.num_incidences());
                    }
                    levels.push(level);
                }
                None => break,
            }
        }

        // --- Initial partitioning at the coarsest level ---
        let (coarsest, coarsest_fixed): (&S, &[i8]) = match levels.last() {
            Some(l) => (&l.coarse, &l.fixed),
            None => (sub, fixed),
        };
        // Project coordinates down the level stack by weighted centroid
        // so the geometric scheme sees the contracted geometry. Only runs
        // when the recursion attached coordinates, i.e. the geometric /
        // auto scheme is active — the default path never allocates here.
        let coarsest_coords: Option<Vec<(f32, f32)>> = coords.map(|top| {
            let mut cur = top.to_vec();
            for li in 0..levels.len() {
                let fine: &S = if li == 0 { sub } else { &levels[li - 1].coarse };
                cur = crate::geometric::project_centroids(
                    fine,
                    &levels[li].map,
                    levels[li].coarse.num_vertices(),
                    &cur,
                );
            }
            cur
        });
        let ispan = self.trace_child("initial", None);
        let timer = StageTimer::start();
        let mut sides = if self.interrupt_checkpoint() {
            // Out of time or cancelled: one weight-only split instead of
            // multi-try greedy growing — still balanced, no connectivity
            // work.
            let quick = PartitionConfig {
                initial: crate::config::InitialScheme::BinPacking,
                initial_tries: 1,
                fm_passes: 0,
                ..self.cfg.clone()
            };
            initial_best_in(
                coarsest,
                coarsest_fixed,
                targets,
                epsilon,
                &quick,
                None,
                rng,
                &mut self.arena,
                &mut self.stats,
            )
        } else {
            initial_best_in(
                coarsest,
                coarsest_fixed,
                targets,
                epsilon,
                &self.cfg,
                coarsest_coords.as_deref(),
                rng,
                &mut self.arena,
                &mut self.stats,
            )
        };
        timer.stop(&mut self.stats.initial_nanos);
        if ispan.is_enabled() {
            ispan.counter("vertices", coarsest.num_vertices() as u64);
        }
        drop(ispan);

        // --- Uncoarsening: project and refine at every level ---
        let timer = StageTimer::start();
        for li in (0..levels.len()).rev() {
            let (fine, fine_fixed): (&S, &[i8]) = if li == 0 {
                (sub, fixed)
            } else {
                (&levels[li - 1].coarse, &levels[li - 1].fixed)
            };
            let map = &levels[li].map;
            let nf = fine.num_vertices();
            let mut fine_sides = self.arena.take_u8(nf, 0);
            for (v, fs) in fine_sides.iter_mut().enumerate() {
                *fs = sides[map[v].index()];
            }
            self.arena
                .give_u8(std::mem::replace(&mut sides, fine_sides));
            // Budget checkpoint between refinement levels: out of wall
            // time or cancelled → project only; FM-pass cap → run the
            // remaining allowance.
            let passes = if self.interrupt_checkpoint() {
                0
            } else {
                self.fm_pass_allowance(self.cfg.fm_passes)
            };
            let rspan = self.trace_child("refine", Some(li as u64));
            let mut st = BisectionState::new_in(
                fine,
                std::mem::take(&mut sides),
                fine_fixed,
                targets,
                epsilon,
                &mut self.arena,
            );
            st.refine_in(
                rng,
                passes,
                self.cfg.fm_early_exit,
                self.cfg.boundary_fm,
                &mut self.arena,
                &mut self.stats,
                &rspan.handle(),
            );
            sides = st.into_sides_in(&mut self.arena);
        }
        timer.stop(&mut self.stats.refine_nanos);

        // Recycle per-level scratch before computing the final cut.
        for l in levels {
            S::Ix::give_ids(&mut self.arena, l.map);
            self.arena.give_i8(l.fixed);
        }
        let st = BisectionState::new_in(sub, sides, fixed, targets, epsilon, &mut self.arena);
        let cut = st.cut();
        (st.into_sides_in(&mut self.arena), cut)
    }

    /// Recursive-bisection K-way partitioning. `fixed[v]` pins vertex `v`
    /// to an absolute part (`u32::MAX` = free); it must have one entry per
    /// vertex and in-range parts (callers validate). Net splitting /
    /// edge dropping on extraction follows the config.
    ///
    /// Under a parallel [`crate::Parallelism`] setting this builds a
    /// fork-join pool and runs independent subtrees concurrently; results
    /// are bit-identical to a serial run (see [`node_seed`]). When the
    /// caller is already inside a pool (a multi-seed fan-out), no nested
    /// pool is built — subtree forks draw from the outer pool's threads.
    pub fn partition_recursive<S: Substrate + Send + Sync>(
        &mut self,
        sub: &S,
        k: u32,
        fixed: &[u32],
    ) -> RecursiveOutcome {
        paranoid_check(sub, "recursive.input");
        let n = sub.num_vertices();
        let mut parts = vec![0u32; n];
        let mut cut_sum = 0u64;
        // Arm the wall budget here unless an outer caller (whose window
        // should also cover post-refinement) already did.
        let armed_here = self.arm_budget();
        if k > 1 && n > 0 {
            let eps = self.cfg.per_level_epsilon(k);
            let mut ids = S::Ix::take_ids(&mut self.arena, 0, S::Ix::ZERO);
            ids.extend((0..n).map(S::Ix::from_index));
            let mut leaves: Vec<(u32, Vec<S::Ix>)> = Vec::new();
            let pool = (self.threads > 1 && rayon::current_thread_index().is_none())
                .then(|| {
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(self.threads)
                        .build()
                        .ok()
                })
                .flatten();
            match pool {
                Some(pool) => {
                    let (l, c) = pool.install(|| {
                        let mut leaves = Vec::new();
                        let mut cut = 0u64;
                        self.recurse(sub, ids, fixed, k, 0, eps, &mut leaves, &mut cut);
                        (leaves, cut)
                    });
                    leaves = l;
                    cut_sum = c;
                }
                None => self.recurse(sub, ids, fixed, k, 0, eps, &mut leaves, &mut cut_sum),
            }
            for (part, leaf_ids) in leaves {
                for &orig in &leaf_ids {
                    parts[orig.index()] = part;
                }
                S::Ix::give_ids(&mut self.arena, leaf_ids);
            }
        }
        if armed_here {
            self.disarm_budget();
        }
        RecursiveOutcome { parts, cut_sum }
    }

    /// Recursive worker. `sub` is a sub-structure of the original (nets
    /// already split); `ids[v]` maps its vertices back to original ids;
    /// `fixed` is indexed by *original* vertex id with absolute parts.
    /// Finished `(part, original-ids)` leaves accumulate into `leaves`
    /// (each branch owns its own sink, so forked subtrees never write
    /// into shared output).
    #[allow(clippy::too_many_arguments)]
    fn recurse<S: Substrate + Send + Sync>(
        &mut self,
        sub: &S,
        ids: Vec<S::Ix>,
        fixed: &[u32],
        k: u32,
        part_lo: u32,
        eps: f64,
        leaves: &mut Vec<(u32, Vec<S::Ix>)>,
        cut_sum: &mut u64,
    ) {
        if k == 1 {
            leaves.push((part_lo, ids));
            return;
        }
        let k0 = k.div_ceil(2);
        let k1 = k - k0;
        let total = sub.total_vertex_weight() as f64;
        let targets = [total * k0 as f64 / k as f64, total * k1 as f64 / k as f64];
        let mut rng = SmallRng::seed_from_u64(node_seed(self.cfg.seed, part_lo, k));

        // Translate absolute fixed parts into bisection sides.
        let mut fixed_sides = self.arena.take_i8(0, 0);
        fixed_sides.extend(ids.iter().map(|&orig| {
            let p = fixed[orig.index()];
            if p == u32::MAX {
                FREE
            } else if p < part_lo + k0 {
                debug_assert!(p >= part_lo);
                0
            } else {
                1
            }
        }));

        // When the geometric / auto scheme is active, translate the
        // caller's original-id coordinate array into this node's local
        // vertex space. A too-short array (caller error) degrades to the
        // GHG fallback rather than panicking mid-recursion.
        let local_coords: Option<Vec<(f32, f32)>> = match (self.cfg.initial, &self.cfg.coords) {
            (
                crate::config::InitialScheme::Geometric | crate::config::InitialScheme::Auto,
                Some(c),
            ) if c.len() >= fixed.len() => Some(ids.iter().map(|&orig| c[orig.index()]).collect()),
            _ => None,
        };

        // Phase spans of this bisection nest under a `bisect[part_lo]`
        // span; `part_lo` is the node's identity, so serial and parallel
        // traversals produce the same tree.
        let bspan = self.trace_child("bisect", Some(part_lo as u64));
        let saved_scope = std::mem::replace(&mut self.span, bspan.handle());
        let (sides, cut) = self.bisect_with_coords(
            sub,
            &fixed_sides,
            targets,
            eps,
            &mut rng,
            local_coords.as_deref(),
        );
        self.span = saved_scope;
        if bspan.is_enabled() {
            bspan.counter("vertices", sub.num_vertices() as u64);
            bspan.counter("cut", cut);
        }
        drop(bspan);
        self.arena.give_i8(fixed_sides);
        *cut_sum += cut;

        // Extract both halves in one pass (net splitting per config).
        let [(child0, map0), (child1, map1)] =
            sub.extract_both(&sides, self.cfg.net_splitting, &mut self.arena);
        paranoid_check(&child0, "recurse.extract");
        paranoid_check(&child1, "recurse.extract");
        self.arena.give_u8(sides);
        let mut ids0 = S::Ix::take_ids(&mut self.arena, 0, S::Ix::ZERO);
        ids0.extend(map0.iter().map(|&lv| ids[lv.index()]));
        let mut ids1 = S::Ix::take_ids(&mut self.arena, 0, S::Ix::ZERO);
        ids1.extend(map1.iter().map(|&lv| ids[lv.index()]));
        S::Ix::give_ids(&mut self.arena, map0);
        S::Ix::give_ids(&mut self.arena, map1);
        S::Ix::give_ids(&mut self.arena, ids);

        // Fork only when both halves carry further bisection work and a
        // pool is installed; the right branch runs on a forked worker
        // whose stats merge back at the join. A trivial (k == 1) half is
        // a leaf push — never worth a fork.
        if k0 > 1 && k1 > 1 && self.threads > 1 && rayon::current_thread_index().is_some() {
            let mut worker = self.fork();
            // The forked branch records under a `domain[first-part]` child
            // span whose guard rides into the closure, so its subtree
            // stitches deterministically under this driver's scope.
            let dspan = self.trace_child("domain", Some((part_lo + k0) as u64));
            worker.span = dspan.handle();
            let ((), (mut right_leaves, right_cut, worker)) = rayon::join(
                || self.recurse(&child0, ids0, fixed, k0, part_lo, eps, leaves, cut_sum),
                move || {
                    let _domain = dspan;
                    let mut right_leaves = Vec::new();
                    let mut right_cut = 0u64;
                    worker.recurse(
                        &child1,
                        ids1,
                        fixed,
                        k1,
                        part_lo + k0,
                        eps,
                        &mut right_leaves,
                        &mut right_cut,
                    );
                    (right_leaves, right_cut, worker)
                },
            );
            self.stats.parallel_forks += 1;
            self.stats.merge(&worker.stats);
            leaves.append(&mut right_leaves);
            *cut_sum += right_cut;
        } else {
            self.recurse(&child0, ids0, fixed, k0, part_lo, eps, leaves, cut_sum);
            self.recurse(&child1, ids1, fixed, k1, part_lo + k0, eps, leaves, cut_sum);
        }
    }
}

/// Per-net side pin counts: the hypergraph cut bookkeeping. Counts are
/// stored at the substrate's index width — a count never exceeds the net's
/// pin total, which fits `I` by construction — so the buffers recycle
/// through the same width-matched arena pools as every other id array.
#[derive(Debug, Clone)]
pub struct NetSideCounts<I: IndexType = u32> {
    /// `pc[s][n]` = pins of net `n` on side `s`.
    pub pc: [Vec<I>; 2],
}

impl<I: ArenaIndex> Substrate for Hypergraph<I> {
    type CutState = NetSideCounts<I>;
    type Ix = I;

    fn num_vertices(&self) -> usize {
        Hypergraph::num_vertices(self).index()
    }

    fn vertex_weight(&self, v: I) -> u32 {
        Hypergraph::vertex_weight(self, v)
    }

    fn total_vertex_weight(&self) -> u64 {
        Hypergraph::total_vertex_weight(self)
    }

    fn max_vertex_weight(&self) -> u64 {
        self.vertex_weights().iter().copied().max().unwrap_or(1) as u64
    }

    fn num_incidences(&self) -> u64 {
        self.num_pins() as u64
    }

    fn max_gain_bound(&self) -> i64 {
        let mut best = 1i64;
        for v in 0..Hypergraph::num_vertices(self).index() {
            let s: i64 = self
                .nets(I::from_index(v))
                .iter()
                .map(|&n| self.net_cost(n) as i64)
                .sum();
            best = best.max(s);
        }
        best
    }

    fn heap_bytes(&self) -> usize {
        Hypergraph::heap_bytes(self)
    }

    fn cut_state(&self, side: &[u8], arena: &mut LevelArena) -> (NetSideCounts<I>, u64) {
        let nn = self.num_nets().index();
        let mut pc = [
            I::take_ids(arena, nn, I::ZERO),
            I::take_ids(arena, nn, I::ZERO),
        ];
        for (v, &sv) in side.iter().enumerate() {
            let s = sv as usize;
            for &n in self.nets(I::from_index(v)) {
                let ni = n.index();
                pc[s][ni] = I::from_index(pc[s][ni].index() + 1);
            }
        }
        let mut cut = 0u64;
        for (n, (&p0, &p1)) in pc[0].iter().zip(pc[1].iter()).enumerate() {
            if p0 > I::ZERO && p1 > I::ZERO {
                cut += self.net_cost(I::from_index(n)) as u64;
            }
        }
        (NetSideCounts { pc }, cut)
    }

    fn recycle_cut_state(cs: NetSideCounts<I>, arena: &mut LevelArena) {
        let [a, b] = cs.pc;
        I::give_ids(arena, a);
        I::give_ids(arena, b);
    }

    fn gain(&self, cs: &NetSideCounts<I>, side: &[u8], v: I) -> i64 {
        let s = side[v.index()] as usize;
        let t = 1 - s;
        let mut g = 0i64;
        for &n in self.nets(v) {
            let c = self.net_cost(n) as i64;
            if cs.pc[s][n.index()] == I::ONE {
                g += c; // net becomes uncut (or stays internal to t)
            }
            if cs.pc[t][n.index()] == I::ZERO {
                g -= c; // net becomes cut
            }
        }
        g
    }

    fn is_boundary(&self, cs: &NetSideCounts<I>, _side: &[u8], v: I) -> bool {
        self.nets(v).iter().any(|&n| {
            let ni = n.index();
            cs.pc[0][ni] > I::ZERO && cs.pc[1][ni] > I::ZERO
        })
    }

    fn apply_move(&self, cs: &mut NetSideCounts<I>, side: &[u8], v: I, cut: &mut u64) {
        let s = side[v.index()] as usize;
        let t = 1 - s;
        for &n in self.nets(v) {
            let ni = n.index();
            let c = self.net_cost(n) as u64;
            if cs.pc[t][ni] == I::ZERO {
                *cut += c;
            }
            cs.pc[s][ni] = I::from_index(cs.pc[s][ni].index() - 1);
            cs.pc[t][ni] = I::from_index(cs.pc[t][ni].index() + 1);
            if cs.pc[s][ni] == I::ZERO {
                *cut -= c;
            }
        }
    }

    fn apply_move_gains(
        &self,
        cs: &mut NetSideCounts<I>,
        side: &[u8],
        v: I,
        cut: &mut u64,
        mut adjust: impl FnMut(I, i64),
    ) {
        let s = side[v.index()] as usize;
        let t = 1 - s;
        {
            for &n in self.nets(v) {
                let ni = n.index();
                let c = self.net_cost(n) as i64;
                let (tc, fc) = (cs.pc[t][ni], cs.pc[s][ni]);
                let fc_after = fc.index() - 1;
                // The four λ transitions fold into one signed delta per
                // side, so the pins are scanned once with a table lookup
                // instead of once per firing branch. `tbl[x]` is the gain
                // delta for every other pin currently on side `x`.
                let mut tbl = [0i64; 2];
                if tc == I::ZERO {
                    // Net becomes cut: every other pin gains +c.
                    *cut += c as u64;
                    tbl = [c, c];
                } else if tc == I::ONE {
                    // The lone pin on t loses its "uncut by moving" bonus.
                    tbl[t] -= c;
                }
                if fc_after == 0 {
                    // Net becomes internal to t: pins lose the cut malus.
                    *cut -= c as u64;
                    tbl[0] -= c;
                    tbl[1] -= c;
                } else if fc_after == 1 {
                    // The lone remaining pin on s gains the uncut bonus.
                    tbl[s] += c;
                }
                if tc == I::ONE && fc_after == 1 {
                    // Exactly 3 pins, one left per side after the move.
                    // The historical kernel adjusted the t-pin (−c) before
                    // the s-pin (+c); preserve that order, since bucket
                    // LIFO position breaks gain ties (golden_cutsize.rs).
                    for &u in self.pins(n) {
                        if u != v && side[u.index()] as usize == t {
                            adjust(u, -c);
                        }
                    }
                    for &u in self.pins(n) {
                        if u != v && side[u.index()] as usize == s {
                            adjust(u, c);
                        }
                    }
                } else if tc == I::ONE && fc_after == 0 {
                    // A cut 2-pin net becomes internal to t. The lone
                    // t-pin historically received two −c adjusts, and the
                    // intermediate bucket hop re-raises the gain buckets'
                    // cached max, re-exposing higher-gain vertices that an
                    // earlier pop skipped as inadmissible. A coalesced
                    // −2c skips that bucket, observably changing pop
                    // order — keep the two-step form.
                    for &u in self.pins(n) {
                        if u != v {
                            adjust(u, -c);
                            adjust(u, -c);
                        }
                    }
                } else if tbl != [0, 0] {
                    // Every other multi-branch combination is confined to
                    // a 2-pin net (single adjusted pin) or applies one
                    // uniform delta, so a single in-pin-order scan emits
                    // the same bucket insertion sequence as the branchy
                    // original.
                    for &u in self.pins(n) {
                        let d = tbl[side[u.index()] as usize];
                        if u != v && d != 0 {
                            adjust(u, d);
                        }
                    }
                }
                cs.pc[s][ni] = I::from_index(fc_after);
                cs.pc[t][ni] = I::from_index(tc.index() + 1);
            }
        }
    }

    fn for_each_scored_neighbor(&self, u: I, max_net_size: usize, mut visit: impl FnMut(I, u64)) {
        for &net in self.nets(u) {
            if self.net_size(net) > max_net_size {
                continue;
            }
            let cost = self.net_cost(net) as u64;
            for &v in self.pins(net) {
                if v != u {
                    visit(v, cost);
                }
            }
        }
    }

    // Infallible `expect` below: contraction emits sorted, deduped,
    // in-bounds pin lists with matched pointer arrays, which is exactly
    // what `from_flat_nets` validates.
    #[allow(clippy::expect_used)]
    fn contract(&self, cluster_of: &[I], num_clusters: usize, arena: &mut LevelArena) -> Self {
        let nc = num_clusters;
        let mut weights64 = arena.take_u64(nc, 0);
        for (v, &c) in cluster_of.iter().enumerate() {
            weights64[c.index()] += Hypergraph::vertex_weight(self, I::from_index(v)) as u64;
        }
        // Cluster weights saturate rather than abort: a u32::MAX-weight
        // coarse vertex only degrades balance quality on absurd inputs.
        let weights: Vec<u32> = weights64
            .iter()
            .map(|&w| u32::try_from(w).unwrap_or(u32::MAX))
            .collect();
        arena.give_u64(weights64);

        // Dedupe pins per net into one flat buffer, dropping nets that
        // collapse below two pins (they can never be cut). Stamps hold
        // the current net id; `I::MAX` (never a valid id) is the unseen
        // marker.
        let mut stamp = I::take_ids(arena, nc, I::MAX);
        let mut flat = I::take_ids(arena, 0, I::ZERO);
        let mut start = I::take_ids(arena, 0, I::ZERO);
        let mut cost = arena.take_u32(0, 0);
        start.push(I::ZERO);
        for n in 0..self.num_nets().index() {
            let n = I::from_index(n);
            let s = flat.len();
            for &p in self.pins(n) {
                let c = cluster_of[p.index()];
                if stamp[c.index()] != n {
                    stamp[c.index()] = n;
                    flat.push(c);
                }
            }
            if flat.len() - s < 2 {
                flat.truncate(s);
                continue;
            }
            flat[s..].sort_unstable();
            start.push(I::from_index(flat.len()));
            cost.push(self.net_cost(n));
        }
        I::give_ids(arena, stamp);

        // Merge nets with identical pin sets: sort net ids by pin slice,
        // then fold runs of equal slices (summed costs). No per-net boxes.
        let kept = cost.len();
        let mut order = I::take_ids(arena, 0, I::ZERO);
        order.extend((0..kept).map(I::from_index));
        let slice_of = |i: I| &flat[start[i.index()].index()..start[i.index() + 1].index()];
        order.sort_unstable_by(|&a, &b| slice_of(a).cmp(slice_of(b)));

        let mut pin_ptr: Vec<usize> = Vec::with_capacity(kept + 1);
        let mut pins: Vec<I> = Vec::with_capacity(flat.len());
        let mut costs: Vec<u32> = Vec::with_capacity(kept);
        pin_ptr.push(0);
        let mut i = 0usize;
        while i < kept {
            let sl = slice_of(order[i]);
            let mut c = cost[order[i].index()] as u64;
            let mut j = i + 1;
            while j < kept && slice_of(order[j]) == sl {
                c += cost[order[j].index()] as u64;
                j += 1;
            }
            pins.extend_from_slice(sl);
            pin_ptr.push(pins.len());
            costs.push(u32::try_from(c).unwrap_or(u32::MAX));
            i = j;
        }
        I::give_ids(arena, order);
        I::give_ids(arena, flat);
        I::give_ids(arena, start);
        arena.give_u32(cost);

        Hypergraph::from_flat_nets(I::from_index(num_clusters), pin_ptr, pins, weights, costs)
            .expect("contraction preserves hypergraph validity")
    }

    // Infallible `expect`: `side` holds only 0/1 by construction, so the
    // 2-way `Partition` is always valid.
    #[allow(clippy::expect_used)]
    fn extract_side(&self, side: &[u8], which: u8, split: bool) -> (Self, Vec<I>) {
        let partition =
            Partition::new(2, side.iter().map(|&s| s as u32).collect()).expect("sides are 0/1"); // lint: checked-cast — side entries are 0 or 1
        self.extract_part_mode(&partition, which as u32, split) // lint: checked-cast — which is 0 or 1
    }

    // Infallible `expect`s: extraction renumbers pins into `0..map.len()`
    // with sorted, deduped, in-bounds nets — exactly what
    // `from_flat_nets` validates.
    #[allow(clippy::expect_used)]
    fn extract_both(
        &self,
        side: &[u8],
        split: bool,
        arena: &mut LevelArena,
    ) -> [(Self, Vec<I>); 2] {
        let n = Hypergraph::num_vertices(self).index();
        // One remap pass: new_id[v] = rank of v within its side. New ids
        // rise with old ids, so remapped pins inherit the pin sort order.
        let mut new_id = I::take_ids(arena, n, I::ZERO);
        let mut maps: [Vec<I>; 2] = [Vec::new(), Vec::new()];
        for v in 0..n {
            let s = side[v] as usize;
            new_id[v] = I::from_index(maps[s].len());
            maps[s].push(I::from_index(v));
        }

        // One pass over the pins: route each pin into its side's flat
        // CSR, then keep or revert the net per side. Split mode keeps any
        // remainder of >= 2 pins; cut-net mode keeps a net only on the
        // side that received *all* of its pins.
        let mut pin_ptr = [vec![0usize], vec![0usize]];
        let mut pins: [Vec<I>; 2] = [Vec::new(), Vec::new()];
        let mut costs: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        for net in 0..self.num_nets().index() {
            let net = I::from_index(net);
            let all = self.pins(net);
            let before = [pins[0].len(), pins[1].len()];
            for &p in all {
                let s = side[p.index()] as usize;
                pins[s].push(new_id[p.index()]);
            }
            let cost = self.net_cost(net);
            for s in 0..2 {
                let cnt = pins[s].len() - before[s];
                if cnt >= 2 && (split || cnt == all.len()) {
                    pin_ptr[s].push(pins[s].len());
                    costs[s].push(cost);
                } else {
                    pins[s].truncate(before[s]);
                }
            }
        }
        I::give_ids(arena, new_id);

        let [map0, map1] = maps;
        let [ptr0, ptr1] = pin_ptr;
        let [pins0, pins1] = pins;
        let [costs0, costs1] = costs;
        let weights_of = |map: &[I]| -> Vec<u32> {
            map.iter()
                .map(|&v| Hypergraph::vertex_weight(self, v))
                .collect()
        };
        let w0 = weights_of(&map0);
        let w1 = weights_of(&map1);
        let nv0 = I::from_index(map0.len());
        let nv1 = I::from_index(map1.len());
        let h0 = Hypergraph::from_flat_nets(nv0, ptr0, pins0, w0, costs0)
            .expect("extraction preserves hypergraph validity");
        let h1 = Hypergraph::from_flat_nets(nv1, ptr1, pins1, w1, costs1)
            .expect("extraction preserves hypergraph validity");
        [(h0, map0), (h1, map1)]
    }

    fn validate_invariants(&self) -> Result<(), InvariantViolation> {
        Hypergraph::validate_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Budget;
    use crate::testutil::{random_hypergraph, two_clusters};
    use fgh_hypergraph::cutsize_connectivity;

    /// Rebuilds a `u32` hypergraph at `u64` width with identical content.
    fn widen(hg: &Hypergraph) -> Hypergraph<u64> {
        let nets: Vec<Vec<u64>> = (0..hg.num_nets())
            .map(|n| hg.pins(n).iter().map(|&p| p as u64).collect())
            .collect();
        Hypergraph::<u64>::from_nets_weighted(
            hg.num_vertices() as u64,
            &nets,
            hg.vertex_weights().to_vec(),
            hg.net_costs().to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn driver_bisect_matches_quality_of_direct_path() {
        let hg = two_clusters(200);
        let fixed = vec![FREE; 400];
        let cfg = PartitionConfig {
            coarsen_to: 40,
            ..PartitionConfig::with_seed(5)
        };
        let mut driver = MultilevelDriver::new(cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let (sides, cut) = driver.bisect(&hg, &fixed, [200.0, 200.0], 0.03, &mut rng);
        assert_eq!(cut, 1, "should discover the single-bridge cut");
        let w1 = sides.iter().filter(|&&s| s == 1).count();
        assert!((194..=206).contains(&w1), "balance violated: {w1}/400");
        let st = driver.stats();
        assert!(st.bisections == 1 && st.levels > 0 && st.fm_passes > 0);
    }

    #[test]
    fn arena_reuses_buffers_across_levels() {
        let hg = random_hypergraph(600, 900, 6, 3);
        let mut driver = MultilevelDriver::new(PartitionConfig::with_seed(2));
        let fixed = vec![u32::MAX; 600];
        driver.partition_recursive(&hg, 8, &fixed);
        let a = driver.arena_stats();
        assert!(a.reused > a.fresh, "pool should serve most takes: {a:?}");

        let mut ablation =
            MultilevelDriver::with_arena(PartitionConfig::with_seed(2), LevelArena::disabled());
        ablation.partition_recursive(&hg, 8, &fixed);
        let b = ablation.arena_stats();
        assert_eq!(b.reused, 0);
        assert!(b.fresh > a.fresh, "disabled arena must allocate every take");
    }

    #[test]
    fn cut_sum_equals_connectivity_with_net_splitting() {
        let hg = random_hypergraph(300, 500, 6, 7);
        let fixed = vec![u32::MAX; 300];
        for k in [2u32, 4, 8] {
            let cfg = PartitionConfig {
                kway_refine: false,
                vcycles: 0,
                net_splitting: true,
                ..PartitionConfig::with_seed(k as u64)
            };
            let mut driver = MultilevelDriver::new(cfg);
            let out = driver.partition_recursive(&hg, k, &fixed);
            let p = Partition::new(k, out.parts).unwrap();
            assert_eq!(
                cutsize_connectivity(&hg, &p),
                out.cut_sum,
                "eq. 3 composition failed for k = {k}"
            );
        }
    }

    #[test]
    fn recursive_driver_is_deterministic() {
        let hg = random_hypergraph(250, 400, 5, 9);
        let fixed = vec![u32::MAX; 250];
        let run = || {
            let mut d = MultilevelDriver::new(PartitionConfig::with_seed(11));
            d.partition_recursive(&hg, 4, &fixed)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.parts, b.parts);
        assert_eq!(a.cut_sum, b.cut_sum);
    }

    #[test]
    fn u64_width_reproduces_u32_partitions() {
        // The same structure at both index widths must drive the engine
        // through identical decisions: same RNG consumption, same gains,
        // same final parts and cut. This is the golden width-parity test
        // for the whole multilevel stack.
        let hg32 = random_hypergraph(300, 500, 6, 7);
        let hg64 = widen(&hg32);
        let fixed = vec![u32::MAX; 300];
        for k in [2u32, 4, 8] {
            let cfg = PartitionConfig::with_seed(k as u64 + 40);
            let mut d32 = MultilevelDriver::new(cfg.clone());
            let mut d64 = MultilevelDriver::new(cfg);
            let out32 = d32.partition_recursive(&hg32, k, &fixed);
            let out64 = d64.partition_recursive(&hg64, k, &fixed);
            assert_eq!(out32.parts, out64.parts, "width divergence at k = {k}");
            assert_eq!(out32.cut_sum, out64.cut_sum, "cut divergence at k = {k}");
        }
    }

    #[test]
    fn byte_budget_truncates_but_stays_valid() {
        let hg = random_hypergraph(400, 600, 6, 5);
        let fixed = vec![u32::MAX; 400];
        // A 1-byte cap trips the checkpoint before any level is built:
        // flat FM on the input structure, never an abort.
        let cfg = PartitionConfig {
            budget: Budget::bytes(1),
            ..PartitionConfig::with_seed(3)
        };
        let mut d = MultilevelDriver::new(cfg);
        let out = d.partition_recursive(&hg, 4, &fixed);
        assert_eq!(out.parts.len(), 400);
        assert!(out.parts.iter().all(|&p| p < 4), "parts must stay in range");
        let st = d.stats();
        assert!(st.byte_truncations > 0, "cap must be recorded: {st:?}");
        assert_eq!(st.levels, 0, "no level fits a 1-byte cap");
        assert!(st.truncated());

        // A generous cap must not change results vs. unlimited.
        let cfg_roomy = PartitionConfig {
            budget: Budget::bytes(1 << 30),
            ..PartitionConfig::with_seed(3)
        };
        let mut roomy = MultilevelDriver::new(cfg_roomy);
        let out_roomy = roomy.partition_recursive(&hg, 4, &fixed);
        let mut unlimited = MultilevelDriver::new(PartitionConfig::with_seed(3));
        let out_unlimited = unlimited.partition_recursive(&hg, 4, &fixed);
        assert_eq!(out_roomy.parts, out_unlimited.parts);
        assert_eq!(roomy.stats().byte_truncations, 0);
    }

    #[test]
    fn extract_both_matches_extract_side() {
        let hg = random_hypergraph(200, 320, 6, 21);
        // An arbitrary deterministic 0/1 side vector.
        let side: Vec<u8> = (0..200u32)
            .map(|v| ((v.wrapping_mul(2_654_435_761) >> 16) & 1) as u8)
            .collect();
        let mut arena = LevelArena::new();
        for split in [true, false] {
            let [(h0, m0), (h1, m1)] = hg.extract_both(&side, split, &mut arena);
            let (e0, em0) = hg.extract_side(&side, 0, split);
            let (e1, em1) = hg.extract_side(&side, 1, split);
            assert_eq!(m0, em0, "side-0 map differs (split={split})");
            assert_eq!(m1, em1, "side-1 map differs (split={split})");
            assert_eq!(h0, e0, "side-0 hypergraph differs (split={split})");
            assert_eq!(h1, e1, "side-1 hypergraph differs (split={split})");
        }
    }

    #[test]
    fn parallel_recursion_matches_serial_bit_for_bit() {
        use crate::config::Parallelism;
        let hg = random_hypergraph(500, 800, 6, 13);
        let fixed = vec![u32::MAX; 500];
        let mut serial_driver = MultilevelDriver::new(PartitionConfig::with_seed(7));
        let serial = serial_driver.partition_recursive(&hg, 16, &fixed);
        for threads in [2usize, 4] {
            let cfg = PartitionConfig {
                parallelism: Parallelism::Threads(threads),
                ..PartitionConfig::with_seed(7)
            };
            let mut d = MultilevelDriver::new(cfg);
            let par = d.partition_recursive(&hg, 16, &fixed);
            assert_eq!(par.parts, serial.parts, "threads={threads}");
            assert_eq!(par.cut_sum, serial.cut_sum, "threads={threads}");
            assert!(
                d.stats().parallel_forks > 0,
                "parallel run should dispatch forks (threads={threads})"
            );
        }
        assert_eq!(serial_driver.stats().parallel_forks, 0);
    }

    #[test]
    fn parallel_fixed_vertices_match_serial() {
        use crate::config::Parallelism;
        let hg = random_hypergraph(300, 500, 5, 17);
        let mut fixed = vec![u32::MAX; 300];
        for v in 0..24 {
            fixed[v * 12] = (v % 8) as u32;
        }
        let run = |parallelism| {
            let cfg = PartitionConfig {
                parallelism,
                ..PartitionConfig::with_seed(21)
            };
            MultilevelDriver::new(cfg).partition_recursive(&hg, 8, &fixed)
        };
        let serial = run(Parallelism::Serial);
        let par = run(Parallelism::Threads(4));
        assert_eq!(serial.parts, par.parts);
        for (v, &p) in fixed.iter().enumerate() {
            if p != u32::MAX {
                assert_eq!(par.parts[v], p, "fixed vertex {v} moved");
            }
        }
    }

    #[test]
    fn disabled_arena_gives_identical_results() {
        let hg = random_hypergraph(300, 450, 5, 4);
        let fixed = vec![u32::MAX; 300];
        let cfg = PartitionConfig::with_seed(3);
        let mut pooled = MultilevelDriver::new(cfg.clone());
        let mut fresh = MultilevelDriver::with_arena(cfg, LevelArena::disabled());
        let a = pooled.partition_recursive(&hg, 4, &fixed);
        let b = fresh.partition_recursive(&hg, 4, &fixed);
        assert_eq!(a.parts, b.parts, "arena pooling must not change results");
        assert_eq!(a.cut_sum, b.cut_sum);
    }
}
