//! Per-level storage and instrumentation for the multilevel engine.

use crate::engine::Substrate;

/// One coarsening level of a multilevel run over any
/// [`crate::engine::Substrate`]: the contracted structure plus the
/// fine→coarse projection map and the coarse fixed-side vector.
///
/// The map entries are coarse vertex ids, so they carry the substrate's
/// index width `S::Ix` — at `u64` width a map over `n` fine vertices is
/// the single largest per-level allocation, which is exactly what the
/// byte-budget checkpoint accounts via [`Level::heap_bytes`].
#[derive(Debug)]
pub struct Level<S: Substrate> {
    /// The contracted substrate.
    pub coarse: S,
    /// Fine-vertex → coarse-vertex map.
    pub map: Vec<S::Ix>,
    /// Per-coarse-vertex fixed side (`FREE`, `0`, or `1`).
    pub fixed: Vec<i8>,
}

impl<S: Substrate> Level<S> {
    /// Heap bytes held by this level: the contracted substrate plus the
    /// projection map and fixed vector.
    pub fn heap_bytes(&self) -> usize {
        self.coarse.heap_bytes()
            + self.map.capacity() * std::mem::size_of::<S::Ix>()
            + self.fixed.capacity()
    }
}

/// Instrumentation counters threaded through
/// [`crate::engine::MultilevelDriver`]. Counters are always collected
/// (they are a handful of integer adds per level/pass); the per-stage
/// wall-clock fields are only filled in when the `stats` cargo feature is
/// enabled and read as zero otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Bisections driven (nodes of the recursive-bisection tree).
    pub bisections: u64,
    /// Coarsening levels built across all bisections.
    pub levels: u64,
    /// Incidences (pins / adjacency entries) surviving contraction, summed
    /// over all levels.
    pub contracted_incidences: u64,
    /// FM passes run (full and boundary, including initial-partitioning
    /// refinement).
    pub fm_passes: u64,
    /// Tentative FM moves applied across all passes (before rollback).
    pub fm_moves: u64,
    /// Tentative moves undone by best-prefix rollback (so
    /// `fm_moves - fm_rollbacks` moves were actually kept).
    pub fm_rollbacks: u64,
    /// Times the wall-clock budget checkpoint fired and skipped work
    /// (coarsening stopped, quick initial split, or refinement skipped).
    pub wall_truncations: u64,
    /// Times coarsening stopped early because `Budget::max_levels` was
    /// reached in a bisection.
    pub level_truncations: u64,
    /// Times refinement ran fewer FM passes than configured because
    /// `Budget::max_fm_passes` was exhausted.
    pub fm_truncations: u64,
    /// Times coarsening stopped early because `Budget::max_bytes` was
    /// reached in a bisection (the run continues from the coarseness it
    /// reached — truncated but valid, never an abort).
    pub byte_truncations: u64,
    /// Times a checkpoint stopped work because an external
    /// [`crate::CancelToken`] was tripped. Deliberately *not* part of
    /// [`EngineStats::truncated`]: a cancelled run is reported as
    /// cancelled, not as a budget accident.
    pub cancel_truncations: u64,
    /// Fork-join forks actually taken by the parallel driver (0 in serial
    /// runs and whenever the recursion ran inline).
    pub parallel_forks: u64,
    /// Wall-clock nanoseconds in coarsening (`stats` feature only).
    pub coarsen_nanos: u64,
    /// Wall-clock nanoseconds in initial partitioning (`stats` feature only).
    pub initial_nanos: u64,
    /// Wall-clock nanoseconds in refinement (`stats` feature only).
    pub refine_nanos: u64,
}

impl EngineStats {
    /// `true` when any *budget* checkpoint truncated work during the run —
    /// the partition is valid but may be lower quality than an unbounded
    /// run would produce. Cancellation is excluded; see
    /// [`EngineStats::cancelled`].
    pub fn truncated(&self) -> bool {
        self.wall_truncations > 0
            || self.level_truncations > 0
            || self.fm_truncations > 0
            || self.byte_truncations > 0
    }

    /// `true` when a checkpoint observed a tripped [`crate::CancelToken`]
    /// during the run — the partition is a valid partial of a cancelled
    /// job.
    pub fn cancelled(&self) -> bool {
        self.cancel_truncations > 0
    }

    /// Accumulates `other` into `self` (for merging per-run stats).
    pub fn merge(&mut self, other: &EngineStats) {
        self.bisections += other.bisections;
        self.levels += other.levels;
        self.contracted_incidences += other.contracted_incidences;
        self.fm_passes += other.fm_passes;
        self.fm_moves += other.fm_moves;
        self.fm_rollbacks += other.fm_rollbacks;
        self.wall_truncations += other.wall_truncations;
        self.level_truncations += other.level_truncations;
        self.fm_truncations += other.fm_truncations;
        self.byte_truncations += other.byte_truncations;
        self.cancel_truncations += other.cancel_truncations;
        self.parallel_forks += other.parallel_forks;
        self.coarsen_nanos += other.coarsen_nanos;
        self.initial_nanos += other.initial_nanos;
        self.refine_nanos += other.refine_nanos;
    }
}

/// Zero-cost stage timer: measures wall-clock only under the `stats`
/// feature, otherwise compiles to nothing.
#[cfg(feature = "stats")]
pub(crate) struct StageTimer(std::time::Instant);

#[cfg(feature = "stats")]
impl StageTimer {
    pub(crate) fn start() -> Self {
        StageTimer(std::time::Instant::now())
    }

    pub(crate) fn stop(self, into: &mut u64) {
        *into += self.0.elapsed().as_nanos() as u64;
    }
}

#[cfg(not(feature = "stats"))]
pub(crate) struct StageTimer;

#[cfg(not(feature = "stats"))]
impl StageTimer {
    pub(crate) fn start() -> Self {
        StageTimer
    }

    pub(crate) fn stop(self, _into: &mut u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = EngineStats {
            bisections: 1,
            fm_moves: 10,
            ..Default::default()
        };
        let b = EngineStats {
            bisections: 2,
            fm_moves: 5,
            levels: 3,
            byte_truncations: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.bisections, 3);
        assert_eq!(a.fm_moves, 15);
        assert_eq!(a.levels, 3);
        assert_eq!(a.byte_truncations, 1);
        assert!(a.truncated());
    }
}
