//! Geometric (coordinate-based) initial bisection.
//!
//! Fine-grain vertices carry natural 2D positions — the `(row, col)` of
//! the nonzero they represent — and Fagginger Auer & Bisseling observed
//! (arXiv 1105.4490) that a 1D cut along the longest axis of that point
//! cloud is a strong, nearly free starting bisection for such models.
//! The engine projects the top-level coordinates through every
//! coarsening level by weighted centroid, so the coarsest substrate
//! still sees the geometry of the nonzeros it aggregates.
//!
//! The sweep itself is deterministic: free vertices are ordered by their
//! coordinate along the longest axis (ties broken by vertex id via the
//! stable sort), and side 0 is filled from the low end up to its weight
//! target — a weighted-median cut. Randomness enters only through the
//! FM refinement that follows, so multiple tries still explore distinct
//! local optima while the geometric seed stays reproducible.

use fgh_sparse::IndexType;
use rand::Rng;

use crate::arena::{ArenaIndex, LevelArena};
use crate::coarsen::FREE;
use crate::engine::Substrate;
use crate::level::EngineStats;
use crate::refine::BisectionState;

/// One geometric bisection try: longest-axis weighted-median sweep,
/// followed by FM refinement. `coords[v]` is the position of *local*
/// vertex `v` (already projected to this substrate's level).
#[allow(clippy::too_many_arguments)]
// lint: checked-index — coords/fixed/side all have length num_vertices and every v ranges over 0..num_vertices (engine contract, asserted by BisectionState); targets is [f64; 2] indexed by constant 0
pub(crate) fn geometric_once<S: Substrate>(
    sub: &S,
    coords: &[(f32, f32)],
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
    stats: &mut EngineStats,
) -> Vec<u8> {
    let n = sub.num_vertices();
    let mut side = seed_sides_local(sub, fixed, arena);
    let mut order = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
    order.extend(
        (0..n)
            .map(S::Ix::from_index)
            .filter(|&v| fixed[v.index()] == FREE),
    );

    // Longest axis of the free vertices' bounding box. A degenerate box
    // (single row/column, or all vertices coincident) still orders
    // deterministically: the sweep key collapses to equal values and the
    // stable sort leaves vertices in id order.
    let mut lo = (f32::INFINITY, f32::INFINITY);
    let mut hi = (f32::NEG_INFINITY, f32::NEG_INFINITY);
    for &v in order.iter() {
        let (x, y) = coords[v.index()];
        lo = (lo.0.min(x), lo.1.min(y));
        hi = (hi.0.max(x), hi.1.max(y));
    }
    let axis = usize::from(hi.1 - lo.1 > hi.0 - lo.0);
    let key = |v: S::Ix| {
        let c = coords[v.index()];
        if axis == 0 {
            c.0
        } else {
            c.1
        }
    };
    // Stable sort: equal coordinates keep ascending-id order, so the cut
    // position is deterministic without a secondary key.
    order.sort_by(|&a, &b| key(a).total_cmp(&key(b)));

    // Weighted-median sweep: fill side 0 from the low end of the axis
    // until it reaches its target, everything past the cut goes to 1.
    // Fixed-0 vertices count toward side 0's fill regardless of position.
    let target0 = targets[0].floor().max(0.0) as u64;
    let mut w0: u64 = (0..n)
        .filter(|&v| side[v] == 0 && fixed[v] != FREE)
        .map(|v| sub.vertex_weight(S::Ix::from_index(v)) as u64)
        .sum();
    for &v in order.iter() {
        if w0 < target0 {
            w0 += sub.vertex_weight(v) as u64;
        } else {
            side[v.index()] = 1;
        }
    }
    S::Ix::give_ids(arena, order);

    let mut st = BisectionState::new_in(sub, side, fixed, targets, epsilon, arena);
    st.refine_in(
        rng,
        fm_passes,
        0,
        false,
        arena,
        stats,
        &fgh_trace::SpanHandle::noop(),
    );
    st.into_sides_in(arena)
}

/// Per-vertex starting side: fixed-1 vertices on side 1, the rest on 0.
/// (Mirrors `initial::seed_sides`, which stays private to that module.)
// lint: checked-index — fixed has length num_vertices (engine contract) and side is taken at that length; v < n
fn seed_sides_local<S: Substrate>(sub: &S, fixed: &[i8], arena: &mut LevelArena) -> Vec<u8> {
    let n = sub.num_vertices();
    let mut side = arena.take_u8(n, 0);
    for v in 0..n {
        if fixed[v] == 1 {
            side[v] = 1;
        }
    }
    side
}

/// Projects fine-level coordinates onto a coarse level: each coarse
/// vertex sits at the weight-centroid of the fine vertices contracted
/// into it. `map[v]` is the coarse id of fine vertex `v`; `nc` is the
/// coarse vertex count. Zero-weight vertices (fine-grain dummies) count
/// as weight 1 so clusters made only of dummies still get a position.
// lint: checked-index — fine_coords has length map.len() == fine vertex count; coarse ids in map are < nc (coarsening contract) and sx/sy/sw are sized nc
pub(crate) fn project_centroids<S: Substrate>(
    fine: &S,
    map: &[S::Ix],
    nc: usize,
    fine_coords: &[(f32, f32)],
) -> Vec<(f32, f32)> {
    let mut sx = vec![0.0f64; nc];
    let mut sy = vec![0.0f64; nc];
    let mut sw = vec![0.0f64; nc];
    for (v, &c) in map.iter().enumerate() {
        let ci = c.index();
        let w = (fine.vertex_weight(S::Ix::from_index(v)) as f64).max(1.0);
        let (x, y) = fine_coords[v];
        sx[ci] += w * x as f64;
        sy[ci] += w * y as f64;
        sw[ci] += w;
    }
    (0..nc)
        .map(|c| {
            if sw[c] > 0.0 {
                // lint: checked-cast — a weighted mean of f32 coords lies inside their range; f64→f32 only rounds
                ((sx[c] / sw[c]) as f32, (sy[c] / sw[c]) as f32)
            } else {
                (0.0, 0.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_hypergraph::Hypergraph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two point clusters along x, connected internally: the sweep must
    /// cut between them.
    #[test]
    fn sweep_cuts_between_clusters() {
        // Vertices 0..4 near x=0, 4..8 near x=100; a chain net inside
        // each cluster and one bridge net across.
        let nets: Vec<Vec<u32>> = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![3, 4]];
        let hg = Hypergraph::<u32>::from_nets(8, &nets).unwrap();
        let coords: Vec<(f32, f32)> = (0..8)
            .map(|v| {
                if v < 4 {
                    (v as f32, 0.0)
                } else {
                    (100.0 + v as f32, 0.0)
                }
            })
            .collect();
        let fixed = vec![FREE; 8];
        let mut arena = LevelArena::disabled();
        let mut stats = EngineStats::default();
        let side = geometric_once(
            &hg,
            &coords,
            &fixed,
            [4.0, 4.0],
            0.0,
            0, // no FM: test the raw sweep
            &mut SmallRng::seed_from_u64(1),
            &mut arena,
            &mut stats,
        );
        assert_eq!(side, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    /// All coordinates identical (a single matrix entry replicated): the
    /// sweep degenerates to an id-order fill and must still balance.
    #[test]
    fn degenerate_coincident_coords_balance() {
        let hg = Hypergraph::<u32>::from_nets(6, &[vec![0, 1], vec![2, 3]]).unwrap();
        let coords = vec![(7.0, 7.0); 6];
        let fixed = vec![FREE; 6];
        let mut arena = LevelArena::disabled();
        let mut stats = EngineStats::default();
        let side = geometric_once(
            &hg,
            &coords,
            &fixed,
            [3.0, 3.0],
            0.0,
            0,
            &mut SmallRng::seed_from_u64(1),
            &mut arena,
            &mut stats,
        );
        assert_eq!(side, vec![0, 0, 0, 1, 1, 1]);
    }

    /// Fixed vertices keep their side no matter where they sit.
    #[test]
    fn sweep_respects_fixed() {
        let hg = Hypergraph::<u32>::from_nets(4, &[vec![0, 1, 2, 3]]).unwrap();
        let coords: Vec<(f32, f32)> = (0..4).map(|v| (v as f32, 0.0)).collect();
        // Vertex 0 (lowest x) pinned to side 1; vertex 3 (highest) to 0.
        let fixed = vec![1, FREE, FREE, 0];
        let mut arena = LevelArena::disabled();
        let mut stats = EngineStats::default();
        let side = geometric_once(
            &hg,
            &coords,
            &fixed,
            [2.0, 2.0],
            0.0,
            0,
            &mut SmallRng::seed_from_u64(1),
            &mut arena,
            &mut stats,
        );
        assert_eq!(side[0], 1);
        assert_eq!(side[3], 0);
    }

    #[test]
    fn centroids_are_weighted_means() {
        let hg = Hypergraph::<u32>::from_nets_weighted(
            4,
            &[vec![0u32, 1], vec![2, 3]],
            vec![1, 3, 2, 2],
            vec![1, 1],
        )
        .unwrap();
        let coords = vec![(0.0, 0.0), (4.0, 0.0), (0.0, 2.0), (0.0, 6.0)];
        // 0,1 -> coarse 0; 2,3 -> coarse 1.
        let map: Vec<u32> = vec![0, 0, 1, 1];
        let out = project_centroids(&hg, &map, 2, &coords);
        assert_eq!(out[0], (3.0, 0.0)); // (1*0 + 3*4) / 4
        assert_eq!(out[1], (0.0, 4.0)); // (2*2 + 2*6) / 4
    }
}
