//! Gain-bucket priority structure for FM refinement.
//!
//! The classic Fiduccia–Mattheyses structure: an array of doubly-linked
//! lists indexed by gain (offset so negative gains index safely), with O(1)
//! insert, remove, gain update, and max-gain extraction (amortized via a
//! moving max pointer).
//!
//! Generic over the vertex-id width `I` (default `u32`): the link arrays
//! (`heads`/`next`/`prev`) store vertex ids, so a `u64` substrate needs
//! `u64` links while the fast path keeps the half-size `u32` arrays.
//! `I::MAX` is the NIL sentinel, matching the engine-wide convention.

use fgh_sparse::IndexType;

/// Intrusive doubly-linked gain buckets over vertex ids `0..n`.
#[derive(Debug)]
pub struct GainBuckets<I: IndexType = u32> {
    offset: i64,
    /// The `max_gain` the caller declared — may exceed the bucket span
    /// (see [`MAX_SPAN`]); kept for debug assertions on inserted gains.
    bound: i64,
    heads: Vec<I>,
    next: Vec<I>,
    prev: Vec<I>,
    gain_of: Vec<i64>,
    in_bucket: Vec<bool>,
    max_idx: usize,
    len: usize,
}

/// Hard cap on the bucket-array length. Callers sometimes pass a very
/// conservative `max_gain` bound (up to `i64::MAX`); the former
/// `2 * max_gain + 1` span arithmetic overflowed there, and even
/// non-overflowing huge bounds would allocate absurd head arrays. Gains
/// beyond the capped range share the two extreme buckets: true gains are
/// still stored and returned exactly, only the pop *ordering* among
/// same-extreme out-of-range gains degrades to insertion order.
const MAX_SPAN: usize = 1 << 22;

/// Half-width of the bucket array for a requested `max_gain`, clamped so
/// the span `2 * half + 1` never exceeds [`MAX_SPAN`] nor overflows.
fn clamped_half_span(max_gain: i64) -> i64 {
    max_gain.clamp(0, ((MAX_SPAN - 1) / 2) as i64)
}

impl<I: IndexType> GainBuckets<I> {
    /// Creates buckets for `n` vertices with gains in `[-max_gain, max_gain]`.
    pub fn new(n: usize, max_gain: i64) -> Self {
        let half = clamped_half_span(max_gain);
        GainBuckets {
            offset: half,
            bound: max_gain.max(0),
            heads: vec![I::MAX; (2 * half + 1) as usize],
            next: vec![I::MAX; n],
            prev: vec![I::MAX; n],
            gain_of: vec![0; n],
            in_bucket: vec![false; n],
            max_idx: 0,
            len: 0,
        }
    }

    fn idx(&self, gain: i64) -> usize {
        debug_assert!(
            -self.bound <= gain && gain <= self.bound,
            "gain {gain} out of declared range ±{}",
            self.bound
        );
        let hi = (self.heads.len() - 1) as i64;
        gain.saturating_add(self.offset).clamp(0, hi) as usize
    }

    /// Number of queued vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no vertex is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `v` is currently queued.
    // lint: checked-index — v < n by the constructor contract; all arrays have length n
    pub fn contains(&self, v: I) -> bool {
        self.in_bucket[v.index()]
    }

    /// Current gain of a queued vertex.
    // lint: checked-index — v < n by the constructor contract; all arrays have length n
    pub fn gain(&self, v: I) -> i64 {
        debug_assert!(self.in_bucket[v.index()]);
        self.gain_of[v.index()]
    }

    /// Inserts `v` with the given gain. `v` must not already be queued.
    // lint: checked-index — v and list links are < n; idx() asserts the bucket is in range
    pub fn insert(&mut self, v: I, gain: i64) {
        debug_assert!(!self.in_bucket[v.index()], "vertex {v} already queued");
        let b = self.idx(gain);
        let head = self.heads[b];
        self.next[v.index()] = head;
        self.prev[v.index()] = I::MAX;
        if head != I::MAX {
            self.prev[head.index()] = v;
        }
        self.heads[b] = v;
        self.gain_of[v.index()] = gain;
        self.in_bucket[v.index()] = true;
        self.len += 1;
        if b > self.max_idx {
            self.max_idx = b;
        }
    }

    /// Removes `v` from its bucket. No-op if not queued.
    // lint: checked-index — v and list links are < n; idx() asserts the bucket is in range
    pub fn remove(&mut self, v: I) {
        if !self.in_bucket[v.index()] {
            return;
        }
        let b = self.idx(self.gain_of[v.index()]);
        let (p, n) = (self.prev[v.index()], self.next[v.index()]);
        if p != I::MAX {
            self.next[p.index()] = n;
        } else {
            self.heads[b] = n;
        }
        if n != I::MAX {
            self.prev[n.index()] = p;
        }
        self.in_bucket[v.index()] = false;
        self.len -= 1;
    }

    /// Adjusts the gain of a queued vertex by `delta`.
    ///
    /// Semantically `remove(v)` + `insert(v, gain + delta)`, fused: one
    /// queued-check, one unlink, one head-relink, and no redundant
    /// `len`/`in_bucket` churn. This is the single hottest gain-bucket
    /// operation — FM calls it once per affected pin per move. The vertex
    /// still moves to the *head* of the destination bucket even when the
    /// (clamped) bucket index is unchanged, because pop order among gain
    /// ties is part of the engine's deterministic behavior.
    // lint: checked-index — v and list links are < n; idx() asserts the bucket is in range
    pub fn adjust(&mut self, v: I, delta: i64) {
        let vi = v.index();
        if delta == 0 || !self.in_bucket[vi] {
            return;
        }
        let g = self.gain_of[vi].saturating_add(delta);
        let ob = self.idx(self.gain_of[vi]);
        let nb = self.idx(g);
        self.gain_of[vi] = g;
        let (p, n) = (self.prev[vi], self.next[vi]);
        if p != I::MAX {
            self.next[p.index()] = n;
        } else {
            self.heads[ob] = n;
        }
        if n != I::MAX {
            self.prev[n.index()] = p;
        }
        let head = self.heads[nb];
        self.next[vi] = head;
        self.prev[vi] = I::MAX;
        if head != I::MAX {
            self.prev[head.index()] = v;
        }
        self.heads[nb] = v;
        if nb > self.max_idx {
            self.max_idx = nb;
        }
    }

    /// Reinitializes for `n` vertices and gains in `[-max_gain, max_gain]`,
    /// keeping allocated capacity. Equivalent to `*self = GainBuckets::new(
    /// n, max_gain)` but reusable from a [`crate::arena::LevelArena`] pool.
    /// Returns `true` when any backing vector had to grow (a pool-reuse
    /// "resize" event, counted by [`crate::arena::ArenaStats`]).
    pub fn reset(&mut self, n: usize, max_gain: i64) -> bool {
        let half = clamped_half_span(max_gain);
        let grew = self.heads.capacity() < (2 * half + 1) as usize || self.next.capacity() < n;
        self.offset = half;
        self.bound = max_gain.max(0);
        self.heads.clear();
        self.heads.resize((2 * half + 1) as usize, I::MAX);
        self.next.clear();
        self.next.resize(n, I::MAX);
        self.prev.clear();
        self.prev.resize(n, I::MAX);
        self.gain_of.clear();
        self.gain_of.resize(n, 0);
        self.in_bucket.clear();
        self.in_bucket.resize(n, false);
        self.max_idx = 0;
        self.len = 0;
        grew
    }

    /// Heap bytes held by the backing arrays — the buckets' contribution
    /// to the engine's byte-budget accounting.
    pub fn heap_bytes(&self) -> usize {
        let links = self.heads.capacity() + self.next.capacity() + self.prev.capacity();
        links * std::mem::size_of::<I>()
            + self.gain_of.capacity() * std::mem::size_of::<i64>()
            + self.in_bucket.capacity()
    }

    /// Pops a maximum-gain vertex satisfying `admissible`, scanning buckets
    /// from the max downward. Vertices failing the predicate are skipped
    /// (left queued). Returns `(vertex, gain)`.
    // lint: checked-index — b starts clamped to heads.len()-1 and only decreases; links are < n
    pub fn pop_max_where(&mut self, mut admissible: impl FnMut(I) -> bool) -> Option<(I, i64)> {
        if self.len == 0 {
            return None;
        }
        let mut b = self.max_idx.min(self.heads.len() - 1);
        loop {
            let mut v = self.heads[b];
            while v != I::MAX {
                if admissible(v) {
                    let g = self.gain_of[v.index()];
                    // Lower the cached max to the first non-empty bucket.
                    self.max_idx = b;
                    self.remove(v);
                    return Some((v, g));
                }
                v = self.next[v.index()];
            }
            if b == 0 {
                return None;
            }
            b -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_pop_order() {
        let mut gb: GainBuckets = GainBuckets::new(5, 10);
        gb.insert(0, -3);
        gb.insert(1, 5);
        gb.insert(2, 5);
        gb.insert(3, 0);
        assert_eq!(gb.len(), 4);
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert!(v == 1 || v == 2);
        assert_eq!(g, 5);
        let (_, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!(g, 5);
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (3, 0));
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (0, -3));
        assert!(gb.pop_max_where(|_| true).is_none());
    }

    #[test]
    fn pop_respects_predicate() {
        let mut gb: GainBuckets = GainBuckets::new(3, 4);
        gb.insert(0, 4);
        gb.insert(1, 2);
        let (v, _) = gb.pop_max_where(|v| v != 0).unwrap();
        assert_eq!(v, 1);
        // 0 is still queued.
        assert!(gb.contains(0));
        assert_eq!(gb.len(), 1);
    }

    #[test]
    fn adjust_moves_between_buckets() {
        let mut gb: GainBuckets = GainBuckets::new(4, 8);
        gb.insert(0, 1);
        gb.insert(1, 2);
        gb.adjust(0, 5); // now 6
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (0, 6));
        gb.adjust(1, -3); // now -1
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (1, -1));
    }

    #[test]
    fn remove_unqueued_is_noop() {
        let mut gb: GainBuckets = GainBuckets::new(2, 2);
        gb.remove(1);
        assert_eq!(gb.len(), 0);
        gb.insert(1, 0);
        gb.remove(1);
        gb.remove(1);
        assert_eq!(gb.len(), 0);
    }

    #[test]
    fn middle_removal_keeps_links() {
        let mut gb: GainBuckets = GainBuckets::new(3, 2);
        gb.insert(0, 1);
        gb.insert(1, 1);
        gb.insert(2, 1);
        gb.remove(1); // middle of the bucket list
        let mut seen = vec![];
        while let Some((v, _)) = gb.pop_max_where(|_| true) {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn reset_matches_fresh() {
        let mut gb: GainBuckets = GainBuckets::new(3, 4);
        gb.insert(0, 4);
        gb.insert(1, -2);
        gb.reset(5, 10);
        assert!(gb.is_empty());
        assert!(!gb.contains(0));
        gb.insert(4, -9);
        gb.insert(2, 10);
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (2, 10));
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (4, -9));
    }

    #[test]
    fn extreme_max_gain_saturates_instead_of_overflowing() {
        // Regression: the former `2 * max_gain + 1` span overflowed for
        // conservative bounds like `i64::MAX` (a panic under test
        // profiles with overflow checks, a garbage allocation size in
        // release). The span is now capped at MAX_SPAN with out-of-range
        // gains clamped into the extreme buckets.
        let mut gb: GainBuckets = GainBuckets::new(4, i64::MAX);
        assert!(gb.heads.len() <= MAX_SPAN);
        gb.insert(0, 1 << 40);
        gb.insert(1, -(1 << 40));
        gb.insert(2, 0);
        // True gains come back exactly, and order across the clamp
        // boundary is preserved: above-range > in-range > below-range.
        assert_eq!(gb.pop_max_where(|_| true), Some((0, 1 << 40)));
        assert_eq!(gb.pop_max_where(|_| true), Some((2, 0)));
        assert_eq!(gb.pop_max_where(|_| true), Some((1, -(1 << 40))));

        // reset() takes the same saturating path.
        gb.reset(2, i64::MAX / 2);
        assert!(gb.heads.len() <= MAX_SPAN);
        gb.insert(1, i64::MAX / 4);
        gb.insert(0, -(i64::MAX / 4));
        assert_eq!(gb.pop_max_where(|_| true), Some((1, i64::MAX / 4)));
        assert_eq!(gb.pop_max_where(|_| true), Some((0, -(i64::MAX / 4))));
    }

    #[test]
    fn negative_only_gains() {
        let mut gb: GainBuckets = GainBuckets::new(2, 3);
        gb.insert(0, -3);
        gb.insert(1, -1);
        let (v, g) = gb.pop_max_where(|_| true).unwrap();
        assert_eq!((v, g), (1, -1));
    }

    #[test]
    fn u64_buckets_share_behavior() {
        let mut gb: GainBuckets<u64> = GainBuckets::new(4, 6);
        gb.insert(0, 2);
        gb.insert(3, 6);
        gb.insert(1, -6);
        gb.adjust(0, 3); // now 5
        assert_eq!(gb.pop_max_where(|_| true), Some((3u64, 6)));
        assert_eq!(gb.pop_max_where(|_| true), Some((0u64, 5)));
        assert_eq!(gb.pop_max_where(|_| true), Some((1u64, -6)));
        assert!(gb.heap_bytes() > 0);
    }
}
