//! Initial partitioning of the coarsest substrate: greedy growing (GHG on
//! hypergraphs, GGP on graphs — the same max-gain frontier growth) with
//! multiple random tries.

use fgh_hypergraph::Hypergraph;
use fgh_sparse::IndexType;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::arena::{ArenaIndex, LevelArena};
use crate::coarsen::FREE;
use crate::config::{InitialScheme, PartitionConfig};
use crate::engine::Substrate;
use crate::level::EngineStats;
use crate::refine::BisectionState;

/// Produces an initial bisection with the chosen scheme, FM-refined, best
/// of `tries` random streams by (balance penalty, cut).
#[allow(clippy::too_many_arguments)]
pub fn initial_best(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    scheme: InitialScheme,
    tries: usize,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let cfg = PartitionConfig {
        initial: scheme,
        initial_tries: tries,
        fm_passes,
        ..Default::default()
    };
    initial_best_in(
        hg,
        fixed,
        targets,
        epsilon,
        &cfg,
        None,
        rng,
        &mut LevelArena::disabled(),
        &mut EngineStats::default(),
    )
}

/// Greedy hypergraph growing with defaults — kept as the conventional
/// entry point.
pub fn ghg_best(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    tries: usize,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    initial_best(
        hg,
        fixed,
        targets,
        epsilon,
        InitialScheme::Ghg,
        tries,
        fm_passes,
        rng,
    )
}

/// Substrate-generic, arena-backed initial partitioning (the engine's
/// entry point): scheme, tries, and FM passes are read from `cfg`.
/// `coords[v]`, when present, positions *local* vertex `v` for the
/// geometric scheme — the engine projects top-level coordinates down to
/// the coarsest substrate before calling this. Geometric/Auto without
/// coordinates fall back to GHG.
#[allow(clippy::too_many_arguments)]
pub(crate) fn initial_best_in<S: Substrate>(
    sub: &S,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    cfg: &PartitionConfig,
    coords: Option<&[(f32, f32)]>,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
    stats: &mut EngineStats,
) -> Vec<u8> {
    let scheme = match (cfg.initial, coords) {
        (InitialScheme::Geometric | InitialScheme::Auto, Some(_)) => InitialScheme::Geometric,
        (InitialScheme::Geometric | InitialScheme::Auto, None) => InitialScheme::Ghg,
        (other, _) => other,
    };
    let mut best: Option<(u64, u64, Vec<u8>)> = None;
    for _ in 0..cfg.initial_tries.max(1) {
        let sides = match scheme {
            InitialScheme::Ghg => ghg_once(
                sub,
                fixed,
                targets,
                epsilon,
                cfg.fm_passes,
                rng,
                arena,
                stats,
            ),
            InitialScheme::Random => random_once(
                sub,
                fixed,
                targets,
                epsilon,
                cfg.fm_passes,
                rng,
                arena,
                stats,
            ),
            InitialScheme::BinPacking => bin_packing_once(
                sub,
                fixed,
                targets,
                epsilon,
                cfg.fm_passes,
                rng,
                arena,
                stats,
            ),
            // `scheme` is resolved above: Geometric only with coords
            // present, Auto never survives resolution.
            InitialScheme::Geometric => {
                let Some(coords) = coords else {
                    unreachable!("geometric scheme resolved without coords")
                };
                crate::geometric::geometric_once(
                    sub,
                    coords,
                    fixed,
                    targets,
                    epsilon,
                    cfg.fm_passes,
                    rng,
                    arena,
                    stats,
                )
            }
            InitialScheme::Auto => unreachable!("Auto resolves before dispatch"),
        };
        let st = BisectionState::new_in(sub, sides, fixed, targets, epsilon, arena);
        let key = (st.balance_penalty(), st.cut());
        let sides = st.into_sides_in(arena);
        if best
            .as_ref()
            .map(|(p, c, _)| key < (*p, *c))
            .unwrap_or(true)
        {
            if let Some((_, _, old)) = best.replace((key.0, key.1, sides)) {
                arena.give_u8(old);
            }
        } else {
            arena.give_u8(sides);
        }
    }
    match best {
        Some((_, _, sides)) => sides,
        // Unreachable (the loop runs at least once), but a seed split is
        // a safe fallback rather than a panic.
        None => seed_sides(sub, fixed, arena),
    }
}

/// Per-vertex starting side: fixed-1 vertices on side 1, the rest on 0.
fn seed_sides<S: Substrate>(sub: &S, fixed: &[i8], arena: &mut LevelArena) -> Vec<u8> {
    let n = sub.num_vertices();
    let mut side = arena.take_u8(n, 0);
    for v in 0..n {
        if fixed[v] == 1 {
            side[v] = 1;
        }
    }
    side
}

/// Random assignment: shuffle free vertices, fill side 1 to its target.
#[allow(clippy::too_many_arguments)]
fn random_once<S: Substrate>(
    sub: &S,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
    stats: &mut EngineStats,
) -> Vec<u8> {
    let n = sub.num_vertices();
    let mut side = seed_sides(sub, fixed, arena);
    let mut order = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
    order.extend(
        (0..n)
            .map(S::Ix::from_index)
            .filter(|&v| fixed[v.index()] == FREE),
    );
    order.shuffle(rng);
    let target1 = targets[1].floor().max(0.0) as u64;
    let mut w1: u64 = (0..n)
        .filter(|&v| side[v] == 1)
        .map(|v| sub.vertex_weight(S::Ix::from_index(v)) as u64)
        .sum();
    for &v in order.iter() {
        if w1 >= target1 {
            break;
        }
        side[v.index()] = 1;
        w1 += sub.vertex_weight(v) as u64;
    }
    S::Ix::give_ids(arena, order);
    let mut st = BisectionState::new_in(sub, side, fixed, targets, epsilon, arena);
    st.refine_in(
        rng,
        fm_passes,
        0,
        false,
        arena,
        stats,
        &fgh_trace::SpanHandle::noop(),
    );
    st.into_sides_in(arena)
}

/// Weight-only greedy bin packing: heaviest free vertices first, each onto
/// the side with more remaining capacity (ties randomized by a shuffled
/// pre-pass), connectivity ignored.
#[allow(clippy::too_many_arguments)]
fn bin_packing_once<S: Substrate>(
    sub: &S,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
    stats: &mut EngineStats,
) -> Vec<u8> {
    let n = sub.num_vertices();
    let mut side = seed_sides(sub, fixed, arena);
    let mut w = [0u64; 2];
    for v in 0..n {
        if fixed[v] != FREE {
            w[side[v] as usize] += sub.vertex_weight(S::Ix::from_index(v)) as u64;
        }
    }
    let mut order = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
    order.extend(
        (0..n)
            .map(S::Ix::from_index)
            .filter(|&v| fixed[v.index()] == FREE),
    );
    order.shuffle(rng);
    order.sort_by_key(|&v| std::cmp::Reverse(sub.vertex_weight(v)));
    for &v in order.iter() {
        // Fill toward proportional targets: pick the side with the larger
        // remaining gap.
        let gap0 = targets[0] - w[0] as f64;
        let gap1 = targets[1] - w[1] as f64;
        let s = usize::from(gap1 > gap0);
        side[v.index()] = s as u8; // lint: checked-cast — s is 0 or 1
        w[s] += sub.vertex_weight(v) as u64;
    }
    S::Ix::give_ids(arena, order);
    let mut st = BisectionState::new_in(sub, side, fixed, targets, epsilon, arena);
    st.refine_in(
        rng,
        fm_passes,
        0,
        false,
        arena,
        stats,
        &fgh_trace::SpanHandle::noop(),
    );
    st.into_sides_in(arena)
}

/// Greedy growing: start everything free on side 0 and pull max-gain
/// vertices across until side 1 reaches its target weight.
#[allow(clippy::too_many_arguments)]
fn ghg_once<S: Substrate>(
    sub: &S,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
    arena: &mut LevelArena,
    stats: &mut EngineStats,
) -> Vec<u8> {
    let n = sub.num_vertices();
    // Fixed vertices start on their side, everything else on side 0.
    let side = seed_sides(sub, fixed, arena);
    let mut st = BisectionState::new_in(sub, side, fixed, targets, epsilon, arena);

    // Grow side 1 until it reaches its target weight. Gains make the
    // growth cluster-shaped: vertices adjacent to side 1 have higher gain.
    let target1 = targets[1].floor().max(0.0) as u64;
    if st.weights()[1] < target1 {
        let mut buckets = S::Ix::take_buckets(arena, n, sub.max_gain_bound());
        let mut insert_order = S::Ix::take_ids(arena, 0, S::Ix::ZERO);
        insert_order.extend(
            (0..n)
                .map(S::Ix::from_index)
                .filter(|&v| fixed[v.index()] == FREE),
        );
        // Random seed bias: shuffle so ties (isolated vertices) vary.
        insert_order.shuffle(rng);
        for &v in insert_order.iter() {
            buckets.insert(v, st.gain(v));
        }
        while st.weights()[1] < target1 {
            let state = &st;
            let popped = buckets.pop_max_where(|u| state.sides()[u.index()] == 0);
            match popped {
                Some((v, _)) => st.apply_move(v, Some(&mut buckets)),
                None => break,
            }
        }
        S::Ix::give_buckets(arena, buckets);
        S::Ix::give_ids(arena, insert_order);
    }

    st.refine_in(
        rng,
        fm_passes,
        0,
        false,
        arena,
        stats,
        &fgh_trace::SpanHandle::noop(),
    );
    st.into_sides_in(arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_clusters;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn ghg_produces_balanced_bisection() {
        let hg = two_clusters(20);
        let fixed = free(40);
        let sides = ghg_best(
            &hg,
            &fixed,
            [20.0, 20.0],
            0.05,
            4,
            4,
            &mut SmallRng::seed_from_u64(2),
        );
        let w1: usize = sides.iter().filter(|&&s| s == 1).count();
        assert!((15..=25).contains(&w1), "side 1 holds {w1} of 40");
        let st = BisectionState::new(&hg, sides, &fixed, [20.0, 20.0], 0.05);
        assert_eq!(st.balance_penalty(), 0);
        // The two-cluster structure should be found.
        assert_eq!(st.cut(), 1);
    }

    #[test]
    fn ghg_respects_fixed() {
        let hg = two_clusters(10);
        let mut fixed = free(20);
        fixed[0] = 1;
        fixed[15] = 0;
        let sides = ghg_best(
            &hg,
            &fixed,
            [10.0, 10.0],
            0.2,
            4,
            4,
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(sides[0], 1);
        assert_eq!(sides[15], 0);
    }

    #[test]
    fn ghg_on_netless_hypergraph() {
        // No nets: any balanced split works; GHG must still terminate.
        let hg = Hypergraph::from_nets(10, &[]).unwrap();
        let fixed = free(10);
        let sides = ghg_best(
            &hg,
            &fixed,
            [5.0, 5.0],
            0.0,
            2,
            2,
            &mut SmallRng::seed_from_u64(4),
        );
        let c1 = sides.iter().filter(|&&s| s == 1).count();
        assert_eq!(c1, 5);
    }

    #[test]
    fn ghg_single_vertex() {
        let hg = Hypergraph::from_nets(1, &[]).unwrap();
        let fixed = free(1);
        let sides = ghg_best(
            &hg,
            &fixed,
            [1.0, 0.0],
            0.0,
            1,
            1,
            &mut SmallRng::seed_from_u64(4),
        );
        assert_eq!(sides, vec![0]);
    }
}
