//! Initial partitioning of the coarsest hypergraph: greedy hypergraph
//! growing (GHG) with multiple random tries.

use fgh_hypergraph::Hypergraph;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::coarsen::FREE;
use crate::config::InitialScheme;
use crate::gain::GainBuckets;
use crate::refine::BisectionState;

/// Produces an initial bisection with the chosen scheme, FM-refined, best
/// of `tries` random streams by (balance penalty, cut).
#[allow(clippy::too_many_arguments)]
pub fn initial_best(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    scheme: InitialScheme,
    tries: usize,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let mut best: Option<(u64, u64, Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let sides = match scheme {
            InitialScheme::Ghg => ghg_once(hg, fixed, targets, epsilon, fm_passes, rng),
            InitialScheme::Random => random_once(hg, fixed, targets, epsilon, fm_passes, rng),
            InitialScheme::BinPacking => {
                bin_packing_once(hg, fixed, targets, epsilon, fm_passes, rng)
            }
        };
        let st = BisectionState::new(hg, sides, fixed, targets, epsilon);
        let key = (st.balance_penalty(), st.cut());
        if best.as_ref().map(|(p, c, _)| key < (*p, *c)).unwrap_or(true) {
            best = Some((key.0, key.1, st.into_sides()));
        }
    }
    best.expect("tries >= 1").2
}

/// Greedy hypergraph growing with defaults — kept as the conventional
/// entry point.
pub fn ghg_best(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    tries: usize,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    initial_best(hg, fixed, targets, epsilon, InitialScheme::Ghg, tries, fm_passes, rng)
}

/// Random assignment: shuffle free vertices, fill side 1 to its target.
fn random_once(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let n = hg.num_vertices();
    let mut side: Vec<u8> =
        (0..n).map(|v| if fixed[v as usize] == 1 { 1 } else { 0 }).collect();
    let mut order: Vec<u32> = (0..n).filter(|&v| fixed[v as usize] == FREE).collect();
    order.shuffle(rng);
    let target1 = targets[1].floor().max(0.0) as u64;
    let mut w1: u64 = (0..n)
        .filter(|&v| side[v as usize] == 1)
        .map(|v| hg.vertex_weight(v) as u64)
        .sum();
    for &v in &order {
        if w1 >= target1 {
            break;
        }
        side[v as usize] = 1;
        w1 += hg.vertex_weight(v) as u64;
    }
    let mut st = BisectionState::new(hg, side, fixed, targets, epsilon);
    st.refine(rng, fm_passes, 0);
    st.into_sides()
}

/// Weight-only greedy bin packing: heaviest free vertices first, each onto
/// the side with more remaining capacity (ties randomized by a shuffled
/// pre-pass), connectivity ignored.
fn bin_packing_once(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let n = hg.num_vertices();
    let mut side: Vec<u8> =
        (0..n).map(|v| if fixed[v as usize] == 1 { 1 } else { 0 }).collect();
    let mut w = [0u64; 2];
    for v in 0..n {
        if fixed[v as usize] != FREE {
            w[side[v as usize] as usize] += hg.vertex_weight(v) as u64;
        }
    }
    let mut order: Vec<u32> = (0..n).filter(|&v| fixed[v as usize] == FREE).collect();
    order.shuffle(rng);
    order.sort_by_key(|&v| std::cmp::Reverse(hg.vertex_weight(v)));
    for &v in &order {
        // Fill toward proportional targets: pick the side with the larger
        // remaining gap.
        let gap0 = targets[0] - w[0] as f64;
        let gap1 = targets[1] - w[1] as f64;
        let s = usize::from(gap1 > gap0);
        side[v as usize] = s as u8;
        w[s] += hg.vertex_weight(v) as u64;
    }
    let mut st = BisectionState::new(hg, side, fixed, targets, epsilon);
    st.refine(rng, fm_passes, 0);
    st.into_sides()
}

fn ghg_once(
    hg: &Hypergraph,
    fixed: &[i8],
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let n = hg.num_vertices();
    // Fixed vertices start on their side, everything else on side 0.
    let side: Vec<u8> = (0..n)
        .map(|v| if fixed[v as usize] == 1 { 1 } else { 0 })
        .collect();
    let mut st = BisectionState::new(hg, side, fixed, targets, epsilon);

    // Grow side 1 until it reaches its target weight. Gains make the
    // growth cluster-shaped: vertices adjacent to side 1 have higher gain.
    let target1 = targets[1].floor().max(0.0) as u64;
    if st.weights()[1] < target1 {
        let mut buckets = GainBuckets::new(n as usize, max_gain_bound(hg));
        let mut insert_order: Vec<u32> =
            (0..n).filter(|&v| fixed[v as usize] == FREE).collect();
        // Random seed bias: shuffle so ties (isolated vertices) vary.
        insert_order.shuffle(rng);
        for &v in &insert_order {
            buckets.insert(v, st.gain(v));
        }
        while st.weights()[1] < target1 {
            let state = &st;
            let popped = buckets.pop_max_where(|u| state.sides()[u as usize] == 0);
            match popped {
                Some((v, _)) => st.apply_move(v, Some(&mut buckets)),
                None => break,
            }
        }
    }

    st.refine(rng, fm_passes, 0);
    st.into_sides()
}

fn max_gain_bound(hg: &Hypergraph) -> i64 {
    let mut best = 1i64;
    for v in 0..hg.num_vertices() {
        let s: i64 = hg.nets(v).iter().map(|&n| hg.net_cost(n) as i64).sum();
        best = best.max(s);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_clusters;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn free(n: u32) -> Vec<i8> {
        vec![FREE; n as usize]
    }

    #[test]
    fn ghg_produces_balanced_bisection() {
        let hg = two_clusters(20);
        let fixed = free(40);
        let sides =
            ghg_best(&hg, &fixed, [20.0, 20.0], 0.05, 4, 4, &mut SmallRng::seed_from_u64(2));
        let w1: usize = sides.iter().filter(|&&s| s == 1).count();
        assert!((15..=25).contains(&w1), "side 1 holds {w1} of 40");
        let st = BisectionState::new(&hg, sides, &fixed, [20.0, 20.0], 0.05);
        assert_eq!(st.balance_penalty(), 0);
        // The two-cluster structure should be found.
        assert_eq!(st.cut(), 1);
    }

    #[test]
    fn ghg_respects_fixed() {
        let hg = two_clusters(10);
        let mut fixed = free(20);
        fixed[0] = 1;
        fixed[15] = 0;
        let sides =
            ghg_best(&hg, &fixed, [10.0, 10.0], 0.2, 4, 4, &mut SmallRng::seed_from_u64(9));
        assert_eq!(sides[0], 1);
        assert_eq!(sides[15], 0);
    }

    #[test]
    fn ghg_on_netless_hypergraph() {
        // No nets: any balanced split works; GHG must still terminate.
        let hg = Hypergraph::from_nets(10, &[]).unwrap();
        let fixed = free(10);
        let sides =
            ghg_best(&hg, &fixed, [5.0, 5.0], 0.0, 2, 2, &mut SmallRng::seed_from_u64(4));
        let c1 = sides.iter().filter(|&&s| s == 1).count();
        assert_eq!(c1, 5);
    }

    #[test]
    fn ghg_single_vertex() {
        let hg = Hypergraph::from_nets(1, &[]).unwrap();
        let fixed = free(1);
        let sides =
            ghg_best(&hg, &fixed, [1.0, 0.0], 0.0, 1, 1, &mut SmallRng::seed_from_u64(4));
        assert_eq!(sides, vec![0]);
    }
}
