//! Hybrid per-net part-count tracking for K-way refinement.
//!
//! Every K-way gain computation asks the same two questions per net: "how
//! many pins does net `n` have in part `p`?" and "which parts does `n`
//! touch?" (its connectivity set Λ). The naive answer — one heap-allocated
//! `Vec<(part, count)>` per net, linearly scanned — is what the engine
//! shipped with ([`NaiveConnectivity`], kept as the test oracle and bench
//! baseline). It is cache-hostile twice over: every net lookup chases a
//! separate allocation, and high-λ nets pay O(λ) per query.
//!
//! [`NetConnectivity`] replaces it with a hybrid λ-structure:
//!
//! * **Inline path** — almost all nets of a fine-grain hypergraph touch at
//!   most a handful of parts (λ ≤ 2 for anything produced by recursive
//!   bisection; the K-way sweep only nudges that). Each net owns a fixed
//!   [`INLINE_LAMBDA`]-entry slot in two flat parallel arrays (`parts`,
//!   `counts`), so a lookup is a bounded scan of one cache line with no
//!   pointer chase and no allocation.
//! * **Spill path** — a net whose λ outgrows the inline slot moves to a
//!   [`SpillRow`]: dense per-part counts (O(1) lookup), a presence bitset
//!   (one-load membership tests for the common `count(n, q) == 0` probe),
//!   and the explicit `order`/`pos` pair that preserves the naive row
//!   order exactly.
//!
//! The structure is *behavior-identical* to the naive oracle, including
//! the order in which [`NetConnectivity::for_each_part`] visits parts
//! (first-seen insertion order with `swap_remove` compaction). K-way
//! refinement breaks gain ties by candidate order, so preserving that
//! order is what keeps the rewritten kernel bit-for-bit compatible with
//! recorded partitions — see `crates/core/tests/golden_cutsize.rs` and
//! the `proptest_connectivity` equivalence harness.

use fgh_hypergraph::{Hypergraph, Partition};
use fgh_sparse::IndexType;

use crate::error::PartitionError;

/// Inline capacity: (part, count) entries a net can hold before spilling.
///
/// Four entries keep the hot arrays at 16 B of part ids and 32 B of counts
/// per net while covering every net recursive bisection can produce (λ ≤ 2)
/// plus the first couple of K-way perturbations.
pub const INLINE_LAMBDA: usize = 4;

/// `len` sentinel marking a spilled net; `parts[net][0]` then holds the
/// spill-row index instead of a part id.
const SPILLED: u8 = u8::MAX;

/// Absent marker for [`SpillRow::pos`].
const NO_POS: u32 = u32::MAX;

/// Dense representation for a high-λ net.
struct SpillRow {
    /// Per-part pin counts, indexed by part id.
    counts: Vec<u64>,
    /// Presence bitset: bit `p` set ⇔ `counts[p] > 0`. Lets `count` and
    /// membership probes answer "absent" from a single word load without
    /// touching the (much larger) counts array.
    present: Vec<u64>,
    /// Parts with nonzero count, in the naive oracle's row order
    /// (first-seen insertion order, `swap_remove` on emptying).
    order: Vec<u32>,
    /// part id → index into `order`, [`NO_POS`] when absent.
    pos: Vec<u32>,
}

impl SpillRow {
    fn new(k: u32) -> Self {
        let k = k as usize;
        SpillRow {
            counts: vec![0; k],
            present: vec![0; k.div_ceil(64)],
            order: Vec::new(),
            pos: vec![NO_POS; k],
        }
    }

    // lint: checked-index — part < k is the Partition contract; counts/pos have length k and present has k.div_ceil(64) words
    fn add(&mut self, part: u32, n: u64) {
        let p = part as usize;
        if self.counts[p] == 0 {
            self.present[p / 64] |= 1u64 << (p % 64);
            // lint: checked-cast — order holds distinct parts, at most k, which is u32
            self.pos[p] = self.order.len() as u32;
            self.order.push(part);
        }
        self.counts[p] += n;
    }

    // lint: checked-index — part < k is the Partition contract (see `add`)
    fn count(&self, part: u32) -> u64 {
        let p = part as usize;
        if self.present[p / 64] & (1u64 << (p % 64)) == 0 {
            return 0;
        }
        self.counts[p]
    }

    /// Removes one pin of `part`, replicating the oracle's `swap_remove`
    /// compaction of the order list when the count reaches zero.
    // lint: checked-index — part bounds per `add`; `pos` entries index `order` by construction
    fn remove_one(&mut self, part: u32) -> bool {
        let p = part as usize;
        if self.present[p / 64] & (1u64 << (p % 64)) == 0 {
            return false;
        }
        self.counts[p] -= 1;
        if self.counts[p] == 0 {
            self.present[p / 64] &= !(1u64 << (p % 64));
            let i = self.pos[p] as usize;
            self.order.swap_remove(i);
            if let Some(&moved) = self.order.get(i) {
                // lint: checked-cast — i < order.len() <= k, which is u32
                self.pos[moved as usize] = i as u32;
            }
            self.pos[p] = NO_POS;
        }
        true
    }
}

/// Hybrid per-net (part, pin-count) table. See the module docs for the
/// layout; behaviorally identical to [`NaiveConnectivity`].
pub struct NetConnectivity {
    k: u32,
    /// Inline part ids per net; for spilled nets slot 0 is the spill index.
    parts: Vec<[u32; INLINE_LAMBDA]>,
    /// Inline pin counts per net (unused for spilled nets).
    counts: Vec<[u64; INLINE_LAMBDA]>,
    /// Inline entry count, or [`SPILLED`].
    len: Vec<u8>,
    spill: Vec<SpillRow>,
}

impl NetConnectivity {
    /// Builds the table for `partition` over `hg`'s nets.
    pub fn build<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> Self {
        let nn = hg.num_nets().index();
        let mut t = NetConnectivity {
            k: partition.k(),
            parts: vec![[0; INLINE_LAMBDA]; nn],
            counts: vec![[0; INLINE_LAMBDA]; nn],
            len: vec![0; nn],
            spill: Vec::new(),
        };
        for n in 0..nn {
            for &p in hg.pins(I::from_index(n)) {
                t.add_pin(n, partition.part_at(p.index()));
            }
        }
        t
    }

    /// Adds one pin of `part` to net `n`, spilling on inline overflow.
    // lint: checked-index — n < num_nets for every caller; inline slots are < INLINE_LAMBDA; spill ids index self.spill by construction
    fn add_pin(&mut self, n: usize, part: u32) {
        let len = self.len[n];
        if len == SPILLED {
            let s = self.parts[n][0] as usize;
            self.spill[s].add(part, 1);
            return;
        }
        let row = &mut self.parts[n];
        for (i, &p) in row.iter().enumerate().take(len as usize) {
            if p == part {
                self.counts[n][i] += 1;
                return;
            }
        }
        if (len as usize) < INLINE_LAMBDA {
            row[len as usize] = part;
            self.counts[n][len as usize] = 1;
            self.len[n] = len + 1;
            return;
        }
        // Inline slot full: migrate to a spill row, preserving order.
        let mut s = SpillRow::new(self.k);
        for i in 0..INLINE_LAMBDA {
            s.add(self.parts[n][i], self.counts[n][i]);
        }
        s.add(part, 1);
        // lint: checked-cast — one spill row per net at most; net count is u32
        self.parts[n][0] = self.spill.len() as u32;
        self.len[n] = SPILLED;
        self.spill.push(s);
    }

    /// Pin count of `part` on net `net` (0 when absent).
    // lint: checked-index — net < num_nets is the caller contract; spill ids index self.spill by construction
    pub fn count<I: IndexType>(&self, net: I, part: u32) -> u64 {
        let n = net.index();
        let len = self.len[n];
        if len == SPILLED {
            return self.spill[self.parts[n][0] as usize].count(part);
        }
        for i in 0..len as usize {
            if self.parts[n][i] == part {
                return self.counts[n][i];
            }
        }
        0
    }

    /// Connectivity λ of `net` (number of parts with ≥ 1 pin).
    // lint: checked-index — net < num_nets is the caller contract; spill ids index self.spill by construction
    pub fn lambda<I: IndexType>(&self, net: I) -> usize {
        let n = net.index();
        let len = self.len[n];
        if len == SPILLED {
            return self.spill[self.parts[n][0] as usize].order.len();
        }
        len as usize
    }

    /// Visits every (part, count) pair of `net` in row order — the same
    /// order the naive oracle's row would be iterated in.
    // lint: checked-index — net < num_nets is the caller contract; spill order entries are parts with counts maintained by add/remove_one
    pub fn for_each_part<I: IndexType>(&self, net: I, mut visit: impl FnMut(u32, u64)) {
        let n = net.index();
        let len = self.len[n];
        if len == SPILLED {
            let s = &self.spill[self.parts[n][0] as usize];
            for &p in &s.order {
                visit(p, s.counts[p as usize]);
            }
            return;
        }
        for i in 0..len as usize {
            visit(self.parts[n][i], self.counts[n][i]);
        }
    }

    /// Moves one pin of `net` from part `from` to part `to`.
    // lint: checked-index — net < num_nets is the caller contract; inline compaction indices are < len ≤ INLINE_LAMBDA
    pub fn move_pin<I: IndexType>(
        &mut self,
        net: I,
        from: u32,
        to: u32,
    ) -> Result<(), PartitionError> {
        let n = net.index();
        let corrupt = || {
            // Corrupt bookkeeping: a typed error, so release builds abort
            // the refinement instead of continuing on a broken table.
            PartitionError::internal(format!(
                "net {n} has no pins in part {from} to move to part {to}"
            ))
        };
        if self.len[n] == SPILLED {
            let s = self.parts[n][0] as usize;
            if !self.spill[s].remove_one(from) {
                return Err(corrupt());
            }
            self.spill[s].add(to, 1);
            return Ok(());
        }
        let len = self.len[n] as usize;
        let Some(i) = (0..len).find(|&i| self.parts[n][i] == from) else {
            return Err(corrupt());
        };
        self.counts[n][i] -= 1;
        if self.counts[n][i] == 0 {
            // Mirror the oracle's `swap_remove`: last entry fills the gap.
            self.parts[n][i] = self.parts[n][len - 1];
            self.counts[n][i] = self.counts[n][len - 1];
            self.len[n] = (len - 1) as u8; // lint: checked-cast — len <= INLINE_LAMBDA (4)
        }
        self.add_pin(n, to);
        Ok(())
    }
}

/// The original scan-based table: one `Vec<(part, count)>` per net,
/// linearly searched. Kept as the reference oracle for the
/// `proptest_connectivity` equivalence harness and as the baseline the
/// `phase_kernels` refine microbench measures [`NetConnectivity`] against.
pub struct NaiveConnectivity {
    /// Per-net rows of (part, pin count) pairs with nonzero count.
    pub table: Vec<Vec<(u32, u64)>>,
}

impl NaiveConnectivity {
    /// Builds the table for `partition` over `hg`'s nets.
    pub fn build<I: IndexType>(hg: &Hypergraph<I>, partition: &Partition) -> Self {
        let mut table: Vec<Vec<(u32, u64)>> = vec![Vec::new(); hg.num_nets().index()];
        for (n, row) in table.iter_mut().enumerate() {
            for &p in hg.pins(I::from_index(n)) {
                let part = partition.part_at(p.index());
                match row.iter_mut().find(|(q, _)| *q == part) {
                    Some((_, c)) => *c += 1,
                    None => row.push((part, 1)),
                }
            }
        }
        NaiveConnectivity { table }
    }

    /// Pin count of `part` on net `net` (0 when absent).
    // lint: checked-index — net < num_nets is the caller contract
    pub fn count<I: IndexType>(&self, net: I, part: u32) -> u64 {
        self.table[net.index()]
            .iter()
            .find(|(q, _)| *q == part)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Connectivity λ of `net`.
    // lint: checked-index — net < num_nets is the caller contract
    pub fn lambda<I: IndexType>(&self, net: I) -> usize {
        self.table[net.index()].len()
    }

    /// Visits every (part, count) pair of `net` in row order.
    // lint: checked-index — net < num_nets is the caller contract
    pub fn for_each_part<I: IndexType>(&self, net: I, mut visit: impl FnMut(u32, u64)) {
        for &(p, c) in &self.table[net.index()] {
            visit(p, c);
        }
    }

    /// Moves one pin of `net` from part `from` to part `to`.
    // lint: checked-index — net < num_nets is the caller contract; i is a position returned over the same row
    pub fn move_pin<I: IndexType>(
        &mut self,
        net: I,
        from: u32,
        to: u32,
    ) -> Result<(), PartitionError> {
        let row = &mut self.table[net.index()];
        let Some(i) = row.iter().position(|(q, _)| *q == from) else {
            return Err(PartitionError::internal(format!(
                "net {net} has no pins in part {from} to move to part {to}"
            )));
        };
        row[i].1 -= 1;
        if row[i].1 == 0 {
            row.swap_remove(i);
        }
        match row.iter_mut().find(|(q, _)| *q == to) {
            Some((_, c)) => *c += 1,
            None => row.push((to, 1)),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_of(t: &NetConnectivity, net: u32) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        t.for_each_part(net, |p, c| out.push((p, c)));
        out
    }

    #[test]
    fn inline_bookkeeping_matches_oracle() {
        let hg = Hypergraph::from_nets(4u32, &[vec![0, 1, 2, 3]]).unwrap();
        let p = Partition::new(2, vec![0, 0, 1, 1]).unwrap();
        let mut t = NetConnectivity::build(&hg, &p);
        assert_eq!(t.lambda(0u32), 2);
        assert_eq!(t.count(0u32, 0), 2);
        t.move_pin(0u32, 0, 1).unwrap();
        assert_eq!(t.count(0u32, 0), 1);
        assert_eq!(t.count(0u32, 1), 3);
        t.move_pin(0u32, 0, 1).unwrap();
        assert_eq!(t.lambda(0u32), 1);
        // Moving from a part with no pins is the typed internal error.
        assert!(t.move_pin(0u32, 0, 1).is_err());
    }

    #[test]
    fn spill_transition_preserves_row_order_and_counts() {
        // One 8-pin net across 8 parts forces λ past INLINE_LAMBDA.
        let pins: Vec<u32> = (0..8).collect();
        let hg = Hypergraph::from_nets(8u32, &[pins]).unwrap();
        let p = Partition::new(8, (0..8).collect()).unwrap();
        let t = NetConnectivity::build(&hg, &p);
        let o = NaiveConnectivity::build(&hg, &p);
        assert_eq!(t.lambda(0u32), 8);
        assert_eq!(order_of(&t, 0), o.table[0]);
    }

    #[test]
    fn spilled_moves_track_the_oracle_exactly() {
        let pins: Vec<u32> = (0..16).collect();
        let hg = Hypergraph::from_nets(16u32, &[pins]).unwrap();
        let parts: Vec<u32> = (0..16).map(|v| v % 8).collect();
        let p = Partition::new(8, parts).unwrap();
        let mut t = NetConnectivity::build(&hg, &p);
        let mut o = NaiveConnectivity::build(&hg, &p);
        // A deterministic pseudo-random move sequence, including emptying
        // parts (exercises swap_remove order maintenance on both sides).
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let from = ((x >> 33) % 8) as u32;
            let to = ((x >> 17) % 8) as u32;
            if from == to || t.count(0u32, from) == 0 {
                continue;
            }
            t.move_pin(0u32, from, to).unwrap();
            o.move_pin(0u32, from, to).unwrap();
            assert_eq!(order_of(&t, 0), o.table[0], "row order diverged");
            assert_eq!(t.lambda(0u32), o.lambda(0u32));
        }
    }

    #[test]
    fn inline_never_allocates_spill_rows_for_low_lambda() {
        let hg = Hypergraph::from_nets(6u32, &[vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let p = Partition::new(4, vec![0, 1, 2, 3, 3, 3]).unwrap();
        let t = NetConnectivity::build(&hg, &p);
        assert!(t.spill.is_empty());
        assert_eq!(t.lambda(0u32), 3);
        assert_eq!(t.lambda(1u32), 1);
    }
}
