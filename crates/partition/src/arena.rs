//! [`LevelArena`]: pooled scratch buffers for the multilevel engine.
//!
//! Every level of every bisection in a K-way run needs the same kinds of
//! scratch: match/map arrays, projected side vectors, contraction stamps,
//! and FM gain buckets. Allocating them fresh costs O(levels × vertices)
//! heap traffic per run; the arena recycles them so a run performs
//! O(levels) large allocations total (buffers grow to the finest level's
//! size once and are reused everywhere below it).
//!
//! [`LevelArena::disabled`] turns pooling off — every take allocates and
//! every give drops — which is the honest pre-refactor baseline for
//! benchmarking the arena's effect without keeping two driver codepaths.

use crate::gain::GainBuckets;

/// How many buffers of each kind the pool retains. Recursion depth bounds
/// live buffers, so a small cap is enough; it exists only to keep a
/// pathological caller from hoarding memory.
const POOL_CAP: usize = 32;

/// Allocation counters, exposed so benchmarks can report the arena's
/// effect directly (fresh = pool miss, reused = pool hit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Takes that had to allocate a new buffer.
    pub fresh: u64,
    /// Takes served from the pool.
    pub reused: u64,
}

macro_rules! pooled {
    ($take:ident, $give:ident, $field:ident, $t:ty) => {
        /// Takes a buffer of `len` elements, each set to `fill`.
        pub fn $take(&mut self, len: usize, fill: $t) -> Vec<$t> {
            match self.$field.pop() {
                Some(mut v) => {
                    self.stats.reused += 1;
                    v.clear();
                    v.resize(len, fill);
                    v
                }
                None => {
                    self.stats.fresh += 1;
                    vec![fill; len]
                }
            }
        }

        /// Returns a buffer to the pool (dropped when pooling is disabled).
        pub fn $give(&mut self, v: Vec<$t>) {
            if self.enabled && self.$field.len() < POOL_CAP {
                self.$field.push(v);
            }
        }
    };
}

/// Reusable flat buffers (and gain buckets) shared across the levels of a
/// multilevel run. See the module docs for the allocation argument.
#[derive(Debug, Default)]
pub struct LevelArena {
    enabled: bool,
    u8s: Vec<Vec<u8>>,
    i8s: Vec<Vec<i8>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    buckets: Vec<GainBuckets>,
    stats: ArenaStats,
}

impl LevelArena {
    /// A pooling arena (the default for [`crate::engine::MultilevelDriver`]).
    pub fn new() -> Self {
        LevelArena {
            enabled: true,
            ..Default::default()
        }
    }

    /// An arena that never pools: every take allocates fresh, every give
    /// drops. Matches the allocation behavior of the pre-engine drivers.
    pub fn disabled() -> Self {
        LevelArena::default()
    }

    /// Whether buffers are recycled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocation counters accumulated since construction.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    pooled!(take_u8, give_u8, u8s, u8);
    pooled!(take_i8, give_i8, i8s, i8);
    pooled!(take_u32, give_u32, u32s, u32);
    pooled!(take_u64, give_u64, u64s, u64);

    /// Takes gain buckets sized for `n` vertices and gains in
    /// `[-max_gain, max_gain]`.
    pub fn take_buckets(&mut self, n: usize, max_gain: i64) -> GainBuckets {
        match self.buckets.pop() {
            Some(mut b) => {
                self.stats.reused += 1;
                b.reset(n, max_gain);
                b
            }
            None => {
                self.stats.fresh += 1;
                GainBuckets::new(n, max_gain)
            }
        }
    }

    /// Returns gain buckets to the pool.
    pub fn give_buckets(&mut self, b: GainBuckets) {
        if self.enabled && self.buckets.len() < POOL_CAP {
            self.buckets.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_arena_reuses_capacity() {
        let mut a = LevelArena::new();
        let mut v = a.take_u32(10, 7);
        assert_eq!(v, vec![7; 10]);
        v.reserve(1000);
        let cap = v.capacity();
        a.give_u32(v);
        let v2 = a.take_u32(4, 0);
        assert_eq!(v2, vec![0; 4]);
        assert!(
            v2.capacity() >= cap,
            "pooled buffer should keep its capacity"
        );
        assert_eq!(
            a.stats(),
            ArenaStats {
                fresh: 1,
                reused: 1
            }
        );
    }

    #[test]
    fn disabled_arena_always_allocates() {
        let mut a = LevelArena::disabled();
        let v = a.take_u8(3, 1);
        a.give_u8(v);
        a.take_u8(3, 1);
        assert_eq!(
            a.stats(),
            ArenaStats {
                fresh: 2,
                reused: 0
            }
        );
    }

    #[test]
    fn buckets_roundtrip() {
        let mut a = LevelArena::new();
        let mut b = a.take_buckets(4, 5);
        b.insert(0, 3);
        a.give_buckets(b);
        let b2 = a.take_buckets(8, 2);
        assert!(b2.is_empty(), "recycled buckets must come back empty");
        assert_eq!(a.stats().reused, 1);
    }

    #[test]
    fn take_fill_value_respected() {
        let mut a = LevelArena::new();
        let v = a.take_i8(5, -1);
        assert!(v.iter().all(|&x| x == -1));
        a.give_i8(v);
        let v = a.take_i8(2, 3);
        assert_eq!(v, vec![3, 3]);
    }
}
