//! [`LevelArena`]: pooled scratch buffers for the multilevel engine.
//!
//! Every level of every bisection in a K-way run needs the same kinds of
//! scratch: match/map arrays, projected side vectors, contraction stamps,
//! and FM gain buckets. Allocating them fresh costs O(levels × vertices)
//! heap traffic per run; the arena recycles them so a run performs
//! O(levels) large allocations total (buffers grow to the finest level's
//! size once and are reused everywhere below it).
//!
//! [`LevelArena::disabled`] turns pooling off — every take allocates and
//! every give drops — which is the honest pre-refactor baseline for
//! benchmarking the arena's effect without keeping two driver codepaths.
//!
//! The arena itself is *not* generic over the index width: it holds
//! separate `u32` and `u64` pools side by side, and the [`ArenaIndex`]
//! trait statically dispatches a generic caller (`S::Ix::take_ids(...)`)
//! to the right pool. This keeps one arena (and one [`ArenaPool`])
//! servicing substrates of both widths in the same process.

use crate::gain::GainBuckets;
use fgh_sparse::IndexType;
use std::sync::PoisonError;

use fgh_invariant::{lock_order, OrderedMutex};

/// How many buffers of each kind the pool retains. Recursion depth bounds
/// live buffers, so a small cap is enough; it exists only to keep a
/// pathological caller from hoarding memory.
const POOL_CAP: usize = 32;

/// Allocation counters, exposed so benchmarks can report the arena's
/// effect directly (fresh = pool miss, reused = pool hit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Takes that had to allocate a new buffer.
    pub fresh: u64,
    /// Takes served from the pool.
    pub reused: u64,
    /// Gain-bucket takes that had to (re)allocate backing storage —
    /// fresh builds, plus pooled buckets whose capacity had to grow for a
    /// larger vertex count or gain span.
    pub bucket_grows: u64,
}

macro_rules! pooled {
    ($take:ident, $give:ident, $field:ident, $t:ty) => {
        /// Takes a buffer of `len` elements, each set to `fill`.
        pub fn $take(&mut self, len: usize, fill: $t) -> Vec<$t> {
            match self.$field.pop() {
                Some(mut v) => {
                    self.stats.reused += 1;
                    v.clear();
                    v.resize(len, fill);
                    v
                }
                None => {
                    self.stats.fresh += 1;
                    vec![fill; len]
                }
            }
        }

        /// Returns a buffer to the pool (dropped when pooling is disabled).
        pub fn $give(&mut self, v: Vec<$t>) {
            if self.enabled && self.$field.len() < POOL_CAP {
                self.$field.push(v);
            }
        }
    };
}

macro_rules! pooled_buckets {
    ($take:ident, $give:ident, $field:ident, $t:ty) => {
        /// Takes gain buckets sized for `n` vertices and gains in
        /// `[-max_gain, max_gain]`.
        pub fn $take(&mut self, n: usize, max_gain: i64) -> GainBuckets<$t> {
            match self.$field.pop() {
                Some(mut b) => {
                    self.stats.reused += 1;
                    if b.reset(n, max_gain) {
                        self.stats.bucket_grows += 1;
                    }
                    b
                }
                None => {
                    self.stats.fresh += 1;
                    self.stats.bucket_grows += 1;
                    GainBuckets::new(n, max_gain)
                }
            }
        }

        /// Returns gain buckets to the pool.
        pub fn $give(&mut self, b: GainBuckets<$t>) {
            if self.enabled && self.$field.len() < POOL_CAP {
                self.$field.push(b);
            }
        }
    };
}

/// Reusable flat buffers (and gain buckets) shared across the levels of a
/// multilevel run. See the module docs for the allocation argument.
#[derive(Debug, Default)]
pub struct LevelArena {
    enabled: bool,
    u8s: Vec<Vec<u8>>,
    i8s: Vec<Vec<i8>>,
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    buckets: Vec<GainBuckets>,
    buckets64: Vec<GainBuckets<u64>>,
    stats: ArenaStats,
}

impl LevelArena {
    /// A pooling arena (the default for [`crate::engine::MultilevelDriver`]).
    pub fn new() -> Self {
        LevelArena {
            enabled: true,
            ..Default::default()
        }
    }

    /// An arena that never pools: every take allocates fresh, every give
    /// drops. Matches the allocation behavior of the pre-engine drivers.
    pub fn disabled() -> Self {
        LevelArena::default()
    }

    /// Whether buffers are recycled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocation counters accumulated since construction.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Heap bytes currently *retained* by the idle pools — the arena's
    /// contribution to [`crate::config::Budget::max_bytes`] accounting.
    /// Buffers checked out to callers are counted by their owners (the
    /// levels and substrates holding them), not here.
    pub fn heap_bytes(&self) -> usize {
        fn vecs<T>(pool: &[Vec<T>]) -> usize {
            pool.iter()
                .map(|v| v.capacity() * std::mem::size_of::<T>())
                .sum()
        }
        vecs(&self.u8s)
            + vecs(&self.i8s)
            + vecs(&self.u32s)
            + vecs(&self.u64s)
            + self
                .buckets
                .iter()
                .map(GainBuckets::heap_bytes)
                .sum::<usize>()
            + self
                .buckets64
                .iter()
                .map(GainBuckets::heap_bytes)
                .sum::<usize>()
    }

    pooled!(take_u8, give_u8, u8s, u8);
    pooled!(take_i8, give_i8, i8s, i8);
    pooled!(take_u32, give_u32, u32s, u32);
    pooled!(take_u64, give_u64, u64s, u64);

    pooled_buckets!(take_buckets, give_buckets, buckets, u32);
    pooled_buckets!(take_buckets64, give_buckets64, buckets64, u64);
}

/// Static dispatch from a generic index width to the matching
/// [`LevelArena`] pools. The engine's generic code paths write
/// `S::Ix::take_ids(arena, n, fill)` and monomorphize straight to
/// `take_u32`/`take_u64` with zero runtime branching.
pub trait ArenaIndex: IndexType {
    /// Takes a pooled id buffer of `len` elements set to `fill`.
    fn take_ids(arena: &mut LevelArena, len: usize, fill: Self) -> Vec<Self>;
    /// Returns an id buffer to its pool.
    fn give_ids(arena: &mut LevelArena, v: Vec<Self>);
    /// Takes pooled gain buckets of this width.
    fn take_buckets(arena: &mut LevelArena, n: usize, max_gain: i64) -> GainBuckets<Self>;
    /// Returns gain buckets to their pool.
    fn give_buckets(arena: &mut LevelArena, b: GainBuckets<Self>);
}

impl ArenaIndex for u32 {
    fn take_ids(arena: &mut LevelArena, len: usize, fill: Self) -> Vec<Self> {
        arena.take_u32(len, fill)
    }

    fn give_ids(arena: &mut LevelArena, v: Vec<Self>) {
        arena.give_u32(v)
    }

    fn take_buckets(arena: &mut LevelArena, n: usize, max_gain: i64) -> GainBuckets<Self> {
        arena.take_buckets(n, max_gain)
    }

    fn give_buckets(arena: &mut LevelArena, b: GainBuckets<Self>) {
        arena.give_buckets(b)
    }
}

impl ArenaIndex for u64 {
    fn take_ids(arena: &mut LevelArena, len: usize, fill: Self) -> Vec<Self> {
        arena.take_u64(len, fill)
    }

    fn give_ids(arena: &mut LevelArena, v: Vec<Self>) {
        arena.give_u64(v)
    }

    fn take_buckets(arena: &mut LevelArena, n: usize, max_gain: i64) -> GainBuckets<Self> {
        arena.take_buckets64(n, max_gain)
    }

    fn give_buckets(arena: &mut LevelArena, b: GainBuckets<Self>) {
        arena.give_buckets64(b)
    }
}

/// A thread-safe pool of [`LevelArena`]s for parallel runs.
///
/// Each concurrency domain (a forked bisection subtree, a seed of a
/// multi-seed fan-out) checks out a whole arena, works on it without any
/// synchronization, and checks it back in when done. The mutex is touched
/// only at fork/join boundaries — never inside the multilevel hot loops —
/// so contention is bounded by the number of forks, not the number of
/// levels.
#[derive(Debug)]
pub struct ArenaPool {
    arenas: OrderedMutex<Vec<LevelArena>>,
}

impl Default for ArenaPool {
    fn default() -> Self {
        ArenaPool {
            arenas: OrderedMutex::new("ArenaPool", lock_order::ARENA_POOL, Vec::new()),
        }
    }
}

/// Cap on retained arenas: forks are bounded by thread count, so anything
/// past a generous multiple is a caller hoarding memory.
const ARENA_POOL_CAP: usize = 64;

impl ArenaPool {
    /// An empty pool; arenas are created on first checkout.
    pub fn new() -> Self {
        ArenaPool::default()
    }

    /// Takes an arena out of the pool, creating a fresh pooling arena when
    /// the pool is empty.
    // LevelArena::default() is the *disabled* arena, so clippy's
    // unwrap_or_default() suggestion would turn pooling off.
    #[allow(clippy::unwrap_or_default)]
    pub fn checkout(&self) -> LevelArena {
        self.arenas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_else(LevelArena::new)
    }

    /// Returns an arena to the pool so its buffers survive for the next
    /// checkout. Disabled arenas are dropped: they hold no buffers and
    /// recycling them would silently turn pooling back off for a future
    /// checkout.
    pub fn checkin(&self, arena: LevelArena) {
        if !arena.is_enabled() {
            return;
        }
        let mut arenas = self.arenas.lock().unwrap_or_else(PoisonError::into_inner);
        if arenas.len() < ARENA_POOL_CAP {
            arenas.push(arena);
        }
    }

    /// Number of idle arenas currently held.
    pub fn idle(&self) -> usize {
        self.arenas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_arena_reuses_capacity() {
        let mut a = LevelArena::new();
        let mut v = a.take_u32(10, 7);
        assert_eq!(v, vec![7; 10]);
        v.reserve(1000);
        let cap = v.capacity();
        a.give_u32(v);
        let v2 = a.take_u32(4, 0);
        assert_eq!(v2, vec![0; 4]);
        assert!(
            v2.capacity() >= cap,
            "pooled buffer should keep its capacity"
        );
        assert_eq!(
            a.stats(),
            ArenaStats {
                fresh: 1,
                reused: 1,
                bucket_grows: 0
            }
        );
    }

    #[test]
    fn disabled_arena_always_allocates() {
        let mut a = LevelArena::disabled();
        let v = a.take_u8(3, 1);
        a.give_u8(v);
        a.take_u8(3, 1);
        assert_eq!(
            a.stats(),
            ArenaStats {
                fresh: 2,
                reused: 0,
                bucket_grows: 0
            }
        );
    }

    #[test]
    fn buckets_roundtrip() {
        let mut a = LevelArena::new();
        let mut b = a.take_buckets(4, 5);
        b.insert(0, 3);
        a.give_buckets(b);
        let b2 = a.take_buckets(8, 2);
        assert!(b2.is_empty(), "recycled buckets must come back empty");
        assert_eq!(a.stats().reused, 1);
    }

    #[test]
    fn wide_and_narrow_pools_are_independent() {
        let mut a = LevelArena::new();
        let v32 = <u32 as ArenaIndex>::take_ids(&mut a, 4, 7);
        assert_eq!(v32, vec![7u32; 4]);
        let v64 = <u64 as ArenaIndex>::take_ids(&mut a, 4, 9);
        assert_eq!(v64, vec![9u64; 4]);
        <u32 as ArenaIndex>::give_ids(&mut a, v32);
        <u64 as ArenaIndex>::give_ids(&mut a, v64);
        // Each width hits its own pool on the next take.
        <u32 as ArenaIndex>::take_ids(&mut a, 2, 0);
        <u64 as ArenaIndex>::take_ids(&mut a, 2, 0);
        assert_eq!(a.stats().reused, 2);

        let mut b64 = <u64 as ArenaIndex>::take_buckets(&mut a, 3, 4);
        b64.insert(1u64, 2);
        <u64 as ArenaIndex>::give_buckets(&mut a, b64);
        let b64 = <u64 as ArenaIndex>::take_buckets(&mut a, 3, 4);
        assert!(b64.is_empty(), "recycled u64 buckets must come back empty");
    }

    #[test]
    fn heap_bytes_counts_idle_buffers() {
        let mut a = LevelArena::new();
        assert_eq!(a.heap_bytes(), 0);
        let v = a.take_u64(100, 0);
        assert_eq!(a.heap_bytes(), 0, "checked-out buffers belong to callers");
        a.give_u64(v);
        assert!(a.heap_bytes() >= 100 * 8);
        let b = a.take_buckets(50, 10);
        a.give_buckets(b);
        assert!(a.heap_bytes() > 100 * 8);
    }

    #[test]
    fn pool_roundtrips_arenas_with_their_buffers() {
        let pool = ArenaPool::new();
        assert_eq!(pool.idle(), 0);
        let mut a = pool.checkout();
        assert!(a.is_enabled());
        let v = a.take_u32(16, 0);
        a.give_u32(v);
        pool.checkin(a);
        assert_eq!(pool.idle(), 1);
        let mut b = pool.checkout();
        assert_eq!(pool.idle(), 0);
        b.take_u32(8, 1);
        assert_eq!(
            b.stats(),
            ArenaStats {
                fresh: 1,
                reused: 1,
                bucket_grows: 0
            }
        );
    }

    #[test]
    fn pool_drops_disabled_arenas() {
        let pool = ArenaPool::new();
        pool.checkin(LevelArena::disabled());
        assert_eq!(pool.idle(), 0, "disabled arenas must not be recycled");
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(ArenaPool::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                s.spawn(move || {
                    let mut a = pool.checkout();
                    let v = a.take_u64(32, 9);
                    assert_eq!(v.len(), 32);
                    a.give_u64(v);
                    pool.checkin(a);
                });
            }
        });
        assert!(pool.idle() >= 1 && pool.idle() <= 4);
    }

    #[test]
    fn take_fill_value_respected() {
        let mut a = LevelArena::new();
        let v = a.take_i8(5, -1);
        assert!(v.iter().all(|&x| x == -1));
        a.give_i8(v);
        let v = a.take_i8(2, 3);
        assert_eq!(v, vec![3, 3]);
    }
}
