//! The resilience acceptance test: a daemon under concurrent hostile
//! load must crash zero times, answer every surviving request with a
//! valid partition or a typed rejection, observe at least one
//! disconnect-driven cancellation, contain injected worker panics, and
//! drain cleanly on shutdown with a schema-valid metrics report.

use std::time::{Duration, Instant};

use fgh_serve::client::{decompose_request, LoadConfig, ServeClient};
use fgh_serve::metrics::validate_serve_metrics_value;
use fgh_serve::protocol::codes;
use fgh_serve::server::{ServeConfig, Server};
use fgh_serve::{run_load, Listen};
use fgh_trace::json::Value;

fn test_config() -> ServeConfig {
    let mut cfg = ServeConfig::loopback();
    cfg.workers = 4;
    cfg.queue_capacity = 8; // small on purpose: the load must trip admission control
    cfg.fault_injection = true;
    cfg.drain = Duration::from_secs(30);
    cfg
}

#[test]
fn hostile_load_then_clean_drain() {
    let handle = Server::start(test_config()).expect("daemon must start");
    let addr = handle.addr().to_string();

    // 64+ concurrent jobs with malformed frames, invalid requests,
    // injected worker panics, and mid-request disconnects mixed in.
    let load = LoadConfig::new(72, 12);
    let report = run_load(&addr, &load);

    assert!(
        report.is_clean(),
        "protocol violations or refused connections: {:?} (connect_failures={})",
        report.violations,
        report.connect_failures
    );
    assert!(report.jobs >= 64, "load must issue >= 64 jobs");
    assert!(report.ok_full >= 1, "some jobs must complete fully");
    assert!(report.malformed_sent >= 1);
    assert!(report.disconnects_sent >= 1);
    assert!(report.panics_sent >= 1);
    assert!(report.bad_requests_sent >= 1);
    // Batch frames (mixed SpMV + SpGEMM bodies with embedded metrics
    // documents) rode the same hostile mix and validated clean.
    assert!(report.batches_sent >= 1);
    // Every injected panic came back as the typed worker-panic error.
    assert_eq!(
        report.typed_errors.get(codes::WORKER_PANIC).copied(),
        Some(report.panics_sent),
        "typed errors seen: {:?}",
        report.typed_errors
    );
    // The daemon is still alive and serving after all of that.
    let mut probe = ServeClient::connect_tcp(&addr).expect("daemon must still accept");
    let pong = probe.ping().expect("daemon must still answer");
    assert_eq!(pong.get("ok"), Some(&Value::Bool(true)));
    drop(probe);

    // Graceful shutdown: drain must finish well inside the deadline.
    let drain_started = Instant::now();
    handle.shutdown();
    let snapshot = handle.join();
    assert!(
        drain_started.elapsed() < Duration::from_secs(30),
        "drain exceeded the deadline"
    );
    assert!(snapshot.drain_clean, "drain must be clean: {snapshot:?}");

    // Cancellation was observable: every mid-request disconnect tripped
    // a token and the worker returned to service (it kept completing
    // jobs afterwards — report.ok_full proves that).
    assert!(
        snapshot.cancelled_jobs >= 1,
        "disconnects must cancel jobs: {snapshot:?}"
    );
    assert!(
        snapshot.worker_panics >= report.panics_sent,
        "injected panics must be counted: {snapshot:?}"
    );
    assert_eq!(
        snapshot.rejected_bad_frame, report.malformed_sent,
        "malformed frames must be counted: {snapshot:?}"
    );
    assert!(snapshot.rejected_bad_request >= report.bad_requests_sent);
    assert!(snapshot.accepted_connections >= report.jobs);
    // Identical honest jobs repeat across the mix, so the plan cache
    // must have served hits.
    assert!(
        snapshot.cache_hits >= 1,
        "cache must see hits: {snapshot:?}"
    );

    // The final report is schema-valid fgh-serve-metrics/1 and survives
    // a JSON round trip.
    let doc = snapshot.to_document();
    validate_serve_metrics_value(&doc).expect("snapshot must validate");
    let back = fgh_trace::json::parse(&doc.to_json()).expect("report must be valid json");
    validate_serve_metrics_value(&back).expect("round-tripped report must validate");
}

#[test]
fn overload_sheds_with_retry_hint() {
    let mut cfg = test_config();
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    let handle = Server::start(cfg).expect("daemon must start");
    let addr = handle.addr().to_string();

    // Saturate the single worker with a stalled job, fill the queue,
    // then observe the shed.
    let slow = || {
        let mut v = decompose_request("bcspwr10", 64, 2, 1);
        if let Value::Obj(doc) = &mut v {
            doc.insert("inject".into(), Value::Str("sleep_ms:1500".into()));
        }
        v
    };
    let addr2 = addr.clone();
    let stall = std::thread::spawn(move || {
        let mut c = ServeClient::connect_tcp(&addr2).unwrap();
        c.request(&slow()) // occupies the worker
    });
    std::thread::sleep(Duration::from_millis(200));
    let addr3 = addr.clone();
    let queued = std::thread::spawn(move || {
        let mut c = ServeClient::connect_tcp(&addr3).unwrap();
        c.request(&slow()) // fills the queue slot
    });
    std::thread::sleep(Duration::from_millis(200));

    let mut c = ServeClient::connect_tcp(&addr).expect("connect");
    let shed = c
        .request(&decompose_request("bcspwr10", 64, 2, 2))
        .expect("shed response must arrive");
    assert_eq!(shed.get("ok"), Some(&Value::Bool(false)));
    let err = shed.get("error").expect("typed error");
    assert_eq!(
        err.get("code").and_then(Value::as_str),
        Some(codes::OVERLOADED)
    );
    assert!(
        err.get("retry_after_ms").and_then(Value::as_u64).is_some(),
        "shed must carry a retry-after hint: {}",
        shed.to_json()
    );

    stall.join().unwrap().expect("stalled job must complete");
    queued.join().unwrap().expect("queued job must complete");
    handle.shutdown();
    let snapshot = handle.join();
    assert!(snapshot.rejected_overloaded >= 1);
    assert!(snapshot.drain_clean);
}

#[test]
fn shutdown_rejects_new_work_and_reports_dirty_drain_past_deadline() {
    let mut cfg = test_config();
    cfg.workers = 1;
    cfg.drain = Duration::from_millis(300); // far shorter than the stalled job
    let handle = Server::start(cfg).expect("daemon must start");
    let addr = handle.addr().to_string();

    // Park a long job on the single worker, then shut down mid-job.
    let addr2 = addr.clone();
    let stalled = std::thread::spawn(move || {
        let mut c = ServeClient::connect_tcp(&addr2).unwrap();
        let mut v = decompose_request("bcspwr10", 64, 2, 1);
        if let Value::Obj(doc) = &mut v {
            doc.insert("inject".into(), Value::Str("sleep_ms:30000".into()));
        }
        c.request(&v)
    });
    std::thread::sleep(Duration::from_millis(300));
    let started = Instant::now();
    handle.shutdown();
    let snapshot = handle.join();
    // The drain deadline cancelled the stalled job instead of waiting
    // the full 30s sleep out.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "drain must not wait out the stalled job"
    );
    assert!(!snapshot.drain_clean, "deadline overrun must be reported");
    assert!(
        snapshot.cancelled_jobs >= 1,
        "the stalled job must have been cancelled: {snapshot:?}"
    );
    // The client still got a typed response (cancelled-degraded success),
    // not a dropped connection.
    let response = stalled
        .join()
        .unwrap()
        .expect("stalled client must get a frame");
    assert_eq!(response.get("ok"), Some(&Value::Bool(true)));
    assert_eq!(
        response.get("degraded_code").and_then(Value::as_str),
        Some("cancelled"),
        "{}",
        response.to_json()
    );
}

#[cfg(unix)]
#[test]
fn unix_socket_transport_serves() {
    let path = std::env::temp_dir().join(format!("fgh-serve-test-{}.sock", std::process::id()));
    let mut cfg = test_config();
    cfg.listen = Listen::Unix(path.clone());
    let handle = Server::start(cfg).expect("daemon must start on a unix socket");
    let mut c = ServeClient::connect_unix(&path).expect("unix connect");
    let r = c
        .request(&decompose_request("bcspwr10", 64, 2, 1))
        .expect("decompose over unix socket");
    assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
    drop(c);
    handle.shutdown();
    let snapshot = handle.join();
    assert!(snapshot.drain_clean);
    assert!(!path.exists(), "socket file must be removed on shutdown");
}
