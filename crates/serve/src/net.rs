//! Transport abstraction: one listener/stream pair over TCP or (on
//! unix) a filesystem socket, so the rest of the daemon is
//! transport-blind.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::time::Duration;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    Tcp(String),
    /// A unix-domain socket path (created on bind, removed on drop).
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// A bound listener.
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix-domain.
    #[cfg(unix)]
    Unix(UnixListener, std::path::PathBuf),
}

impl Listener {
    /// Binds the requested transport.
    pub fn bind(listen: &Listen) -> std::io::Result<Listener> {
        match listen {
            Listen::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a crashed predecessor blocks
                // bind; remove it (a live daemon would still hold it via
                // the listening socket, but this daemon is single-owner
                // by deployment contract).
                let _ = std::fs::remove_file(path);
                Ok(Listener::Unix(UnixListener::bind(path)?, path.clone()))
            }
        }
    }

    /// The bound address as a display/connect string (`host:port` for
    /// TCP, the path for unix).
    pub fn local_addr_string(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into()),
            #[cfg(unix)]
            Listener::Unix(_, path) => path.display().to_string(),
        }
    }

    /// Switches the accept path between blocking and polling modes.
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection (errors include `WouldBlock` in
    /// nonblocking mode).
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What a liveness probe on an idle-during-request connection saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Socket open, no data — the client is waiting for its response.
    Alive,
    /// EOF — the client went away.
    Disconnected,
    /// The client sent bytes while its request was still in flight —
    /// a protocol violation (the protocol is strictly request/response).
    UnexpectedData,
}

/// One accepted connection.
pub enum Stream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix-domain.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Connects to a daemon address (TCP `host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Stream> {
        Ok(Stream::Tcp(TcpStream::connect(addr)?))
    }

    /// Connects to a daemon's unix socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> std::io::Result<Stream> {
        Ok(Stream::Unix(UnixStream::connect(path)?))
    }

    /// Applies a read timeout (None = blocking forever).
    pub fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    /// Non-destructive-enough liveness probe while a request is in
    /// flight: a nonblocking 1-byte read. EOF means the client
    /// disconnected (its job should be cancelled); actual data is a
    /// protocol violation (no pipelining), reported as such.
    pub fn probe_liveness(&mut self) -> Probe {
        if self.set_nonblocking(true).is_err() {
            return Probe::Disconnected;
        }
        let mut byte = [0u8; 1];
        let result = match self {
            Stream::Tcp(s) => s.read(&mut byte),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(&mut byte),
        };
        let probe = match result {
            Ok(0) => Probe::Disconnected,
            Ok(_) => Probe::UnexpectedData,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Probe::Alive,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Probe::Alive,
            Err(_) => Probe::Disconnected,
        };
        if self.set_nonblocking(false).is_err() {
            return Probe::Disconnected;
        }
        probe
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}
