//! Bounded job queue with load-shed admission: the backpressure point of
//! the daemon.
//!
//! `push` never blocks — a full queue is an *admission decision*, and
//! the connection thread turns it into an `overloaded` rejection with a
//! retry-after hint rather than stacking latency invisibly. `pop`
//! blocks workers until a job, a close, or a drain-poll timeout.

use std::collections::VecDeque;
use std::sync::Condvar;
use std::time::Duration;

use fgh_invariant::{lock_order, OrderedMutex, OrderedMutexGuard};

/// Why a `push` was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// At capacity — shed the job.
    Full {
        /// Jobs currently queued (== capacity).
        depth: usize,
    },
    /// The queue is closed for shutdown.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    peak_depth: usize,
}

/// A bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`, no async
/// runtime. Cheap at the scale of decomposition jobs (each worth
/// milliseconds to seconds of partitioning).
pub struct BoundedQueue<T> {
    cap: usize,
    inner: OrderedMutex<Inner<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` (>= 1) waiting jobs.
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            inner: OrderedMutex::new(
                "JobQueue",
                lock_order::JOB_QUEUE,
                Inner {
                    items: VecDeque::new(),
                    closed: false,
                    peak_depth: 0,
                },
            ),
            available: Condvar::new(),
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn lock(&self) -> OrderedMutexGuard<'_, Inner<T>> {
        // A poisoned queue mutex means a panic *while holding the lock*;
        // the queue state itself (a VecDeque of jobs) is still coherent,
        // and refusing to serve would turn one lost job into a dead
        // daemon. Recover the guard.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Non-blocking admission: `Ok` enqueues, `Err` sheds.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed);
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full {
                depth: g.items.len(),
            });
        }
        g.items.push_back(item);
        g.peak_depth = g.peak_depth.max(g.items.len());
        drop(g);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking take with a poll timeout. `None` means "no job right
    /// now" — either the timeout elapsed (caller re-checks its shutdown
    /// flag and calls again) or the queue is closed *and* empty (caller
    /// exits).
    pub fn pop(&self, timeout: Duration) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            let (guard, timed_out) = g.wait_timeout(&self.available, timeout);
            g = guard;
            if timed_out {
                return g.items.pop_front();
            }
        }
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.lock().peak_depth
    }

    /// Closes admission (pushes fail with [`PushError::Closed`]) and
    /// wakes every waiting worker. Queued jobs remain poppable — drain
    /// semantics, not abandonment.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// `true` once [`BoundedQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_sheds_at_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full { depth: 2 }));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err(PushError::Closed));
        // The queued job is still served (drain), then pop returns None.
        assert_eq!(q.pop(Duration::from_millis(10)), Some("a"));
        assert_eq!(q.pop(Duration::from_millis(10)), None);
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }
}
