//! Job execution: one queued decomposition request → one response
//! frame, with panic containment and poisoned-state quarantine.
//!
//! Each worker thread loops on the shared [`BoundedQueue`], wrapping
//! every job in `catch_unwind`: a panicking job (an engine defect, or an
//! injected fault in tests) produces a typed `worker-panic` response and
//! the worker keeps serving. Because a mid-partition panic can strand
//! arenas or leave shared warm state suspect, the panic also
//! *quarantines* the shared [`EngineSession`] — the supervisor swaps in
//! a fresh session (fresh [`fgh_core::ArenaPool`]), so no later job ever
//! draws scratch that a dying job touched.
//!
//! [`BoundedQueue`]: crate::queue::BoundedQueue

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fgh_core::report::{metrics_document, spgemm_metrics_document};
use fgh_core::{
    decompose_workload_any_in, Budget, CancelToken, DecompositionOutcome, EngineSession, FghError,
    JobParams, Model, SpgemmOutcome, WorkloadAny,
};
use fgh_invariant::{lock_order, OrderedMutex, OrderedMutexGuard};
use fgh_sparse::io::parse_matrix_market_bytes_any;
use fgh_sparse::{catalog, AnyCsrMatrix};
use fgh_trace::json::Value;

use crate::cache::{fnv1a, CachedPlan, PlanCache};
use crate::metrics::ServeCounters;
use crate::protocol::{codes, error_response, DecomposeRequest, MatrixSource};

/// What one queued job executes: a single decompose request, or a whole
/// batch run back-to-back on one queue slot.
pub enum JobPayload {
    /// One `{"op":"decompose"}` request.
    Single(Box<DecomposeRequest>),
    /// One `{"op":"batch"}` frame's requests, in order.
    Batch(Vec<DecomposeRequest>),
}

/// One admitted decomposition job, queued for a worker.
pub struct Job {
    /// The validated request(s).
    pub request: JobPayload,
    /// Tripped by the connection thread on client disconnect and by the
    /// server when the drain deadline expires.
    pub cancel: CancelToken,
    /// Where the response frame goes (the connection thread relays it).
    pub respond: SyncSender<Value>,
}

/// The shared engine handle with quarantine: workers take a cheap clone
/// per job; a panic swaps the stored session for a fresh one.
pub struct SharedSession {
    inner: OrderedMutex<EngineSession>,
}

impl SharedSession {
    /// Wraps a session for shared use.
    pub fn new(session: EngineSession) -> Self {
        SharedSession {
            inner: OrderedMutex::new("SessionState", lock_order::SESSION_STATE, session),
        }
    }

    fn lock(&self) -> OrderedMutexGuard<'_, EngineSession> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A clone of the current session (shares its arena pool).
    pub fn current(&self) -> EngineSession {
        self.lock().clone()
    }

    /// Discards the current session for a fresh one — nothing a
    /// panicking job may have poisoned survives into later jobs.
    pub fn quarantine(&self) {
        *self.lock() = EngineSession::new();
    }

    /// Warm arenas parked in the current session's pool.
    pub fn idle_arenas(&self) -> usize {
        self.lock().idle_arenas()
    }
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

/// Stable content-identity + parameters hash — the plan-cache key.
fn cache_key(req: &DecomposeRequest) -> u64 {
    let mut descriptor = String::new();
    match &req.source {
        MatrixSource::Catalog {
            name,
            scale,
            gen_seed,
        } => {
            descriptor.push_str("catalog:");
            descriptor.push_str(&name.to_ascii_lowercase());
            descriptor.push_str(&format!(":{scale}:{gen_seed}"));
        }
        MatrixSource::Inline(mm) => {
            descriptor.push_str(&format!("inline:{:016x}", fnv1a(mm.as_bytes())));
        }
    }
    descriptor.push_str(&format!(
        "|model={}|k={}|eps={}|seed={}|runs={}",
        req.model, req.k, req.epsilon, req.seed, req.runs
    ));
    fnv1a(descriptor.as_bytes())
}

/// Builds the matrix a request names. Errors are client-attributable.
fn build_matrix(source: &MatrixSource) -> Result<AnyCsrMatrix, String> {
    match source {
        MatrixSource::Catalog {
            name,
            scale,
            gen_seed,
        } => {
            let entry =
                catalog::by_name(name).ok_or_else(|| format!("unknown catalog matrix {name:?}"))?;
            Ok(AnyCsrMatrix::U32(entry.generate_scaled(*scale, *gen_seed)))
        }
        MatrixSource::Inline(mm) => parse_matrix_market_bytes_any(mm.as_bytes())
            .and_then(|coo| coo.try_into_csr())
            .map_err(|e| format!("matrix_mm: {e}")),
    }
}

fn owners_array(owners: &[u32]) -> Value {
    Value::Arr(owners.iter().map(|&o| num(o as u64)).collect())
}

fn success_response(
    req: &DecomposeRequest,
    plan: &CachedPlan,
    cache_hit: bool,
    elapsed: Duration,
) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert("ok".into(), Value::Bool(true));
    doc.insert(
        "status".into(),
        Value::Str(
            if plan.degraded_code.is_some() {
                "degraded"
            } else {
                "full"
            }
            .into(),
        ),
    );
    doc.insert(
        "degraded_code".into(),
        plan.degraded_code
            .map_or(Value::Null, |c| Value::Str(c.into())),
    );
    doc.insert(
        "degraded_reason".into(),
        plan.degraded_reason.clone().map_or(Value::Null, Value::Str),
    );
    doc.insert("k".into(), num(req.k as u64));
    doc.insert(
        "nnz".into(),
        num(plan.decomposition.nonzero_owner.len() as u64),
    );
    doc.insert("objective".into(), num(plan.objective));
    doc.insert("volume".into(), num(plan.volume));
    doc.insert("imbalance".into(), Value::Num(plan.imbalance));
    doc.insert(
        "cache".into(),
        Value::Str(if cache_hit { "hit" } else { "miss" }.into()),
    );
    let elapsed_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
    doc.insert("elapsed_ns".into(), num(elapsed_ns));
    if req.include_owners {
        doc.insert(
            "nonzero_owner".into(),
            owners_array(&plan.decomposition.nonzero_owner),
        );
        doc.insert(
            "vec_owner".into(),
            owners_array(&plan.decomposition.vec_owner),
        );
    }
    Value::Obj(doc)
}

fn plan_from_outcome(out: &DecompositionOutcome) -> CachedPlan {
    CachedPlan {
        decomposition: out.decomposition.clone(),
        objective: out.objective,
        volume: out.stats.total_volume(),
        imbalance: out.stats.load_imbalance_percent(),
        degraded_code: out.status.code(),
        degraded_reason: out.status.reason().map(ToString::to_string),
    }
}

/// Honors a request's fault-injection directive (tests/self-test only).
fn apply_injection(fault_injection: bool, req: &DecomposeRequest, cancel: &CancelToken) {
    if !fault_injection {
        return;
    }
    if let Some(inject) = req.inject.as_deref() {
        if inject == "panic" {
            panic!("injected worker fault (inject=panic)");
        }
        if let Some(ms) = inject.strip_prefix("sleep_ms:") {
            if let Ok(ms) = ms.parse::<u64>() {
                // Cooperative stall: sleep in slices so cancellation
                // (client disconnect, drain deadline) cuts it short.
                let deadline = Instant::now() + Duration::from_millis(ms.min(60_000));
                while Instant::now() < deadline && !cancel.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

/// Runs one job to a response [`Value`]. Never panics on well-behaved
/// engine code; deliberate fault injection panics are the caller's
/// `catch_unwind` business.
pub fn execute_job(
    session: &EngineSession,
    cache: &PlanCache,
    counters: &ServeCounters,
    fault_injection: bool,
    req: &DecomposeRequest,
    cancel: &CancelToken,
) -> Value {
    let start = Instant::now();
    apply_injection(fault_injection, req, cancel);

    // SpGEMM jobs bypass the plan cache: the cached-plan shape (a 2D
    // SpMV decomposition) does not fit a task-hypergraph outcome, and
    // the traffic counters are cheap relative to the partitioning.
    if req.workload == "spgemm" {
        return execute_workload(session, counters, req, cancel, false);
    }

    let a = match build_matrix(&req.source) {
        Ok(a) => a,
        Err(e) => return error_response(codes::BAD_REQUEST, &e, None),
    };
    let model: Model = match req.model.parse() {
        Ok(m) => m,
        Err(e) => return error_response(codes::BAD_REQUEST, &e, None),
    };

    let key = cache_key(req);
    if let Some(plan) = cache.get(key) {
        // Integrity revalidation: a cached plan must still be a valid
        // decomposition of the freshly built matrix. A corrupted or
        // colliding entry is quarantined and the job recomputes.
        let valid = match &a {
            AnyCsrMatrix::U32(m) => plan.decomposition.validate(m).is_ok(),
            AnyCsrMatrix::U64(m) => plan.decomposition.validate(m).is_ok(),
        };
        if valid {
            if plan.degraded_code.is_some() {
                ServeCounters::bump(&counters.degraded);
            }
            return success_response(req, &plan, true, start.elapsed());
        }
        cache.quarantine(key);
    }

    let mut budget = Budget::UNLIMITED;
    if let Some(ms) = req.budget_ms {
        budget.max_wall = Some(Duration::from_millis(ms));
    }
    if let Some(bytes) = req.budget_bytes {
        budget.max_bytes = Some(bytes.min(usize::MAX as u64) as usize); // min-clamp makes the u64 -> usize conversion lossless
    }
    let params = JobParams::new(model, req.k)
        .with_epsilon(req.epsilon)
        .with_seed(req.seed)
        .with_runs(req.runs)
        .with_budget(budget)
        .with_cancel(cancel.clone());

    match session.decompose_any(&a, params) {
        Ok(out) => {
            if out.engine.cancelled() {
                ServeCounters::bump(&counters.cancelled_jobs);
            }
            if out.status.is_degraded() {
                ServeCounters::bump(&counters.degraded);
            }
            let plan = plan_from_outcome(&out);
            // Only full outcomes are worth caching: a degraded partial
            // (budget, cancellation) is not the answer the next caller
            // with the same parameters wants.
            if !out.status.is_degraded() {
                cache.put(key, plan.clone());
            }
            success_response(req, &plan, false, start.elapsed())
        }
        Err(e) => fgh_error_response(&e),
    }
}

/// Maps a typed engine error onto the protocol's stable error codes.
fn fgh_error_response(e: &FghError) -> Value {
    match e {
        FghError::UnsupportedWidth { model, width } => error_response(
            codes::UNSUPPORTED_WIDTH,
            &format!(
                "model {model} cannot run at {}-bit indices; width-capable models: \
                 graph-1d, hypergraph-1d-colnet, hypergraph-1d-rownet, fine-grain-2d",
                width.bits()
            ),
            None,
        ),
        FghError::InvalidInput(_) | FghError::Sparse(_) | FghError::Model(_) => {
            error_response(codes::BAD_REQUEST, &e.to_string(), None)
        }
        _ => error_response(codes::DECOMPOSE_FAILED, &e.to_string(), None),
    }
}

/// Replays the partitioned SpGEMM through the storage-traffic simulator
/// at the outcome's carrier width. `Null` only when the replay itself
/// fails (a decode/validation defect — the counters are never guessed).
fn spgemm_traffic(a: &AnyCsrMatrix, b: &AnyCsrMatrix, out: &SpgemmOutcome) -> Value {
    let (aw, bw) = match (a.convert_width(out.width), b.convert_width(out.width)) {
        (Ok(aw), Ok(bw)) => (aw, bw),
        _ => return Value::Null,
    };
    let report = match (&aw, &bw) {
        (AnyCsrMatrix::U32(a), AnyCsrMatrix::U32(b)) => {
            fgh_traffic::simulate(a, b, &out.decomposition)
        }
        (AnyCsrMatrix::U64(a), AnyCsrMatrix::U64(b)) => {
            fgh_traffic::simulate(a, b, &out.decomposition)
        }
        _ => return Value::Null,
    };
    report.map_or(Value::Null, |r| r.to_value())
}

/// Executes one decompose body fresh (no plan cache) for either
/// workload, returning a full response document. With `embed_metrics`
/// the document carries the request's validated `fgh-metrics/1` report
/// under `"metrics"` — the batch-response contract. SpGEMM responses
/// always carry the simulator's `"traffic"` counters and `"flops"`.
pub fn execute_workload(
    session: &EngineSession,
    counters: &ServeCounters,
    req: &DecomposeRequest,
    cancel: &CancelToken,
    embed_metrics: bool,
) -> Value {
    let start = Instant::now();
    let a = match build_matrix(&req.source) {
        Ok(a) => a,
        Err(e) => return error_response(codes::BAD_REQUEST, &e, None),
    };
    let model: Model = match req.model.parse() {
        Ok(m) => m,
        Err(e) => return error_response(codes::BAD_REQUEST, &e, None),
    };
    let mut budget = Budget::UNLIMITED;
    if let Some(ms) = req.budget_ms {
        budget.max_wall = Some(Duration::from_millis(ms));
    }
    if let Some(bytes) = req.budget_bytes {
        budget.max_bytes = Some(bytes.min(usize::MAX as u64) as usize); // min-clamp makes the u64 -> usize conversion lossless
    }
    let params = JobParams::new(model, req.k)
        .with_epsilon(req.epsilon)
        .with_seed(req.seed)
        .with_runs(req.runs)
        .with_budget(budget)
        .with_cancel(cancel.clone());
    let cfg = params.into_config(session);

    let mut doc = BTreeMap::new();
    doc.insert("ok".into(), Value::Bool(true));
    doc.insert("k".into(), num(req.k as u64));
    doc.insert("cache".into(), Value::Str("bypass".into()));
    doc.insert("workload".into(), Value::Str(req.workload.clone()));

    if req.workload == "spgemm" {
        let b_owned;
        let b = match &req.source_b {
            Some(s) => match build_matrix(s) {
                Ok(m) => {
                    b_owned = m;
                    &b_owned
                }
                Err(e) => return error_response(codes::BAD_REQUEST, &e, None),
            },
            None => &a, // default: the A·A product
        };
        let out = decompose_workload_any_in(WorkloadAny::Spgemm(&a, b), &cfg, session.pool())
            .and_then(fgh_core::WorkloadOutcome::into_spgemm);
        let out = match out {
            Ok(o) => o,
            Err(e) => return fgh_error_response(&e),
        };
        if out.engine.cancelled() {
            ServeCounters::bump(&counters.cancelled_jobs);
        }
        if out.status.is_degraded() {
            ServeCounters::bump(&counters.degraded);
        }
        status_fields(&mut doc, out.status.code(), out.status.reason());
        doc.insert("nnz".into(), num(a.nnz() as u64));
        doc.insert("flops".into(), num(out.flops));
        doc.insert("objective".into(), num(out.objective));
        doc.insert("volume".into(), num(out.stats.total_volume()));
        doc.insert(
            "imbalance".into(),
            Value::Num(out.stats.load_imbalance_percent()),
        );
        let traffic = spgemm_traffic(&a, b, &out);
        if embed_metrics {
            let traffic_ref = if traffic.is_null() {
                None
            } else {
                Some(&traffic)
            };
            let metrics = match (&a.convert_width(out.width), &b.convert_width(out.width)) {
                (Ok(AnyCsrMatrix::U32(aw)), Ok(AnyCsrMatrix::U32(bw))) => {
                    spgemm_metrics_document(aw, bw, &cfg, &out, traffic_ref)
                }
                (Ok(AnyCsrMatrix::U64(aw)), Ok(AnyCsrMatrix::U64(bw))) => {
                    spgemm_metrics_document(aw, bw, &cfg, &out, traffic_ref)
                }
                _ => Value::Null,
            };
            doc.insert("metrics".into(), metrics);
        }
        doc.insert("traffic".into(), traffic);
    } else {
        let out = decompose_workload_any_in(WorkloadAny::Spmv(&a), &cfg, session.pool())
            .and_then(fgh_core::WorkloadOutcome::into_spmv);
        let out = match out {
            Ok(o) => o,
            Err(e) => return fgh_error_response(&e),
        };
        if out.engine.cancelled() {
            ServeCounters::bump(&counters.cancelled_jobs);
        }
        if out.status.is_degraded() {
            ServeCounters::bump(&counters.degraded);
        }
        status_fields(&mut doc, out.status.code(), out.status.reason());
        doc.insert(
            "nnz".into(),
            num(out.decomposition.nonzero_owner.len() as u64),
        );
        doc.insert("objective".into(), num(out.objective));
        doc.insert("volume".into(), num(out.stats.total_volume()));
        doc.insert(
            "imbalance".into(),
            Value::Num(out.stats.load_imbalance_percent()),
        );
        if embed_metrics {
            let metrics = match &a {
                AnyCsrMatrix::U32(m) => metrics_document(m, &cfg, &out),
                AnyCsrMatrix::U64(m) => metrics_document(m, &cfg, &out),
            };
            doc.insert("metrics".into(), metrics);
        }
    }
    let elapsed_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    doc.insert("elapsed_ns".into(), num(elapsed_ns));
    Value::Obj(doc)
}

fn status_fields(
    doc: &mut BTreeMap<String, Value>,
    code: Option<&'static str>,
    reason: Option<impl std::fmt::Display>,
) {
    doc.insert(
        "status".into(),
        Value::Str(if code.is_some() { "degraded" } else { "full" }.into()),
    );
    doc.insert(
        "degraded_code".into(),
        code.map_or(Value::Null, |c| Value::Str(c.into())),
    );
    doc.insert(
        "degraded_reason".into(),
        reason.map_or(Value::Null, |r| Value::Str(r.to_string())),
    );
}

/// Executes a batch payload: every body runs back-to-back on this worker
/// (cache-bypassing, metrics embedded), and the frame-level status rolls
/// up the worst sub-result — `full` only when every body succeeded
/// fully, `degraded` with the first degradation's code otherwise.
pub fn execute_batch(
    session: &EngineSession,
    counters: &ServeCounters,
    fault_injection: bool,
    reqs: &[DecomposeRequest],
    cancel: &CancelToken,
) -> Value {
    let start = Instant::now();
    let mut results = Vec::with_capacity(reqs.len());
    let mut first_code: Option<String> = None;
    let mut first_reason: Option<String> = None;
    for req in reqs {
        apply_injection(fault_injection, req, cancel);
        let r = execute_workload(session, counters, req, cancel, true);
        if first_code.is_none() {
            match r.get("ok") {
                Some(Value::Bool(true)) => {
                    if let Some(code) = r.get("degraded_code").and_then(Value::as_str) {
                        first_code = Some(code.to_string());
                        first_reason = r
                            .get("degraded_reason")
                            .and_then(Value::as_str)
                            .map(str::to_string);
                    }
                }
                _ => {
                    let err = r.get("error");
                    first_code = Some(
                        err.and_then(|e| e.get("code"))
                            .and_then(Value::as_str)
                            .unwrap_or(codes::DECOMPOSE_FAILED)
                            .to_string(),
                    );
                    first_reason = err
                        .and_then(|e| e.get("message"))
                        .and_then(Value::as_str)
                        .map(str::to_string);
                }
            }
        }
        results.push(r);
    }
    let mut doc = BTreeMap::new();
    doc.insert("ok".into(), Value::Bool(true));
    doc.insert("op".into(), Value::Str("batch".into()));
    status_fields(&mut doc, None::<&'static str>, None::<String>);
    if let Some(code) = first_code {
        doc.insert("status".into(), Value::Str("degraded".into()));
        doc.insert("degraded_code".into(), Value::Str(code));
        doc.insert(
            "degraded_reason".into(),
            first_reason.map_or(Value::Null, Value::Str),
        );
    }
    doc.insert("results".into(), Value::Arr(results));
    let elapsed_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    doc.insert("elapsed_ns".into(), num(elapsed_ns));
    Value::Obj(doc)
}

/// The worker loop: pop, execute under `catch_unwind`, respond, repeat.
/// Exits when the queue is closed and empty. On a job panic the response
/// is a typed `worker-panic` error and the shared session is
/// quarantined; the loop itself survives.
pub fn worker_loop(
    queue: Arc<crate::queue::BoundedQueue<Job>>,
    session: Arc<SharedSession>,
    cache: Arc<PlanCache>,
    counters: Arc<ServeCounters>,
    fault_injection: bool,
) {
    loop {
        let Some(job) = queue.pop(Duration::from_millis(100)) else {
            if queue.is_closed() {
                return;
            }
            continue;
        };
        let snapshot = session.current();
        let result = catch_unwind(AssertUnwindSafe(|| match &job.request {
            JobPayload::Single(req) => execute_job(
                &snapshot,
                &cache,
                &counters,
                fault_injection,
                req,
                &job.cancel,
            ),
            JobPayload::Batch(reqs) => {
                execute_batch(&snapshot, &counters, fault_injection, reqs, &job.cancel)
            }
        }));
        let response = match result {
            Ok(v) => v,
            Err(_) => {
                ServeCounters::bump(&counters.worker_panics);
                session.quarantine();
                error_response(
                    codes::WORKER_PANIC,
                    "worker panicked executing the job; the daemon and worker pool survive",
                    None,
                )
            }
        };
        ServeCounters::bump(&counters.completed);
        // A disconnected client (dropped receiver) is fine — the
        // response is simply unobserved.
        let _ = job.respond.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(k: u32) -> DecomposeRequest {
        DecomposeRequest {
            source: MatrixSource::Catalog {
                name: "bcspwr10".into(),
                scale: 48,
                gen_seed: 7,
            },
            model: "fine-grain-2d".into(),
            k,
            epsilon: 0.03,
            seed: 1,
            runs: 1,
            budget_ms: None,
            budget_bytes: None,
            include_owners: false,
            inject: None,
            workload: "spmv".into(),
            source_b: None,
        }
    }

    fn fixture() -> (EngineSession, PlanCache, ServeCounters) {
        (
            EngineSession::new(),
            PlanCache::new(8 << 20),
            ServeCounters::default(),
        )
    }

    #[test]
    fn decompose_then_cache_hit() {
        let (session, cache, counters) = fixture();
        let token = CancelToken::new();
        let r1 = execute_job(&session, &cache, &counters, false, &request(4), &token);
        assert_eq!(r1.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(r1.get("cache").unwrap().as_str(), Some("miss"));
        let r2 = execute_job(&session, &cache, &counters, false, &request(4), &token);
        assert_eq!(r2.get("cache").unwrap().as_str(), Some("hit"));
        assert_eq!(r1.get("volume"), r2.get("volume"));
        // Different K is a different key.
        let r3 = execute_job(&session, &cache, &counters, false, &request(2), &token);
        assert_eq!(r3.get("cache").unwrap().as_str(), Some("miss"));
    }

    #[test]
    fn unknown_matrix_and_model_are_bad_requests() {
        let (session, cache, counters) = fixture();
        let token = CancelToken::new();
        let mut req = request(4);
        req.source = MatrixSource::Catalog {
            name: "no-such-matrix".into(),
            scale: 1,
            gen_seed: 1,
        };
        let r = execute_job(&session, &cache, &counters, false, &req, &token);
        assert_eq!(
            r.get("error").unwrap().get("code").unwrap().as_str(),
            Some(codes::BAD_REQUEST)
        );
        let mut req = request(4);
        req.model = "quantum-3d".into();
        let r = execute_job(&session, &cache, &counters, false, &req, &token);
        assert_eq!(
            r.get("error").unwrap().get("code").unwrap().as_str(),
            Some(codes::BAD_REQUEST)
        );
    }

    #[test]
    fn inline_matrix_market_decomposes() {
        let (session, cache, counters) = fixture();
        let mm = "%%MatrixMarket matrix coordinate real general\n4 4 4\n1 1 1.0\n2 2 1.0\n3 3 1.0\n4 4 1.0\n";
        let req = DecomposeRequest {
            source: MatrixSource::Inline(mm.into()),
            ..request(2)
        };
        let r = execute_job(
            &session,
            &cache,
            &counters,
            false,
            &req,
            &CancelToken::new(),
        );
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "{}", r.to_json());
        assert_eq!(r.get("nnz").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn cancelled_job_reports_cancelled_code() {
        let (session, cache, counters) = fixture();
        let token = CancelToken::new();
        token.cancel();
        let r = execute_job(&session, &cache, &counters, false, &request(4), &token);
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(r.get("degraded_code").unwrap().as_str(), Some("cancelled"));
        assert_eq!(ServeCounters::get(&counters.cancelled_jobs), 1);
        // Degraded outcomes are never cached: re-running un-cancelled
        // must recompute, not serve the partial.
        let r2 = execute_job(
            &session,
            &cache,
            &counters,
            false,
            &request(4),
            &CancelToken::new(),
        );
        assert_eq!(r2.get("cache").unwrap().as_str(), Some("miss"));
        assert!(r2.get("degraded_code").unwrap().is_null());
    }

    #[test]
    fn include_owners_ships_valid_arrays() {
        let (session, cache, counters) = fixture();
        let mut req = request(2);
        req.include_owners = true;
        let r = execute_job(
            &session,
            &cache,
            &counters,
            false,
            &req,
            &CancelToken::new(),
        );
        let owners = r.get("nonzero_owner").unwrap().as_arr().unwrap();
        assert_eq!(owners.len() as u64, r.get("nnz").unwrap().as_u64().unwrap());
        assert!(owners.iter().all(|o| o.as_u64().unwrap() < 2));
    }

    #[test]
    fn spgemm_request_bypasses_cache_and_reports_traffic() {
        let (session, cache, counters) = fixture();
        let token = CancelToken::new();
        let mut req = request(4);
        req.workload = "spgemm".into();
        req.model = "spgemm-fine-grain".into();
        let r = execute_job(&session, &cache, &counters, false, &req, &token);
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "{}", r.to_json());
        assert_eq!(r.get("cache").unwrap().as_str(), Some("bypass"));
        assert_eq!(r.get("workload").unwrap().as_str(), Some("spgemm"));
        assert!(r.get("flops").unwrap().as_u64().unwrap() > 0);
        // The simulator's replayed remote traffic must equal the
        // model-predicted communication volume — the tentpole invariant.
        let traffic = r.get("traffic").unwrap();
        assert_eq!(
            traffic.get("total_remote").unwrap().as_u64(),
            r.get("volume").unwrap().as_u64()
        );
        // Re-running is always a fresh compute, never a plan-cache hit.
        let r2 = execute_job(&session, &cache, &counters, false, &req, &token);
        assert_eq!(r2.get("cache").unwrap().as_str(), Some("bypass"));
    }

    #[test]
    fn batch_embeds_validating_metrics_documents() {
        let (session, _cache, counters) = fixture();
        let token = CancelToken::new();
        let mut spgemm = request(3);
        spgemm.workload = "spgemm".into();
        spgemm.model = "spgemm-fine-grain".into();
        let r = execute_batch(&session, &counters, false, &[request(2), spgemm], &token);
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)), "{}", r.to_json());
        assert_eq!(r.get("op").unwrap().as_str(), Some("batch"));
        assert_eq!(r.get("status").unwrap().as_str(), Some("full"));
        let results = r.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        for sub in results {
            assert_eq!(sub.get("ok"), Some(&Value::Bool(true)));
            fgh_core::validate_metrics_value(sub.get("metrics").unwrap()).unwrap();
        }
        assert_eq!(results[0].get("workload").unwrap().as_str(), Some("spmv"));
        assert_eq!(results[1].get("workload").unwrap().as_str(), Some("spgemm"));
    }

    #[test]
    fn batch_rolls_up_the_first_failing_body() {
        let (session, _cache, counters) = fixture();
        let mut bad = request(2);
        bad.model = "quantum-3d".into();
        let r = execute_batch(
            &session,
            &counters,
            false,
            &[request(2), bad],
            &CancelToken::new(),
        );
        // Frame-level contract: ok stays true (the batch executed), the
        // status degrades with the first failing body's code; siblings
        // still carry their own results.
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(r.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(
            r.get("degraded_code").unwrap().as_str(),
            Some(codes::BAD_REQUEST)
        );
        let results = r.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results[0].get("ok"), Some(&Value::Bool(true)));
        assert_eq!(results[1].get("ok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn injected_panic_is_contained_by_worker_loop() {
        let queue = Arc::new(crate::queue::BoundedQueue::new(4));
        let session = Arc::new(SharedSession::new(EngineSession::new()));
        let cache = Arc::new(PlanCache::new(1 << 20));
        let counters = Arc::new(ServeCounters::default());
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let mut req = request(2);
        req.inject = Some("panic".into());
        queue
            .push(Job {
                request: JobPayload::Single(Box::new(req)),
                cancel: CancelToken::new(),
                respond: tx,
            })
            .unwrap();
        // A healthy job after the panicking one proves the worker survived.
        let (tx2, rx2) = std::sync::mpsc::sync_channel(1);
        queue
            .push(Job {
                request: JobPayload::Single(Box::new(request(2))),
                cancel: CancelToken::new(),
                respond: tx2,
            })
            .unwrap();
        queue.close();
        let w = {
            let (q, s, c, m) = (
                Arc::clone(&queue),
                Arc::clone(&session),
                Arc::clone(&cache),
                Arc::clone(&counters),
            );
            std::thread::spawn(move || worker_loop(q, s, c, m, true))
        };
        let r1 = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(
            r1.get("error").unwrap().get("code").unwrap().as_str(),
            Some(codes::WORKER_PANIC)
        );
        let r2 = rx2.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(r2.get("ok"), Some(&Value::Bool(true)));
        w.join().unwrap();
        assert_eq!(ServeCounters::get(&counters.worker_panics), 1);
    }
}
