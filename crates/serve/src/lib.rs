//! # fgh-serve — partition-as-a-service daemon
//!
//! A long-running decomposition service over the `fgh-core` engine:
//! clients submit jobs (a catalog matrix name or inline Matrix Market
//! text, plus model/K/ε/seed) over a length-prefixed JSON protocol on
//! TCP or a unix socket, and get back partitions or *typed* errors —
//! never a hung connection, never a crashed daemon.
//!
//! Built deliberately on threads (no async runtime): decomposition jobs
//! are CPU-bound and worth milliseconds to seconds each, so a bounded
//! queue + worker pool is the honest architecture and the whole daemon
//! stays dependency-free.
//!
//! ## Resilience machinery
//!
//! * **Admission control** ([`queue`]): a bounded queue; a full queue is
//!   a typed `overloaded` rejection with a `retry_after_ms` hint, not
//!   invisible latency. Per-request wall/byte budgets are clamped under
//!   the server's ceiling ([`fgh_core::Budget::intersect`]).
//! * **Cooperative cancellation** ([`fgh_core::CancelToken`]): a client
//!   that disconnects mid-request has its job cancelled at the engine's
//!   next multilevel checkpoint; the drain deadline cancels stragglers
//!   the same way.
//! * **Supervision** ([`worker`]): every job runs under `catch_unwind`;
//!   a panic produces a typed `worker-panic` response, quarantines the
//!   shared engine session (fresh arena pool), and the worker keeps
//!   serving. A worker thread lost outright is respawned.
//! * **Graceful shutdown** ([`server`]): SIGTERM (or
//!   [`server::ServerHandle::shutdown`]) stops admission, drains queued
//!   and in-flight jobs under a deadline, and flushes a final
//!   [`metrics::ServeSnapshot`] report (`fgh-serve-metrics/1`).
//! * **Plan cache** ([`cache`]): content-hash keyed, LRU under a byte
//!   cap, and every hit is *re-validated* against the freshly built
//!   matrix before being served — a corrupt entry is quarantined, not
//!   returned.
//!
//! The crate also ships the load generator ([`client::run_load`]) that
//! CI's smoke job uses to prove all of the above under concurrent
//! hostile traffic.

// Robustness contract: the daemon faces untrusted clients and must not
// panic outside tests. Sites that are provably infallible carry a
// narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod worker;

pub use cache::PlanCache;
pub use client::{run_load, LoadConfig, LoadReport, ServeClient};
pub use metrics::{
    validate_serve_metrics_value, ServeCounters, ServeSnapshot, SERVE_METRICS_SCHEMA,
};
pub use net::Listen;
pub use protocol::{codes, MAX_FRAME_BYTES};
pub use queue::BoundedQueue;
pub use server::{ServeConfig, Server, ServerHandle};
