//! Minimal async-signal-safe shutdown flag.
//!
//! The workspace builds offline with no registry access, so there is no
//! `libc`/`signal-hook` to lean on: the handler is installed through the
//! C library's `signal(2)` directly (always linked on unix). The handler
//! body does the only thing that is async-signal-safe here — a relaxed
//! store to a static `AtomicBool` — and the accept loop polls the flag.
//! On non-unix targets installation is a no-op and shutdown comes from
//! the in-process [`crate::server::ServerHandle::shutdown`] path only.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        // int (*signal(int signum, void (*handler)(int)))(int)
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    pub extern "C" fn handle(_signum: i32) {
        // lint: atomic — relaxed: async-signal-safe latched flag; polled, no data guarded
        super::SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Installs SIGTERM/SIGINT handlers that set the shutdown flag. Safe to
/// call more than once; a no-op off unix.
pub fn install_shutdown_handlers() {
    // The handler is async-signal-safe: nothing but a relaxed atomic
    // store, and the fn pointer outlives the process.
    #[cfg(unix)]
    // lint: unsafe — `signal` only swaps the process handler table entry for an async-signal-safe handler
    unsafe {
        unix::signal(unix::SIGTERM, unix::handle as extern "C" fn(i32) as usize);
        unix::signal(unix::SIGINT, unix::handle as extern "C" fn(i32) as usize);
    }
}

/// `true` once a shutdown signal has arrived (or
/// [`request_shutdown`] ran).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::Relaxed) // lint: atomic — relaxed: latched flag poll, no ordering needed
}

/// Sets the flag from in-process code — the same path a signal takes,
/// used by `ServerHandle::shutdown` and tests.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::Relaxed); // lint: atomic — relaxed: latched flag, same path as the handler
}

/// Clears the flag (test isolation: the flag is process-global).
pub fn reset_shutdown_flag() {
    SHUTDOWN_REQUESTED.store(false, Ordering::Relaxed); // lint: atomic — relaxed: test-only reset, single-threaded use
}
