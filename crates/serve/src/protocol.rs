//! The wire protocol: length-prefixed JSON frames, typed requests and
//! responses, and stable error codes.
//!
//! # Framing
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! little-endian payload length followed by that many bytes of UTF-8
//! JSON. Frames larger than [`MAX_FRAME_BYTES`] are rejected without
//! allocation (a garbage length prefix must not OOM the daemon).
//! Connections are strictly request/response: one frame in, one frame
//! out, repeat. A malformed frame (bad length, bad UTF-8, bad JSON)
//! earns a typed [`codes::BAD_FRAME`] error response and closes the
//! connection.
//!
//! # Requests
//!
//! ```json
//! {"op": "decompose", "matrix": "bcspwr10", "scale": 48, "gen_seed": 7,
//!  "model": "fine-grain-2d", "k": 4, "epsilon": 0.03, "seed": 1,
//!  "runs": 1, "budget_ms": 2000, "include_owners": false}
//! ```
//!
//! The matrix is named from the built-in catalog (`matrix` +
//! `scale`/`gen_seed`) or shipped inline as Matrix Market text
//! (`matrix_mm`). `{"op":"ping"}` health-checks; `{"op":"stats"}`
//! returns live counters.
//!
//! A request may carry `"workload": "spgemm"` to partition the
//! fine-grain SpGEMM task hypergraph of `C = A · B` instead of SpMV; the
//! second operand arrives as `matrix_b`/`b_scale`/`b_gen_seed` (catalog)
//! or `matrix_b_mm` (inline), and defaults to `A` itself (`A·A`) when
//! absent. SpGEMM jobs bypass the plan cache.
//!
//! `{"op": "batch", "requests": [...]}` carries up to
//! [`MAX_BATCH_REQUESTS`] decompose bodies (each the same shape as a
//! `decompose` request, minus the `op`) in one frame. The batch is one
//! queued job; the response is `{"ok": true, "status": ..., "results":
//! [...]}` with one entry per request in order, each embedding a
//! validated `fgh-metrics/1` document under `"metrics"`.
//!
//! # Responses
//!
//! Success: `{"ok": true, "status": "full"|"degraded",
//! "degraded_code": null|<code>, "volume": N, "imbalance": F, "k": K,
//! "nnz": N, "cache": "hit"|"miss", "elapsed_ns": N, ...}` (plus
//! `nonzero_owner`/`vec_owner` arrays when `include_owners` was set).
//! Failure: `{"ok": false, "error": {"code": <stable code>,
//! "message": <text>, "retry_after_ms": N?}}` — see [`codes`].

use std::collections::BTreeMap;
use std::io::{Read, Write};

use fgh_trace::json::{parse, Value};

/// Hard per-frame payload cap (16 MiB). A length prefix beyond this is
/// treated as a malformed frame, not an allocation request.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Most decompose bodies one `batch` frame may carry. The batch runs as
/// a single queued job, so the cap bounds how long one queue slot can be
/// held hostage.
pub const MAX_BATCH_REQUESTS: usize = 32;

/// Stable machine-readable error codes carried in failure responses.
/// Like `DegradedReason::CODES`, these are a compatibility contract:
/// codes may be added but never change meaning.
pub mod codes {
    /// The frame itself was malformed (length, UTF-8, or JSON).
    pub const BAD_FRAME: &str = "bad-frame";
    /// The frame parsed but the request is invalid (unknown op, missing
    /// or out-of-range field, unknown matrix/model).
    pub const BAD_REQUEST: &str = "bad-request";
    /// Load shed: the job queue is full. The response carries a
    /// `retry_after_ms` hint.
    pub const OVERLOADED: &str = "overloaded";
    /// The daemon is draining for shutdown and admits no new work.
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// The worker executing the job panicked; the job is lost but the
    /// daemon and the worker pool survive.
    pub const WORKER_PANIC: &str = "worker-panic";
    /// The chosen model cannot run at the matrix's index width.
    pub const UNSUPPORTED_WIDTH: &str = "unsupported-width";
    /// Any other decomposition failure (typed `FghError` text attached).
    pub const DECOMPOSE_FAILED: &str = "decompose-failed";

    /// Every code, for validators and exhaustive tests.
    pub const ALL: [&str; 7] = [
        BAD_FRAME,
        BAD_REQUEST,
        OVERLOADED,
        SHUTTING_DOWN,
        WORKER_PANIC,
        UNSUPPORTED_WIDTH,
        DECOMPOSE_FAILED,
    ];
}

/// Errors from reading a frame off a connection.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly (EOF at a frame boundary).
    Closed,
    /// No frame arrived within the stream's read timeout and no bytes
    /// were consumed — the caller can poll its shutdown flag and retry.
    Idle,
    /// An I/O error mid-frame.
    Io(std::io::Error),
    /// The frame violates the protocol (oversized length, truncated
    /// payload, bad UTF-8, bad JSON, or a mid-frame stall). The message
    /// is safe to echo back.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Idle => write!(f, "no frame within the read timeout"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read timeouts tolerated *inside* a frame before the peer is declared
/// stalled. At the daemon's 100ms read timeout this is ~60s of silence
/// mid-frame — far beyond any honest client writing a frame it already
/// started.
const MAX_MIDFRAME_STALLS: u32 = 600;

/// Reads one length-prefixed JSON frame. [`FrameError::Closed`] only at
/// a clean frame boundary; EOF mid-frame is [`FrameError::Malformed`];
/// a read timeout before the first byte is [`FrameError::Idle`].
pub fn read_frame(r: &mut impl Read) -> Result<Value, FrameError> {
    let mut stalls = 0u32;
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Malformed("eof inside length prefix".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && filled == 0 => return Err(FrameError::Idle),
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_MIDFRAME_STALLS {
                    return Err(FrameError::Malformed("peer stalled mid-frame".into()));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Malformed(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Malformed("eof inside payload".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_MIDFRAME_STALLS {
                    return Err(FrameError::Malformed("peer stalled mid-frame".into()));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let text = std::str::from_utf8(&payload)
        .map_err(|e| FrameError::Malformed(format!("payload is not utf-8: {e}")))?;
    parse(text).map_err(|e| FrameError::Malformed(format!("payload is not json: {e}")))
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame(w: &mut impl Write, v: &Value) -> std::io::Result<()> {
    let text = v.to_json();
    let bytes = text.as_bytes();
    let len = bytes.len().min(u32::MAX as usize) as u32; // lint: checked-cast — min-clamped
    w.write_all(&len.to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Builds a typed failure response: `{"ok": false, "error": {...}}`.
pub fn error_response(code: &str, message: &str, retry_after_ms: Option<u64>) -> Value {
    let mut err = BTreeMap::new();
    err.insert("code".into(), Value::Str(code.into()));
    err.insert("message".into(), Value::Str(message.into()));
    if let Some(ms) = retry_after_ms {
        err.insert("retry_after_ms".into(), Value::Num(ms as f64));
    }
    let mut obj = BTreeMap::new();
    obj.insert("ok".into(), Value::Bool(false));
    obj.insert("error".into(), Value::Obj(err));
    Value::Obj(obj)
}

/// The matrix a decompose request names: a catalog entry (generated
/// deterministically server-side) or inline Matrix Market text.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSource {
    /// `{"matrix": name, "scale": s, "gen_seed": seed}`.
    Catalog {
        /// Case-insensitive catalog name.
        name: String,
        /// Dimension divisor (1 = full size).
        scale: u32,
        /// Generator seed.
        gen_seed: u64,
    },
    /// `{"matrix_mm": "<matrix market text>"}`.
    Inline(String),
}

/// A parsed, validated decompose request.
#[derive(Debug, Clone, PartialEq)]
pub struct DecomposeRequest {
    /// Where the matrix comes from.
    pub source: MatrixSource,
    /// `"spmv"` (default) or `"spgemm"` — validated against
    /// `WorkloadKind` names at parse time.
    pub workload: String,
    /// The SpGEMM second operand (`matrix_b` / `matrix_b_mm`). `None`
    /// for SpMV always; `None` for SpGEMM means `B = A` (the `A·A`
    /// product).
    pub source_b: Option<MatrixSource>,
    /// Model name (validated against `Model::from_str` by the caller).
    pub model: String,
    /// Processor count K (>= 1).
    pub k: u32,
    /// Balance tolerance ε.
    pub epsilon: f64,
    /// Partitioner base seed.
    pub seed: u64,
    /// Independent partitioner runs.
    pub runs: usize,
    /// Optional per-request wall budget, milliseconds.
    pub budget_ms: Option<u64>,
    /// Optional per-request byte budget.
    pub budget_bytes: Option<u64>,
    /// Ship the full owner arrays back (off by default: summaries only).
    pub include_owners: bool,
    /// Fault-injection directive (only honored when the daemon runs with
    /// fault injection enabled): `"panic"` makes the worker panic
    /// mid-job, `"sleep_ms:N"` stalls the job.
    pub inject: Option<String>,
}

/// The operations a request frame can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Health check; answered inline by the connection thread.
    Ping,
    /// Live counters; answered inline.
    Stats,
    /// A decomposition job; queued for a worker.
    Decompose(Box<DecomposeRequest>),
    /// Many decompose bodies in one frame; queued as a single job whose
    /// response embeds one `fgh-metrics/1` document per body.
    Batch(Vec<DecomposeRequest>),
}

fn get_u64(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n
            .as_u64()
            .ok_or_else(|| format!("{key}: expected a non-negative integer")),
    }
}

/// Parses one matrix source out of a pair of mutually exclusive keys
/// (`matrix`/`matrix_mm` for the primary, `matrix_b`/`matrix_b_mm` for
/// the SpGEMM second operand).
fn parse_source(
    v: &Value,
    name_key: &str,
    inline_key: &str,
    scale_key: &str,
    seed_key: &str,
) -> Result<Option<MatrixSource>, String> {
    match (v.get(name_key), v.get(inline_key)) {
        (Some(_), Some(_)) => Err(format!(
            "{name_key} and {inline_key} are mutually exclusive"
        )),
        (Some(name), None) => Ok(Some(MatrixSource::Catalog {
            name: name
                .as_str()
                .ok_or(format!("{name_key}: expected a string"))?
                .to_string(),
            scale: u32::try_from(get_u64(v, scale_key, 1)?.max(1))
                .map_err(|_| format!("{scale_key}: out of range"))?,
            gen_seed: get_u64(v, seed_key, 1)?,
        })),
        (None, Some(mm)) => Ok(Some(MatrixSource::Inline(
            mm.as_str()
                .ok_or(format!("{inline_key}: expected a string"))?
                .into(),
        ))),
        (None, None) => Ok(None),
    }
}

/// Parses one decompose body (the fields of a `decompose` request minus
/// the `op`) — shared between `decompose` and the entries of `batch`.
pub fn parse_decompose_body(v: &Value) -> Result<DecomposeRequest, String> {
    let source = parse_source(v, "matrix", "matrix_mm", "scale", "gen_seed")?
        .ok_or("one of matrix / matrix_mm is required")?;
    let workload = v
        .get("workload")
        .map(|w| w.as_str().ok_or("workload: expected a string"))
        .transpose()?
        .unwrap_or("spmv")
        .to_string();
    if workload != "spmv" && workload != "spgemm" {
        return Err(format!("workload: unknown workload {workload:?}"));
    }
    let source_b = parse_source(v, "matrix_b", "matrix_b_mm", "b_scale", "b_gen_seed")?;
    if workload == "spmv" && source_b.is_some() {
        return Err("matrix_b is only valid with workload \"spgemm\"".into());
    }
    let k64 = get_u64(v, "k", 0)?;
    if k64 == 0 {
        return Err("k: required, must be >= 1".into());
    }
    let k = u32::try_from(k64).map_err(|_| "k: out of range")?;
    let epsilon = match v.get("epsilon") {
        None => 0.03,
        Some(e) => {
            let e = e.as_f64().ok_or("epsilon: expected a number")?;
            if !e.is_finite() || e < 0.0 {
                return Err("epsilon: must be finite and >= 0".into());
            }
            e
        }
    };
    let model = v
        .get("model")
        .map(|m| m.as_str().ok_or("model: expected a string"))
        .transpose()?
        .unwrap_or(if workload == "spgemm" {
            "spgemm-fine-grain"
        } else {
            "fine-grain-2d"
        })
        .to_string();
    let runs = get_u64(v, "runs", 1)?.max(1) as usize; // u64 -> usize is lossless on every supported target
    let budget_ms = v
        .get("budget_ms")
        .map(|n| n.as_u64().ok_or("budget_ms: expected an integer"))
        .transpose()?;
    let budget_bytes = v
        .get("budget_bytes")
        .map(|n| n.as_u64().ok_or("budget_bytes: expected an integer"))
        .transpose()?;
    let include_owners = matches!(v.get("include_owners"), Some(Value::Bool(true)));
    let inject = v
        .get("inject")
        .map(|i| i.as_str().ok_or("inject: expected a string"))
        .transpose()?
        .map(str::to_string);
    Ok(DecomposeRequest {
        source,
        workload,
        source_b,
        model,
        k,
        epsilon,
        seed: get_u64(v, "seed", 1)?,
        runs,
        budget_ms,
        budget_bytes,
        include_owners,
        inject,
    })
}

/// Parses and validates a request frame. Errors are
/// [`codes::BAD_REQUEST`] material, safe to echo to the client.
pub fn parse_request(v: &Value) -> Result<Request, String> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("op: expected a string")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "decompose" => Ok(Request::Decompose(Box::new(parse_decompose_body(v)?))),
        "batch" => {
            let entries = v
                .get("requests")
                .and_then(Value::as_arr)
                .ok_or("requests: expected an array")?;
            if entries.is_empty() {
                return Err("requests: must not be empty".into());
            }
            if entries.len() > MAX_BATCH_REQUESTS {
                return Err(format!(
                    "requests: batch of {} exceeds the {MAX_BATCH_REQUESTS}-request cap",
                    entries.len()
                ));
            }
            entries
                .iter()
                .enumerate()
                .map(|(i, e)| parse_decompose_body(e).map_err(|m| format!("requests[{i}]: {m}")))
                .collect::<Result<Vec<_>, _>>()
                .map(Request::Batch)
        }
        other => Err(format!("op: unknown operation {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Obj(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn frame_round_trip() {
        let v = obj(&[("op", Value::Str("ping".into()))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &v).unwrap();
        let back = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn oversized_length_is_malformed_not_alloc() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        match read_frame(&mut Cursor::new(buf)) {
            Err(FrameError::Malformed(m)) => assert!(m.contains("cap")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_frames_are_malformed() {
        // Length says 100 bytes, only 3 present.
        let mut buf = 100u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Malformed(_))
        ));
        // Valid length, payload is not JSON.
        let mut buf = 3u32.to_le_bytes().to_vec();
        buf.extend_from_slice(b"{{{");
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Malformed(_))
        ));
        // Clean EOF before any byte.
        assert!(matches!(
            read_frame(&mut Cursor::new(Vec::new())),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn parse_decompose_defaults_and_validation() {
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("matrix", Value::Str("bcspwr10".into())),
            ("k", Value::Num(4.0)),
        ]);
        match parse_request(&v).unwrap() {
            Request::Decompose(d) => {
                assert_eq!(d.k, 4);
                assert_eq!(d.model, "fine-grain-2d");
                assert_eq!(d.runs, 1);
                assert!(!d.include_owners);
                assert_eq!(
                    d.source,
                    MatrixSource::Catalog {
                        name: "bcspwr10".into(),
                        scale: 1,
                        gen_seed: 1
                    }
                );
            }
            other => panic!("expected Decompose, got {other:?}"),
        }
        // Missing k.
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("matrix", Value::Str("x".into())),
        ]);
        assert!(parse_request(&v).unwrap_err().contains("k"));
        // No matrix at all.
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("k", Value::Num(2.0)),
        ]);
        assert!(parse_request(&v).is_err());
        // Unknown op.
        let v = obj(&[("op", Value::Str("fly".into()))]);
        assert!(parse_request(&v).is_err());
    }

    #[test]
    fn workload_and_second_operand_parse_and_validate() {
        // SpGEMM defaults the model to the task-hypergraph model and
        // accepts a catalog second operand.
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("matrix", Value::Str("bcspwr10".into())),
            ("workload", Value::Str("spgemm".into())),
            ("matrix_b", Value::Str("west0479".into())),
            ("b_scale", Value::Num(4.0)),
            ("b_gen_seed", Value::Num(9.0)),
            ("k", Value::Num(4.0)),
        ]);
        match parse_request(&v).unwrap() {
            Request::Decompose(d) => {
                assert_eq!(d.workload, "spgemm");
                assert_eq!(d.model, "spgemm-fine-grain");
                assert_eq!(
                    d.source_b,
                    Some(MatrixSource::Catalog {
                        name: "west0479".into(),
                        scale: 4,
                        gen_seed: 9
                    })
                );
            }
            other => panic!("expected Decompose, got {other:?}"),
        }
        // Omitted second operand is the A·A default.
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("matrix", Value::Str("bcspwr10".into())),
            ("workload", Value::Str("spgemm".into())),
            ("k", Value::Num(2.0)),
        ]);
        match parse_request(&v).unwrap() {
            Request::Decompose(d) => assert_eq!(d.source_b, None),
            other => panic!("expected Decompose, got {other:?}"),
        }
        // matrix_b under spmv is a contradiction, not silently ignored.
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("matrix", Value::Str("bcspwr10".into())),
            ("matrix_b", Value::Str("west0479".into())),
            ("k", Value::Num(2.0)),
        ]);
        assert!(parse_request(&v).unwrap_err().contains("matrix_b"));
        // Unknown workloads are rejected at parse time.
        let v = obj(&[
            ("op", Value::Str("decompose".into())),
            ("matrix", Value::Str("bcspwr10".into())),
            ("workload", Value::Str("fft".into())),
            ("k", Value::Num(2.0)),
        ]);
        assert!(parse_request(&v).unwrap_err().contains("workload"));
    }

    #[test]
    fn batch_parses_validates_and_caps() {
        let body = |name: &str| obj(&[("matrix", Value::Str(name.into())), ("k", Value::Num(2.0))]);
        let v = obj(&[
            ("op", Value::Str("batch".into())),
            (
                "requests",
                Value::Arr(vec![body("bcspwr10"), body("west0479")]),
            ),
        ]);
        match parse_request(&v).unwrap() {
            Request::Batch(reqs) => {
                assert_eq!(reqs.len(), 2);
                assert_eq!(reqs[1].workload, "spmv");
            }
            other => panic!("expected Batch, got {other:?}"),
        }
        // Empty batches and over-cap batches are rejected whole.
        let v = obj(&[
            ("op", Value::Str("batch".into())),
            ("requests", Value::Arr(vec![])),
        ]);
        assert!(parse_request(&v).unwrap_err().contains("empty"));
        let v = obj(&[
            ("op", Value::Str("batch".into())),
            (
                "requests",
                Value::Arr(vec![body("bcspwr10"); MAX_BATCH_REQUESTS + 1]),
            ),
        ]);
        assert!(parse_request(&v).unwrap_err().contains("cap"));
        // One bad body poisons the frame, with its index in the error.
        let v = obj(&[
            ("op", Value::Str("batch".into())),
            (
                "requests",
                Value::Arr(vec![body("bcspwr10"), obj(&[("k", Value::Num(2.0))])]),
            ),
        ]);
        assert!(parse_request(&v).unwrap_err().contains("requests[1]"));
    }

    #[test]
    fn error_response_shape() {
        let e = error_response(codes::OVERLOADED, "queue full", Some(120));
        assert_eq!(e.get("ok"), Some(&Value::Bool(false)));
        let err = e.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("overloaded"));
        assert_eq!(err.get("retry_after_ms").unwrap().as_u64(), Some(120));
    }
}
