//! A protocol client and the load generator the daemon's resilience is
//! proved against.
//!
//! [`ServeClient`] is the honest client: one frame out, one frame in.
//! [`run_load`] is the hostile one — a deterministic concurrent mix of
//! real decomposition jobs, malformed frames, invalid requests, injected
//! worker panics, and mid-request disconnects, validating every response
//! against the protocol contract (`ok:true` with a full/degraded status,
//! or `ok:false` with a code from [`codes::ALL`]). The daemon passes when
//! every byte it sent back was typed and nothing crashed.

use std::collections::BTreeMap;
use std::io::Write;
use std::time::Duration;

use fgh_core::validate_metrics_value;
use fgh_trace::json::Value;

use crate::net::Stream;
use crate::protocol::{codes, read_frame, write_frame, FrameError};

/// A blocking request/response client for the serve protocol.
pub struct ServeClient {
    stream: Stream,
}

impl ServeClient {
    /// Connects over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<ServeClient> {
        Self::wrap(Stream::connect_tcp(addr)?)
    }

    /// Connects over a unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> std::io::Result<ServeClient> {
        Self::wrap(Stream::connect_unix(path)?)
    }

    fn wrap(stream: Stream) -> std::io::Result<ServeClient> {
        // Decompositions take seconds at most under test budgets; the
        // timeout only bounds a daemon that went silent.
        stream.set_read_timeout(Some(Duration::from_millis(250)))?;
        Ok(ServeClient { stream })
    }

    /// Sends one request frame and blocks (up to ~2 minutes) for the
    /// response frame.
    pub fn request(&mut self, v: &Value) -> Result<Value, String> {
        write_frame(&mut self.stream, v).map_err(|e| format!("write: {e}"))?;
        self.read_response()
    }

    /// Blocks for the next response frame (the half of [`request`] used
    /// after a raw send).
    ///
    /// [`request`]: ServeClient::request
    pub fn read_response(&mut self) -> Result<Value, String> {
        let mut idle = 0u32;
        loop {
            match read_frame(&mut self.stream) {
                Ok(v) => return Ok(v),
                Err(FrameError::Idle) => {
                    idle += 1;
                    // ~2 minutes of 250ms idle polls: the job is allowed
                    // to be slow, a silent daemon is not.
                    if idle > 480 {
                        return Err("timed out waiting for a response frame".into());
                    }
                }
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }

    /// Writes raw bytes onto the connection — the malformed-frame
    /// injection path.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// `{"op":"ping"}`.
    pub fn ping(&mut self) -> Result<Value, String> {
        self.request(&op("ping"))
    }

    /// `{"op":"stats"}` — live counters.
    pub fn stats(&mut self) -> Result<Value, String> {
        self.request(&op("stats"))
    }
}

fn op(name: &str) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert("op".into(), Value::Str(name.into()));
    Value::Obj(doc)
}

/// Builds a catalog decompose request value.
pub fn decompose_request(matrix: &str, scale: u32, k: u32, seed: u64) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert("op".into(), Value::Str("decompose".into()));
    doc.insert("matrix".into(), Value::Str(matrix.into()));
    doc.insert("scale".into(), Value::Num(scale as f64));
    doc.insert("k".into(), Value::Num(k as f64));
    doc.insert("seed".into(), Value::Num(seed as f64));
    Value::Obj(doc)
}

/// Builds a catalog SpGEMM decompose body (`B = A`, the `A·A` product).
pub fn spgemm_request(matrix: &str, scale: u32, k: u32, seed: u64) -> Value {
    let mut v = decompose_request(matrix, scale, k, seed);
    if let Value::Obj(doc) = &mut v {
        doc.insert("workload".into(), Value::Str("spgemm".into()));
    }
    v
}

/// Wraps decompose bodies into one `{"op":"batch"}` frame.
pub fn batch_request(bodies: Vec<Value>) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert("op".into(), Value::Str("batch".into()));
    doc.insert("requests".into(), Value::Arr(bodies));
    Value::Obj(doc)
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Total jobs to issue.
    pub jobs: usize,
    /// Client threads issuing them.
    pub concurrency: usize,
    /// Mix in hostile traffic (malformed frames, disconnects, injected
    /// panics, bad requests). Requires the daemon to run with fault
    /// injection enabled for the panic/stall directives to bite.
    pub inject: bool,
    /// Catalog matrix the honest jobs decompose.
    pub matrix: String,
    /// Catalog scale divisor (larger = smaller matrix = faster jobs).
    pub scale: u32,
}

impl LoadConfig {
    /// A hostile load of `jobs` across `concurrency` client threads.
    pub fn new(jobs: usize, concurrency: usize) -> Self {
        LoadConfig {
            jobs,
            concurrency: concurrency.max(1),
            inject: true,
            matrix: "bcspwr10".into(),
            scale: 64,
        }
    }
}

/// What the load run observed, merged across client threads.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Jobs issued.
    pub jobs: u64,
    /// `ok:true` with `status:"full"`.
    pub ok_full: u64,
    /// `ok:true` with `status:"degraded"`.
    pub ok_degraded: u64,
    /// `ok:false` responses by stable error code.
    pub typed_errors: BTreeMap<String, u64>,
    /// Malformed frames deliberately sent.
    pub malformed_sent: u64,
    /// Connections deliberately dropped mid-request.
    pub disconnects_sent: u64,
    /// Jobs sent with `inject:"panic"`.
    pub panics_sent: u64,
    /// Deliberately invalid request objects sent.
    pub bad_requests_sent: u64,
    /// `batch` frames sent (each carrying several decompose bodies).
    pub batches_sent: u64,
    /// Connections the daemon refused outright.
    pub connect_failures: u64,
    /// Every response that violated the protocol contract (the pass
    /// criterion is this staying empty).
    pub violations: Vec<String>,
}

impl LoadReport {
    /// `true` when every observed response was protocol-valid and every
    /// connection was accepted.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.connect_failures == 0
    }

    fn absorb(&mut self, other: LoadReport) {
        self.jobs += other.jobs;
        self.ok_full += other.ok_full;
        self.ok_degraded += other.ok_degraded;
        for (code, n) in other.typed_errors {
            *self.typed_errors.entry(code).or_insert(0) += n;
        }
        self.malformed_sent += other.malformed_sent;
        self.disconnects_sent += other.disconnects_sent;
        self.panics_sent += other.panics_sent;
        self.bad_requests_sent += other.bad_requests_sent;
        self.batches_sent += other.batches_sent;
        self.connect_failures += other.connect_failures;
        self.violations.extend(other.violations);
    }

    /// Classifies a response frame against the protocol contract and
    /// tallies it; contract violations go to [`LoadReport::violations`].
    pub fn record_response(&mut self, v: &Value) {
        match v.get("ok") {
            Some(Value::Bool(true)) => match v.get("status").and_then(Value::as_str) {
                Some("full") => self.ok_full += 1,
                Some("degraded") => {
                    self.ok_degraded += 1;
                    if v.get("degraded_code").and_then(Value::as_str).is_none() {
                        self.violations
                            .push(format!("degraded without a code: {}", v.to_json()));
                    }
                }
                other => self
                    .violations
                    .push(format!("ok:true with status {other:?}: {}", v.to_json())),
            },
            Some(Value::Bool(false)) => {
                let code = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Value::as_str);
                match code {
                    Some(c) if codes::ALL.contains(&c) => {
                        *self.typed_errors.entry(c.to_string()).or_insert(0) += 1;
                    }
                    other => self
                        .violations
                        .push(format!("untyped error code {other:?}: {}", v.to_json())),
                }
            }
            _ => self
                .violations
                .push(format!("response without ok: {}", v.to_json())),
        }
    }

    /// Classifies a `batch` response: the frame-level contract via
    /// [`LoadReport::record_response`], plus the batch invariants — one
    /// result per request in order, every successful result embedding a
    /// validating `fgh-metrics/1` document, every failed one a typed
    /// error.
    pub fn record_batch_response(&mut self, v: &Value, expected: usize) {
        self.record_response(v);
        if v.get("ok") != Some(&Value::Bool(true)) {
            return; // frame-level typed error, already recorded
        }
        let Some(results) = v.get("results").and_then(Value::as_arr) else {
            self.violations
                .push(format!("batch without results: {}", v.to_json()));
            return;
        };
        if results.len() != expected {
            self.violations.push(format!(
                "batch returned {} results, expected {expected}",
                results.len()
            ));
        }
        for (j, sub) in results.iter().enumerate() {
            match sub.get("ok") {
                Some(Value::Bool(true)) => match sub.get("metrics") {
                    Some(m) => {
                        if let Err(e) = validate_metrics_value(m) {
                            self.violations
                                .push(format!("batch result {j}: invalid metrics: {e}"));
                        }
                    }
                    None => self
                        .violations
                        .push(format!("batch result {j}: missing metrics document")),
                },
                Some(Value::Bool(false)) => {
                    let code = sub
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str);
                    if !matches!(code, Some(c) if codes::ALL.contains(&c)) {
                        self.violations.push(format!(
                            "batch result {j}: untyped error: {}",
                            sub.to_json()
                        ));
                    }
                }
                _ => self
                    .violations
                    .push(format!("batch result {j} without ok: {}", sub.to_json())),
            }
        }
    }
}

/// What job index `i` does under the hostile mix. Deterministic so the
/// run is reproducible and the assertions can demand each class occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Honest,
    /// Stall the worker then drop the connection — exercises
    /// disconnect-driven cancellation.
    Disconnect,
    /// `inject:"panic"` — exercises worker containment.
    Panic,
    /// Garbage bytes instead of a frame.
    MalformedFrame,
    /// A well-framed but invalid request object.
    BadRequest,
    /// A `batch` frame mixing SpMV and SpGEMM bodies — exercises the
    /// multi-request path and its embedded metrics documents.
    Batch,
}

fn job_kind(i: usize, inject: bool) -> JobKind {
    if !inject {
        return JobKind::Honest;
    }
    match i % 16 {
        3 => JobKind::MalformedFrame,
        5 => JobKind::Batch,
        7 => JobKind::Panic,
        11 => JobKind::Disconnect,
        13 => JobKind::BadRequest,
        _ => JobKind::Honest,
    }
}

fn is_overloaded(v: &Value) -> bool {
    v.get("ok") == Some(&Value::Bool(false))
        && v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            == Some(codes::OVERLOADED)
}

/// Issues a queued request, honoring `overloaded` sheds with bounded
/// retries — the well-behaved-client reaction to backpressure. Every
/// response (sheds included) is recorded.
fn request_with_retry(client: &mut ServeClient, v: &Value, report: &mut LoadReport, label: &str) {
    for _ in 0..40 {
        match client.request(v) {
            Ok(r) => {
                report.record_response(&r);
                if !is_overloaded(&r) {
                    return;
                }
                let backoff = r
                    .get("error")
                    .and_then(|e| e.get("retry_after_ms"))
                    .and_then(Value::as_u64)
                    .unwrap_or(50)
                    .min(200);
                std::thread::sleep(Duration::from_millis(backoff));
            }
            Err(e) => {
                report.violations.push(format!("{label}: {e}"));
                return;
            }
        }
    }
    report
        .violations
        .push(format!("{label}: still overloaded after 40 retries"));
}

fn run_one(addr: &str, cfg: &LoadConfig, i: usize, report: &mut LoadReport) {
    let mut client = match ServeClient::connect_tcp(addr) {
        Ok(c) => c,
        Err(_) => {
            report.connect_failures += 1;
            return;
        }
    };
    report.jobs += 1;
    match job_kind(i, cfg.inject) {
        JobKind::MalformedFrame => {
            report.malformed_sent += 1;
            // Alternate between an absurd length prefix (must be refused
            // without allocation) and a valid-length garbage payload.
            let bytes: Vec<u8> = if i % 32 == 3 {
                let mut b = u32::MAX.to_le_bytes().to_vec();
                b.extend_from_slice(b"junk");
                b
            } else {
                let mut b = 3u32.to_le_bytes().to_vec();
                b.extend_from_slice(b"{{{");
                b
            };
            if client.send_raw(&bytes).is_err() {
                return; // daemon already hung up — fine
            }
            // The daemon owes at most one typed bad-frame error before
            // closing; a close with no frame is also acceptable.
            if let Ok(v) = client.read_response() {
                report.record_response(&v);
            }
        }
        JobKind::BadRequest => {
            report.bad_requests_sent += 1;
            let bad = if i % 32 == 13 {
                op("teleport") // unknown op
            } else {
                let mut doc = BTreeMap::new();
                doc.insert("op".into(), Value::Str("decompose".into()));
                doc.insert("matrix".into(), Value::Str(cfg.matrix.clone()));
                // k missing: required field
                Value::Obj(doc)
            };
            match client.request(&bad) {
                Ok(v) => report.record_response(&v),
                Err(e) => report.violations.push(format!("bad-request job {i}: {e}")),
            }
        }
        JobKind::Panic => {
            report.panics_sent += 1;
            // lint: checked-cast — `i % 3` is at most 2, well inside u32
            let mut v = decompose_request(&cfg.matrix, cfg.scale, 2 + (i % 3) as u32, i as u64);
            if let Value::Obj(doc) = &mut v {
                doc.insert("inject".into(), Value::Str("panic".into()));
            }
            request_with_retry(&mut client, &v, report, &format!("panic job {i}"));
        }
        JobKind::Disconnect => {
            let mut v = decompose_request(&cfg.matrix, cfg.scale, 2, i as u64);
            if let Value::Obj(doc) = &mut v {
                // Long enough that the drop below lands mid-job and the
                // liveness probe sees the dead socket.
                doc.insert("inject".into(), Value::Str("sleep_ms:2000".into()));
            }
            // Admission first: an immediate `overloaded` shed means the
            // job never reached a worker, so hanging up would cancel
            // nothing — retry until the daemon stays silent (admitted,
            // worker stalling), THEN disconnect mid-job.
            for _ in 0..40 {
                if write_frame(&mut client.stream, &v).is_err() {
                    return;
                }
                match read_frame(&mut client.stream) {
                    Err(FrameError::Idle) => {
                        report.disconnects_sent += 1;
                        drop(client); // mid-request hangup: the daemon must cancel the job
                        return;
                    }
                    Ok(r) if is_overloaded(&r) => {
                        report.record_response(&r);
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    Ok(r) => {
                        // The stall finished before we hung up — still a
                        // response to validate, just not a disconnect.
                        report.record_response(&r);
                        return;
                    }
                    Err(_) => return,
                }
            }
        }
        JobKind::Batch => {
            report.batches_sent += 1;
            let v = batch_request(vec![
                decompose_request(&cfg.matrix, cfg.scale, [2u32, 4][i % 2], (i % 4) as u64),
                spgemm_request(&cfg.matrix, cfg.scale, 2, i as u64),
            ]);
            for _ in 0..40 {
                match client.request(&v) {
                    Ok(r) if is_overloaded(&r) => {
                        report.record_response(&r);
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    Ok(r) => {
                        report.record_batch_response(&r, 2);
                        return;
                    }
                    Err(e) => {
                        report.violations.push(format!("batch job {i}: {e}"));
                        return;
                    }
                }
            }
            report
                .violations
                .push(format!("batch job {i}: still overloaded after 40 retries"));
        }
        JobKind::Honest => {
            let k = [2u32, 4, 8][i % 3];
            // Seeds cycle so identical requests repeat and the plan
            // cache gets real hits.
            let mut v = decompose_request(&cfg.matrix, cfg.scale, k, (i % 4) as u64);
            if cfg.inject && i.is_multiple_of(5) {
                if let Value::Obj(doc) = &mut v {
                    // A small stall builds real queue depth so admission
                    // control actually sheds under concurrency.
                    doc.insert("inject".into(), Value::Str("sleep_ms:40".into()));
                }
            }
            request_with_retry(&mut client, &v, report, &format!("honest job {i}"));
        }
    }
}

/// Hammers a daemon with [`LoadConfig::jobs`] requests across
/// [`LoadConfig::concurrency`] threads and returns the merged,
/// validated observations.
pub fn run_load(addr: &str, cfg: &LoadConfig) -> LoadReport {
    let mut merged = LoadReport::default();
    let handles: Vec<_> = (0..cfg.concurrency)
        .map(|tid| {
            let addr = addr.to_string();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut report = LoadReport::default();
                let mut i = tid;
                while i < cfg.jobs {
                    run_one(&addr, &cfg, i, &mut report);
                    i += cfg.concurrency;
                }
                report
            })
        })
        .collect();
    for h in handles {
        match h.join() {
            Ok(r) => merged.absorb(r),
            Err(_) => merged.violations.push("a client thread panicked".into()),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Obj(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn response_classification() {
        let mut r = LoadReport::default();
        r.record_response(&obj(&[
            ("ok", Value::Bool(true)),
            ("status", Value::Str("full".into())),
        ]));
        r.record_response(&obj(&[
            ("ok", Value::Bool(true)),
            ("status", Value::Str("degraded".into())),
            ("degraded_code", Value::Str("cancelled".into())),
        ]));
        r.record_response(&crate::protocol::error_response(
            codes::OVERLOADED,
            "full",
            Some(100),
        ));
        assert_eq!(r.ok_full, 1);
        assert_eq!(r.ok_degraded, 1);
        assert_eq!(r.typed_errors.get("overloaded"), Some(&1));
        assert!(r.is_clean(), "{:?}", r.violations);

        // Violations: unknown error code, degraded without a code.
        r.record_response(&crate::protocol::error_response("made-up", "x", None));
        r.record_response(&obj(&[
            ("ok", Value::Bool(true)),
            ("status", Value::Str("degraded".into())),
            ("degraded_code", Value::Null),
        ]));
        assert_eq!(r.violations.len(), 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn hostile_mix_is_deterministic_and_covers_all_kinds() {
        let kinds: Vec<JobKind> = (0..64).map(|i| job_kind(i, true)).collect();
        assert!(kinds.contains(&JobKind::MalformedFrame));
        assert!(kinds.contains(&JobKind::Panic));
        assert!(kinds.contains(&JobKind::Disconnect));
        assert!(kinds.contains(&JobKind::BadRequest));
        assert!(kinds.contains(&JobKind::Batch));
        assert!(kinds.iter().filter(|k| **k == JobKind::Honest).count() >= 40);
        assert_eq!(
            kinds,
            (0..64).map(|i| job_kind(i, true)).collect::<Vec<_>>()
        );
        assert!((0..64).all(|i| job_kind(i, false) == JobKind::Honest));
    }
}
