//! The daemon: accept loop, per-connection threads, worker pool with
//! supervision, admission control, disconnect-driven cancellation, and
//! graceful drain.
//!
//! # Thread anatomy
//!
//! * **accept thread** (the one [`Server::start`] spawns): polls the
//!   nonblocking listener, spawns a connection thread per client, and
//!   owns the shutdown sequence.
//! * **connection threads**: strictly request/response frame loops. A
//!   decompose request is admitted through the bounded queue (or shed
//!   with `overloaded` + `retry_after_ms`); while the job is in flight
//!   the thread polls the socket, and a client disconnect trips the
//!   job's [`CancelToken`] — the worker stops at its next multilevel
//!   checkpoint instead of burning the queue's time on an answer nobody
//!   will read.
//! * **worker threads**: [`crate::worker::worker_loop`] — `catch_unwind`
//!   per job, shared-session quarantine on panic.
//! * **supervisor thread**: respawns any worker whose thread died
//!   outright (a panic that escaped containment), so the pool never
//!   shrinks.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (or SIGTERM when the config watches
//! signals) closes admission, lets queued + in-flight jobs finish under
//! the drain deadline, cancels whatever outlives the deadline via the
//! in-flight tokens, joins everything, and returns a final
//! [`ServeSnapshot`] — the `fgh-serve-metrics/1` report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Mutex};

use fgh_invariant::{lock_order, OrderedMutex, OrderedMutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fgh_core::{Budget, CancelToken, EngineSession, Parallelism};
use fgh_trace::json::Value;

use crate::cache::PlanCache;
use crate::metrics::{ServeCounters, ServeSnapshot};
use crate::net::{Listen, Listener, Probe, Stream};
use crate::protocol::{
    codes, error_response, parse_request, read_frame, write_frame, FrameError, Request,
};
use crate::queue::{BoundedQueue, PushError};
use crate::worker::{worker_loop, Job, JobPayload, SharedSession};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Transport to listen on.
    pub listen: Listen,
    /// Worker threads executing decomposition jobs.
    pub workers: usize,
    /// Bounded-queue admission capacity.
    pub queue_capacity: usize,
    /// Plan-cache byte cap (0 disables the cache).
    pub cache_bytes: usize,
    /// How long shutdown waits for in-flight jobs before cancelling
    /// them.
    pub drain: Duration,
    /// Per-request budget ceiling (every request's budget is
    /// intersected under it).
    pub budget_ceiling: Budget,
    /// Thread fan-out *inside* each job; the daemon's own concurrency
    /// comes from `workers`, so per-job parallelism defaults to serial.
    pub parallelism: Parallelism,
    /// Honor `inject` request fields (tests/self-test only).
    pub fault_injection: bool,
    /// Treat SIGTERM/SIGINT as a shutdown request (CLI daemon mode;
    /// in-process tests use [`ServerHandle::shutdown`]).
    pub watch_signals: bool,
}

impl ServeConfig {
    /// A loopback config on an ephemeral port with modest defaults.
    pub fn loopback() -> Self {
        ServeConfig {
            listen: Listen::Tcp("127.0.0.1:0".into()),
            workers: 2,
            queue_capacity: 16,
            cache_bytes: 8 << 20,
            drain: Duration::from_secs(10),
            budget_ceiling: Budget::UNLIMITED,
            parallelism: Parallelism::Serial,
            fault_injection: false,
            watch_signals: false,
        }
    }
}

struct Shared {
    queue: Arc<BoundedQueue<Job>>,
    session: Arc<SharedSession>,
    cache: Arc<PlanCache>,
    counters: Arc<ServeCounters>,
    draining: AtomicBool,
    shutdown: AtomicBool,
    /// Tokens of jobs currently admitted and not yet responded, keyed by
    /// a registration id; the drain deadline cancels them all.
    in_flight: OrderedMutex<BTreeMap<u64, CancelToken>>,
    next_registration: AtomicU64,
    /// Jobs responded after the drain began (for the report).
    drained_jobs: AtomicU64,
    fault_injection: bool,
}

impl Shared {
    fn register(&self, token: &CancelToken) -> u64 {
        let id = self.next_registration.fetch_add(1, Ordering::Relaxed); // lint: atomic — relaxed: unique-id counter, no data guarded
        self.lock_in_flight().insert(id, token.clone());
        id
    }

    fn unregister(&self, id: u64) {
        self.lock_in_flight().remove(&id);
    }

    fn lock_in_flight(&self) -> OrderedMutexGuard<'_, BTreeMap<u64, CancelToken>> {
        match self.in_flight.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn cancel_all_in_flight(&self) {
        for t in self.lock_in_flight().values() {
            t.cancel();
        }
    }
}

/// Handle to a running daemon.
pub struct ServerHandle {
    addr: String,
    shutdown_requested: Arc<AtomicBool>,
    accept_thread: JoinHandle<ServeSnapshot>,
}

impl ServerHandle {
    /// The bound address (connect string).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests shutdown (same path a SIGTERM takes).
    pub fn shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::Relaxed); // lint: atomic — relaxed: latched flag, polled by the accept loop
    }

    /// Waits for the daemon to finish draining and returns the final
    /// metrics snapshot.
    pub fn join(self) -> ServeSnapshot {
        match self.accept_thread.join() {
            Ok(s) => s,
            // The accept thread panicking is a daemon bug; surface a
            // zeroed snapshot with a dirty drain rather than unwinding
            // through the caller.
            Err(_) => ServeSnapshot {
                accepted_connections: 0,
                admitted: 0,
                completed: 0,
                cancelled_jobs: 0,
                worker_panics: 0,
                rejected_overloaded: 0,
                rejected_bad_request: 0,
                rejected_bad_frame: 0,
                rejected_shutting_down: 0,
                degraded: 0,
                worker_respawns: 0,
                queue_capacity: 0,
                queue_peak_depth: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_evictions: 0,
                cache_integrity_failures: 0,
                cache_bytes: 0,
                cache_byte_cap: 0,
                workers: 0,
                drain_clean: false,
                drained_jobs: 0,
            },
        }
    }
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Binds, spawns the worker pool + supervisor + accept thread, and
    /// returns immediately with a handle.
    pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let listener = Listener::bind(&config.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr_string();

        if config.watch_signals {
            crate::signal::install_shutdown_handlers();
        }

        let session = EngineSession::new()
            .with_parallelism(config.parallelism)
            .with_budget_ceiling(config.budget_ceiling);
        let shared = Arc::new(Shared {
            queue: Arc::new(BoundedQueue::new(config.queue_capacity)),
            session: Arc::new(SharedSession::new(session)),
            cache: Arc::new(PlanCache::new(config.cache_bytes)),
            counters: Arc::new(ServeCounters::default()),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            in_flight: OrderedMutex::new(
                "InFlightTable",
                lock_order::IN_FLIGHT_TABLE,
                BTreeMap::new(),
            ),
            next_registration: AtomicU64::new(0),
            drained_jobs: AtomicU64::new(0),
            fault_injection: config.fault_injection,
        });
        let shutdown_requested = Arc::new(AtomicBool::new(false));

        let workers = config.workers.max(1);
        let worker_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(
            (0..workers).map(|_| spawn_worker(&shared)).collect(),
        ));

        // Supervisor: a dead worker thread (a panic that escaped the
        // per-job catch_unwind) is replaced so the pool never shrinks.
        let supervisor = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&worker_handles);
            std::thread::spawn(move || loop {
                // lint: atomic — relaxed: shutdown poll; staleness only delays exit by one tick
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
                let mut g = match handles.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                for h in g.iter_mut() {
                    if h.is_finished() && !shared.queue.is_closed() {
                        let dead = std::mem::replace(h, spawn_worker(&shared));
                        let _ = dead.join();
                        ServeCounters::bump(&shared.counters.worker_respawns);
                    }
                }
            })
        };

        let accept_thread = {
            let shared = Arc::clone(&shared);
            let shutdown_requested = Arc::clone(&shutdown_requested);
            let watch_signals = config.watch_signals;
            let drain = config.drain;
            let workers_cfg = workers as u64;
            std::thread::spawn(move || {
                let conn_threads =
                    accept_loop(&listener, &shared, &shutdown_requested, watch_signals);
                let snapshot = drain_and_stop(&shared, drain, workers_cfg, worker_handles);
                shared.shutdown.store(true, Ordering::Relaxed); // lint: atomic — relaxed: latched flag; supervisor polls it
                                                                // Connection threads exit once their in-flight response
                                                                // (now guaranteed delivered or cancelled) is written and
                                                                // they observe `draining` at the next idle poll.
                for h in conn_threads {
                    let _ = h.join();
                }
                let _ = supervisor.join();
                snapshot
            })
        };

        Ok(ServerHandle {
            addr,
            shutdown_requested,
            accept_thread,
        })
    }
}

fn spawn_worker(shared: &Arc<Shared>) -> JoinHandle<()> {
    let queue = Arc::clone(&shared.queue);
    let session = Arc::clone(&shared.session);
    let cache = Arc::clone(&shared.cache);
    let counters = Arc::clone(&shared.counters);
    let fault_injection = shared.fault_injection;
    std::thread::spawn(move || worker_loop(queue, session, cache, counters, fault_injection))
}

fn accept_loop(
    listener: &Listener,
    shared: &Arc<Shared>,
    shutdown_requested: &Arc<AtomicBool>,
    watch_signals: bool,
) -> Vec<JoinHandle<()>> {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    loop {
        // lint: atomic — relaxed: shutdown poll, observed within one accept tick
        if shutdown_requested.load(Ordering::Relaxed)
            || (watch_signals && crate::signal::shutdown_requested())
        {
            break;
        }
        match listener.accept() {
            Ok(stream) => {
                ServeCounters::bump(&shared.counters.accepted_connections);
                let shared = Arc::clone(shared);
                conn_threads.push(std::thread::spawn(move || connection_loop(stream, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        conn_threads.retain(|h| !h.is_finished());
    }
    // Stop admitting: connection threads observe `draining` and turn
    // new decompose requests into `shutting-down` rejections while
    // queued work keeps flowing to workers. They are joined only AFTER
    // the drain deadline logic ran — a conn thread blocked on a stalled
    // worker needs that deadline to trip its job's cancel token.
    shared.draining.store(true, Ordering::Relaxed); // lint: atomic — relaxed: latched drain flag; conn threads poll it
    conn_threads
}

fn drain_and_stop(
    shared: &Arc<Shared>,
    drain: Duration,
    workers: u64,
    worker_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> ServeSnapshot {
    let completed_at_drain = ServeCounters::get(&shared.counters.completed);
    let deadline = Instant::now() + drain;
    let mut clean = true;
    loop {
        let admitted = ServeCounters::get(&shared.counters.admitted);
        let completed = ServeCounters::get(&shared.counters.completed);
        if admitted <= completed && shared.queue.depth() == 0 {
            break;
        }
        if Instant::now() >= deadline {
            // Deadline: stop waiting politely — trip every in-flight
            // token and give the workers one grace period to observe it.
            clean = false;
            shared.cancel_all_in_flight();
            std::thread::sleep(Duration::from_millis(200));
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.queue.close();
    let handles = match Arc::try_unwrap(worker_handles) {
        Ok(m) => match m.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        },
        Err(handles) => {
            let mut g = match handles.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::mem::take(&mut *g)
        }
    };
    for h in handles {
        let _ = h.join();
    }
    let drained = ServeCounters::get(&shared.counters.completed) - completed_at_drain;
    shared.drained_jobs.store(drained, Ordering::Relaxed); // lint: atomic — relaxed: report-only counter, read after joins
    snapshot(shared, workers, clean)
}

fn snapshot(shared: &Shared, workers: u64, drain_clean: bool) -> ServeSnapshot {
    let c = &shared.counters;
    let (hits, misses, evictions, integrity, bytes) = shared.cache.stats();
    ServeSnapshot {
        accepted_connections: ServeCounters::get(&c.accepted_connections),
        admitted: ServeCounters::get(&c.admitted),
        completed: ServeCounters::get(&c.completed),
        cancelled_jobs: ServeCounters::get(&c.cancelled_jobs),
        worker_panics: ServeCounters::get(&c.worker_panics),
        rejected_overloaded: ServeCounters::get(&c.rejected_overloaded),
        rejected_bad_request: ServeCounters::get(&c.rejected_bad_request),
        rejected_bad_frame: ServeCounters::get(&c.rejected_bad_frame),
        rejected_shutting_down: ServeCounters::get(&c.rejected_shutting_down),
        degraded: ServeCounters::get(&c.degraded),
        worker_respawns: ServeCounters::get(&c.worker_respawns),
        queue_capacity: shared.queue.capacity() as u64,
        queue_peak_depth: shared.queue.peak_depth() as u64,
        cache_hits: hits,
        cache_misses: misses,
        cache_evictions: evictions,
        cache_integrity_failures: integrity,
        cache_bytes: bytes,
        cache_byte_cap: shared.cache.byte_cap() as u64,
        workers,
        drain_clean,
        // lint: atomic — relaxed: report-only read after workers joined
        drained_jobs: shared.drained_jobs.load(Ordering::Relaxed),
    }
}

/// Live-counters response for `{"op":"stats"}`.
fn stats_response(shared: &Shared) -> Value {
    let c = &shared.counters;
    let (hits, misses, ..) = shared.cache.stats();
    let mut doc = BTreeMap::new();
    doc.insert("ok".into(), Value::Bool(true));
    doc.insert(
        "queue_depth".into(),
        Value::Num(shared.queue.depth() as f64),
    );
    doc.insert(
        "admitted".into(),
        Value::Num(ServeCounters::get(&c.admitted) as f64),
    );
    doc.insert(
        "completed".into(),
        Value::Num(ServeCounters::get(&c.completed) as f64),
    );
    doc.insert(
        "cancelled".into(),
        Value::Num(ServeCounters::get(&c.cancelled_jobs) as f64),
    );
    doc.insert(
        "rejected_overloaded".into(),
        Value::Num(ServeCounters::get(&c.rejected_overloaded) as f64),
    );
    doc.insert(
        "worker_panics".into(),
        Value::Num(ServeCounters::get(&c.worker_panics) as f64),
    );
    doc.insert("cache_hits".into(), Value::Num(hits as f64));
    doc.insert("cache_misses".into(), Value::Num(misses as f64));
    doc.insert(
        "idle_arenas".into(),
        Value::Num(shared.session.idle_arenas() as f64),
    );
    Value::Obj(doc)
}

/// Backpressure hint: queued depth × a conservative per-job estimate.
fn retry_after_ms(depth: usize) -> u64 {
    (depth as u64).saturating_mul(50).clamp(50, 5_000)
}

fn connection_loop(mut stream: Stream, shared: &Arc<Shared>) {
    // Frame reads poll at 100ms so the loop can notice draining and
    // client death promptly.
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(v) => v,
            Err(FrameError::Idle) => {
                // lint: atomic — relaxed: drain poll; one extra request is harmless
                if shared.draining.load(Ordering::Relaxed) {
                    return; // drain: shed idle keepalive connections
                }
                continue;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Malformed(m)) => {
                ServeCounters::bump(&shared.counters.rejected_bad_frame);
                let _ = write_frame(&mut stream, &error_response(codes::BAD_FRAME, &m, None));
                return; // a malformed peer gets one typed error, then the door
            }
        };
        let request = match parse_request(&frame) {
            Ok(r) => r,
            Err(m) => {
                ServeCounters::bump(&shared.counters.rejected_bad_request);
                let _ = write_frame(&mut stream, &error_response(codes::BAD_REQUEST, &m, None));
                continue;
            }
        };
        match request {
            Request::Ping => {
                let mut doc = BTreeMap::new();
                doc.insert("ok".into(), Value::Bool(true));
                doc.insert("op".into(), Value::Str("ping".into()));
                if write_frame(&mut stream, &Value::Obj(doc)).is_err() {
                    return;
                }
            }
            Request::Stats => {
                if write_frame(&mut stream, &stats_response(shared)).is_err() {
                    return;
                }
            }
            Request::Decompose(_) | Request::Batch(_) => {
                // lint: atomic — relaxed: drain poll; one extra request is harmless
                if shared.draining.load(Ordering::Relaxed) {
                    ServeCounters::bump(&shared.counters.rejected_shutting_down);
                    let _ = write_frame(
                        &mut stream,
                        &error_response(
                            codes::SHUTTING_DOWN,
                            "daemon is draining; no new work admitted",
                            None,
                        ),
                    );
                    continue;
                }
                // A batch occupies one queue slot and one worker, same
                // admission and cancellation story as a single request.
                let payload = match request {
                    Request::Decompose(req) => JobPayload::Single(req),
                    Request::Batch(reqs) => JobPayload::Batch(reqs),
                    _ => unreachable!("outer match admits only decompose/batch here"),
                };
                let cancel = CancelToken::new();
                let (tx, rx) = std::sync::mpsc::sync_channel::<Value>(1);
                let job = Job {
                    request: payload,
                    cancel: cancel.clone(),
                    respond: tx,
                };
                match shared.queue.push(job) {
                    Err(PushError::Full { depth }) => {
                        ServeCounters::bump(&shared.counters.rejected_overloaded);
                        let _ = write_frame(
                            &mut stream,
                            &error_response(
                                codes::OVERLOADED,
                                &format!("job queue full ({depth} waiting)"),
                                Some(retry_after_ms(depth)),
                            ),
                        );
                        continue;
                    }
                    Err(PushError::Closed) => {
                        ServeCounters::bump(&shared.counters.rejected_shutting_down);
                        let _ = write_frame(
                            &mut stream,
                            &error_response(codes::SHUTTING_DOWN, "daemon is draining", None),
                        );
                        continue;
                    }
                    Ok(()) => {}
                }
                ServeCounters::bump(&shared.counters.admitted);
                let registration = shared.register(&cancel);
                // Await the worker, watching the socket: a client that
                // hangs up mid-request gets its job cancelled.
                let response = loop {
                    match rx.recv_timeout(Duration::from_millis(25)) {
                        Ok(v) => break Some(v),
                        Err(RecvTimeoutError::Timeout) => match stream.probe_liveness() {
                            Probe::Alive => continue,
                            Probe::Disconnected | Probe::UnexpectedData => {
                                cancel.cancel();
                                break None;
                            }
                        },
                        Err(RecvTimeoutError::Disconnected) => {
                            // Worker died without responding (panic that
                            // escaped containment); supervision respawns
                            // it, this client gets the typed error.
                            break Some(error_response(
                                codes::WORKER_PANIC,
                                "worker lost while executing the job",
                                None,
                            ));
                        }
                    }
                };
                shared.unregister(registration);
                match response {
                    Some(v) => {
                        if write_frame(&mut stream, &v).is_err() {
                            return;
                        }
                    }
                    None => return, // disconnected client: job cancelled, close
                }
            }
        }
    }
}
