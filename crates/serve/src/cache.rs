//! Content-addressed plan cache with LRU eviction under a byte cap.
//!
//! The key is a 64-bit FNV-1a hash over the matrix *content identity*
//! (catalog name + scale + generator seed, or the inline Matrix Market
//! bytes) and every decomposition-relevant parameter (model, K, ε,
//! partitioner seed, runs). Identical requests — the common case for a
//! service fronting a dashboard that refreshes — skip partitioning
//! entirely.
//!
//! A hit is never trusted blindly: the worker revalidates the cached
//! [`Decomposition`] against the freshly built matrix
//! (`decomposition.validate(&a)`), and a failed revalidation evicts the
//! entry, counts an integrity failure, and recomputes — a corrupted
//! cache degrades to a slower service, never to wrong answers.

use std::collections::HashMap;

use fgh_core::Decomposition;
use fgh_invariant::{lock_order, OrderedMutex, OrderedMutexGuard};

/// 64-bit FNV-1a over a byte stream — tiny, deterministic, and
/// dependency-free; collision resistance is adequate for a cache whose
/// hits are revalidated anyway.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A cached plan plus the summary numbers the response repeats.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The decoded decomposition (revalidated on every hit).
    pub decomposition: Decomposition,
    /// The partitioner's objective value.
    pub objective: u64,
    /// Total communication volume in words.
    pub volume: u64,
    /// Achieved load imbalance, percent.
    pub imbalance: f64,
    /// The stable degraded code, if the outcome was degraded.
    pub degraded_code: Option<&'static str>,
    /// Human-readable degradation text, if degraded.
    pub degraded_reason: Option<String>,
}

impl CachedPlan {
    /// Approximate heap footprint, for the byte cap.
    fn approx_bytes(&self) -> usize {
        self.decomposition.nonzero_owner.len() * 4
            + self.decomposition.vec_owner.len() * 4
            + self.degraded_reason.as_deref().map_or(0, str::len)
            + 64
    }
}

struct Entry {
    plan: CachedPlan,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    clock: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    integrity_failures: u64,
}

/// The cache: a mutexed map with a logical LRU clock. Contention is
/// irrelevant next to partitioning cost.
pub struct PlanCache {
    byte_cap: usize,
    inner: OrderedMutex<Inner>,
}

impl PlanCache {
    /// A cache holding at most `byte_cap` bytes of plans (0 disables
    /// caching entirely — every lookup misses, every insert is dropped).
    pub fn new(byte_cap: usize) -> Self {
        PlanCache {
            byte_cap,
            inner: OrderedMutex::new(
                "PlanCache",
                lock_order::PLAN_CACHE,
                Inner {
                    map: HashMap::new(),
                    clock: 0,
                    bytes: 0,
                    hits: 0,
                    misses: 0,
                    evictions: 0,
                    integrity_failures: 0,
                },
            ),
        }
    }

    fn lock(&self) -> OrderedMutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The configured byte cap.
    pub fn byte_cap(&self) -> usize {
        self.byte_cap
    }

    /// Looks up a plan, bumping its recency. Counts a hit or a miss.
    pub fn get(&self, key: u64) -> Option<CachedPlan> {
        let mut g = self.lock();
        g.clock += 1;
        let clock = g.clock;
        match g.map.get_mut(&key) {
            Some(e) => {
                e.last_used = clock;
                let plan = e.plan.clone();
                g.hits += 1;
                Some(plan)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Records that a hit failed revalidation: evicts the entry and
    /// counts an integrity failure (the hit already counted; the caller
    /// proceeds as a miss).
    pub fn quarantine(&self, key: u64) {
        let mut g = self.lock();
        if let Some(e) = g.map.remove(&key) {
            g.bytes -= e.bytes;
        }
        g.integrity_failures += 1;
    }

    /// Inserts a plan, evicting least-recently-used entries until the
    /// byte cap holds. A plan larger than the whole cap is not cached.
    pub fn put(&self, key: u64, plan: CachedPlan) {
        let bytes = plan.approx_bytes();
        if bytes > self.byte_cap {
            return;
        }
        let mut g = self.lock();
        if let Some(old) = g.map.remove(&key) {
            g.bytes -= old.bytes;
        }
        while g.bytes + bytes > self.byte_cap {
            let Some((&lru_key, _)) = g.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if let Some(e) = g.map.remove(&lru_key) {
                g.bytes -= e.bytes;
                g.evictions += 1;
            }
        }
        g.clock += 1;
        let clock = g.clock;
        g.bytes += bytes;
        g.map.insert(
            key,
            Entry {
                plan,
                bytes,
                last_used: clock,
            },
        );
    }

    /// (hits, misses, evictions, integrity_failures, bytes) snapshot.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        let g = self.lock();
        (
            g.hits,
            g.misses,
            g.evictions,
            g.integrity_failures,
            g.bytes as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgh_sparse::{CooMatrix, CsrMatrix};

    fn plan(n: u32) -> CachedPlan {
        let a: CsrMatrix = CsrMatrix::from_coo(
            CooMatrix::from_triplets(n, n, (0..n).map(|i| (i, i, 1.0))).unwrap(),
        );
        let d = Decomposition::rowwise(&a, 2, (0..n).map(|i| i % 2).collect()).unwrap();
        CachedPlan {
            decomposition: d,
            objective: 0,
            volume: 0,
            imbalance: 0.0,
            degraded_code: None,
            degraded_reason: None,
        }
    }

    #[test]
    fn hit_miss_and_recency() {
        let c = PlanCache::new(1 << 20);
        assert!(c.get(1).is_none());
        c.put(1, plan(4));
        assert!(c.get(1).is_some());
        let (hits, misses, ..) = c.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn byte_cap_evicts_lru() {
        let one = plan(8);
        let per_entry = one.approx_bytes();
        // Room for exactly two entries.
        let c = PlanCache::new(per_entry * 2);
        c.put(1, plan(8));
        c.put(2, plan(8));
        c.get(1); // 1 is now more recent than 2
        c.put(3, plan(8)); // must evict 2
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "LRU entry must have been evicted");
        assert!(c.get(3).is_some());
        let (_, _, evictions, _, bytes) = c.stats();
        assert_eq!(evictions, 1);
        assert!(bytes as usize <= per_entry * 2);
    }

    #[test]
    fn quarantine_removes_and_counts() {
        let c = PlanCache::new(1 << 20);
        c.put(9, plan(4));
        c.quarantine(9);
        assert!(c.get(9).is_none());
        let (_, _, _, integrity, bytes) = c.stats();
        assert_eq!(integrity, 1);
        assert_eq!(bytes, 0);
    }

    #[test]
    fn zero_cap_disables_caching() {
        let c = PlanCache::new(0);
        c.put(1, plan(4));
        assert!(c.get(1).is_none());
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
