//! Live service counters and the final **`fgh-serve-metrics/1`**
//! report the daemon flushes on clean shutdown.
//!
//! # Schema `fgh-serve-metrics/1`
//!
//! ```json
//! {
//!   "schema": "fgh-serve-metrics/1",
//!   "accepted_connections": 70,
//!   "jobs": {
//!     "admitted": 64, "completed": 61, "cancelled": 2,
//!     "worker_panics": 1, "rejected_overloaded": 5,
//!     "rejected_bad_request": 3, "rejected_bad_frame": 2,
//!     "rejected_shutting_down": 1, "degraded": 4
//!   },
//!   "queue": {"capacity": 16, "peak_depth": 16},
//!   "cache": {
//!     "hits": 10, "misses": 51, "evictions": 2,
//!     "integrity_failures": 0, "bytes": 123456, "byte_cap": 8388608
//!   },
//!   "workers": {"configured": 4, "respawns": 0},
//!   "drain": {"clean": true, "drained_jobs": 3}
//! }
//! ```
//!
//! Every member is required; all are non-negative integers except the
//! two booleans-as-written (`drain.clean`). [`validate_serve_metrics_value`]
//! is the checker CI's smoke job runs against the uploaded artifact.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use fgh_trace::json::Value;

/// The schema identifier stamped into every report.
pub const SERVE_METRICS_SCHEMA: &str = "fgh-serve-metrics/1";

/// Live counters, all relaxed atomics: observability only, never
/// synchronization.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted.
    pub accepted_connections: AtomicU64,
    /// Jobs admitted past the queue.
    pub admitted: AtomicU64,
    /// Jobs that produced a success response (full or degraded).
    pub completed: AtomicU64,
    /// Jobs whose cancel token tripped (client disconnect or drain
    /// deadline) and that came back with the `cancelled` degraded code.
    pub cancelled_jobs: AtomicU64,
    /// Jobs lost to a worker panic (the worker survived via respawn or
    /// unwind containment).
    pub worker_panics: AtomicU64,
    /// Admission rejections: queue full.
    pub rejected_overloaded: AtomicU64,
    /// Parse-level rejections: invalid request object.
    pub rejected_bad_request: AtomicU64,
    /// Frame-level rejections: malformed frame.
    pub rejected_bad_frame: AtomicU64,
    /// Rejections because the daemon was draining.
    pub rejected_shutting_down: AtomicU64,
    /// Completed jobs whose outcome was degraded (any code).
    pub degraded: AtomicU64,
    /// Worker threads respawned by the supervisor.
    pub worker_respawns: AtomicU64,
}

impl ServeCounters {
    /// Relaxed increment.
    // lint: atomic — relaxed: monotonic metric counter; readers tolerate staleness
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read.
    // lint: atomic — relaxed: metric snapshot; cross-counter skew is acceptable
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Point-in-time snapshot of everything the final report carries.
#[derive(Debug, Clone)]
pub struct ServeSnapshot {
    /// Connections accepted.
    pub accepted_connections: u64,
    /// See [`ServeCounters`].
    pub admitted: u64,
    /// See [`ServeCounters`].
    pub completed: u64,
    /// See [`ServeCounters`].
    pub cancelled_jobs: u64,
    /// See [`ServeCounters`].
    pub worker_panics: u64,
    /// See [`ServeCounters`].
    pub rejected_overloaded: u64,
    /// See [`ServeCounters`].
    pub rejected_bad_request: u64,
    /// See [`ServeCounters`].
    pub rejected_bad_frame: u64,
    /// See [`ServeCounters`].
    pub rejected_shutting_down: u64,
    /// See [`ServeCounters`].
    pub degraded: u64,
    /// See [`ServeCounters`].
    pub worker_respawns: u64,
    /// Queue admission capacity.
    pub queue_capacity: u64,
    /// Deepest observed queue.
    pub queue_peak_depth: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache LRU evictions.
    pub cache_evictions: u64,
    /// Cache hits whose revalidation failed (entry discarded, recomputed).
    pub cache_integrity_failures: u64,
    /// Bytes currently held by the cache.
    pub cache_bytes: u64,
    /// The cache byte cap.
    pub cache_byte_cap: u64,
    /// Configured worker count.
    pub workers: u64,
    /// Whether shutdown drained every in-flight job inside the deadline.
    pub drain_clean: bool,
    /// Jobs completed during the drain window.
    pub drained_jobs: u64,
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

impl ServeSnapshot {
    /// Assembles the `fgh-serve-metrics/1` document.
    pub fn to_document(&self) -> Value {
        let mut jobs = BTreeMap::new();
        jobs.insert("admitted".into(), num(self.admitted));
        jobs.insert("completed".into(), num(self.completed));
        jobs.insert("cancelled".into(), num(self.cancelled_jobs));
        jobs.insert("worker_panics".into(), num(self.worker_panics));
        jobs.insert("rejected_overloaded".into(), num(self.rejected_overloaded));
        jobs.insert(
            "rejected_bad_request".into(),
            num(self.rejected_bad_request),
        );
        jobs.insert("rejected_bad_frame".into(), num(self.rejected_bad_frame));
        jobs.insert(
            "rejected_shutting_down".into(),
            num(self.rejected_shutting_down),
        );
        jobs.insert("degraded".into(), num(self.degraded));

        let mut queue = BTreeMap::new();
        queue.insert("capacity".into(), num(self.queue_capacity));
        queue.insert("peak_depth".into(), num(self.queue_peak_depth));

        let mut cache = BTreeMap::new();
        cache.insert("hits".into(), num(self.cache_hits));
        cache.insert("misses".into(), num(self.cache_misses));
        cache.insert("evictions".into(), num(self.cache_evictions));
        cache.insert(
            "integrity_failures".into(),
            num(self.cache_integrity_failures),
        );
        cache.insert("bytes".into(), num(self.cache_bytes));
        cache.insert("byte_cap".into(), num(self.cache_byte_cap));

        let mut workers = BTreeMap::new();
        workers.insert("configured".into(), num(self.workers));
        workers.insert("respawns".into(), num(self.worker_respawns));

        let mut drain = BTreeMap::new();
        drain.insert("clean".into(), Value::Bool(self.drain_clean));
        drain.insert("drained_jobs".into(), num(self.drained_jobs));

        let mut doc = BTreeMap::new();
        doc.insert("schema".into(), Value::Str(SERVE_METRICS_SCHEMA.into()));
        doc.insert(
            "accepted_connections".into(),
            num(self.accepted_connections),
        );
        doc.insert("jobs".into(), Value::Obj(jobs));
        doc.insert("queue".into(), Value::Obj(queue));
        doc.insert("cache".into(), Value::Obj(cache));
        doc.insert("workers".into(), Value::Obj(workers));
        doc.insert("drain".into(), Value::Obj(drain));
        Value::Obj(doc)
    }
}

const JOB_MEMBERS: [&str; 9] = [
    "admitted",
    "completed",
    "cancelled",
    "worker_panics",
    "rejected_overloaded",
    "rejected_bad_request",
    "rejected_bad_frame",
    "rejected_shutting_down",
    "degraded",
];
const QUEUE_MEMBERS: [&str; 2] = ["capacity", "peak_depth"];
const CACHE_MEMBERS: [&str; 6] = [
    "hits",
    "misses",
    "evictions",
    "integrity_failures",
    "bytes",
    "byte_cap",
];
const WORKER_MEMBERS: [&str; 2] = ["configured", "respawns"];

fn require_counters(v: Option<&Value>, members: &[&str], path: &str) -> Result<(), String> {
    let v = v.ok_or(format!("{path}: missing"))?;
    let obj = v.as_obj().ok_or(format!("{path}: expected an object"))?;
    for key in obj.keys() {
        if !members.contains(&key.as_str()) {
            return Err(format!("{path}: unknown member {key:?}"));
        }
    }
    for m in members {
        obj.get(*m)
            .and_then(Value::as_u64)
            .ok_or(format!("{path}.{m}: expected a non-negative integer"))?;
    }
    Ok(())
}

/// Validates a parsed JSON value against the `fgh-serve-metrics/1`
/// schema: exact member sets, counter types, and the drain object.
/// Returns the first violation as a `path: problem` message.
pub fn validate_serve_metrics_value(v: &Value) -> Result<(), String> {
    let obj = v
        .as_obj()
        .ok_or("serve-metrics: expected an object".to_string())?;
    const TOP: [&str; 6] = [
        "schema",
        "accepted_connections",
        "jobs",
        "queue",
        "cache",
        "workers",
    ];
    for key in obj.keys() {
        if !TOP.contains(&key.as_str()) && key != "drain" {
            return Err(format!("serve-metrics: unknown member {key:?}"));
        }
    }
    match v.get("schema").and_then(Value::as_str) {
        Some(s) if s == SERVE_METRICS_SCHEMA => {}
        Some(s) => return Err(format!("serve-metrics.schema: unknown schema {s:?}")),
        None => return Err("serve-metrics.schema: missing".to_string()),
    }
    v.get("accepted_connections")
        .and_then(Value::as_u64)
        .ok_or("serve-metrics.accepted_connections: expected a non-negative integer")?;
    require_counters(v.get("jobs"), &JOB_MEMBERS, "serve-metrics.jobs")?;
    require_counters(v.get("queue"), &QUEUE_MEMBERS, "serve-metrics.queue")?;
    require_counters(v.get("cache"), &CACHE_MEMBERS, "serve-metrics.cache")?;
    require_counters(v.get("workers"), &WORKER_MEMBERS, "serve-metrics.workers")?;
    let drain = v
        .get("drain")
        .ok_or("serve-metrics.drain: missing")?
        .as_obj()
        .ok_or("serve-metrics.drain: expected an object")?;
    for key in drain.keys() {
        if key != "clean" && key != "drained_jobs" {
            return Err(format!("serve-metrics.drain: unknown member {key:?}"));
        }
    }
    match drain.get("clean") {
        Some(Value::Bool(_)) => {}
        _ => return Err("serve-metrics.drain.clean: expected a boolean".to_string()),
    }
    drain
        .get("drained_jobs")
        .and_then(Value::as_u64)
        .ok_or("serve-metrics.drain.drained_jobs: expected a non-negative integer")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ServeSnapshot {
        ServeSnapshot {
            accepted_connections: 70,
            admitted: 64,
            completed: 61,
            cancelled_jobs: 2,
            worker_panics: 1,
            rejected_overloaded: 5,
            rejected_bad_request: 3,
            rejected_bad_frame: 2,
            rejected_shutting_down: 1,
            degraded: 4,
            worker_respawns: 0,
            queue_capacity: 16,
            queue_peak_depth: 16,
            cache_hits: 10,
            cache_misses: 51,
            cache_evictions: 2,
            cache_integrity_failures: 0,
            cache_bytes: 123456,
            cache_byte_cap: 8 << 20,
            workers: 4,
            drain_clean: true,
            drained_jobs: 3,
        }
    }

    #[test]
    fn document_validates_and_round_trips() {
        let doc = snapshot().to_document();
        validate_serve_metrics_value(&doc).unwrap();
        let text = doc.to_json();
        let back = fgh_trace::json::parse(&text).unwrap();
        validate_serve_metrics_value(&back).unwrap();
        assert_eq!(
            back.get("jobs").unwrap().get("cancelled").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn validator_rejects_mutations() {
        let good = snapshot().to_document().to_json();
        for (needle, replacement, why) in [
            (
                r#""schema":"fgh-serve-metrics/1""#,
                r#""schema":"bogus/1""#,
                "schema",
            ),
            (r#""clean":true"#, r#""clean":"yes""#, "drain.clean type"),
            (r#""worker_panics""#, r#""worker_paniks""#, "jobs member"),
            (r#""hits":10"#, r#""hits":-10"#, "negative counter"),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(good, bad, "mutation {why} did not apply");
            let v = fgh_trace::json::parse(&bad).unwrap();
            assert!(
                validate_serve_metrics_value(&v).is_err(),
                "accepted bad {why}"
            );
        }
    }
}
