//! Multilevel recursive bisection for graphs (K-way, edge-cut objective).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::coarsen::{coarsen_once, GraphLevel};
use crate::graph::CsrGraph;
use crate::initial::ggp_best;
use crate::refine::GraphBisection;

/// Configuration for the multilevel graph partitioner (MeTiS-style
/// defaults; `epsilon = 0.03` matches the paper's setup).
#[derive(Debug, Clone)]
pub struct GraphPartitionConfig {
    /// Maximum allowed imbalance of the final K-way partition.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
    /// Stop coarsening at this many vertices.
    pub coarsen_to: u32,
    /// GGP tries at the coarsest level.
    pub initial_tries: usize,
    /// Max FM passes per level.
    pub fm_passes: usize,
    /// FM early-exit threshold (consecutive non-improving moves).
    pub fm_early_exit: usize,
}

impl Default for GraphPartitionConfig {
    fn default() -> Self {
        GraphPartitionConfig {
            epsilon: 0.03,
            seed: 1,
            coarsen_to: 100,
            initial_tries: 8,
            fm_passes: 4,
            fm_early_exit: 400,
        }
    }
}

impl GraphPartitionConfig {
    /// A config with the given seed, defaults elsewhere.
    pub fn with_seed(seed: u64) -> Self {
        GraphPartitionConfig { seed, ..Default::default() }
    }

    fn per_level_epsilon(&self, k: u32) -> f64 {
        if k <= 2 {
            return self.epsilon;
        }
        let d = (k as f64).log2().ceil();
        (1.0 + self.epsilon).powf(1.0 / d) - 1.0
    }
}

/// Outcome of a K-way graph partitioning run.
#[derive(Debug, Clone)]
pub struct GraphPartitionResult {
    /// Per-vertex part assignment (`0..k`).
    pub parts: Vec<u32>,
    /// Number of parts.
    pub k: u32,
    /// Edge cut of the partition (the partitioner's objective — an
    /// *approximation* of communication volume, per the paper's critique).
    pub edge_cut: u64,
    /// Percent load imbalance `100 (W_max − W_avg) / W_avg`.
    pub imbalance_percent: f64,
}

/// Partitions `g` into `k` parts by multilevel recursive bisection.
pub fn partition_graph(g: &CsrGraph, k: u32, cfg: &GraphPartitionConfig) -> GraphPartitionResult {
    assert!(k >= 1, "K must be >= 1");
    let n = g.n();
    let mut parts = vec![0u32; n as usize];
    if k > 1 && n > 0 {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let eps = cfg.per_level_epsilon(k);
        let ids: Vec<u32> = (0..n).collect();
        recurse(g, &ids, k, 0, eps, cfg, &mut rng, &mut parts);
    }
    finish(g, k, parts)
}

fn finish(g: &CsrGraph, k: u32, parts: Vec<u32>) -> GraphPartitionResult {
    let edge_cut = g.edge_cut(&parts);
    let mut w = vec![0u64; k as usize];
    for v in 0..g.n() {
        w[parts[v as usize] as usize] += g.vertex_weight(v) as u64;
    }
    let total: u64 = w.iter().sum();
    let imbalance_percent = if total == 0 {
        0.0
    } else {
        let avg = total as f64 / k as f64;
        let max = *w.iter().max().expect("k >= 1") as f64;
        100.0 * (max - avg) / avg
    };
    GraphPartitionResult { parts, k, edge_cut, imbalance_percent }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    g: &CsrGraph,
    ids: &[u32],
    k: u32,
    part_lo: u32,
    eps: f64,
    cfg: &GraphPartitionConfig,
    rng: &mut SmallRng,
    out: &mut [u32],
) {
    if k == 1 {
        for &orig in ids {
            out[orig as usize] = part_lo;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total = g.total_vertex_weight() as f64;
    let targets = [total * k0 as f64 / k as f64, total * k1 as f64 / k as f64];

    let sides = multilevel_bisect(g, targets, eps, cfg, rng);

    // Extract the two induced subgraphs.
    for side in [0u8, 1u8] {
        let mut new_of_old = vec![u32::MAX; g.n() as usize];
        let mut sub_ids: Vec<u32> = Vec::new();
        let mut vwgt: Vec<u32> = Vec::new();
        for v in 0..g.n() {
            if sides[v as usize] == side {
                new_of_old[v as usize] = sub_ids.len() as u32;
                sub_ids.push(ids[v as usize]);
                vwgt.push(g.vertex_weight(v));
            }
        }
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for v in 0..g.n() {
            if sides[v as usize] != side {
                continue;
            }
            let nv = new_of_old[v as usize];
            for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
                if sides[u as usize] == side && v < u {
                    edges.push((nv, new_of_old[u as usize], w));
                }
            }
        }
        let sub = CsrGraph::from_edges(sub_ids.len() as u32, &edges, Some(vwgt))
            .expect("induced subgraph is valid");
        let (kk, lo) = if side == 0 { (k0, part_lo) } else { (k1, part_lo + k0) };
        recurse(&sub, &sub_ids, kk, lo, eps, cfg, rng, out);
    }
}

/// Multilevel bisection of a graph: HEM coarsening, GGP initial
/// partitioning, FM refinement on the way back up.
pub fn multilevel_bisect(
    g: &CsrGraph,
    targets: [f64; 2],
    epsilon: f64,
    cfg: &GraphPartitionConfig,
    rng: &mut SmallRng,
) -> Vec<u8> {
    if targets[1] <= 0.0 {
        return vec![0; g.n() as usize];
    }
    if targets[0] <= 0.0 {
        return vec![1; g.n() as usize];
    }
    let min_target = targets[0].min(targets[1]);
    let max_vw = g.vertex_weights().iter().copied().max().unwrap_or(1) as u64;
    let weight_cap =
        (((min_target * (1.0 + epsilon)) / 4.0).ceil().max(1.0) as u64).max(max_vw);

    let mut levels: Vec<GraphLevel> = Vec::new();
    loop {
        let cur: &CsrGraph = match levels.last() {
            Some(l) => &l.coarse,
            None => g,
        };
        if cur.n() <= cfg.coarsen_to {
            break;
        }
        match coarsen_once(cur, weight_cap, rng) {
            Some(level) => levels.push(level),
            None => break,
        }
    }

    let coarsest: &CsrGraph = match levels.last() {
        Some(l) => &l.coarse,
        None => g,
    };
    let mut sides =
        ggp_best(coarsest, targets, epsilon, cfg.initial_tries, cfg.fm_passes, rng);

    for li in (0..levels.len()).rev() {
        let fine: &CsrGraph = if li == 0 { g } else { &levels[li - 1].coarse };
        let map = &levels[li].map;
        let fine_sides: Vec<u8> =
            (0..fine.n()).map(|v| sides[map[v as usize] as usize]).collect();
        let mut st = GraphBisection::new(fine, fine_sides, targets, epsilon);
        st.refine(rng, cfg.fm_passes, cfg.fm_early_exit);
        sides = st.into_sides();
    }
    sides
}

/// Runs [`partition_graph`] with `runs` seeds in parallel, returning the
/// best balanced result by edge cut (the paper's MeTiS 50-seed protocol).
pub fn partition_graph_best(
    g: &CsrGraph,
    k: u32,
    cfg: &GraphPartitionConfig,
    runs: usize,
) -> GraphPartitionResult {
    let runs = runs.max(1);
    let mut results: Vec<GraphPartitionResult> = Vec::with_capacity(runs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..runs)
            .map(|r| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(r as u64);
                scope.spawn(move || partition_graph(g, k, &c))
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("partition thread panicked"));
        }
    });
    results
        .into_iter()
        .min_by(|a, b| {
            let ab = a.imbalance_percent <= cfg.epsilon * 100.0 + 1e-9;
            let bb = b.imbalance_percent <= cfg.epsilon * 100.0 + 1e-9;
            // Balanced first, then lower cut.
            bb.cmp(&ab).then(a.edge_cut.cmp(&b.edge_cut))
        })
        .expect("runs >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_graph, two_cliques};

    #[test]
    fn k2_two_cliques() {
        let g = two_cliques(50);
        let r = partition_graph(&g, 2, &GraphPartitionConfig::with_seed(1));
        assert_eq!(r.edge_cut, 1);
        assert!(r.imbalance_percent <= 3.0 + 1e-9);
    }

    #[test]
    fn k8_balance_and_coverage() {
        let g = random_graph(800, 1600, 3);
        let r = partition_graph(&g, 8, &GraphPartitionConfig::with_seed(2));
        assert_eq!(r.k, 8);
        let mut sizes = vec![0usize; 8];
        for &p in &r.parts {
            assert!(p < 8);
            sizes[p as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
        assert!(r.imbalance_percent <= 4.0, "imbalance {}%", r.imbalance_percent);
        assert_eq!(r.edge_cut, g.edge_cut(&r.parts));
    }

    #[test]
    fn non_power_of_two() {
        let g = random_graph(300, 600, 5);
        let r = partition_graph(&g, 6, &GraphPartitionConfig::with_seed(3));
        assert_eq!(r.k, 6);
        assert!(r.parts.iter().all(|&p| p < 6));
        assert!(r.imbalance_percent <= 6.0);
    }

    #[test]
    fn k1_trivial() {
        let g = two_cliques(5);
        let r = partition_graph(&g, 1, &GraphPartitionConfig::default());
        assert_eq!(r.edge_cut, 0);
        assert!(r.parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn weighted_vertices_balanced_by_weight() {
        // One heavy vertex should sit alone-ish.
        let mut edges = Vec::new();
        for i in 0..9u32 {
            edges.push((i, i + 1, 1u32));
        }
        let mut w = vec![1u32; 10];
        w[0] = 9; // total 18, target 9 per side
        let g = CsrGraph::from_edges(10, &edges, Some(w)).unwrap();
        let r = partition_graph(&g, 2, &GraphPartitionConfig::with_seed(4));
        let side0 = r.parts[0];
        let with_heavy: u64 = (0..10)
            .filter(|&v| r.parts[v as usize] == side0)
            .map(|v| g.vertex_weight(v) as u64)
            .sum();
        assert!(with_heavy <= 10, "heavy side weight {with_heavy}");
    }

    #[test]
    fn multi_seed_never_worse() {
        let g = random_graph(400, 800, 7);
        let cfg = GraphPartitionConfig::with_seed(1);
        let single = partition_graph(&g, 8, &cfg);
        let best = partition_graph_best(&g, 8, &cfg, 4);
        assert!(best.edge_cut <= single.edge_cut);
    }

    #[test]
    fn determinism() {
        let g = random_graph(200, 400, 9);
        let cfg = GraphPartitionConfig::with_seed(5);
        let a = partition_graph(&g, 4, &cfg);
        let b = partition_graph(&g, 4, &cfg);
        assert_eq!(a.parts, b.parts);
    }
}
