//! FM boundary refinement for graph bisections (edge-cut metric).

use fgh_partition::gain::GainBuckets;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::CsrGraph;

/// Mutable state of a graph bisection: side assignment, side weights, cut.
#[derive(Debug, Clone)]
pub struct GraphBisection<'a> {
    g: &'a CsrGraph,
    side: Vec<u8>,
    weight: [u64; 2],
    cap: [u64; 2],
    /// One max vertex weight of slack lets FM pass through mildly
    /// imbalanced intermediate states (the rollback only keeps prefixes
    /// whose balance penalty did not worsen).
    slack: u64,
    cut: u64,
}

impl<'a> GraphBisection<'a> {
    /// Builds the state for an existing side assignment with ideal side
    /// weights `targets` and per-level imbalance `epsilon`.
    pub fn new(g: &'a CsrGraph, side: Vec<u8>, targets: [f64; 2], epsilon: f64) -> Self {
        assert_eq!(side.len(), g.n() as usize);
        let mut weight = [0u64; 2];
        for v in 0..g.n() {
            weight[side[v as usize] as usize] += g.vertex_weight(v) as u64;
        }
        let parts: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let cut = g.edge_cut(&parts);
        let cap = [
            (targets[0] * (1.0 + epsilon)).floor().max(0.0) as u64,
            (targets[1] * (1.0 + epsilon)).floor().max(0.0) as u64,
        ];
        let slack = g.vertex_weights().iter().copied().max().unwrap_or(1).max(1) as u64;
        GraphBisection { g, side, weight, cap, slack, cut }
    }

    /// Current edge cut.
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// Current side weights.
    pub fn weights(&self) -> [u64; 2] {
        self.weight
    }

    /// The side assignment.
    pub fn sides(&self) -> &[u8] {
        &self.side
    }

    /// Consumes the state, returning the side assignment.
    pub fn into_sides(self) -> Vec<u8> {
        self.side
    }

    /// Sum of balance-cap violations.
    pub fn balance_penalty(&self) -> u64 {
        self.weight[0].saturating_sub(self.cap[0]) + self.weight[1].saturating_sub(self.cap[1])
    }

    /// FM gain of moving `v`: external minus internal incident edge weight.
    pub fn gain(&self, v: u32) -> i64 {
        let s = self.side[v as usize];
        let mut ext = 0i64;
        let mut int = 0i64;
        for (&u, &w) in self.g.neighbors(v).iter().zip(self.g.edge_weights(v)) {
            if self.side[u as usize] == s {
                int += w as i64;
            } else {
                ext += w as i64;
            }
        }
        ext - int
    }

    /// Moves `v` to the other side, updating cut and (optionally) queued
    /// neighbor gains.
    pub fn apply_move(&mut self, v: u32, mut buckets: Option<&mut GainBuckets>) {
        let s = self.side[v as usize] as usize;
        let t = 1 - s;
        let w = self.g.vertex_weight(v) as u64;
        for (&u, &ew) in self.g.neighbors(v).iter().zip(self.g.edge_weights(v)) {
            if self.side[u as usize] as usize == s {
                self.cut += ew as u64;
                if let Some(b) = buckets.as_deref_mut() {
                    b.adjust(u, 2 * ew as i64);
                }
            } else {
                self.cut -= ew as u64;
                if let Some(b) = buckets.as_deref_mut() {
                    b.adjust(u, -2 * (ew as i64));
                }
            }
        }
        self.side[v as usize] = t as u8;
        self.weight[s] -= w;
        self.weight[t] += w;
    }

    fn admissible(&self, v: u32) -> bool {
        let s = self.side[v as usize] as usize;
        let t = 1 - s;
        let w = self.g.vertex_weight(v) as u64;
        if self.weight[t] + w <= self.cap[t] + self.slack {
            return true;
        }
        if self.weight[s] > self.cap[s] {
            let before = self.balance_penalty();
            let after = self.weight[s].saturating_sub(w).saturating_sub(self.cap[s])
                + (self.weight[t] + w).saturating_sub(self.cap[t]);
            return after < before;
        }
        false
    }

    /// One FM pass with rollback to the best prefix; returns `true` on
    /// strict improvement of (balance penalty, cut).
    pub fn fm_pass(&mut self, rng: &mut impl Rng, early_exit: usize) -> bool {
        let n = self.g.n();
        let max_gain = (0..n)
            .map(|v| self.g.edge_weights(v).iter().map(|&w| w as i64).sum::<i64>())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut buckets = GainBuckets::new(n as usize, max_gain);
        let mut order: Vec<u32> = (0..n).collect();
        order.shuffle(rng);
        for &v in &order {
            buckets.insert(v, self.gain(v));
        }

        let start = (self.balance_penalty(), self.cut);
        let mut best = start;
        let mut moves: Vec<u32> = Vec::new();
        let mut best_len = 0usize;
        let mut since_best = 0usize;

        while let Some((v, _)) = {
            let st: &GraphBisection<'a> = &*self;
            buckets.pop_max_where(|u| st.admissible(u))
        } {
            self.apply_move(v, Some(&mut buckets));
            moves.push(v);
            let now = (self.balance_penalty(), self.cut);
            if now < best {
                best = now;
                best_len = moves.len();
                since_best = 0;
            } else {
                since_best += 1;
                if early_exit > 0 && since_best >= early_exit {
                    break;
                }
            }
        }
        for &v in moves[best_len..].iter().rev() {
            self.apply_move(v, None);
        }
        best < start
    }

    /// Runs FM passes until no improvement, at most `max_passes`.
    pub fn refine(&mut self, rng: &mut impl Rng, max_passes: usize, early_exit: usize) -> usize {
        let mut improved = 0;
        for _ in 0..max_passes {
            if self.fm_pass(rng, early_exit) {
                improved += 1;
            } else {
                break;
            }
        }
        improved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_graph, two_cliques};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gain_matches_cut_delta() {
        let g = random_graph(40, 60, 1);
        let side: Vec<u8> = (0..40).map(|v| (v % 2) as u8).collect();
        let st = GraphBisection::new(&g, side, [20.0, 20.0], 0.1);
        for v in 0..40u32 {
            let mut st2 = st.clone();
            let before = st2.cut() as i64;
            st2.apply_move(v, None);
            assert_eq!(st.gain(v), before - st2.cut() as i64, "vertex {v}");
        }
    }

    #[test]
    fn fm_solves_two_cliques() {
        let g = two_cliques(12);
        let side: Vec<u8> = (0..24).map(|v| (v % 2) as u8).collect();
        let mut st = GraphBisection::new(&g, side, [12.0, 12.0], 0.05);
        st.refine(&mut SmallRng::seed_from_u64(3), 8, 0);
        assert_eq!(st.cut(), 1);
        assert_eq!(st.balance_penalty(), 0);
    }

    #[test]
    fn fm_restores_balance() {
        let g = two_cliques(10);
        let side = vec![0u8; 20];
        let mut st = GraphBisection::new(&g, side, [10.0, 10.0], 0.1);
        st.refine(&mut SmallRng::seed_from_u64(4), 8, 0);
        assert_eq!(st.balance_penalty(), 0);
    }

    #[test]
    fn fm_never_worsens() {
        for seed in 0..4u64 {
            let g = random_graph(80, 120, seed);
            let side: Vec<u8> = (0..80).map(|v| u8::from(v >= 40)).collect();
            let mut st = GraphBisection::new(&g, side, [40.0, 40.0], 0.1);
            let before = (st.balance_penalty(), st.cut());
            st.refine(&mut SmallRng::seed_from_u64(seed), 4, 0);
            assert!((st.balance_penalty(), st.cut()) <= before);
        }
    }
}
