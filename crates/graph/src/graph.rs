//! Weighted undirected graph in CSR (adjacency) layout.

use fgh_invariant::{invariant, InvariantViolation};
use fgh_sparse::IndexType;

/// An undirected graph with `u32` vertex weights and edge weights, stored
/// as a symmetric CSR adjacency structure (every edge appears in both
/// endpoint lists). Self loops are not stored.
///
/// Generic over the vertex-id width `I` (`u32` by default; `u64` for
/// graphs with ≥ `u32::MAX` vertices). Weights stay `u32` at any width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph<I: IndexType = u32> {
    xadj: Vec<usize>,
    adjncy: Vec<I>,
    adjwgt: Vec<u32>,
    vwgt: Vec<u32>,
}

/// Errors from graph construction. Vertex ids are reported widened to
/// `u64` so one error type serves every index width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint is out of bounds.
    VertexOutOfBounds { vertex: u64, n: u64 },
    /// An edge is a self loop.
    SelfLoop { vertex: u64 },
    /// Vertex weight vector length mismatch.
    WeightLength { expected: usize, got: usize },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, n } => {
                write!(f, "vertex {vertex} out of bounds (n = {n})")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop at vertex {vertex}"),
            GraphError::WeightLength { expected, got } => {
                write!(
                    f,
                    "vertex weight vector has {got} entries, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl<I: IndexType> CsrGraph<I> {
    /// Builds from an undirected edge list `(u, v, weight)` (each edge
    /// listed once; parallel edges get summed weights). `vwgt` defaults to
    /// unit weights.
    pub fn from_edges(
        n: I,
        edges: &[(I, I, u32)],
        vwgt: Option<Vec<u32>>,
    ) -> Result<Self, GraphError> {
        let nn = n.index();
        let vwgt = match vwgt {
            Some(w) => {
                if w.len() != nn {
                    return Err(GraphError::WeightLength {
                        expected: nn,
                        got: w.len(),
                    });
                }
                w
            }
            None => vec![1; nn],
        };
        for &(u, v, _) in edges {
            if u >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u.as_u64(),
                    n: n.as_u64(),
                });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: v.as_u64(),
                    n: n.as_u64(),
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u.as_u64() });
            }
        }
        // Deduplicate parallel edges by summing weights.
        let mut dir: Vec<(I, I, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            dir.push((u, v, w));
            dir.push((v, u, w));
        }
        dir.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut xadj = vec![0usize; nn + 1];
        let mut adjncy = Vec::with_capacity(dir.len());
        let mut adjwgt = Vec::with_capacity(dir.len());
        let mut idx = 0usize;
        for u in 0..nn {
            while idx < dir.len() && dir[idx].0.index() == u {
                let v = dir[idx].1;
                let mut w = 0u32;
                while idx < dir.len() && dir[idx].0.index() == u && dir[idx].1 == v {
                    w += dir[idx].2;
                    idx += 1;
                }
                adjncy.push(v);
                adjwgt.push(w);
            }
            xadj[u + 1] = adjncy.len();
        }
        Ok(CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        })
    }

    /// Builds directly from raw CSR arrays (already symmetric).
    pub fn from_raw(xadj: Vec<usize>, adjncy: Vec<I>, adjwgt: Vec<u32>, vwgt: Vec<u32>) -> Self {
        debug_assert_eq!(xadj.len(), vwgt.len() + 1);
        debug_assert_eq!(adjncy.len(), adjwgt.len());
        CsrGraph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> I {
        I::from_index(self.vwgt.len())
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: I) -> &[I] {
        &self.adjncy[self.xadj[v.index()]..self.xadj[v.index() + 1]]
    }

    /// Edge weights parallel to [`CsrGraph::neighbors`].
    pub fn edge_weights(&self, v: I) -> &[u32] {
        &self.adjwgt[self.xadj[v.index()]..self.xadj[v.index() + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: I) -> usize {
        self.xadj[v.index() + 1] - self.xadj[v.index()]
    }

    /// Weight of vertex `v`.
    pub fn vertex_weight(&self, v: I) -> u32 {
        self.vwgt[v.index()]
    }

    /// All vertex weights.
    pub fn vertex_weights(&self) -> &[u32] {
        &self.vwgt
    }

    /// Sum of vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    /// Heap bytes held by the CSR arrays — the engine's byte-budget input.
    pub fn heap_bytes(&self) -> usize {
        self.xadj.capacity() * std::mem::size_of::<usize>()
            + self.adjncy.capacity() * std::mem::size_of::<I>()
            + self.adjwgt.capacity() * std::mem::size_of::<u32>()
            + self.vwgt.capacity() * std::mem::size_of::<u32>()
    }

    /// Checks the structural invariants of the symmetric CSR adjacency:
    /// pointer array shape and monotonicity, parallel index/weight arrays,
    /// sorted unique in-bounds neighbor lists, no self loops, and full
    /// **symmetry** — edge `(u, v)` is mirrored as `(v, u)` with the same
    /// weight. `from_raw` only debug-asserts its inputs, so this is the
    /// authoritative audit for raw-built graphs.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        const S: &str = "CsrGraph";
        let n = self.vwgt.len();
        invariant!(
            self.xadj.len() == n + 1,
            S,
            "xadj.len",
            "xadj has {} entries for {} vertices",
            self.xadj.len(),
            n
        );
        invariant!(
            self.xadj.first() == Some(&0) && self.xadj.last() == Some(&self.adjncy.len()),
            S,
            "xadj.span",
            "xadj spans {:?}..{:?}, expected 0..{}",
            self.xadj.first(),
            self.xadj.last(),
            self.adjncy.len()
        );
        invariant!(
            self.adjncy.len() == self.adjwgt.len(),
            S,
            "arrays.parallel",
            "adjncy/adjwgt have lengths {}/{}",
            self.adjncy.len(),
            self.adjwgt.len()
        );
        for v in 0..n {
            invariant!(
                self.xadj[v] <= self.xadj[v + 1],
                S,
                "xadj.monotone",
                "xadj not monotone at vertex {v}: {} > {}",
                self.xadj[v],
                self.xadj[v + 1]
            );
            let nbrs = &self.adjncy[self.xadj[v]..self.xadj[v + 1]];
            for w in nbrs.windows(2) {
                invariant!(
                    w[0] < w[1],
                    S,
                    "neighbors.sorted_unique",
                    "vertex {v} neighbors not sorted/unique: {} then {}",
                    w[0],
                    w[1]
                );
            }
            for (i, &u) in nbrs.iter().enumerate() {
                invariant!(
                    u.index() < n,
                    S,
                    "neighbors.in_bounds",
                    "vertex {v} has neighbor {u} >= n = {n}"
                );
                invariant!(u.index() != v, S, "no_self_loop", "vertex {v} lists itself");
                // Symmetry: the mirror entry must exist with equal weight.
                let mirror = &self.adjncy[self.xadj[u.index()]..self.xadj[u.index() + 1]];
                let vi = I::from_index(v);
                let Ok(j) = mirror.binary_search(&vi) else {
                    return Err(InvariantViolation::new(
                        S,
                        "symmetry.missing",
                        format!("edge ({v}, {u}) has no mirror ({u}, {v})"),
                    ));
                };
                let w_uv = self.adjwgt[self.xadj[v] + i];
                let w_vu = self.adjwgt[self.xadj[u.index()] + j];
                invariant!(
                    w_uv == w_vu,
                    S,
                    "symmetry.weight",
                    "edge ({v}, {u}) weight {w_uv} != mirror weight {w_vu}"
                );
            }
        }
        Ok(())
    }

    /// Edge cut of a side assignment (`parts[v]` arbitrary small ints):
    /// sum of weights of edges whose endpoints differ.
    pub fn edge_cut(&self, parts: &[u32]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.vwgt.len() {
            for (&u, &w) in self
                .neighbors(I::from_index(v))
                .iter()
                .zip(&self.adjwgt[self.xadj[v]..self.xadj[v + 1]])
            {
                if parts[v] != parts[u.index()] {
                    cut += w as u64;
                }
            }
        }
        cut / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_symmetric() {
        let g = CsrGraph::from_edges(3u32, &[(0, 1, 2), (1, 2, 3)], None).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.edge_weights(1), &[2, 3]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn parallel_edges_summed() {
        let g = CsrGraph::from_edges(2u32, &[(0, 1, 1), (0, 1, 4)], None).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weights(0), &[5]);
        assert_eq!(g.edge_weights(1), &[5]);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            CsrGraph::from_edges(2u32, &[(0, 5, 1)], None),
            Err(GraphError::VertexOutOfBounds { vertex: 5, .. })
        ));
        assert!(matches!(
            CsrGraph::from_edges(2u32, &[(1, 1, 1)], None),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(CsrGraph::from_edges(2u32, &[], Some(vec![1])).is_err());
    }

    #[test]
    fn isolated_vertices() {
        let g = CsrGraph::from_edges(4u32, &[(1, 2, 1)], None).unwrap();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn edge_cut_counts_once_per_edge() {
        let g = CsrGraph::from_edges(4u32, &[(0, 1, 2), (1, 2, 3), (2, 3, 5)], None).unwrap();
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 3);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 2 + 3 + 5);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn vertex_weights_used() {
        let g = CsrGraph::from_edges(2u32, &[(0, 1, 1)], Some(vec![3, 9])).unwrap();
        assert_eq!(g.total_vertex_weight(), 12);
        assert_eq!(g.vertex_weight(1), 9);
    }

    #[test]
    fn wide_graph_matches_narrow() {
        let edges32 = [(0u32, 1, 2u32), (1, 2, 3), (2, 3, 5), (0, 3, 1)];
        let edges64: Vec<(u64, u64, u32)> = edges32
            .iter()
            .map(|&(u, v, w)| (u as u64, v as u64, w))
            .collect();
        let g32 = CsrGraph::from_edges(4u32, &edges32, None).unwrap();
        let g64 = CsrGraph::from_edges(4u64, &edges64, None).unwrap();
        assert_eq!(g64.n(), 4u64);
        assert_eq!(g32.num_edges(), g64.num_edges());
        for v in 0..4usize {
            let n32: Vec<u64> = g32.neighbors(v as u32).iter().map(|&u| u as u64).collect();
            assert_eq!(n32, g64.neighbors(v as u64));
            assert_eq!(g32.edge_weights(v as u32), g64.edge_weights(v as u64));
        }
        assert_eq!(g32.edge_cut(&[0, 0, 1, 1]), g64.edge_cut(&[0, 0, 1, 1]));
        g64.validate().unwrap();
        assert!(g64.heap_bytes() > g32.heap_bytes(), "wider ids cost bytes");
    }
}
