//! # fgh-graph — undirected graphs and a MeTiS-style multilevel partitioner
//!
//! The *standard graph model* baseline the paper compares against: a
//! weighted undirected graph is partitioned with the classic multilevel
//! scheme (heavy-edge matching coarsening, greedy graph growing initial
//! partitioning, Kernighan–Lin/Fiduccia–Mattheyses boundary refinement,
//! recursive bisection), minimizing *edge cut* under a balance constraint.
//!
//! The edge cut only *approximates* SpMV communication volume — that
//! approximation error is exactly what the paper's hypergraph models fix —
//! so the decomposition-model layer (`fgh-core`) always reports true
//! decoded volumes for every model, including this one.
//!
//! The multilevel machinery itself is **not** duplicated here: [`CsrGraph`]
//! implements `fgh_partition::Substrate` (see [`partition`]), and the whole
//! coarsen → initial → refine → recurse pipeline runs on
//! `fgh_partition::MultilevelDriver`, configured by the same
//! [`PartitionConfig`] as the hypergraph partitioner.

// Robustness contract: library (non-test) code must not panic; provably
// infallible sites carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod graph;
pub mod io;
pub mod partition;

pub use fgh_partition::PartitionConfig;
pub use graph::CsrGraph;
pub use partition::{
    partition_graph, partition_graph_best, partition_graph_best_traced,
    partition_graph_best_traced_in, partition_graph_with, GraphPartitionResult,
};

#[cfg(test)]
pub(crate) mod testutil {
    use crate::graph::CsrGraph;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Two cliques of `per_side` vertices joined by one edge.
    pub fn two_cliques(per_side: u32) -> CsrGraph {
        let n = per_side * 2;
        let mut edges = Vec::new();
        for base in [0, per_side] {
            for i in 0..per_side {
                for j in (i + 1)..per_side {
                    edges.push((base + i, base + j, 1u32));
                }
            }
        }
        edges.push((per_side - 1, per_side, 1));
        CsrGraph::from_edges(n, &edges, None).unwrap()
    }

    /// Random connected graph: a path plus `extra` random edges.
    pub fn random_graph(n: u32, extra: usize, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges: Vec<(u32, u32, u32)> = (1..n).map(|i| (i - 1, i, 1)).collect();
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push((u.min(v), u.max(v), 1));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        CsrGraph::from_edges(n, &edges, None).unwrap()
    }
}
