//! Initial graph bisection: greedy graph growing (GGP) with multiple tries.

use rand::Rng;

use crate::graph::CsrGraph;
use crate::refine::GraphBisection;

/// Greedy graph growing: grow side 1 by BFS from a random seed, always
/// expanding the frontier vertex with the best FM gain, until side 1
/// reaches its target weight; then refine with FM. Best of `tries` kept.
pub fn ggp_best(
    g: &CsrGraph,
    targets: [f64; 2],
    epsilon: f64,
    tries: usize,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let mut best: Option<((u64, u64), Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let sides = ggp_once(g, targets, epsilon, fm_passes, rng);
        let st = GraphBisection::new(g, sides, targets, epsilon);
        let key = (st.balance_penalty(), st.cut());
        if best.as_ref().map(|(bk, _)| key < *bk).unwrap_or(true) {
            best = Some((key, st.into_sides()));
        }
    }
    best.expect("tries >= 1").1
}

fn ggp_once(
    g: &CsrGraph,
    targets: [f64; 2],
    epsilon: f64,
    fm_passes: usize,
    rng: &mut impl Rng,
) -> Vec<u8> {
    let n = g.n();
    let mut st = GraphBisection::new(g, vec![0; n as usize], targets, epsilon);
    let target1 = targets[1].floor().max(0.0) as u64;

    if n > 0 && target1 > 0 {
        // Grow from random seeds until the weight target is met; gains
        // steer the growth along the current frontier.
        let mut grown = vec![false; n as usize];
        while st.weights()[1] < target1 {
            // Pick the best-gain ungrown vertex; seed randomly when the
            // frontier is empty (disconnected graphs).
            let mut cand: Option<(i64, u32)> = None;
            for v in 0..n {
                if grown[v as usize] {
                    continue;
                }
                let has_grown_neighbor =
                    g.neighbors(v).iter().any(|&u| grown[u as usize]);
                if !has_grown_neighbor {
                    continue;
                }
                let gain = st.gain(v);
                match cand {
                    Some((bg, _)) if bg >= gain => {}
                    _ => cand = Some((gain, v)),
                }
            }
            let v = match cand {
                Some((_, v)) => v,
                None => {
                    // New random seed among ungrown vertices.
                    let ungrown: Vec<u32> =
                        (0..n).filter(|&v| !grown[v as usize]).collect();
                    if ungrown.is_empty() {
                        break;
                    }
                    ungrown[rng.gen_range(0..ungrown.len())]
                }
            };
            grown[v as usize] = true;
            st.apply_move(v, None);
        }
    }
    st.refine(rng, fm_passes, 0);
    st.into_sides()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_graph, two_cliques};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ggp_balanced_and_low_cut() {
        let g = two_cliques(15);
        let sides =
            ggp_best(&g, [15.0, 15.0], 0.05, 4, 4, &mut SmallRng::seed_from_u64(1));
        let st = GraphBisection::new(&g, sides, [15.0, 15.0], 0.05);
        assert_eq!(st.balance_penalty(), 0);
        assert_eq!(st.cut(), 1);
    }

    #[test]
    fn ggp_on_random_graph_is_balanced() {
        let g = random_graph(120, 200, 2);
        let sides =
            ggp_best(&g, [60.0, 60.0], 0.05, 4, 4, &mut SmallRng::seed_from_u64(2));
        let c1 = sides.iter().filter(|&&s| s == 1).count();
        assert!((54..=66).contains(&c1), "side 1 holds {c1}");
    }

    #[test]
    fn ggp_disconnected_graph_terminates() {
        let g = CsrGraph::from_edges(10, &[(0, 1, 1), (2, 3, 1)], None).unwrap();
        let sides = ggp_best(&g, [5.0, 5.0], 0.2, 2, 2, &mut SmallRng::seed_from_u64(3));
        let c1 = sides.iter().filter(|&&s| s == 1).count();
        assert!(c1 >= 4, "side 1 too small: {c1}");
    }
}
