//! Graph file I/O in the METIS `.graph` format.
//!
//! Format (METIS 4 manual):
//!
//! ```text
//! % comments
//! <#vertices> <#edges> [fmt]
//! <adjacency of vertex 1, 1-based>        (fmt absent or 0)
//! <w_v  (adj ew)* >                       (fmt 11: vertex + edge weights)
//! ```
//!
//! `fmt` digits: `1` = edge weights, `10` = vertex weights, `11` = both.
//! Interoperates with graphs prepared for the MeTiS tool the paper
//! benchmarks against.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::graph::CsrGraph;

/// I/O and parse errors for `.graph` files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphIoError(pub String);

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph i/o: {}", self.0)
    }
}

impl std::error::Error for GraphIoError {}

type Result<T> = std::result::Result<T, GraphIoError>;

fn err(msg: impl Into<String>) -> GraphIoError {
    GraphIoError(msg.into())
}

/// Reads a METIS `.graph` file.
pub fn read_metis(path: impl AsRef<Path>) -> Result<CsrGraph> {
    let f = std::fs::File::open(&path).map_err(|e| err(format!("open: {e}")))?;
    read_metis_from(BufReader::new(f))
}

/// Reads METIS graph data from any reader.
pub fn read_metis_from(reader: impl Read) -> Result<CsrGraph> {
    let mut lines = BufReader::new(reader)
        .lines()
        .map(|l| l.map_err(|e| err(e.to_string())));

    let header = loop {
        match lines.next() {
            Some(l) => {
                let l = l?;
                let t = l.trim().to_string();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break t;
            }
            None => return Err(err("empty file")),
        }
    };
    let mut it = header.split_whitespace();
    let n: u32 = num(it.next(), "vertex count")?;
    let m: usize = num(it.next(), "edge count")?;
    let fmt: u32 = match it.next() {
        Some(t) => t.parse().map_err(|_| err(format!("bad fmt {t:?}")))?,
        None => 0,
    };
    let has_vw = fmt / 10 % 10 == 1;
    let has_ew = fmt % 10 == 1;

    let mut vwgt: Vec<u32> = Vec::with_capacity(n as usize);
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(m);
    let mut v = 0u32;
    while v < n {
        let line = match lines.next() {
            Some(l) => l?,
            None => return Err(err(format!("expected {n} vertex lines, got {v}"))),
        };
        let t = line.trim();
        if t.starts_with('%') {
            continue;
        }
        let mut nums = t.split_whitespace();
        vwgt.push(if has_vw {
            num(nums.next(), "vertex weight")?
        } else {
            1
        });
        while let Some(tok) = nums.next() {
            let u: u32 = tok
                .parse()
                .map_err(|_| err(format!("bad neighbor {tok:?}")))?;
            if u == 0 || u > n {
                return Err(err(format!("neighbor {u} out of 1..={n}")));
            }
            let w: u32 = if has_ew {
                num(nums.next(), "edge weight")?
            } else {
                1
            };
            let u = u - 1;
            if u == v {
                return Err(err(format!("self loop at vertex {}", v + 1)));
            }
            if v < u {
                edges.push((v, u, w));
            }
        }
        v += 1;
    }
    if edges.len() != m {
        return Err(err(format!(
            "header declares {m} edges, adjacency encodes {}",
            edges.len()
        )));
    }
    CsrGraph::from_edges(n, &edges, Some(vwgt)).map_err(|e| err(e.to_string()))
}

/// Writes a graph in METIS format (fmt 11).
pub fn write_metis(g: &CsrGraph, path: impl AsRef<Path>) -> Result<()> {
    let f = std::fs::File::create(&path).map_err(|e| err(format!("create: {e}")))?;
    write_metis_to(g, BufWriter::new(f))
}

/// Writes METIS graph data to any writer.
pub fn write_metis_to(g: &CsrGraph, mut w: impl Write) -> Result<()> {
    let io = |e: std::io::Error| err(e.to_string());
    writeln!(w, "% written by fgh-graph").map_err(io)?;
    writeln!(w, "{} {} 11", g.n(), g.num_edges()).map_err(io)?;
    for v in 0..g.n() {
        write!(w, "{}", g.vertex_weight(v)).map_err(io)?;
        for (&u, &ew) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            write!(w, " {} {}", u + 1, ew).map_err(io)?;
        }
        writeln!(w).map_err(io)?;
    }
    w.flush().map_err(io)
}

fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T> {
    tok.ok_or_else(|| err(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| err(format!("bad {what}: {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_plain() {
        // Triangle 1-2-3.
        let data = "3 3\n2 3\n1 3\n1 2\n";
        let g = read_metis_from(data.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.vertex_weight(2), 1);
    }

    #[test]
    fn read_weighted() {
        let data = "2 1 11\n5 2 9\n7 1 9\n";
        let g = read_metis_from(data.as_bytes()).unwrap();
        assert_eq!(g.vertex_weight(0), 5);
        assert_eq!(g.vertex_weight(1), 7);
        assert_eq!(g.edge_weights(0), &[9]);
    }

    #[test]
    fn reject_bad() {
        assert!(read_metis_from("".as_bytes()).is_err());
        assert!(read_metis_from("2 1\n2\n".as_bytes()).is_err()); // missing line
        assert!(read_metis_from("2 1\n3\n1\n".as_bytes()).is_err()); // bad neighbor
        assert!(read_metis_from("2 2\n2\n1\n".as_bytes()).is_err()); // edge count mismatch
        assert!(read_metis_from("2 1\n1\n2\n".as_bytes()).is_err()); // self loop
    }

    #[test]
    fn roundtrip() {
        let g = CsrGraph::from_edges(
            4,
            &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 4)],
            Some(vec![1, 2, 3, 4]),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_metis_to(&g, &mut buf).unwrap();
        let back = read_metis_from(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn file_roundtrip() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)], None).unwrap();
        let dir = std::env::temp_dir().join("fgh_metis_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.graph");
        write_metis(&g, &path).unwrap();
        assert_eq!(read_metis(&path).unwrap(), g);
    }
}
