//! Graph coarsening: heavy-edge matching (HEM) and contraction.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::CsrGraph;

const NIL: u32 = u32::MAX;

/// One coarsening level: contracted graph plus fine→coarse vertex map.
#[derive(Debug)]
pub struct GraphLevel {
    /// The contracted graph.
    pub coarse: CsrGraph,
    /// Fine-vertex → coarse-vertex map.
    pub map: Vec<u32>,
}

/// One level of heavy-edge matching + contraction. Returns `None` when the
/// matching shrinks the graph by less than 5% (driver should stop).
pub fn coarsen_once(g: &CsrGraph, weight_cap: u64, rng: &mut impl Rng) -> Option<GraphLevel> {
    let n = g.n() as usize;
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut mate = vec![NIL; n];
    for &u in &order {
        if mate[u as usize] != NIL {
            continue;
        }
        let uw = g.vertex_weight(u) as u64;
        let mut best: Option<(u32, u32)> = None; // (weight, neighbor)
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            if mate[v as usize] != NIL || v == u {
                continue;
            }
            if uw + g.vertex_weight(v) as u64 > weight_cap {
                continue;
            }
            match best {
                Some((bw, _)) if bw >= w => {}
                _ => best = Some((w, v)),
            }
        }
        match best {
            Some((_, v)) => {
                mate[u as usize] = v;
                mate[v as usize] = u;
            }
            None => mate[u as usize] = u, // matched with itself
        }
    }

    // Number clusters.
    let mut map = vec![NIL; n];
    let mut num = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != NIL {
            continue;
        }
        map[v as usize] = num;
        let m = mate[v as usize];
        if m != NIL && m != v {
            map[m as usize] = num;
        }
        num += 1;
    }
    if num as f64 > 0.95 * n as f64 {
        return None;
    }

    // Contract: sum vertex weights; merge adjacency, dropping intra-cluster
    // edges and summing parallel ones.
    let mut vwgt = vec![0u32; num as usize];
    for v in 0..n as u32 {
        vwgt[map[v as usize] as usize] += g.vertex_weight(v);
    }
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(g.num_edges());
    for v in 0..n as u32 {
        let cv = map[v as usize];
        for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            let cu = map[u as usize];
            if cv < cu {
                edges.push((cv, cu, w));
            }
        }
    }
    let coarse = CsrGraph::from_edges(num, &edges, Some(vwgt))
        .expect("contraction preserves validity");
    Some(GraphLevel { coarse, map })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_graph, two_cliques};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn coarsen_shrinks_preserves_weight() {
        let g = random_graph(200, 300, 1);
        let lvl = coarsen_once(&g, g.total_vertex_weight(), &mut SmallRng::seed_from_u64(2))
            .expect("should shrink");
        assert!(lvl.coarse.n() < g.n());
        assert!(lvl.coarse.n() as usize >= g.n() as usize / 2);
        assert_eq!(lvl.coarse.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn matching_pairs_only() {
        let g = two_cliques(10);
        let lvl = coarsen_once(&g, g.total_vertex_weight(), &mut SmallRng::seed_from_u64(3))
            .expect("should shrink");
        let mut counts = vec![0u32; lvl.coarse.n() as usize];
        for &c in &lvl.map {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2));
    }

    #[test]
    fn weight_cap_blocks_merges() {
        let g = two_cliques(6);
        let lvl = coarsen_once(&g, 1, &mut SmallRng::seed_from_u64(4));
        // Cap 1 forbids all merges: no shrink.
        assert!(lvl.is_none());
    }

    #[test]
    fn edgeless_graph_stops() {
        let g = CsrGraph::from_edges(10, &[], None).unwrap();
        assert!(coarsen_once(&g, 100, &mut SmallRng::seed_from_u64(5)).is_none());
    }

    #[test]
    fn cut_preserved_under_projection() {
        // Edge cut of any coarse partition equals the fine cut of its
        // projection (intra-cluster edges are internal by construction).
        let g = random_graph(100, 150, 7);
        let lvl = coarsen_once(&g, g.total_vertex_weight(), &mut SmallRng::seed_from_u64(8))
            .expect("should shrink");
        let coarse_parts: Vec<u32> = (0..lvl.coarse.n()).map(|v| v % 2).collect();
        let fine_parts: Vec<u32> =
            (0..g.n()).map(|v| coarse_parts[lvl.map[v as usize] as usize]).collect();
        assert_eq!(lvl.coarse.edge_cut(&coarse_parts), g.edge_cut(&fine_parts));
    }
}
