//! K-way graph partitioning on the unified multilevel engine.
//!
//! [`CsrGraph`] implements [`Substrate`], so the MeTiS-style baseline —
//! heavy-connectivity clustering coarsening, greedy graph growing, FM
//! boundary refinement, recursive bisection — runs on the exact same
//! [`MultilevelDriver`] as the hypergraph partitioner. The substrate
//! differences are small: the cut is the edge cut (no per-net pin counts
//! needed — gains recompute from the adjacency), contraction merges
//! parallel edges and drops intra-cluster ones, and extraction builds the
//! induced subgraph (a cut edge has nothing to "split", so the
//! `net_splitting` flag is a no-op here and the per-bisection cuts always
//! sum to the final edge cut).
//!
//! Both index widths run on the one engine: `CsrGraph<u32>` for graphs
//! that fit 32-bit ids, `CsrGraph<u64>` beyond that.
//!
//! Hypergraph-only [`PartitionConfig`] fields (`net_splitting`,
//! `kway_refine`, `vcycles`) are ignored for graphs.

use std::sync::Arc;

use fgh_partition::error::{panic_message, HypergraphError};
use fgh_partition::{
    record_run_counters, ArenaIndex, ArenaPool, EngineStats, LevelArena, MultilevelDriver,
    PartitionConfig, PartitionError, Substrate,
};
use fgh_trace::{Span, SpanHandle};

use crate::graph::CsrGraph;

/// Outcome of a K-way graph partitioning run.
#[derive(Debug, Clone)]
pub struct GraphPartitionResult {
    /// Per-vertex part assignment (`0..k`).
    pub parts: Vec<u32>,
    /// Number of parts.
    pub k: u32,
    /// Edge cut of the partition (the partitioner's objective — an
    /// *approximation* of communication volume, per the paper's critique).
    pub edge_cut: u64,
    /// Percent load imbalance `100 (W_max − W_avg) / W_avg`.
    pub imbalance_percent: f64,
    /// Engine instrumentation for this run, including budget-truncation
    /// counters (see [`EngineStats::truncated`]).
    pub stats: EngineStats,
}

impl<I: ArenaIndex> Substrate for CsrGraph<I> {
    /// Graph gains recompute directly from the adjacency; no incremental
    /// bookkeeping is kept.
    type CutState = ();

    type Ix = I;

    fn num_vertices(&self) -> usize {
        CsrGraph::n(self).index()
    }

    fn vertex_weight(&self, v: I) -> u32 {
        CsrGraph::vertex_weight(self, v)
    }

    fn total_vertex_weight(&self) -> u64 {
        CsrGraph::total_vertex_weight(self)
    }

    fn max_vertex_weight(&self) -> u64 {
        self.vertex_weights().iter().copied().max().unwrap_or(1) as u64
    }

    fn num_incidences(&self) -> u64 {
        2 * self.num_edges() as u64
    }

    fn max_gain_bound(&self) -> i64 {
        let mut best = 1i64;
        for v in 0..Substrate::num_vertices(self) {
            let s: i64 = self
                .edge_weights(I::from_index(v))
                .iter()
                .map(|&w| w as i64)
                .sum();
            best = best.max(s);
        }
        best
    }

    fn heap_bytes(&self) -> usize {
        CsrGraph::heap_bytes(self)
    }

    fn cut_state(&self, side: &[u8], _arena: &mut LevelArena) -> ((), u64) {
        let mut twice_cut = 0u64;
        for v in 0..Substrate::num_vertices(self) {
            let s = side[v];
            let vi = I::from_index(v);
            for (&u, &w) in self.neighbors(vi).iter().zip(self.edge_weights(vi)) {
                if side[u.index()] != s {
                    twice_cut += w as u64;
                }
            }
        }
        ((), twice_cut / 2)
    }

    fn recycle_cut_state(_cs: (), _arena: &mut LevelArena) {}

    fn gain(&self, _cs: &(), side: &[u8], v: I) -> i64 {
        // Classic FM gain: external minus internal edge weight.
        let s = side[v.index()];
        let mut g = 0i64;
        for (&u, &w) in self.neighbors(v).iter().zip(self.edge_weights(v)) {
            if side[u.index()] == s {
                g -= w as i64;
            } else {
                g += w as i64;
            }
        }
        g
    }

    fn is_boundary(&self, _cs: &(), side: &[u8], v: I) -> bool {
        let s = side[v.index()];
        self.neighbors(v).iter().any(|&u| side[u.index()] != s)
    }

    fn apply_move(&self, _cs: &mut (), side: &[u8], v: I, cut: &mut u64) {
        // `side` still holds v's pre-move side; the caller flips it after.
        let s = side[v.index()];
        for (&u, &w) in self.neighbors(v).iter().zip(self.edge_weights(v)) {
            if side[u.index()] == s {
                *cut += w as u64;
            } else {
                *cut -= w as u64;
            }
        }
    }

    fn apply_move_gains(
        &self,
        _cs: &mut (),
        side: &[u8],
        v: I,
        cut: &mut u64,
        mut adjust: impl FnMut(I, i64),
    ) {
        // `side` still holds v's pre-move side; the caller flips it after.
        let s = side[v.index()];
        for (&u, &w) in self.neighbors(v).iter().zip(self.edge_weights(v)) {
            if side[u.index()] == s {
                // Internal edge becomes cut: u now profits from following.
                *cut += w as u64;
                adjust(u, 2 * w as i64);
            } else {
                *cut -= w as u64;
                adjust(u, -2 * w as i64);
            }
        }
    }

    fn for_each_scored_neighbor(&self, u: I, _max_net_size: usize, mut visit: impl FnMut(I, u64)) {
        // Every edge is a two-pin net; the net-size filter never applies.
        for (&v, &w) in self.neighbors(u).iter().zip(self.edge_weights(u)) {
            visit(v, w as u64);
        }
    }

    // Infallible `expect` below: contraction emits in-bounds, deduped
    // edges, which is exactly what `from_edges` validates.
    #[allow(clippy::expect_used)]
    fn contract(&self, cluster_of: &[I], num_clusters: usize, arena: &mut LevelArena) -> Self {
        let mut weights64 = arena.take_u64(num_clusters, 0);
        for v in 0..Substrate::num_vertices(self) {
            weights64[cluster_of[v].index()] +=
                CsrGraph::vertex_weight(self, I::from_index(v)) as u64;
        }
        // Cluster weights saturate rather than abort on absurd inputs.
        let weights: Vec<u32> = weights64
            .iter()
            .map(|&w| u32::try_from(w).unwrap_or(u32::MAX))
            .collect();
        arena.give_u64(weights64);

        // Inter-cluster edges, each undirected edge emitted once;
        // `from_edges` merges parallel edges by summing their weights.
        let mut edges: Vec<(I, I, u32)> = Vec::new();
        for v in 0..Substrate::num_vertices(self) {
            let cv = cluster_of[v];
            let vi = I::from_index(v);
            for (&u, &w) in self.neighbors(vi).iter().zip(self.edge_weights(vi)) {
                let cu = cluster_of[u.index()];
                if vi < u && cv != cu {
                    edges.push((cv.min(cu), cv.max(cu), w));
                }
            }
        }
        CsrGraph::from_edges(I::from_index(num_clusters), &edges, Some(weights))
            .expect("contraction preserves graph validity")
    }

    // Infallible `expect` below: the induced subgraph's edges are renumbered
    // into `0..map.len()`, which is exactly what `from_edges` validates.
    #[allow(clippy::expect_used)]
    fn extract_side(&self, side: &[u8], which: u8, _split: bool) -> (Self, Vec<I>) {
        let n = Substrate::num_vertices(self);
        let mut new_of_old = vec![I::MAX; n];
        let mut map: Vec<I> = Vec::new();
        let mut vwgt: Vec<u32> = Vec::new();
        for v in 0..n {
            if side[v] == which {
                new_of_old[v] = I::from_index(map.len());
                map.push(I::from_index(v));
                vwgt.push(CsrGraph::vertex_weight(self, I::from_index(v)));
            }
        }
        let mut edges: Vec<(I, I, u32)> = Vec::new();
        for v in 0..n {
            if side[v] != which {
                continue;
            }
            let nv = new_of_old[v];
            let vi = I::from_index(v);
            for (&u, &w) in self.neighbors(vi).iter().zip(self.edge_weights(vi)) {
                if side[u.index()] == which && vi < u {
                    edges.push((nv, new_of_old[u.index()], w));
                }
            }
        }
        let sub = CsrGraph::from_edges(I::from_index(map.len()), &edges, Some(vwgt))
            .expect("induced subgraph is valid");
        (sub, map)
    }

    // Infallible `expect`s below: same contract as `extract_side`, for
    // both sides built in a single pass over the adjacency.
    #[allow(clippy::expect_used)]
    fn extract_both(
        &self,
        side: &[u8],
        _split: bool,
        arena: &mut LevelArena,
    ) -> [(Self, Vec<I>); 2] {
        let n = Substrate::num_vertices(self);
        // One remap pass: new_id[v] = rank of v within its side.
        let mut new_id = I::take_ids(arena, n, I::ZERO);
        let mut maps: [Vec<I>; 2] = [Vec::new(), Vec::new()];
        let mut vwgt: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        for v in 0..n {
            let s = side[v] as usize;
            new_id[v] = I::from_index(maps[s].len());
            maps[s].push(I::from_index(v));
            vwgt[s].push(CsrGraph::vertex_weight(self, I::from_index(v)));
        }
        // One pass over the adjacency: each uncut edge (emitted once, at
        // its lower endpoint) lands in its side's induced edge list.
        let mut edges: [Vec<(I, I, u32)>; 2] = [Vec::new(), Vec::new()];
        for v in 0..n {
            let s = side[v];
            let nv = new_id[v];
            let vi = I::from_index(v);
            for (&u, &w) in self.neighbors(vi).iter().zip(self.edge_weights(vi)) {
                if vi < u && side[u.index()] == s {
                    edges[s as usize].push((nv, new_id[u.index()], w));
                }
            }
        }
        I::give_ids(arena, new_id);
        let [map0, map1] = maps;
        let [w0, w1] = vwgt;
        let [e0, e1] = edges;
        let nv0 = I::from_index(map0.len());
        let nv1 = I::from_index(map1.len());
        let g0 = CsrGraph::from_edges(nv0, &e0, Some(w0)).expect("induced subgraph is valid");
        let g1 = CsrGraph::from_edges(nv1, &e1, Some(w1)).expect("induced subgraph is valid");
        [(g0, map0), (g1, map1)]
    }

    fn validate_invariants(&self) -> Result<(), fgh_invariant::InvariantViolation> {
        CsrGraph::validate(self)
    }
}

/// Partitions `g` into `k` parts by multilevel recursive bisection on the
/// unified engine. Graph runs ignore the hypergraph-only config fields
/// (`net_splitting`, `kway_refine`, `vcycles`).
pub fn partition_graph<I: ArenaIndex>(
    g: &CsrGraph<I>,
    k: u32,
    cfg: &PartitionConfig,
) -> Result<GraphPartitionResult, PartitionError> {
    let mut driver = MultilevelDriver::new(cfg.clone());
    partition_graph_with(&mut driver, g, k)
}

/// Like [`partition_graph`], but running on a caller-supplied
/// [`MultilevelDriver`] — its arena and instrumentation persist across
/// calls, so repeated partitioning reuses all scratch buffers.
pub fn partition_graph_with<I: ArenaIndex>(
    driver: &mut MultilevelDriver,
    g: &CsrGraph<I>,
    k: u32,
) -> Result<GraphPartitionResult, PartitionError> {
    if k == 0 {
        return Err(HypergraphError::InvalidK.into());
    }
    let fixed = vec![u32::MAX; Substrate::num_vertices(g)];
    let out = driver.partition_recursive(g, k, &fixed);
    let edge_cut = g.edge_cut(&out.parts);
    // Cut edges are dropped on extraction, so per-bisection cuts compose
    // exactly (the graph analogue of the eq. 3 invariant) — unless a
    // budget truncation skipped refinement work.
    debug_assert!(
        out.cut_sum == edge_cut || driver.stats().truncated(),
        "bisection cuts must sum to the edge cut"
    );
    Ok(finish(g, k, out.parts, edge_cut, driver.stats()))
}

fn finish<I: ArenaIndex>(
    g: &CsrGraph<I>,
    k: u32,
    parts: Vec<u32>,
    edge_cut: u64,
    stats: EngineStats,
) -> GraphPartitionResult {
    let mut w = vec![0u64; k as usize];
    for v in 0..Substrate::num_vertices(g) {
        w[parts[v] as usize] += g.vertex_weight(I::from_index(v)) as u64;
    }
    let total: u64 = w.iter().sum();
    let imbalance_percent = if total == 0 {
        0.0
    } else {
        let avg = total as f64 / k as f64;
        let max = w.iter().copied().max().unwrap_or(0) as f64;
        100.0 * (max - avg) / avg
    };
    GraphPartitionResult {
        parts,
        k,
        edge_cut,
        imbalance_percent,
        stats,
    }
}

/// Runs [`partition_graph`] with `runs` seeds — fanned out over threads
/// per `cfg.parallelism` — returning the best balanced result by edge cut
/// (the paper's MeTiS 50-seed protocol). A panicking seed becomes an
/// error value; surviving seeds still compete for the best result.
pub fn partition_graph_best<I: ArenaIndex>(
    g: &CsrGraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
) -> Result<GraphPartitionResult, PartitionError> {
    partition_graph_best_traced(g, k, cfg, runs, &SpanHandle::noop())
}

/// [`partition_graph_best`] recording under a trace scope: each seed gets
/// a `run[offset]` child span of `parent` carrying the run's engine/arena
/// counters, with the multilevel phase spans nested inside (requires the
/// `trace` cargo feature to record anything).
pub fn partition_graph_best_traced<I: ArenaIndex>(
    g: &CsrGraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
    parent: &SpanHandle,
) -> Result<GraphPartitionResult, PartitionError> {
    partition_graph_best_traced_in(g, k, cfg, runs, &Arc::new(ArenaPool::new()), parent)
}

/// [`partition_graph_best_traced`] drawing every seed's scratch arena
/// from a caller-supplied [`ArenaPool`] — the session-reuse entry point
/// matching `fgh_partition::partition_hypergraph_best_traced_in`.
pub fn partition_graph_best_traced_in<I: ArenaIndex>(
    g: &CsrGraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    runs: usize,
    pool: &Arc<ArenaPool>,
    parent: &SpanHandle,
) -> Result<GraphPartitionResult, PartitionError> {
    let runs = runs.max(1);
    let pool = Arc::clone(pool);
    let threads = cfg.parallelism.resolved();
    let results = if threads > 1 && rayon::current_thread_index().is_none() {
        match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(tp) => tp.install(|| seed_range(g, k, cfg, 0, runs, &pool, parent)),
            Err(_) => seed_range(g, k, cfg, 0, runs, &pool, parent),
        }
    } else {
        seed_range(g, k, cfg, 0, runs, &pool, parent)
    };
    let mut first_err: Option<PartitionError> = None;
    let ok: Vec<GraphPartitionResult> = results
        .into_iter()
        .filter_map(|r| match r {
            Ok(res) => Some(res),
            Err(e) => {
                first_err = first_err.take().or(Some(e));
                None
            }
        })
        .collect();
    ok.into_iter()
        .min_by(|a, b| {
            let ab = a.imbalance_percent <= cfg.epsilon * 100.0 + 1e-9;
            let bb = b.imbalance_percent <= cfg.epsilon * 100.0 + 1e-9;
            // Balanced first, then lower cut.
            bb.cmp(&ab).then(a.edge_cut.cmp(&b.edge_cut))
        })
        .ok_or_else(|| {
            first_err.unwrap_or_else(|| PartitionError::Worker("no seed produced a result".into()))
        })
}

/// Runs seed offsets `lo..hi`, halving the range across `rayon::join`
/// until single seeds remain; results concatenate back in seed order.
/// Each seed partitions on a driver drawn from the shared arena pool,
/// with panics contained to that seed's slot.
#[allow(clippy::too_many_arguments)]
fn seed_range<I: ArenaIndex>(
    g: &CsrGraph<I>,
    k: u32,
    cfg: &PartitionConfig,
    lo: usize,
    hi: usize,
    pool: &Arc<ArenaPool>,
    span: &SpanHandle,
) -> Vec<Result<GraphPartitionResult, PartitionError>> {
    if hi - lo <= 1 {
        let mut c = cfg.clone();
        c.seed = cfg.seed.wrapping_add(lo as u64);
        let rspan = if cfg!(feature = "trace") {
            span.child_indexed("run", lo as u64)
        } else {
            Span::noop()
        };
        let scope = rspan.handle();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut driver = MultilevelDriver::with_pool(c, Arc::clone(pool));
            driver.set_trace_parent(scope.clone());
            let r = partition_graph_with(&mut driver, g, k);
            if let Ok(res) = &r {
                record_run_counters(&scope, &res.stats, driver.arena_stats());
            }
            r
        }))
        .unwrap_or_else(|p| Err(PartitionError::Worker(panic_message(p))));
        return vec![result];
    }
    let mid = lo + (hi - lo) / 2;
    let (mut left, mut right) = rayon::join(
        || seed_range(g, k, cfg, lo, mid, pool, span),
        || seed_range(g, k, cfg, mid, hi, pool, span),
    );
    left.append(&mut right);
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{random_graph, two_cliques};
    use fgh_partition::refine::BisectionState;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const FREE: i8 = -1;

    #[test]
    fn k2_two_cliques() {
        let g = two_cliques(50);
        let r = partition_graph(&g, 2, &PartitionConfig::with_seed(1)).unwrap();
        assert_eq!(r.edge_cut, 1);
        assert!(r.imbalance_percent <= 3.0 + 1e-9);
    }

    #[test]
    fn k8_balance_and_coverage() {
        let g = random_graph(800, 1600, 3);
        let r = partition_graph(&g, 8, &PartitionConfig::with_seed(2)).unwrap();
        assert_eq!(r.k, 8);
        let mut sizes = vec![0usize; 8];
        for &p in &r.parts {
            assert!(p < 8);
            sizes[p as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
        assert!(
            r.imbalance_percent <= 4.0,
            "imbalance {}%",
            r.imbalance_percent
        );
        assert_eq!(r.edge_cut, g.edge_cut(&r.parts));
    }

    #[test]
    fn non_power_of_two() {
        let g = random_graph(300, 600, 5);
        let r = partition_graph(&g, 6, &PartitionConfig::with_seed(3)).unwrap();
        assert_eq!(r.k, 6);
        assert!(r.parts.iter().all(|&p| p < 6));
        assert!(r.imbalance_percent <= 6.0);
    }

    #[test]
    fn k1_trivial() {
        let g = two_cliques(5);
        let r = partition_graph(&g, 1, &PartitionConfig::default()).unwrap();
        assert_eq!(r.edge_cut, 0);
        assert!(r.parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn weighted_vertices_balanced_by_weight() {
        // One heavy vertex should sit alone-ish.
        let mut edges = Vec::new();
        for i in 0..9u32 {
            edges.push((i, i + 1, 1u32));
        }
        let mut w = vec![1u32; 10];
        w[0] = 9; // total 18, target 9 per side
        let g = CsrGraph::from_edges(10u32, &edges, Some(w)).unwrap();
        let r = partition_graph(&g, 2, &PartitionConfig::with_seed(4)).unwrap();
        let side0 = r.parts[0];
        let with_heavy: u64 = (0..10)
            .filter(|&v| r.parts[v as usize] == side0)
            .map(|v| g.vertex_weight(v) as u64)
            .sum();
        assert!(with_heavy <= 10, "heavy side weight {with_heavy}");
    }

    #[test]
    fn multi_seed_never_worse() {
        let g = random_graph(400, 800, 7);
        let cfg = PartitionConfig::with_seed(1);
        let single = partition_graph(&g, 8, &cfg).unwrap();
        let best = partition_graph_best(&g, 8, &cfg, 4).unwrap();
        assert!(best.edge_cut <= single.edge_cut);
    }

    #[test]
    fn determinism() {
        let g = random_graph(200, 400, 9);
        let cfg = PartitionConfig::with_seed(5);
        let a = partition_graph(&g, 4, &cfg).unwrap();
        let b = partition_graph(&g, 4, &cfg).unwrap();
        assert_eq!(a.parts, b.parts);
    }

    #[test]
    fn wide_graph_partition_matches_narrow() {
        let g = random_graph(400, 800, 17);
        let mut edges64: Vec<(u64, u64, u32)> = Vec::new();
        for v in 0..400u32 {
            for (&u, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
                if v < u {
                    edges64.push((v as u64, u as u64, w));
                }
            }
        }
        let g64 = CsrGraph::from_edges(400u64, &edges64, None).unwrap();
        let cfg = PartitionConfig::with_seed(14);
        let r32 = partition_graph(&g, 8, &cfg).unwrap();
        let r64 = partition_graph(&g64, 8, &cfg).unwrap();
        assert_eq!(r32.parts, r64.parts, "widths must agree bit-for-bit");
        assert_eq!(r32.edge_cut, r64.edge_cut);
    }

    #[test]
    fn graph_state_cut_matches_edge_cut() {
        let g = two_cliques(10);
        let fixed = vec![FREE; 20];
        let side: Vec<u8> = (0..20).map(|v| (v % 2) as u8).collect();
        let parts: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let st = BisectionState::new(&g, side, &fixed, [10.0, 10.0], 0.1);
        assert_eq!(st.cut(), g.edge_cut(&parts));
    }

    #[test]
    fn graph_gain_matches_recompute() {
        let g = random_graph(30, 60, 2);
        let fixed = vec![FREE; 30];
        let side: Vec<u8> = (0..30).map(|v| (v % 2) as u8).collect();
        let st = BisectionState::new(&g, side, &fixed, [15.0, 15.0], 0.2);
        for v in 0..30u32 {
            let mut st2 = st.clone();
            let before = st2.cut() as i64;
            st2.apply_move(v, None);
            let after = st2.cut() as i64;
            assert_eq!(st.gain(v), before - after, "vertex {v}");
        }
    }

    #[test]
    fn graph_fm_finds_the_bridge() {
        let g = two_cliques(20);
        let fixed = vec![FREE; 40];
        let side: Vec<u8> = (0..40).map(|v| (v % 2) as u8).collect();
        let mut st = BisectionState::new(&g, side, &fixed, [20.0, 20.0], 0.05);
        st.refine(&mut SmallRng::seed_from_u64(3), 8, 0);
        assert_eq!(st.cut(), 1, "FM should isolate the single bridge edge");
        assert_eq!(st.balance_penalty(), 0);
    }

    #[test]
    fn contract_merges_parallel_edges() {
        // Path 0-1-2-3; clustering {0,1} and {2,3} leaves one edge (1,2).
        let edges = [(0u32, 1u32, 2u32), (1, 2, 3), (2, 3, 4)];
        let g = CsrGraph::from_edges(4u32, &edges, None).unwrap();
        let c = Substrate::contract(&g, &[0, 0, 1, 1], 2, &mut LevelArena::disabled());
        assert_eq!(c.n(), 2);
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.edge_weights(0), &[3]);
        // Cluster weights are summed.
        assert_eq!(c.vertex_weight(0), 2);
        assert_eq!(c.vertex_weight(1), 2);
    }

    #[test]
    fn extract_both_matches_extract_side() {
        let g = random_graph(150, 400, 11);
        let side: Vec<u8> = (0..150u32)
            .map(|v| ((v.wrapping_mul(2_654_435_761) >> 16) & 1) as u8)
            .collect();
        let mut arena = LevelArena::new();
        let [(g0, m0), (g1, m1)] = g.extract_both(&side, true, &mut arena);
        for (which, (sub, map)) in [(0u8, (&g0, &m0)), (1u8, (&g1, &m1))] {
            let (es, em) = g.extract_side(&side, which, true);
            assert_eq!(map, &em, "side-{which} map differs");
            assert_eq!(sub.n(), es.n());
            assert_eq!(sub.num_edges(), es.num_edges());
            for v in 0..sub.n() {
                assert_eq!(sub.neighbors(v), es.neighbors(v), "side {which} vertex {v}");
                assert_eq!(sub.edge_weights(v), es.edge_weights(v));
                assert_eq!(sub.vertex_weight(v), es.vertex_weight(v));
            }
        }
    }

    #[test]
    fn parallel_graph_partition_matches_serial() {
        use fgh_partition::Parallelism;
        let g = random_graph(500, 1000, 13);
        let run = |parallelism| {
            let cfg = PartitionConfig {
                parallelism,
                ..PartitionConfig::with_seed(6)
            };
            partition_graph(&g, 8, &cfg).unwrap()
        };
        let serial = run(Parallelism::Serial);
        let par = run(Parallelism::Threads(4));
        assert_eq!(serial.parts, par.parts);
        assert_eq!(serial.edge_cut, par.edge_cut);

        let best_cfg = PartitionConfig {
            parallelism: Parallelism::Threads(4),
            ..PartitionConfig::with_seed(6)
        };
        let best_serial = partition_graph_best(&g, 8, &PartitionConfig::with_seed(6), 4).unwrap();
        let best_par = partition_graph_best(&g, 8, &best_cfg, 4).unwrap();
        assert_eq!(best_serial.parts, best_par.parts);
        assert_eq!(best_serial.edge_cut, best_par.edge_cut);
    }

    #[test]
    fn extract_side_builds_induced_subgraph() {
        let g = two_cliques(3); // vertices 0..3 and 3..6, bridge (2,3)
        let side: Vec<u8> = (0..6).map(|v| u8::from(v >= 3)).collect();
        let (sub, map) = g.extract_side(&side, 1, true);
        assert_eq!(map, vec![3, 4, 5]);
        assert_eq!(sub.n(), 3);
        assert_eq!(
            sub.num_edges(),
            3,
            "the clique survives, the bridge is dropped"
        );
    }
}
