//! Property tests of the graph partitioner on random graphs.

use fgh_graph::{partition_graph, CsrGraph, PartitionConfig};
use proptest::prelude::*;

/// Strategy: a random connected graph (path + extra edges).
fn graph() -> impl Strategy<Value = CsrGraph> {
    (4u32..=60).prop_flat_map(|n| {
        proptest::collection::btree_set((0..n, 0..n), 0..=(n as usize * 2)).prop_map(move |extra| {
            let mut edges: Vec<(u32, u32, u32)> = (1..n).map(|i| (i - 1, i, 1)).collect();
            for (u, v) in extra {
                if u != v {
                    edges.push((u.min(v), u.max(v), 1));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            CsrGraph::from_edges(n, &edges, None).expect("valid edges")
        })
    })
}

proptest! {
    /// K-way partitioning always yields full coverage, valid part ids,
    /// cut consistency, and determinism.
    #[test]
    fn partitioner_postconditions(g in graph(), k in 1u32..=4, seed in 0u64..100) {
        let cfg = PartitionConfig { seed, ..Default::default() };
        let r = partition_graph(&g, k, &cfg).unwrap();
        prop_assert_eq!(r.parts.len(), g.n() as usize);
        prop_assert!(r.parts.iter().all(|&p| p < k));
        prop_assert_eq!(r.edge_cut, g.edge_cut(&r.parts));
        if k == 1 {
            prop_assert_eq!(r.edge_cut, 0);
        }
        let r2 = partition_graph(&g, k, &cfg).unwrap();
        prop_assert_eq!(r.parts, r2.parts);
    }

    /// Balance: with unit weights and n >= 4k, every part is within the
    /// (generous) compounded tolerance.
    #[test]
    fn balance_postcondition(g in graph(), seed in 0u64..100) {
        let k = 2u32;
        prop_assume!(g.n() >= 8);
        let cfg = PartitionConfig { seed, ..Default::default() };
        let r = partition_graph(&g, k, &cfg).unwrap();
        prop_assert!(
            r.imbalance_percent <= 15.0,
            "imbalance {}% on n={}",
            r.imbalance_percent,
            g.n()
        );
    }

    /// The edge cut of any side vector is symmetric in the labels.
    #[test]
    fn edge_cut_label_symmetric(g in graph(), seed in 0u64..100) {
        let mut rng_parts = Vec::with_capacity(g.n() as usize);
        let mut s = seed;
        for _ in 0..g.n() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng_parts.push(((s >> 33) % 2) as u32);
        }
        let flipped: Vec<u32> = rng_parts.iter().map(|&p| 1 - p).collect();
        prop_assert_eq!(g.edge_cut(&rng_parts), g.edge_cut(&flipped));
    }
}
