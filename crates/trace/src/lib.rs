//! # fgh-trace — structured observability for the decomposition pipeline
//!
//! A zero-dependency, near-zero-overhead tracing layer. The pipeline
//! opens hierarchical **spans** around its phases
//! (`decompose → model-build → coarsen[level] → initial → fm-pass[i] →
//! decode`, and the SpMV executor's `expand → local-mult → fold`) and
//! attaches typed **counters** to them (vertices/nets per level, FM
//! moves/rollbacks, gain-bucket resizes, arena checkouts/reuses,
//! `parallel_forks`, budget checkpoints). Completed spans stream to a
//! pluggable [`Sink`]; afterwards a [`CollectingSink`] assembles them into
//! a deterministic [`Trace`] tree that renders as a human-readable tree
//! ([`Trace::render`]) or exports as machine-readable JSON
//! ([`Trace::to_json`], schema documented in DESIGN.md §5.5).
//!
//! ## Overhead model
//!
//! A [`Tracer`] is either *enabled* (holds an `Arc` to a sink) or
//! *disabled* (holds nothing). Every span/counter operation on a disabled
//! tracer — and on the [`SpanHandle::noop`] handles the engines default
//! to — is a single `Option` discriminant test with **no clock reads and
//! no allocation**, so instrumented code costs nothing measurable when
//! tracing is off. Instrumentation sits at phase granularity (per level,
//! per FM pass), never inside per-move inner loops.
//!
//! ## Parallel runs
//!
//! [`SpanHandle`] is `Send + Sync + Clone`: a fork-join worker receives a
//! handle to its parent span and records its subtree under it, so traces
//! from `Threads(n)` runs stitch into the same tree a serial run
//! produces. Because [`Trace::from_records`] orders children by
//! `(name, index, start)` rather than by completion order, the assembled
//! tree is deterministic regardless of thread interleaving.
//!
//! ## Example
//!
//! ```
//! use fgh_trace::Tracer;
//!
//! let (tracer, sink) = Tracer::collecting();
//! {
//!     let root = tracer.span("decompose");
//!     let coarsen = root.child_indexed("coarsen", 0);
//!     coarsen.counter("vertices", 812);
//!     drop(coarsen);
//!     root.child("initial");
//! }
//! let trace = sink.build_trace();
//! assert_eq!(trace.roots.len(), 1);
//! assert_eq!(trace.roots[0].children.len(), 2);
//! println!("{}", trace.render());
//! ```

// Robustness contract: library (non-test) code must not panic; provably
// infallible sites carry a narrowly scoped `allow` with a justification.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
mod sink;
mod tree;

pub use sink::{CollectingSink, NullSink, Sink};
pub use tree::{validate_trace_value, Trace, TraceNode};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The `parent` id of a root span (no parent).
pub const NO_PARENT: u64 = 0;

/// A completed span, as delivered to a [`Sink`]. `start_ns` is relative
/// to the owning [`Tracer`]'s epoch (its creation instant), so spans from
/// different threads of one run share a timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the tracer (ids start at 1; 0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span, or [`NO_PARENT`].
    pub parent: u64,
    /// Phase name, e.g. `"coarsen"` or `"fm-pass"`.
    pub name: &'static str,
    /// Optional ordinal distinguishing repeated phases (`coarsen[3]`).
    pub index: Option<u64>,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
}

/// A typed counter attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRecord {
    /// Id of the span the counter belongs to.
    pub span: u64,
    /// Counter name, e.g. `"fm_moves"`.
    pub name: &'static str,
    /// Counter value. Values recorded under the same `(span, name)` are
    /// summed during tree assembly.
    pub value: u64,
}

/// Shared state of an enabled tracer.
struct TracerCore {
    sink: Arc<dyn Sink>,
    epoch: Instant,
    next_id: AtomicU64,
}

impl TracerCore {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Entry point: either enabled (records to a sink) or disabled (every
/// operation is a no-op branch). Cloning is cheap; clones share the sink,
/// the epoch, and the id counter.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl Tracer {
    /// A tracer that records nothing. All span operations reduce to an
    /// `Option` test.
    pub fn disabled() -> Tracer {
        Tracer { core: None }
    }

    /// A tracer recording to `sink`. The epoch (zero of the span
    /// timeline) is the moment of this call.
    pub fn new(sink: Arc<dyn Sink>) -> Tracer {
        Tracer {
            core: Some(Arc::new(TracerCore {
                sink,
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// Convenience: a tracer backed by a fresh [`CollectingSink`],
    /// returned alongside it for later [`CollectingSink::build_trace`].
    pub fn collecting() -> (Tracer, Arc<CollectingSink>) {
        let sink = Arc::new(CollectingSink::new());
        (Tracer::new(sink.clone()), sink)
    }

    /// `true` when spans will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A handle to the (virtual) root scope; children created from it are
    /// root spans.
    pub fn root(&self) -> SpanHandle {
        SpanHandle {
            core: self.core.clone(),
            id: NO_PARENT,
        }
    }

    /// Opens a root span.
    pub fn span(&self, name: &'static str) -> Span {
        self.root().child(name)
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// A cheap, `Send + Sync + Clone` reference to an open span (or to the
/// root scope). Handles are how instrumented code receives its tracing
/// context: they create child spans and attach counters without owning
/// the span's lifetime. A [`SpanHandle::noop`] handle makes every
/// operation free — engines default to it so uninstrumented callers pay
/// nothing.
#[derive(Clone, Default)]
pub struct SpanHandle {
    core: Option<Arc<TracerCore>>,
    id: u64,
}

impl SpanHandle {
    /// A handle that records nothing.
    pub fn noop() -> SpanHandle {
        SpanHandle::default()
    }

    /// `true` when operations on this handle record to a sink.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a child span under this scope.
    pub fn child(&self, name: &'static str) -> Span {
        self.open(name, None)
    }

    /// Opens an indexed child span (`name[index]`) under this scope.
    pub fn child_indexed(&self, name: &'static str, index: u64) -> Span {
        self.open(name, Some(index))
    }

    /// Attaches a counter to this span (summed with any other values
    /// recorded under the same name).
    pub fn counter(&self, name: &'static str, value: u64) {
        if let Some(core) = &self.core {
            core.sink.record_counter(CounterRecord {
                span: self.id,
                name,
                value,
            });
        }
    }

    fn open(&self, name: &'static str, index: Option<u64>) -> Span {
        match &self.core {
            None => Span::noop(),
            Some(core) => {
                // lint: atomic — relaxed: unique span-id counter; uniqueness needs atomicity, not ordering
                let id = core.next_id.fetch_add(1, Ordering::Relaxed);
                Span {
                    core: Some(core.clone()),
                    id,
                    parent: self.id,
                    name,
                    index,
                    start_ns: core.now_ns(),
                    start: Instant::now(),
                }
            }
        }
    }
}

impl std::fmt::Debug for SpanHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanHandle")
            .field("id", &self.id)
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// An open span: an RAII guard that records a [`SpanRecord`] to the sink
/// when dropped. Obtain one from [`Tracer::span`], [`SpanHandle::child`],
/// or [`Span::child`].
pub struct Span {
    core: Option<Arc<TracerCore>>,
    id: u64,
    parent: u64,
    name: &'static str,
    index: Option<u64>,
    start_ns: u64,
    start: Instant,
}

impl Span {
    /// A span that records nothing — zero clock reads, zero allocation.
    pub fn noop() -> Span {
        Span {
            core: None,
            id: NO_PARENT,
            parent: NO_PARENT,
            name: "",
            index: None,
            start_ns: 0,
            // Never read back: `Drop` exits on `core == None` first.
            start: Instant::now(),
        }
    }

    /// `true` when this span will be recorded on drop.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A handle for creating children of this span (possibly from another
    /// thread) without tying them to this guard's lifetime.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            core: self.core.clone(),
            id: self.id,
        }
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str) -> Span {
        self.handle().child(name)
    }

    /// Opens an indexed child span (`name[index]`).
    pub fn child_indexed(&self, name: &'static str, index: u64) -> Span {
        self.handle().child_indexed(name, index)
    }

    /// Attaches a counter to this span.
    pub fn counter(&self, name: &'static str, value: u64) {
        self.handle().counter(name, value);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(core) = &self.core {
            let duration_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            core.sink.record_span(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                index: self.index,
                start_ns: self.start_ns,
                duration_ns,
            });
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("index", &self.index)
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let s = t.span("decompose");
        assert!(!s.is_enabled());
        let c = s.child_indexed("coarsen", 0);
        c.counter("vertices", 10);
        drop(c);
        drop(s);
        // Nothing to observe — the point is that none of the above panics
        // or allocates a sink.
        assert!(!t.root().is_enabled());
    }

    #[test]
    fn spans_nest_and_record() {
        let (t, sink) = Tracer::collecting();
        let root = t.span("decompose");
        {
            let c = root.child_indexed("coarsen", 1);
            c.counter("vertices", 7);
            c.counter("vertices", 3);
        }
        drop(root);
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        let coarsen = spans.iter().find(|s| s.name == "coarsen").unwrap();
        let decomp = spans.iter().find(|s| s.name == "decompose").unwrap();
        assert_eq!(coarsen.parent, decomp.id);
        assert_eq!(decomp.parent, NO_PARENT);
        assert_eq!(coarsen.index, Some(1));
        let counters = sink.counters();
        assert_eq!(counters.len(), 2);
        assert!(counters.iter().all(|c| c.span == coarsen.id));
    }

    #[test]
    fn handles_cross_threads() {
        let (t, sink) = Tracer::collecting();
        let root = t.span("partition");
        let h = root.handle();
        std::thread::scope(|s| {
            for i in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    let d = h.child_indexed("domain", i);
                    d.counter("work", i);
                });
            }
        });
        drop(root);
        let trace = sink.build_trace();
        assert_eq!(trace.roots.len(), 1);
        let kids = &trace.roots[0].children;
        assert_eq!(kids.len(), 4);
        // Deterministic order by index regardless of completion order.
        let idx: Vec<_> = kids.iter().map(|k| k.index).collect();
        assert_eq!(idx, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let (t, sink) = Tracer::collecting();
        for _ in 0..10 {
            t.span("x");
        }
        let spans = sink.spans();
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert!(ids.iter().all(|&i| i != NO_PARENT));
    }
}
