//! Deterministic trace-tree assembly, the human tree printer, and the
//! JSON exporter/validator.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::{CounterRecord, SpanRecord, NO_PARENT};

/// One node of an assembled trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Phase name.
    pub name: &'static str,
    /// Ordinal for repeated phases (`coarsen[3]`), if any.
    pub index: Option<u64>,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub duration_ns: u64,
    /// Counters attached to this span, summed per name, in name order.
    pub counters: Vec<(&'static str, u64)>,
    /// Child phases, ordered by `(name, index, start_ns)` — deterministic
    /// across thread interleavings.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// The value of a counter on this node, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// First child with the given name.
    pub fn child(&self, name: &str) -> Option<&TraceNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

/// An assembled trace: the forest of root spans recorded by one tracer.
/// In pipeline use there is exactly one root (`decompose` or `spmv`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Root spans, ordered like children (`(name, index, start_ns)`).
    pub roots: Vec<TraceNode>,
}

impl Trace {
    /// Builds the tree from raw records. Orphans (spans whose parent was
    /// never recorded — e.g. the sink was snapshotted while the parent
    /// was still open) are promoted to roots rather than dropped.
    /// Children are ordered by `(name, index, start_ns)`, so the tree is
    /// identical for serial and fork-join runs of a deterministic
    /// algorithm up to timing fields.
    pub fn from_records(spans: &[SpanRecord], counters: &[CounterRecord]) -> Trace {
        // Counters per span id, summed per name.
        let mut per_span: BTreeMap<u64, BTreeMap<&'static str, u64>> = BTreeMap::new();
        for c in counters {
            let slot = per_span
                .entry(c.span)
                .or_default()
                .entry(c.name)
                .or_insert(0);
            *slot = slot.saturating_add(c.value);
        }
        // Group child ids under each parent; remember which ids exist.
        let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
        let mut kids: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut roots: Vec<u64> = Vec::new();
        for s in spans {
            if s.parent != NO_PARENT && by_id.contains_key(&s.parent) {
                kids.entry(s.parent).or_default().push(s.id);
            } else {
                roots.push(s.id);
            }
        }
        fn build(
            id: u64,
            by_id: &BTreeMap<u64, &SpanRecord>,
            kids: &BTreeMap<u64, Vec<u64>>,
            per_span: &mut BTreeMap<u64, BTreeMap<&'static str, u64>>,
        ) -> Option<TraceNode> {
            let rec = by_id.get(&id)?;
            let mut children: Vec<TraceNode> = kids
                .get(&id)
                .into_iter()
                .flatten()
                .filter_map(|&c| build(c, by_id, kids, per_span))
                .collect();
            children
                .sort_by(|a, b| (a.name, a.index, a.start_ns).cmp(&(b.name, b.index, b.start_ns)));
            let counters: Vec<(&'static str, u64)> = per_span
                .remove(&id)
                .map(|m| m.into_iter().collect())
                .unwrap_or_default();
            Some(TraceNode {
                name: rec.name,
                index: rec.index,
                start_ns: rec.start_ns,
                duration_ns: rec.duration_ns,
                counters,
                children,
            })
        }
        let mut root_nodes: Vec<TraceNode> = roots
            .into_iter()
            .filter_map(|id| build(id, &by_id, &kids, &mut per_span))
            .collect();
        root_nodes
            .sort_by(|a, b| (a.name, a.index, a.start_ns).cmp(&(b.name, b.index, b.start_ns)));
        Trace { roots: root_nodes }
    }

    /// Every node of the forest, depth-first.
    pub fn nodes(&self) -> Vec<&TraceNode> {
        fn walk<'a>(n: &'a TraceNode, out: &mut Vec<&'a TraceNode>) {
            out.push(n);
            for c in &n.children {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk(r, &mut out);
        }
        out
    }

    /// First root with the given name.
    pub fn root(&self, name: &str) -> Option<&TraceNode> {
        self.roots.iter().find(|r| r.name == name)
    }

    /// Total duration per phase name, summed over the whole forest, in
    /// name order. The basis for per-phase breakdown columns.
    pub fn phase_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for n in self.nodes() {
            let slot = totals.entry(n.name).or_insert(0);
            *slot = slot.saturating_add(n.duration_ns);
        }
        totals.into_iter().collect()
    }

    /// Renders the forest as a human-readable tree (the `--trace` output):
    ///
    /// ```text
    /// decompose                                 5.12ms
    /// ├─ model-build                          611.0µs
    /// ├─ partition                             4.31ms
    /// │  └─ run[0]                             4.29ms
    /// └─ decode                               101.3µs
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            render_node(r, "", "", &mut out);
        }
        out
    }

    /// Exports the forest as a JSON array of span objects (schema
    /// `fgh-trace/1`, see DESIGN.md §5.5):
    ///
    /// ```json
    /// [{"name": "decompose", "index": null, "start_ns": 0,
    ///   "duration_ns": 512345, "counters": {"fm_moves": 88},
    ///   "children": [ … ]}]
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('[');
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node_json(r, &mut out);
        }
        out.push(']');
        out
    }
}

fn render_node(n: &TraceNode, pad: &str, child_pad: &str, out: &mut String) {
    let mut label = String::new();
    label.push_str(pad);
    label.push_str(n.name);
    if let Some(i) = n.index {
        label.push_str(&format!("[{i}]"));
    }
    let dur = human_duration(n.duration_ns);
    let width = 44usize;
    if label.len() + 2 + dur.len() < width {
        out.push_str(&label);
        out.push_str(&" ".repeat(width - label.len() - dur.len()));
        out.push_str(&dur);
    } else {
        out.push_str(&label);
        out.push_str("  ");
        out.push_str(&dur);
    }
    if !n.counters.is_empty() {
        let parts: Vec<String> = n.counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str("  {");
        out.push_str(&parts.join(", "));
        out.push('}');
    }
    out.push('\n');
    // Children are stored in deterministic `(name, index)` order; show
    // them to the human in execution order instead.
    let mut order: Vec<&TraceNode> = n.children.iter().collect();
    order.sort_by_key(|c| (c.start_ns, c.name, c.index));
    let last = order.len().saturating_sub(1);
    for (i, c) in order.into_iter().enumerate() {
        let (branch, cont) = if i == last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        render_node(
            c,
            &format!("{child_pad}{branch}"),
            &format!("{child_pad}{cont}"),
            out,
        );
    }
}

/// Formats nanoseconds with an adaptive unit (`812ns`, `45.2µs`,
/// `12.3ms`, `1.24s`).
pub fn human_duration(ns: u64) -> String {
    let nsf = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", nsf / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", nsf / 1e6)
    } else {
        format!("{:.2}s", nsf / 1e9)
    }
}

fn node_json(n: &TraceNode, out: &mut String) {
    out.push_str("{\"name\":");
    json::write_escaped(n.name, out);
    match n.index {
        Some(i) => out.push_str(&format!(",\"index\":{i}")),
        None => out.push_str(",\"index\":null"),
    }
    out.push_str(&format!(
        ",\"start_ns\":{},\"duration_ns\":{},\"counters\":{{",
        n.start_ns, n.duration_ns
    ));
    for (i, (k, v)) in n.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(k, out);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"children\":[");
    for (i, c) in n.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node_json(c, out);
    }
    out.push_str("]}");
}

/// Validates a parsed JSON value against the `fgh-trace/1` span-tree
/// schema ([`Trace::to_json`]'s output format): an array of span objects,
/// each with exactly the members `name` (string), `index` (integer or
/// null), `start_ns`/`duration_ns` (non-negative integers), `counters`
/// (object mapping names to non-negative integers), and `children` (an
/// array of span objects, recursively). Returns the first violation as a
/// `path: problem` message.
pub fn validate_trace_value(v: &Value) -> Result<(), String> {
    fn span_list(v: &Value, path: &str) -> Result<(), String> {
        let arr = v.as_arr().ok_or(format!("{path}: expected an array"))?;
        for (i, s) in arr.iter().enumerate() {
            span(s, &format!("{path}[{i}]"))?;
        }
        Ok(())
    }
    fn span(v: &Value, path: &str) -> Result<(), String> {
        let obj = v.as_obj().ok_or(format!("{path}: expected an object"))?;
        for key in obj.keys() {
            if !matches!(
                key.as_str(),
                "name" | "index" | "start_ns" | "duration_ns" | "counters" | "children"
            ) {
                return Err(format!("{path}: unknown member {key:?}"));
            }
        }
        obj.get("name")
            .and_then(|n| n.as_str())
            .ok_or(format!("{path}.name: expected a string"))?;
        match obj.get("index") {
            Some(i) if i.is_null() || i.as_u64().is_some() => {}
            _ => return Err(format!("{path}.index: expected an integer or null")),
        }
        for field in ["start_ns", "duration_ns"] {
            obj.get(field)
                .and_then(|n| n.as_u64())
                .ok_or(format!("{path}.{field}: expected a non-negative integer"))?;
        }
        let counters = obj
            .get("counters")
            .and_then(|c| c.as_obj())
            .ok_or(format!("{path}.counters: expected an object"))?;
        for (k, cv) in counters {
            cv.as_u64().ok_or(format!(
                "{path}.counters.{k}: expected a non-negative integer"
            ))?;
        }
        span_list(
            obj.get("children").unwrap_or(&Value::Null),
            &format!("{path}.children"),
        )
    }
    span_list(v, "trace")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, name: &'static str, index: Option<u64>, start: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name,
            index,
            start_ns: start,
            duration_ns: 100,
        }
    }

    #[test]
    fn assembles_and_orders_deterministically() {
        // Completion order is children-before-parents and shuffled across
        // "threads"; the tree must still come out sorted.
        let spans = vec![
            rec(4, 2, "fm-pass", Some(1), 30),
            rec(3, 2, "fm-pass", Some(0), 20),
            rec(2, 1, "refine", Some(0), 10),
            rec(5, 1, "coarsen", Some(0), 5),
            rec(1, 0, "decompose", None, 0),
        ];
        let counters = vec![
            CounterRecord {
                span: 3,
                name: "moves",
                value: 7,
            },
            CounterRecord {
                span: 3,
                name: "moves",
                value: 3,
            },
        ];
        let t = Trace::from_records(&spans, &counters);
        assert_eq!(t.roots.len(), 1);
        let root = &t.roots[0];
        assert_eq!(root.name, "decompose");
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["coarsen", "refine"]);
        let refine = root.child("refine").unwrap();
        assert_eq!(refine.children[0].index, Some(0));
        assert_eq!(refine.children[1].index, Some(1));
        assert_eq!(refine.children[0].counter("moves"), Some(10));
    }

    #[test]
    fn orphans_become_roots() {
        let spans = vec![rec(7, 99, "lost", None, 0)];
        let t = Trace::from_records(&spans, &[]);
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.roots[0].name, "lost");
    }

    #[test]
    fn phase_totals_sum_across_forest() {
        let spans = vec![
            rec(1, 0, "a", None, 0),
            rec(2, 1, "b", Some(0), 0),
            rec(3, 1, "b", Some(1), 0),
        ];
        let t = Trace::from_records(&spans, &[]);
        assert_eq!(t.phase_totals(), vec![("a", 100), ("b", 200)]);
    }

    #[test]
    fn json_round_trips_and_validates() {
        let spans = vec![
            rec(1, 0, "decompose", None, 0),
            rec(2, 1, "coarsen", Some(0), 3),
        ];
        let counters = vec![CounterRecord {
            span: 2,
            name: "vertices",
            value: 42,
        }];
        let t = Trace::from_records(&spans, &counters);
        let text = t.to_json();
        let v = crate::json::parse(&text).unwrap();
        validate_trace_value(&v).unwrap();
        let root = &v.as_arr().unwrap()[0];
        assert_eq!(root.get("name").unwrap().as_str(), Some("decompose"));
        let child = &root.get("children").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            child
                .get("counters")
                .unwrap()
                .get("vertices")
                .unwrap()
                .as_u64(),
            Some(42)
        );
    }

    #[test]
    fn validator_rejects_malformed_spans() {
        for bad in [
            r#"{"name":"x"}"#,
            r#"[{"name":1,"index":null,"start_ns":0,"duration_ns":0,"counters":{},"children":[]}]"#,
            r#"[{"name":"x","index":-1,"start_ns":0,"duration_ns":0,"counters":{},"children":[]}]"#,
            r#"[{"name":"x","index":null,"start_ns":0,"duration_ns":0,"counters":{"c":"no"},"children":[]}]"#,
            r#"[{"name":"x","index":null,"start_ns":0,"duration_ns":0,"counters":{},"children":[],"extra":1}]"#,
            r#"[{"name":"x","index":null,"start_ns":0,"duration_ns":0,"counters":{},"children":[{}]}]"#,
        ] {
            let v = crate::json::parse(bad).unwrap();
            assert!(validate_trace_value(&v).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn render_draws_a_tree() {
        let spans = vec![
            rec(1, 0, "decompose", None, 0),
            rec(2, 1, "model-build", None, 1),
            rec(3, 1, "partition", None, 2),
            rec(4, 3, "run", Some(0), 3),
            rec(5, 1, "decode", None, 4),
        ];
        let t = Trace::from_records(&spans, &[]);
        let s = t.render();
        assert!(s.contains("decompose"));
        assert!(s.contains("├─ model-build"));
        assert!(s.contains("│  └─ run[0]"), "render:\n{s}");
        assert!(
            s.contains("└─ decode"),
            "execution order, decode last:\n{s}"
        );
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn human_duration_units() {
        assert_eq!(human_duration(812), "812ns");
        assert_eq!(human_duration(45_200), "45.2µs");
        assert_eq!(human_duration(12_300_000), "12.30ms");
        assert_eq!(human_duration(1_240_000_000), "1.24s");
    }
}
